// forktail — command-line tail-latency prediction.
//
// The operational surface of the library for people who just have numbers:
// feed measured task moments in, get percentiles out.
//
//   forktail predict  --mean 42 --variance 1764 --k 100 [--p 95,99,99.9]
//   forktail predict  --nodes stats.csv [--p 99]       # CSV: mean,variance
//   forktail mixture  --mean 42 --variance 1764 --k-lo 80 --k-hi 120 [--p 99]
//   forktail pipeline --stage retrieval:4.1:80:64 --stage rank:2.2:9:16
//   forktail budget   --slo-latency 200 --slo-p 99 --k 100 [--scv 1.0]
//   forktail samples  --mean 42 --variance 1764 --k 100 --precision 0.05
//   forktail sweep    --dists Exponential,Weibull --node-counts 10,100
//                     --loads 0.5,0.9 --replicas 3 --threads 4
//   forktail run      examples/homogeneous.json [--predict all] [--p 95,99]
//                     [--scale smoke] [--metrics-out report.json]
//   forktail bench    [--scale smoke] [--reps 5] [--out BENCH_replay.json]
//
// All times are in whatever unit the inputs use; the tool is unit-agnostic.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/forktail.hpp"
#include "fjsim/config.hpp"
#include "obs/report.hpp"
#include "replay_bench.hpp"
#include "scenario/run.hpp"
#include "serve/server.hpp"
#include "sweep.hpp"
#include "util/cli.hpp"

namespace {

using namespace forktail;

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::vector<double> parse_percentiles(const std::string& text) {
  std::vector<double> ps;
  for (const auto& item : split_list(text)) ps.push_back(std::stod(item));
  if (ps.empty()) throw std::invalid_argument("no percentiles given");
  return ps;
}

std::vector<core::TaskStats> read_node_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::vector<core::TaskStats> nodes;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string mean_s;
    std::string var_s;
    if (!std::getline(ls, mean_s, ',') || !std::getline(ls, var_s, ',')) {
      throw std::runtime_error("malformed line " + std::to_string(line_no) +
                               " in " + path + " (want: mean,variance)");
    }
    nodes.push_back({std::stod(mean_s), std::stod(var_s)});
  }
  if (nodes.empty()) throw std::runtime_error("no node rows in " + path);
  return nodes;
}

int cmd_predict(int argc, const char* const* argv) {
  util::CliFlags flags;
  flags.declare("mean", "0", "measured task response mean");
  flags.declare("variance", "0", "measured task response variance");
  flags.declare("k", "1", "tasks forked per request");
  flags.declare("nodes", "", "CSV of per-node mean,variance (inhomogeneous)");
  flags.declare("p", "99", "comma-separated percentiles");
  if (!flags.parse(argc, argv)) return 0;
  const auto ps = parse_percentiles(flags.get_string("p"));

  if (!flags.get_string("nodes").empty()) {
    const auto nodes = read_node_csv(flags.get_string("nodes"));
    std::printf("inhomogeneous prediction over %zu nodes (Eq. 4)\n",
                nodes.size());
    for (double p : ps) {
      std::printf("  p%-6g %12.4g\n", p,
                  core::inhomogeneous_quantile(nodes, p));
    }
    return 0;
  }
  const core::TaskStats stats{flags.get_double("mean"),
                              flags.get_double("variance")};
  const double k = flags.get_double("k");
  const core::GenExp ge = core::GenExp::fit_moments(stats.mean, stats.variance);
  std::printf("fitted %s for k = %g tasks (Eq. 13)\n", ge.to_string().c_str(), k);
  for (double p : ps) {
    std::printf("  p%-6g %12.4g\n", p, core::homogeneous_quantile(stats, k, p));
  }
  return 0;
}

int cmd_mixture(int argc, const char* const* argv) {
  util::CliFlags flags;
  flags.declare("mean", "0", "measured task response mean");
  flags.declare("variance", "0", "measured task response variance");
  flags.declare("k-lo", "1", "lower bound of the uniform task-count range");
  flags.declare("k-hi", "1", "upper bound of the uniform task-count range");
  flags.declare("p", "99", "comma-separated percentiles");
  if (!flags.parse(argc, argv)) return 0;
  const core::TaskStats stats{flags.get_double("mean"),
                              flags.get_double("variance")};
  const auto mixture = core::TaskCountMixture::uniform_int(
      static_cast<int>(flags.get_int("k-lo")),
      static_cast<int>(flags.get_int("k-hi")));
  std::printf("K ~ U[%lld, %lld], mean fan-out %.1f (Eqs. 8-9)\n",
              static_cast<long long>(flags.get_int("k-lo")),
              static_cast<long long>(flags.get_int("k-hi")),
              mixture.mean_tasks());
  for (double p : parse_percentiles(flags.get_string("p"))) {
    std::printf("  p%-6g %12.4g\n", p,
                core::mixture_quantile(stats, mixture, p));
  }
  return 0;
}

int cmd_pipeline(int argc, const char* const* argv) {
  // --stage takes name:mean:variance:k and may repeat; CliFlags keeps only
  // the last value, so parse stages manually and forward the rest.
  std::vector<core::StageSpec> stages;
  std::vector<const char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stage" && i + 1 < argc) {
      std::istringstream is(argv[++i]);
      std::string name;
      std::string mean_s;
      std::string var_s;
      std::string k_s;
      if (!std::getline(is, name, ':') || !std::getline(is, mean_s, ':') ||
          !std::getline(is, var_s, ':') || !std::getline(is, k_s, ':')) {
        throw std::invalid_argument(
            "--stage wants name:mean:variance:k, got: " + std::string(argv[i]));
      }
      stages.push_back(
          {name, {std::stod(mean_s), std::stod(var_s)}, std::stod(k_s)});
    } else {
      rest.push_back(argv[i]);
    }
  }
  util::CliFlags flags;
  flags.declare("p", "99", "comma-separated percentiles");
  if (!flags.parse(static_cast<int>(rest.size()), rest.data())) return 0;
  if (stages.empty()) {
    throw std::invalid_argument("pipeline: need at least one --stage");
  }
  const core::PipelinePredictor predictor(stages);
  std::printf("%zu-stage workflow: total mean %.4g, stddev %.4g\n",
              predictor.num_stages(), predictor.total_mean(),
              std::sqrt(predictor.total_variance()));
  const auto breakdown = predictor.mean_breakdown();
  for (std::size_t s = 0; s < predictor.num_stages(); ++s) {
    const auto& lat = predictor.stage_latencies()[s];
    std::printf("  stage %-12s mean %10.4g  (%4.1f%% of total)\n",
                lat.name.c_str(), lat.mean, 100.0 * breakdown[s]);
  }
  std::printf("bottleneck stage at p99: %s\n",
              predictor.stage_latencies()[predictor.bottleneck_stage(99.0)]
                  .name.c_str());
  for (double p : parse_percentiles(flags.get_string("p"))) {
    std::printf("  end-to-end p%-6g %12.4g\n", p, predictor.quantile(p));
  }
  return 0;
}

int cmd_budget(int argc, const char* const* argv) {
  util::CliFlags flags;
  flags.declare("slo-latency", "0", "tail-latency bound");
  flags.declare("slo-p", "99", "SLO percentile");
  flags.declare("k", "1", "tasks forked per request");
  flags.declare("scv", "1.0", "assumed task squared CV (1 = exponential)");
  if (!flags.parse(argc, argv)) return 0;
  const core::TailSlo slo{flags.get_double("slo-p"),
                          flags.get_double("slo-latency")};
  const auto budget = core::derive_task_budget(slo, flags.get_double("k"),
                                               flags.get_double("scv"));
  std::printf(
      "task budget for p%g <= %g at k = %g (SCV hint %g):\n"
      "  mean     <= %.6g\n  variance <= %.6g\n"
      "(shape caveat: see docs/model.md section 5 -- prefer the SLO-based\n"
      " search when the measured CV differs from the hint)\n",
      slo.percentile, slo.latency, flags.get_double("k"),
      flags.get_double("scv"), budget.mean, budget.variance);
  return 0;
}

int cmd_samples(int argc, const char* const* argv) {
  util::CliFlags flags;
  flags.declare("mean", "0", "measured task response mean");
  flags.declare("variance", "0", "measured task response variance");
  flags.declare("k", "1", "tasks forked per request");
  flags.declare("p", "99", "target percentile");
  flags.declare("precision", "0.05", "relative 1-sigma precision target");
  if (!flags.parse(argc, argv)) return 0;
  const core::TaskStats stats{flags.get_double("mean"),
                              flags.get_double("variance")};
  const double k = flags.get_double("k");
  const double p = flags.get_double("p");
  const auto n = core::samples_for_precision(stats, k, p,
                                             flags.get_double("precision"));
  const auto u = core::prediction_uncertainty(stats, k, p, n);
  std::printf(
      "samples for %.1f%% precision on p%g at k = %g: %llu\n"
      "(prediction %.6g +- %.2f%% at that window size)\n",
      100.0 * flags.get_double("precision"), p, k,
      static_cast<unsigned long long>(n), u.value, 100.0 * u.stderr_rel);
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  // Simulation-backed error sweep (the Figure 5 black-box pipeline) over a
  // user-chosen (distribution x N x load) grid, parallelized across grid
  // cells; `--threads` changes wall-clock only, never the table.
  util::CliFlags flags;
  flags.declare("dists", "Exponential,Weibull",
                "comma-separated service distributions");
  flags.declare("node-counts", "10,100",
                "comma-separated fork-node counts (k = N)");
  flags.declare("loads", "0.5,0.8", "comma-separated per-server loads in (0,1)");
  flags.declare("replicas", "1", "independent sim replications per cell");
  flags.declare("percentile", "99", "target percentile");
  flags.declare("metrics-out", "forktail_metrics.json",
                "run-telemetry report path (.prom for Prometheus text; "
                "empty disables)");
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, flags, options)) return 0;

  bench::SweepSpec spec;
  spec.distributions = split_list(flags.get_string("dists"));
  spec.node_counts.clear();
  for (const auto& n : split_list(flags.get_string("node-counts"))) {
    spec.node_counts.push_back(static_cast<std::size_t>(std::stoull(n)));
  }
  spec.loads.clear();
  for (const auto& l : split_list(flags.get_string("loads"))) {
    spec.loads.push_back(std::stod(l));
  }
  if (spec.distributions.empty() || spec.node_counts.empty() ||
      spec.loads.empty()) {
    throw std::invalid_argument("sweep: empty --dists/--node-counts/--loads");
  }
  spec.replicas = static_cast<int>(flags.get_int("replicas"));
  spec.percentile = flags.get_double("percentile");

  bench::print_banner("sweep",
                      "Black-box k = N error sweep (Eq. 13 predictor)",
                      options);
  bench::run_error_sweep(
      spec,
      [](const dist::Distribution& /*service*/, double /*lambda*/,
         const core::TaskStats& measured, double k, double percentile) {
        return core::homogeneous_quantile(measured, k, percentile);
      },
      options);
  const std::string metrics_out = flags.get_string("metrics-out");
  if (!metrics_out.empty()) {
    obs::RunReport::capture(obs::Registry::global(), "sweep").write(metrics_out);
    std::printf("wrote %s (run telemetry)\n", metrics_out.c_str());
  }
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  // Execute one declarative scenario file end to end: parse + validate the
  // spec, dispatch it through the simulator registry, measure the requested
  // percentiles, and evaluate the requested predictors on the outcome.
  std::string path;
  std::vector<const char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      rest.push_back(argv[i]);
    }
  }
  util::CliFlags flags;
  flags.declare("predict", "forktail",
                "comma-separated predictor names; 'all' runs every model "
                "applicable to the scenario, 'none' skips prediction");
  flags.declare("p", "99", "comma-separated percentiles");
  flags.declare("scale", "default",
                "sample-count scale: smoke (0.1x), default, full (5x)");
  flags.declare("threads", "0",
                "worker cap for the node replay (0 = thread-pool width); "
                "results are bit-identical for every value");
  flags.declare("out", "", "scenario-report JSON path (empty disables)");
  flags.declare("metrics-out", "",
                "run-telemetry report path (.prom for Prometheus text; "
                "empty disables)");
  if (!flags.parse(static_cast<int>(rest.size()), rest.data())) return 0;
  if (path.empty()) {
    throw std::invalid_argument(
        "run: need a scenario file (forktail run examples/homogeneous.json)");
  }

  scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  const double factor =
      util::scale_factor(util::parse_scale(flags.get_string("scale")));
  if (factor != 1.0) spec.requests = bench::scaled(spec.requests, factor);
  if (flags.get_int("threads") > 0) {
    spec.max_parallelism = static_cast<std::size_t>(flags.get_int("threads"));
  }

  std::vector<std::string> predictors;
  const std::string predict = flags.get_string("predict");
  if (!predict.empty() && predict != "none") predictors = split_list(predict);

  const auto report = scenario::run_scenario(
      spec, predictors, parse_percentiles(flags.get_string("p")));
  const auto& outcome = report.outcome;
  std::printf("scenario %s: %s, N = %zu, load %g%%, %llu requests, seed %llu\n",
              spec.name.c_str(),
              scenario::topology_name(spec.topology).c_str(), spec.nodes,
              spec.load * 100.0,
              static_cast<unsigned long long>(spec.requests),
              static_cast<unsigned long long>(spec.seed));
  std::printf("  lambda %.6g, mean fan-out %g, %zu measured responses\n",
              outcome.lambda, outcome.mean_k, outcome.responses.size());
  for (std::size_t i = 0; i < report.percentiles.size(); ++i) {
    std::printf("  p%-6g measured %12.4g ms", report.percentiles[i],
                report.measured_ms[i]);
    const baselines::Bracket& b = report.brackets[i];
    if (b.certified) std::printf("  certified [%.4g, %.4g]", b.lower, b.upper);
    std::printf("\n");
  }
  for (const auto& row : report.predictions) {
    for (std::size_t i = 0; i < report.percentiles.size(); ++i) {
      std::printf("  p%-6g %-13s %12.4g ms  (error %+.1f%%)%s\n",
                  report.percentiles[i], row.predictor.c_str(),
                  row.predicted_ms[i], row.error_pct[i],
                  row.in_bracket[i] ? "" : "  ** outside certified bracket **");
    }
  }

  const std::string out = flags.get_string("out");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("run: cannot write " + out);
    os << scenario::to_json(report).dump() << "\n";
    std::printf("wrote %s (scenario report)\n", out.c_str());
  }
  const std::string metrics_out = flags.get_string("metrics-out");
  if (!metrics_out.empty()) {
    obs::RunReport::capture(obs::Registry::global(), "run", spec.name,
                            report.degraded)
        .write(metrics_out);
    std::printf("wrote %s (run telemetry)\n", metrics_out.c_str());
  }
  return 0;
}

/// SIGTERM/SIGINT request a clean drain (async-signal-safe flag only; the
/// serve main loop polls it).
volatile std::sig_atomic_t g_serve_signal = 0;

extern "C" void serve_signal_handler(int signum) {
  g_serve_signal = signum;
}

int cmd_serve(int argc, const char* const* argv) {
  // Long-running prediction daemon: UDP sample ingest (forktail.wire.v1),
  // TCP query protocol + Prometheus scrape, clean drain on SIGTERM/SIGINT
  // with a final RunReport.  See docs/serve.md.
  std::string path;
  std::vector<const char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (path.empty() && arg.rfind("--", 0) != 0) {
      path = arg;
    } else {
      rest.push_back(argv[i]);
    }
  }
  util::CliFlags flags;
  flags.declare("port-file", "",
                "write the bound \"<udp> <tcp>\" ports here once listening "
                "(for ephemeral-port harnesses; empty disables)");
  flags.declare("max-seconds", "0",
                "exit cleanly after this many seconds (0 = run until "
                "SIGTERM/SIGINT)");
  flags.declare("metrics-out", "",
                "final RunReport path written on shutdown (.prom for "
                "Prometheus text; empty disables)");
  flags.declare("drain-throttle-us", "0",
                "test knob: microseconds the shard worker sleeps per "
                "drained batch (simulates a slow consumer to exercise "
                "shedding; 0 disables)");
  if (!flags.parse(static_cast<int>(rest.size()), rest.data())) return 0;
  if (path.empty()) {
    throw std::invalid_argument(
        "serve: need a scenario file (forktail serve examples/serve.json)");
  }

  const scenario::ScenarioSpec spec = scenario::load_scenario_file(path);
  scenario::validate(spec);

  serve::ServeConfig config;
  config.udp_port = static_cast<std::uint16_t>(spec.serve.udp_port);
  config.tcp_port = static_cast<std::uint16_t>(spec.serve.tcp_port);
  config.service = static_cast<std::uint16_t>(spec.serve.service);
  config.nodes = spec.nodes;
  config.shards = spec.serve.shards;
  config.window_seconds = spec.serve.window_seconds;
  config.min_samples = spec.serve.min_samples;
  config.skew_tolerance = spec.serve.skew_tolerance;
  config.ring_capacity = spec.serve.ring_capacity;
  config.liveness_timeout = spec.serve.liveness_timeout;
  config.sweep_interval = spec.serve.sweep_interval;
  config.stall_threshold = spec.serve.stall_threshold;
  config.scenario_name = spec.name;
  const auto throttle = flags.get_int("drain-throttle-us");
  if (throttle < 0) {
    throw std::invalid_argument("--drain-throttle-us must be >= 0");
  }
  config.drain_throttle_us = static_cast<std::uint32_t>(throttle);
  const double max_seconds = flags.get_double("max-seconds");
  if (max_seconds < 0.0) {
    throw std::invalid_argument("--max-seconds must be >= 0");
  }

  serve::Server server(config);
  server.start();
  std::printf(
      "forktail serve: scenario %s, %zu nodes, %zu shards, window %g s\n"
      "  ingest  udp://0.0.0.0:%u (forktail.wire.v1)\n"
      "  queries tcp://0.0.0.0:%u (length-prefixed JSON; HTTP GET = scrape)\n",
      spec.name.c_str(), config.nodes, config.shards, config.window_seconds,
      server.udp_port(), server.tcp_port());
  std::fflush(stdout);

  const std::string port_file = flags.get_string("port-file");
  if (!port_file.empty()) {
    std::ofstream os(port_file);
    if (!os) {
      server.stop();
      throw std::runtime_error("serve: cannot write " + port_file);
    }
    os << server.udp_port() << " " << server.tcp_port() << "\n";
  }

  g_serve_signal = 0;
  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);

  const auto started = std::chrono::steady_clock::now();
  while (g_serve_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (max_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
                .count() >= max_seconds) {
      break;
    }
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  // Clean drain: stop the reader, flush the rings, then report.
  server.stop();
  const char* why = g_serve_signal == SIGTERM   ? "SIGTERM"
                    : g_serve_signal == SIGINT  ? "SIGINT"
                                                : "--max-seconds";
  std::printf(
      "forktail serve: %s -> clean drain (%llu samples ingested, "
      "%llu batches shed%s)\n",
      why, static_cast<unsigned long long>(server.samples_ingested()),
      static_cast<unsigned long long>(server.batches_shed()),
      server.any_degraded() ? ", served degraded predictions" : "");

  const std::string metrics_out = flags.get_string("metrics-out");
  if (!metrics_out.empty()) {
    obs::RunReport::capture(obs::Registry::global(), "forktail serve",
                            spec.name, server.any_degraded())
        .write(metrics_out);
    std::printf("wrote %s (final run report)\n", metrics_out.c_str());
  }
  return 0;
}

int cmd_bench(int argc, const char* const* argv) {
  // The batched replay throughput benchmark (bench/replay_bench.hpp),
  // exposed on the CLI so the tracked BENCH_replay.json baseline can be
  // refreshed without hunting for the bench binary.
  util::CliFlags flags;
  flags.declare("reps", "5", "timed repetitions per (workload, path)");
  flags.declare("out", "BENCH_replay.json",
                "output JSON path (empty disables the file)");
  flags.declare("metrics-out", "BENCH_replay.metrics.json",
                "run-telemetry report path (.prom for Prometheus text; "
                "empty disables)");
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, flags, options)) return 0;

  bench::ReplayBenchOptions replay;
  replay.scale = options.scale;
  replay.scale_name = flags.get_string("scale");
  replay.seed = options.seed;
  replay.csv = options.csv;
  const auto reps = flags.get_int("reps");
  if (reps < 1) throw std::invalid_argument("--reps must be >= 1");
  replay.reps = static_cast<std::size_t>(reps);
  replay.threads = options.threads == 0 ? 1 : options.threads;
  replay.out = flags.get_string("out");
  replay.metrics_out = flags.get_string("metrics-out");

  bench::print_banner("bench",
                      "Batched replay engine: throughput vs the scalar "
                      "reference path",
                      options);
  return bench::run_replay_bench(replay);
}

void usage() {
  std::fputs(
      "usage: forktail <command> [flags]\n"
      "commands:\n"
      "  predict   homogeneous (--mean/--variance/--k) or per-node CSV\n"
      "            (--nodes) tail prediction\n"
      "  mixture   random fan-out K ~ U[k-lo, k-hi]\n"
      "  pipeline  multi-stage workflow (--stage name:mean:var:k, repeat)\n"
      "  budget    SLO -> per-task performance budget (Section 6)\n"
      "  samples   measurement window size for a precision target\n"
      "  sweep     simulation-backed error sweep over a (dist, N, load)\n"
      "            grid; --threads parallelizes cells deterministically\n"
      "  run       execute a declarative scenario JSON (examples/*.json):\n"
      "            simulate, measure percentiles, evaluate --predict models\n"
      "  bench     batched replay throughput benchmark; writes the\n"
      "            BENCH_replay.json performance baseline\n"
      "  serve     always-on prediction daemon for a scenario: UDP sample\n"
      "            ingest (forktail.wire.v1), TCP queries + Prometheus\n"
      "            scrape; clean drain on SIGTERM with a final RunReport\n"
      "run `forktail <command> --help` for the command's flags\n",
      stderr);
}

}  // namespace

// Exit codes (pinned by tests/cli/run_cli_errors.cmake):
//   0  success
//   1  usage error    -- bad command line (missing command, unknown command
//                        or predictor, malformed flag values)
//   2  config error   -- unreadable / malformed / invalid scenario or JSON
//                        input (fjsim::ConfigError, util::JsonParseError)
//   3  runtime error  -- everything else (I/O failures, simulation errors)
// Every failure path prints exactly one diagnostic line to stderr.
int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "predict") return cmd_predict(argc - 1, argv + 1);
    if (command == "mixture") return cmd_mixture(argc - 1, argv + 1);
    if (command == "pipeline") return cmd_pipeline(argc - 1, argv + 1);
    if (command == "budget") return cmd_budget(argc - 1, argv + 1);
    if (command == "samples") return cmd_samples(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "run") return cmd_run(argc - 1, argv + 1);
    if (command == "bench") return cmd_bench(argc - 1, argv + 1);
    if (command == "serve") return cmd_serve(argc - 1, argv + 1);
    std::fprintf(stderr, "forktail: unknown command: %s\n", command.c_str());
    return 1;
  } catch (const fjsim::ConfigError& e) {
    std::fprintf(stderr, "forktail: config error: %s\n", e.what());
    return 2;
  } catch (const util::JsonParseError& e) {
    std::fprintf(stderr, "forktail: config error: %s\n", e.what());
    return 2;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "forktail: usage error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "forktail: runtime error: %s\n", e.what());
    return 3;
  }
}
