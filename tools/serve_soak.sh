#!/usr/bin/env bash
# Soak harness for the serve daemon (docs/serve.md).  Run it against an
# ASan+UBSan build in CI, or a plain build locally:
#
#   tools/serve_soak.sh [BUILD_DIR] [CLEAN_SECONDS] [FAULT_SECONDS]
#
# Three phases against one long-running daemon:
#
#   clean  -- a well-formed 1000-agent load; nothing may be rejected and
#             predictions must be served.
#   fault  -- a malformed-heavy load that is then kill -9'd mid-run; every
#             typed rejection counter must move, and after the massacre the
#             daemon must still answer queries (degraded, with stated
#             reasons) and expose the damage in its Prometheus scrape.
#   drain  -- SIGTERM; the daemon must exit 0 and leave a final RunReport.
#
# Any assertion failure exits nonzero with a FAIL line naming the phase.
set -euo pipefail

BUILD_DIR=${1:-build}
CLEAN_SECONDS=${2:-5}
FAULT_SECONDS=${3:-5}

CLI="$BUILD_DIR/tools/forktail"
LOADGEN="$BUILD_DIR/tools/forktail_serve_loadgen"
WORK=$(mktemp -d)
DAEMON_PID=""

fail() {
  echo "FAIL [$1] $2" >&2
  exit 1
}

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

[[ -x "$CLI" ]] || fail setup "$CLI not built"
[[ -x "$LOADGEN" ]] || fail setup "$LOADGEN not built"

# ---------------------------------------------------------------- start-up
# --drain-throttle-us slows the shard workers a little so the unthrottled
# fault-phase load overflows the rings: overload shedding becomes a
# deterministic part of the soak instead of a machine-speed lottery.
"$CLI" serve examples/serve_soak.json \
  --port-file "$WORK/ports.txt" \
  --metrics-out "$WORK/final_report.json" \
  --drain-throttle-us 20 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$WORK/ports.txt" ]] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail setup "daemon died before binding"
  sleep 0.1
done
[[ -s "$WORK/ports.txt" ]] || fail setup "daemon never wrote its port file"
read -r UDP_PORT TCP_PORT < "$WORK/ports.txt"
echo "soak: daemon pid $DAEMON_PID, udp $UDP_PORT, tcp $TCP_PORT"

scrape() {
  python3 - "$TCP_PORT" <<'EOF'
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=5)
s.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
data = b""
while chunk := s.recv(65536):
    data += chunk
sys.stdout.write(data.decode())
EOF
}

# ------------------------------------------------------------- clean phase
echo "soak: clean phase (${CLEAN_SECONDS}s)"
"$LOADGEN" --udp-port "$UDP_PORT" --tcp-port "$TCP_PORT" \
  --agents 1000 --batch 64 --seconds "$CLEAN_SECONDS" \
  --scale asan-soak --out "$WORK/clean.json"

grep -q '"served": true' "$WORK/clean.json" \
  || fail clean "predictions were not served under well-formed load"
grep -q '"rejected_total": 0' "$WORK/clean.json" \
  || fail clean "well-formed load moved a rejection counter"
python3 tools/perf_gate.py "$WORK/clean.json" "$WORK/clean.json" >/dev/null \
  || fail clean "clean-phase report fails its own structural gate"

# ------------------------------------------------------------- fault phase
echo "soak: fault phase (${FAULT_SECONDS}s, then kill -9)"
"$LOADGEN" --udp-port "$UDP_PORT" --tcp-port "$TCP_PORT" \
  --agents 1000 --batch 64 --seconds 600 --malformed-fraction 0.25 \
  --scale asan-soak --out "$WORK/fault.json" &
LOADGEN_PID=$!
sleep "$FAULT_SECONDS"
kill -9 "$LOADGEN_PID" 2>/dev/null || true
wait "$LOADGEN_PID" 2>/dev/null || true

kill -0 "$DAEMON_PID" 2>/dev/null \
  || fail fault "daemon died under malformed load"

# The whole fleet just vanished; once the liveness timeout passes the
# daemon must still answer -- degraded, with stated reasons.
sleep 6
PROBE=$("$LOADGEN" --probe --tcp-port "$TCP_PORT") \
  || fail fault "daemon stopped answering queries after kill -9"
echo "probe: $PROBE"
echo "$PROBE" | grep -Eq '"degraded": ?true' \
  || fail fault "post-massacre prediction is not marked degraded"
echo "$PROBE" | grep -Eq '"(stale_agents|recent_shed|underfilled_windows)"' \
  || fail fault "degraded prediction states no reason"

SCRAPE=$(scrape)
for metric in forktail_serve_wire_rejected_truncated \
              forktail_serve_wire_rejected_bad_magic \
              forktail_serve_wire_rejected_checksum \
              forktail_serve_wire_rejected_bad_sample \
              forktail_serve_wire_rejected_unknown_node \
              forktail_serve_wire_rejected_unknown_service \
              forktail_serve_wire_rejected_stale_timestamp; do
  echo "$SCRAPE" | grep -E "^$metric [1-9]" >/dev/null \
    || fail fault "scrape shows no rejections under $metric"
done
echo "$SCRAPE" | grep -E '^forktail_serve_shed [1-9]' >/dev/null \
  || fail fault "throttled load produced no overload shedding"
echo "$SCRAPE" | grep -E '^forktail_serve_agents_stale [1-9]' >/dev/null \
  || fail fault "killed agents were never marked stale"

# -------------------------------------------------------------- drain phase
echo "soak: drain phase (SIGTERM)"
kill -TERM "$DAEMON_PID"
for _ in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
  fail drain "daemon ignored SIGTERM"
fi
wait "$DAEMON_PID" || fail drain "daemon exited nonzero on SIGTERM"
DAEMON_PID=""

[[ -s "$WORK/final_report.json" ]] \
  || fail drain "no final RunReport was written"
grep -q 'forktail.run_report.v1' "$WORK/final_report.json" \
  || fail drain "final report is not a versioned RunReport"
grep -q '"serve.samples"' "$WORK/final_report.json" \
  || fail drain "final report carries no serve counters"

echo "soak: OK (clean + fault + drain phases all held)"
