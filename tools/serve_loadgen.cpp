// serve_loadgen: UDP load generator + query probe for the serve daemon.
//
// Three jobs, one binary:
//
//   1. Load: simulate a fleet of agents (>= 1000) blasting forktail.wire.v1
//      datagrams at the daemon's UDP ingest port over loopback, each agent
//      on its own monotone clock, samples drawn from an exponential
//      service.  A --malformed-fraction knob corrupts that fraction of
//      datagrams, cycling through every rejection reason the wire and
//      ingest layers know, so the daemon's typed-rejection counters can be
//      exercised (and gated) from outside the process.
//   2. Measure: a query client polls the TCP predict op during the run and
//      collects the served staleness_ms distribution; at the end it pulls
//      the daemon's RunReport (report op) and folds the serve.* counters
//      into a BENCH_serve.json document for tools/perf_gate.py.
//   3. Probe (--probe): one predict query, response JSON on stdout.  The
//      soak harness uses this to assert the daemon still serves -- with
//      stated degradation reasons -- after its agents were kill -9'd.
//
// With --spawn the daemon runs in-process on ephemeral ports (still over
// real loopback sockets), so one command produces a self-contained
// benchmark run; with --udp-port/--tcp-port it targets an external
// `forktail serve` daemon.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using forktail::serve::WireBatch;
using forktail::util::Json;

struct Options {
  std::uint16_t udp_port = 0;
  std::uint16_t tcp_port = 0;
  bool spawn = false;        ///< run the daemon in-process (ephemeral ports)
  std::size_t agents = 1000;
  std::size_t batch = 64;    ///< samples per datagram (<= wire cap)
  double seconds = 2.0;
  std::size_t threads = 1;   ///< sender threads
  double malformed_fraction = 0.0;
  double query_interval_ms = 50.0;
  double p = 99.0;
  std::uint16_t service = 0;
  std::uint64_t seed = 1;
  std::string scale = "smoke";
  std::string out;
  bool probe = false;
};

[[noreturn]] void usage_error(const std::string& why) {
  std::cerr << "serve_loadgen: " << why << "\n"
            << "usage: forktail_serve_loadgen (--spawn | --udp-port P --tcp-port P)\n"
            << "         [--agents N] [--batch M] [--seconds S] [--threads T]\n"
            << "         [--malformed-fraction F] [--query-interval-ms MS]\n"
            << "         [--p P] [--service ID] [--seed S] [--scale NAME]\n"
            << "         [--out BENCH_serve.json]\n"
            << "       forktail_serve_loadgen --probe --tcp-port P [--p P]\n";
  std::exit(1);
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    usage_error("bad value for " + flag + ": " + value);
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    usage_error("bad value for " + flag + ": " + value);
  }
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--udp-port") {
      opt.udp_port = static_cast<std::uint16_t>(parse_u64(arg, value()));
    } else if (arg == "--tcp-port") {
      opt.tcp_port = static_cast<std::uint16_t>(parse_u64(arg, value()));
    } else if (arg == "--spawn") {
      opt.spawn = true;
    } else if (arg == "--agents") {
      opt.agents = parse_u64(arg, value());
    } else if (arg == "--batch") {
      opt.batch = parse_u64(arg, value());
    } else if (arg == "--seconds") {
      opt.seconds = parse_double(arg, value());
    } else if (arg == "--threads") {
      opt.threads = parse_u64(arg, value());
    } else if (arg == "--malformed-fraction") {
      opt.malformed_fraction = parse_double(arg, value());
    } else if (arg == "--query-interval-ms") {
      opt.query_interval_ms = parse_double(arg, value());
    } else if (arg == "--p") {
      opt.p = parse_double(arg, value());
    } else if (arg == "--service") {
      opt.service = static_cast<std::uint16_t>(parse_u64(arg, value()));
    } else if (arg == "--seed") {
      opt.seed = parse_u64(arg, value());
    } else if (arg == "--scale") {
      opt.scale = value();
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--probe") {
      opt.probe = true;
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  if (opt.probe) {
    if (opt.tcp_port == 0 && !opt.spawn) usage_error("--probe needs --tcp-port");
    return opt;
  }
  if (!opt.spawn && (opt.udp_port == 0 || opt.tcp_port == 0)) {
    usage_error("need --spawn or both --udp-port and --tcp-port");
  }
  if (opt.agents == 0) usage_error("--agents must be >= 1");
  if (opt.batch == 0 || opt.batch > forktail::serve::kMaxSamplesPerDatagram) {
    usage_error("--batch must be in [1, 256]");
  }
  if (opt.threads == 0) usage_error("--threads must be >= 1");
  if (opt.seconds <= 0.0) usage_error("--seconds must be > 0");
  if (opt.malformed_fraction < 0.0 || opt.malformed_fraction > 1.0) {
    usage_error("--malformed-fraction must be in [0, 1]");
  }
  return opt;
}

// ------------------------------------------------------------- TCP client

/// Minimal blocking client for the daemon's length-prefixed JSON protocol.
/// All syscalls retry on EINTR; send/recv handle partial transfers.
class QueryClient {
 public:
  ~QueryClient() { close_fd(); }

  bool connect_to(std::uint16_t port) {
    close_fd();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int rc;
    do {
      rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      close_fd();
      return false;
    }
    return true;
  }

  bool connected() const { return fd_ >= 0; }

  /// One request/response round trip; empty string on transport failure
  /// (the connection is dropped so the next call reconnects).
  std::string call(std::uint16_t port, const std::string& body) {
    if (fd_ < 0 && !connect_to(port)) return {};
    if (!send_frame(body)) {
      close_fd();
      return {};
    }
    std::string reply;
    if (!recv_frame(reply)) {
      close_fd();
      return {};
    }
    return reply;
  }

 private:
  void close_fd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool send_all(const std::uint8_t* data, std::size_t len) {
    std::size_t sent = 0;
    while (sent < len) {
      const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recv_exact(std::uint8_t* data, std::size_t len) {
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::recv(fd_, data + got, len - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // peer closed mid-frame
      got += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool send_frame(const std::string& body) {
    std::uint8_t header[4];
    const std::uint32_t len = static_cast<std::uint32_t>(body.size());
    header[0] = static_cast<std::uint8_t>(len >> 24);
    header[1] = static_cast<std::uint8_t>(len >> 16);
    header[2] = static_cast<std::uint8_t>(len >> 8);
    header[3] = static_cast<std::uint8_t>(len);
    return send_all(header, 4) &&
           send_all(reinterpret_cast<const std::uint8_t*>(body.data()),
                    body.size());
  }

  bool recv_frame(std::string& body) {
    std::uint8_t header[4];
    if (!recv_exact(header, 4)) return false;
    const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                              (static_cast<std::uint32_t>(header[1]) << 16) |
                              (static_cast<std::uint32_t>(header[2]) << 8) |
                              static_cast<std::uint32_t>(header[3]);
    if (len > (1u << 20)) return false;  // daemon frames are small
    body.resize(len);
    return len == 0 ||
           recv_exact(reinterpret_cast<std::uint8_t*>(body.data()), len);
  }

  int fd_ = -1;
};

// ------------------------------------------------------------ UDP senders

/// Kinds of deliberate corruption, cycled through in order so every typed
/// rejection counter moves whenever malformed_fraction > 0.  The first six
/// are wire-layer rejections; the last three are ingest-layer ones
/// (unknown node / unknown service / stale timestamp).
enum class Corruption : std::uint8_t {
  kTruncate,
  kBadMagic,
  kBadVersion,
  kBadCount,
  kChecksum,
  kNanSample,
  kUnknownNode,
  kUnknownService,
  kStaleTimestamp,
};
constexpr std::size_t kCorruptionKinds = 9;

struct SenderStats {
  std::uint64_t datagrams = 0;       ///< well-formed datagrams sent
  std::uint64_t samples = 0;         ///< samples inside well-formed datagrams
  std::uint64_t malformed = 0;       ///< corrupted datagrams sent
  std::uint64_t send_errors = 0;     ///< sendto() failures (not EINTR)
};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Re-checksum a mutated datagram so only the intended field is wrong.
void refresh_checksum(std::vector<std::uint8_t>& dgram) {
  const std::size_t body = dgram.size() - forktail::serve::kWireChecksumBytes;
  const std::uint32_t sum = forktail::serve::wire_checksum(dgram.data(), body);
  std::memcpy(dgram.data() + body, &sum, sizeof(sum));
}

void corrupt(std::vector<std::uint8_t>& dgram, Corruption kind,
             std::size_t fleet_nodes, std::uint16_t service) {
  switch (kind) {
    case Corruption::kTruncate:
      dgram.resize(dgram.size() - 7);
      break;
    case Corruption::kBadMagic:
      dgram[0] ^= 0xFF;
      refresh_checksum(dgram);
      break;
    case Corruption::kBadVersion:
      dgram[4] = 0x7F;
      refresh_checksum(dgram);
      break;
    case Corruption::kBadCount: {
      dgram[20] = 0;
      dgram[21] = 0;
      refresh_checksum(dgram);
      break;
    }
    case Corruption::kChecksum:
      dgram.back() ^= 0xFF;
      break;
    case Corruption::kNanSample: {
      const double nan = std::nan("");
      std::memcpy(dgram.data() + forktail::serve::kWireHeaderBytes, &nan,
                  sizeof(nan));
      refresh_checksum(dgram);
      break;
    }
    case Corruption::kUnknownNode: {
      const std::uint32_t node = static_cast<std::uint32_t>(fleet_nodes) + 7;
      std::memcpy(dgram.data() + 8, &node, sizeof(node));
      refresh_checksum(dgram);
      break;
    }
    case Corruption::kUnknownService: {
      const std::uint16_t bad = static_cast<std::uint16_t>(service + 1);
      std::memcpy(dgram.data() + 6, &bad, sizeof(bad));
      refresh_checksum(dgram);
      break;
    }
    case Corruption::kStaleTimestamp: {
      const std::uint64_t ancient = 1;
      std::memcpy(dgram.data() + 12, &ancient, sizeof(ancient));
      refresh_checksum(dgram);
      break;
    }
  }
}

void sender_loop(const Options& opt, std::uint16_t udp_port,
                 std::size_t thread_index, std::atomic<bool>& stop,
                 SenderStats& stats) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    stats.send_errors += 1;
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(udp_port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  forktail::util::Rng rng =
      forktail::util::Rng(opt.seed).split(thread_index + 1);
  // This thread owns a contiguous agent range; round-robin inside it so
  // every agent's window keeps filling and its liveness stays fresh.
  const std::size_t per = (opt.agents + opt.threads - 1) / opt.threads;
  const std::size_t lo = thread_index * per;
  const std::size_t hi = std::min(opt.agents, lo + per);
  if (lo >= hi) {
    ::close(fd);
    return;
  }

  WireBatch batch;
  batch.service = opt.service;
  batch.count = static_cast<std::uint16_t>(opt.batch);
  std::vector<std::uint8_t> dgram;
  std::size_t agent = lo;
  std::uint64_t corruption_cycle = thread_index;  // desynchronise threads

  while (!stop.load(std::memory_order_acquire)) {
    batch.node = static_cast<std::uint32_t>(agent);
    if (++agent >= hi) agent = lo;
    batch.timestamp_ns = steady_now_ns();
    for (std::size_t i = 0; i < opt.batch; ++i) {
      batch.samples[i] = 5.0 * -std::log(rng.uniform_pos());
    }
    dgram = forktail::serve::encode(batch);

    const bool mangle = opt.malformed_fraction > 0.0 &&
                        rng.uniform() < opt.malformed_fraction;
    if (mangle) {
      corrupt(dgram,
              static_cast<Corruption>(corruption_cycle++ % kCorruptionKinds),
              opt.agents, opt.service);
    }

    ssize_t n;
    do {
      n = ::sendto(fd, dgram.data(), dgram.size(), 0,
                   reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      stats.send_errors += 1;
      // Loopback send failures are transient (ENOBUFS under pressure);
      // back off a moment instead of spinning on the error.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    if (mangle) {
      stats.malformed += 1;
    } else {
      stats.datagrams += 1;
      stats.samples += opt.batch;
    }
  }
  ::close(fd);
}

// -------------------------------------------------------------- reporting

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double counter_of(const Json& report, const std::string& name) {
  if (!report.is_object() || !report.contains("counters")) return 0.0;
  const Json& counters = report.at("counters");
  if (!counters.contains(name)) return 0.0;
  return counters.at(name).as_number();
}

double gauge_of(const Json& report, const std::string& name) {
  if (!report.is_object() || !report.contains("gauges")) return 0.0;
  const Json& gauges = report.at("gauges");
  if (!gauges.contains(name)) return 0.0;
  return gauges.at(name).as_number();
}

int run_probe(const Options& opt, std::uint16_t tcp_port) {
  QueryClient client;
  Json request = Json::object();
  request.set("op", "predict");
  request.set("p", opt.p);
  const std::string reply = client.call(tcp_port, request.dump(0));
  if (reply.empty()) {
    std::cerr << "serve_loadgen: probe: no response from port " << tcp_port
              << "\n";
    return 3;
  }
  std::cout << reply << "\n";
  return 0;
}

int run_load(const Options& opt) {
  // Optionally host the daemon in-process: same socket path, one command.
  std::unique_ptr<forktail::serve::Server> local;
  std::uint16_t udp_port = opt.udp_port;
  std::uint16_t tcp_port = opt.tcp_port;
  if (opt.spawn) {
    forktail::serve::ServeConfig config;
    config.nodes = opt.agents;
    config.service = opt.service;
    config.shards = 2;
    config.min_samples = 8;
    config.scenario_name = "serve-loadgen";
    local = std::make_unique<forktail::serve::Server>(config);
    local->start();
    udp_port = local->udp_port();
    tcp_port = local->tcp_port();
  }

  if (opt.probe) return run_probe(opt, tcp_port);

  std::atomic<bool> stop{false};
  std::vector<SenderStats> stats(opt.threads);
  std::vector<std::thread> senders;
  senders.reserve(opt.threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < opt.threads; ++t) {
    senders.emplace_back(sender_loop, std::cref(opt), udp_port, t,
                         std::ref(stop), std::ref(stats[t]));
  }

  // Query plane: poll predict while the load runs, collecting the served
  // staleness distribution the acceptance criteria gate on.
  QueryClient client;
  std::vector<double> staleness_ms;
  std::uint64_t queries = 0;
  std::uint64_t queries_degraded = 0;
  bool last_served = false;
  Json predict_request = Json::object();
  predict_request.set("op", "predict");
  predict_request.set("p", opt.p);
  const std::string predict_body = predict_request.dump(0);

  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(opt.seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(opt.query_interval_ms));
    const std::string reply = client.call(tcp_port, predict_body);
    if (reply.empty()) continue;
    try {
      const Json doc = Json::parse(reply);
      queries += 1;
      if (doc.contains("served") && doc.at("served").as_bool()) {
        last_served = true;
        staleness_ms.push_back(doc.at("staleness_ms").as_number());
      }
      if (doc.contains("degraded") && doc.at("degraded").as_bool()) {
        queries_degraded += 1;
      }
    } catch (const std::exception&) {
      // A torn reply counts as no reply; the client reconnects.
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& thread : senders) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Let the daemon drain its rings before reading the final counters so
  // the ingest accounting reflects everything we sent.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Json request = Json::object();
  request.set("op", "report");
  Json report;
  const std::string reply = client.call(tcp_port, request.dump(0));
  if (!reply.empty()) {
    try {
      report = Json::parse(reply);
    } catch (const std::exception&) {
      report = Json();
    }
  }

  SenderStats total;
  for (const auto& s : stats) {
    total.datagrams += s.datagrams;
    total.samples += s.samples;
    total.malformed += s.malformed;
    total.send_errors += s.send_errors;
  }

  static const char* kReasons[] = {"truncated",      "bad_magic",
                                   "bad_version",    "bad_count",
                                   "checksum",       "bad_sample",
                                   "unknown_node",   "unknown_service",
                                   "stale_timestamp"};
  Json rejected = Json::object();
  double rejected_total = 0.0;
  for (const char* reason : kReasons) {
    const double n =
        counter_of(report, std::string("serve.wire.rejected.") + reason);
    rejected.set(reason, n);
    rejected_total += n;
  }

  const double ingested = counter_of(report, "serve.samples");
  const double shed = counter_of(report, "serve.shed");

  Json staleness = Json::object();
  staleness.set("count", static_cast<std::uint64_t>(staleness_ms.size()));
  staleness.set("p50", percentile(staleness_ms, 50.0));
  staleness.set("p99", percentile(staleness_ms, 99.0));
  staleness.set("max",
                staleness_ms.empty()
                    ? 0.0
                    : *std::max_element(staleness_ms.begin(),
                                        staleness_ms.end()));

  Json doc = Json::object();
  doc.set("benchmark", "bench_serve");
  doc.set("scale", opt.scale);
  doc.set("agents", static_cast<std::uint64_t>(opt.agents));
  doc.set("batch", static_cast<std::uint64_t>(opt.batch));
  doc.set("threads", static_cast<std::uint64_t>(opt.threads));
  doc.set("seconds", opt.seconds);
  doc.set("malformed_fraction", opt.malformed_fraction);
  doc.set("seed", opt.seed);
  doc.set("sent_datagrams", total.datagrams);
  doc.set("sent_samples", total.samples);
  doc.set("malformed_sent", total.malformed);
  doc.set("send_errors", total.send_errors);
  doc.set("elapsed_s", elapsed);
  doc.set("send_rate_per_s",
          elapsed > 0.0 ? static_cast<double>(total.samples) / elapsed : 0.0);
  doc.set("ingested_samples", ingested);
  doc.set("ingest_rate_per_s", elapsed > 0.0 ? ingested / elapsed : 0.0);
  doc.set("shed_batches", shed);
  doc.set("rejected", rejected);
  doc.set("rejected_total", rejected_total);
  doc.set("staleness_ms", staleness);
  doc.set("queries", queries);
  doc.set("queries_degraded", queries_degraded);
  doc.set("served", last_served);
  doc.set("rss_kib", gauge_of(report, "serve.rss_kib"));
  doc.set("peak_rss_kib", gauge_of(report, "serve.peak_rss_kib"));

  if (local) local->stop();

  std::cout << "serve_loadgen: " << total.datagrams << " datagrams ("
            << total.samples << " samples, " << total.malformed
            << " malformed) in " << elapsed << " s -> "
            << (elapsed > 0.0 ? static_cast<double>(total.samples) / elapsed
                              : 0.0)
            << " samples/s sent, " << ingested << " ingested, " << shed
            << " batches shed\n";
  std::cout << "serve_loadgen: " << queries << " queries, staleness p99 "
            << percentile(staleness_ms, 99.0) << " ms\n";

  if (!opt.out.empty()) {
    std::ofstream out(opt.out);
    if (!out) {
      std::cerr << "serve_loadgen: cannot write " << opt.out << "\n";
      return 3;
    }
    out << doc.dump(2) << "\n";
    std::cout << "serve_loadgen: wrote " << opt.out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  try {
    return run_load(opt);
  } catch (const std::exception& error) {
    std::cerr << "serve_loadgen: " << error.what() << "\n";
    return 3;
  }
}
