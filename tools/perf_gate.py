#!/usr/bin/env python3
"""Performance-regression gate over the tracked benchmark reports.

Understands five report schemas, detected from the "benchmark" field:

* BENCH_replay.json  ("bench_replay")  -- batched-vs-scalar replay paths.
* BENCH_cluster.json ("bench_cluster") -- calendar-queue engine vs the
  frozen binary-heap baseline (baseline/candidate paths per workload).
* BENCH_bounds.json  ("bench_bounds")  -- certified (n, k) brackets vs
  perfect-sampling ground truth.  Structural gate: every row must be
  certified with lower <= upper, the measured CI must overlap the bracket,
  and ForkTail's prediction must sit inside it (100% containment on both
  counts).  Same-scale runs additionally gate relative bracket width
  (wider brackets = weaker certificates = a regression).
* BENCH_heavy.json   ("bench_heavy")   -- plain ForkTail vs the EVT
  predictor on regularly-varying services.  Structural gate
  (envelope-recovery): at least one row must be out of the accuracy
  envelope for plain ForkTail, the EVT error must be strictly below the
  plain error on EVERY out-of-envelope row, and at least one such row must
  be pulled back inside the envelope.  Same-scale runs additionally gate
  per-row EVT error growth.
* BENCH_serve.json   ("bench_serve")   -- the serve daemon under UDP load
  (tools/serve_loadgen.cpp).  Structural gate: load was actually sent and
  ingested, predictions were served with a finite staleness distribution,
  a nonzero malformed fraction moved the typed rejection counters, and
  the daemon reported a bounded RSS.  Same-scale runs additionally gate
  ingest throughput and peak RSS.

Compares a candidate report against the tracked baseline and fails
(exit 1) when any (workload, path) throughput regresses by more than the
allowed fraction, or when peak RSS grows by more than --max-rss-growth.
Structural invariants -- the determinism flags the benchmarks assert at
runtime -- are enforced unconditionally on the candidate, so a run that
silently lost bit-identity fails the gate even if it got faster.  For
bench_cluster that includes the acceptance row's speedup bar (>= 3x over
the heap engine) whenever the candidate was produced at full scale.

Throughput and RSS comparisons are only meaningful between runs of the
same shape: if the baseline and candidate differ in scale or SIMD dispatch
level (CI runners rarely match the machine that produced the tracked
baseline), the relative checks are SKIPPED with a note and only the
structural checks apply.

Usage:
  python3 tools/perf_gate.py BASELINE.json CANDIDATE.json \
      [--max-regression 0.10] [--max-rss-growth 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys

REPLAY_PATHS = ("scalar", "batched", "vector", "vector_t2")
CLUSTER_PATHS = ("baseline", "candidate")
CLUSTER_ACCEPTANCE_SPEEDUP = 3.0


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def schema_of(doc: dict, label: str) -> str:
    name = doc.get("benchmark")
    if name not in ("bench_replay", "bench_cluster", "bench_bounds",
                    "bench_heavy", "bench_serve"):
        raise SystemExit(f"FAIL {label}: unknown benchmark schema {name!r}")
    return name


def rate_field(schema: str) -> str:
    return "tasks_per_sec_p50" if schema == "bench_replay" else "events_per_sec_p50"


def paths_for(schema: str) -> tuple[str, ...]:
    return REPLAY_PATHS if schema == "bench_replay" else CLUSTER_PATHS


def replay_structural_errors(doc: dict, label: str) -> list[str]:
    errors = []
    for w in doc.get("workloads", []):
        name = w.get("name", "<unnamed>")
        if not w.get("paths_identical", False):
            errors.append(f"{label}: {name}: scalar/batched paths not bit-identical")
        if not w.get("vector_paths_identical", False):
            errors.append(
                f"{label}: {name}: vector threads=1 vs threads=2 not bit-identical")
        rel = w.get("vector_vs_batched_p99_rel")
        if rel is None:
            errors.append(f"{label}: {name}: missing vector_vs_batched_p99_rel")
        elif abs(rel) > 0.15:
            errors.append(
                f"{label}: {name}: vector p99 deviates {rel:+.3f} from batched "
                "(golden-change band is +/-15%)")
        for p in REPLAY_PATHS:
            if p not in w:
                errors.append(f"{label}: {name}: missing path '{p}'")
    return errors


def cluster_structural_errors(doc: dict, label: str) -> list[str]:
    errors = []
    saw_acceptance = False
    for w in doc.get("workloads", []):
        name = w.get("name", "<unnamed>")
        if not w.get("identical", False):
            errors.append(
                f"{label}: {name}: heap and calendar paths not bit-identical")
        for p in CLUSTER_PATHS:
            if p not in w:
                errors.append(f"{label}: {name}: missing path '{p}'")
        if w.get("acceptance", False):
            saw_acceptance = True
            # The >= 3x bar is defined at the acceptance configuration
            # (1000 nodes / 10M requests == --scale full); smaller runs are
            # too short to gate on a ratio.
            if doc.get("scale") == "full":
                speedup = w.get("speedup_p50", 0.0)
                if speedup < CLUSTER_ACCEPTANCE_SPEEDUP:
                    errors.append(
                        f"{label}: {name}: acceptance speedup {speedup:.2f}x is "
                        f"under the {CLUSTER_ACCEPTANCE_SPEEDUP:.0f}x bar")
    if not saw_acceptance:
        errors.append(f"{label}: no acceptance workload in report")
    return errors


def bounds_structural_errors(doc: dict, label: str) -> list[str]:
    errors = []
    rows = doc.get("rows", [])
    if not rows:
        errors.append(f"{label}: no rows in report")
    for r in rows:
        name = r.get("name", "<unnamed>")
        if not r.get("certified", False):
            errors.append(f"{label}: {name}: bracket is not certified")
        lower, upper = r.get("lower_ms"), r.get("upper_ms")
        if lower is None or upper is None or not lower <= upper:
            errors.append(
                f"{label}: {name}: degenerate bracket [{lower}, {upper}]")
        if not r.get("contained", False):
            errors.append(
                f"{label}: {name}: measured CI misses the certified bracket "
                "-- the bounds (or the perfect sampler) are wrong")
        if not r.get("forktail_contained", False):
            errors.append(
                f"{label}: {name}: ForkTail prediction "
                f"{r.get('forktail_ms')} outside [{lower}, {upper}]")
    for key in ("containment_rate", "forktail_containment_rate"):
        if doc.get(key) != 1.0:
            errors.append(f"{label}: {key} = {doc.get(key)!r}, want 1.0")
    return errors


def heavy_structural_errors(doc: dict, label: str) -> list[str]:
    errors = []
    rows = doc.get("rows", [])
    if not rows:
        errors.append(f"{label}: no rows in report")
    out_rows = 0
    recovered = 0
    for r in rows:
        name = r.get("name", "<unnamed>")
        ft_err, evt_err = r.get("forktail_err"), r.get("evt_err")
        if ft_err is None or evt_err is None:
            errors.append(f"{label}: {name}: missing forktail_err/evt_err")
            continue
        if r.get("forktail_within", False):
            continue
        out_rows += 1
        if evt_err >= ft_err:
            errors.append(
                f"{label}: {name}: out of envelope but EVT error {evt_err:.3f}"
                f" does not beat plain error {ft_err:.3f}")
        if r.get("evt_within", False):
            recovered += 1
    if rows and out_rows == 0:
        errors.append(
            f"{label}: no out-of-envelope row -- the sweep no longer reaches "
            "the breakdown boundary")
    if rows and out_rows > 0 and recovered == 0:
        errors.append(
            f"{label}: no out-of-envelope row is recovered by the EVT "
            "predictor")
    if rows and not doc.get("envelope_recovered", False):
        errors.append(f"{label}: envelope_recovered flag is not set")
    return errors


def serve_structural_errors(doc: dict, label: str) -> list[str]:
    errors = []
    if doc.get("sent_datagrams", 0) <= 0:
        errors.append(f"{label}: no datagrams were sent")
    if doc.get("ingested_samples", 0) <= 0:
        errors.append(f"{label}: the daemon ingested nothing")
    if doc.get("queries", 0) <= 0:
        errors.append(f"{label}: no predict queries completed")
    if not doc.get("served", False):
        errors.append(f"{label}: the final prediction was not served")
    staleness = doc.get("staleness_ms", {})
    if staleness.get("count", 0) <= 0:
        errors.append(f"{label}: no served staleness samples collected")
    elif staleness.get("p99", -1.0) < 0.0:
        errors.append(f"{label}: staleness p99 is negative")
    if doc.get("malformed_fraction", 0.0) > 0.0:
        if doc.get("malformed_sent", 0) <= 0:
            errors.append(
                f"{label}: malformed fraction set but nothing malformed sent")
        if doc.get("rejected_total", 0) <= 0:
            errors.append(
                f"{label}: malformed datagrams sent but no typed rejection "
                "counter moved")
    if doc.get("peak_rss_kib", 0) <= 0:
        errors.append(f"{label}: daemon RSS was not reported")
    # Loopback delivery accounting: the daemon can never ingest more than
    # was sent (a violation means double-counting somewhere).  Malformed
    # datagrams mostly bounce, but a stale-timestamp one that happens to be
    # a node's first batch legitimately lands, so they count toward the
    # bound too.
    sent = doc.get("sent_samples", 0)
    sent += doc.get("malformed_sent", 0) * doc.get("batch", 0)
    ingested = doc.get("ingested_samples", 0)
    if sent > 0 and ingested > sent:
        errors.append(
            f"{label}: ingested {ingested} > sent {sent} -- counters "
            "double-count")
    return errors


def structural_errors(doc: dict, label: str) -> list[str]:
    schema = schema_of(doc, label)
    if schema == "bench_replay":
        return replay_structural_errors(doc, label)
    if schema == "bench_bounds":
        return bounds_structural_errors(doc, label)
    if schema == "bench_heavy":
        return heavy_structural_errors(doc, label)
    if schema == "bench_serve":
        return serve_structural_errors(doc, label)
    return cluster_structural_errors(doc, label)


def comparable_keys(schema: str) -> tuple[str, ...]:
    # SIMD dispatch only shapes the replay benchmark; the event engines are
    # scalar code.
    if schema == "bench_replay":
        return ("scale", "simd_dispatch")
    return ("scale",)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="allowed fractional throughput drop per (workload, path)")
    ap.add_argument("--max-rss-growth", type=float, default=0.25,
                    help="allowed fractional peak-RSS growth vs the baseline")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    schema = schema_of(cand, "candidate")
    if schema_of(base, "baseline") != schema:
        print(f"FAIL baseline schema {base.get('benchmark')!r} != "
              f"candidate schema {schema!r}")
        return 1

    errors = structural_errors(cand, "candidate")
    if errors:
        for e in errors:
            print(f"FAIL {e}")
        return 1

    comparable = True
    for key in comparable_keys(schema):
        if base.get(key) != cand.get(key):
            print(f"SKIP rate comparison: {key} differs "
                  f"(baseline={base.get(key)!r}, candidate={cand.get(key)!r})")
            comparable = False
    if not comparable:
        print("OK   structural invariants hold; throughput not compared")
        return 0

    failures = []

    if schema == "bench_bounds":
        # Bracket-width regression: at the same scale and seed the bounds
        # are deterministic, so any widening is a real weakening of the
        # certificates, not noise.  The threshold still leaves room for
        # intentional row retuning (which replaces the tracked file).
        base_rows = {r["name"]: r for r in base.get("rows", [])}
        for r in cand.get("rows", []):
            name = r["name"]
            ref = base_rows.get(name)
            if ref is None:
                print(f"NOTE {name}: not in baseline, skipping width")
                continue
            b, c = ref.get("width_rel", 0.0), r.get("width_rel", 0.0)
            if b <= 0:
                continue
            growth = (c - b) / b
            status = "FAIL" if growth > args.max_regression else "ok  "
            print(f"{status} {name:30s} width_rel {b:.4f} -> {c:.4f} "
                  f"({growth:+.1%})")
            if growth > args.max_regression:
                failures.append((name, "width_rel", growth))
        if failures:
            print(f"\n{len(failures)} regression(s) beyond threshold")
            return 1
        print("\nOK   no regressions beyond threshold; "
              "containment 100% on every row")
        return 0

    if schema == "bench_heavy":
        # Per-row EVT accuracy: at the same scale and seed the sweep is
        # deterministic, so error growth beyond a small absolute band means
        # the predictor (or an engine it depends on) changed behaviour.
        band = 0.05
        base_rows = {r["name"]: r for r in base.get("rows", [])}
        for r in cand.get("rows", []):
            name = r["name"]
            ref = base_rows.get(name)
            if ref is None:
                print(f"NOTE {name}: not in baseline, skipping error band")
                continue
            b, c = ref.get("evt_err", 0.0), r.get("evt_err", 0.0)
            growth = c - b
            status = "FAIL" if growth > band else "ok  "
            print(f"{status} {name:30s} evt_err {b:.3f} -> {c:.3f} "
                  f"({growth:+.3f})")
            if growth > band:
                failures.append((name, "evt_err", growth))
        if failures:
            print(f"\n{len(failures)} regression(s) beyond threshold")
            return 1
        print("\nOK   no regressions beyond threshold; envelope recovery "
              "holds on every out-of-envelope row")
        return 0

    if schema == "bench_serve":
        # Ingest throughput and daemon RSS: at the same scale (agents /
        # batch / malformed mix) a rate drop means the ingest plane got
        # slower and RSS growth means a buffer stopped being bounded.
        b_rate = base.get("ingest_rate_per_s", 0.0)
        c_rate = cand.get("ingest_rate_per_s", 0.0)
        if b_rate > 0:
            drop = (b_rate - c_rate) / b_rate
            status = "FAIL" if drop > args.max_regression else "ok  "
            print(f"{status} ingest_rate_per_s {b_rate / 1e6:8.2f} -> "
                  f"{c_rate / 1e6:8.2f} M/s ({-drop:+.1%})")
            if drop > args.max_regression:
                failures.append(("ingest_rate_per_s", "-", drop))
        b_rss = base.get("peak_rss_kib", 0)
        c_rss = cand.get("peak_rss_kib", 0)
        if b_rss > 0 and c_rss > 0:
            growth = (c_rss - b_rss) / b_rss
            status = "FAIL" if growth > args.max_rss_growth else "ok  "
            print(f"{status} peak_rss_kib {b_rss} -> {c_rss} ({growth:+.1%})")
            if growth > args.max_rss_growth:
                failures.append(("peak_rss_kib", "-", growth))
        if failures:
            print(f"\n{len(failures)} regression(s) beyond threshold")
            return 1
        print("\nOK   no regressions beyond threshold; rejection matrix "
              "and staleness structure hold")
        return 0

    # Peak RSS: same scale means same working set by construction, so
    # growth beyond the band is a memory regression (an unbounded buffer or
    # a leaked arena), not noise.
    base_rss = base.get("peak_rss_kib", -1)
    cand_rss = cand.get("peak_rss_kib", -1)
    if base_rss and cand_rss and base_rss > 0 and cand_rss > 0:
        growth = (cand_rss - base_rss) / base_rss
        status = "FAIL" if growth > args.max_rss_growth else "ok  "
        print(f"{status} peak_rss_kib {base_rss} -> {cand_rss} ({growth:+.1%})")
        if growth > args.max_rss_growth:
            failures.append(("peak_rss_kib", "-", growth))

    field = rate_field(schema)
    base_rows = {w["name"]: w for w in base.get("workloads", [])}
    for w in cand.get("workloads", []):
        name = w["name"]
        ref = base_rows.get(name)
        if ref is None:
            print(f"NOTE {name}: not in baseline, skipping rates")
            continue
        for p in paths_for(schema):
            if p not in ref:
                # Baseline predates this path family; nothing to regress from.
                continue
            b = ref[p][field]
            c = w[p][field]
            if b <= 0:
                continue
            drop = (b - c) / b
            status = "FAIL" if drop > args.max_regression else "ok  "
            print(f"{status} {name:28s} {p:10s} "
                  f"{b / 1e6:8.2f} -> {c / 1e6:8.2f} M/s ({-drop:+.1%})")
            if drop > args.max_regression:
                failures.append((name, p, drop))

    if failures:
        print(f"\n{len(failures)} regression(s) beyond threshold")
        return 1
    print("\nOK   no regressions beyond threshold; structural invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
