#!/usr/bin/env python3
"""Performance-regression gate over BENCH_replay.json.

Compares a candidate benchmark report against the tracked baseline and
fails (exit 1) when any (workload, path) throughput regresses by more than
the allowed fraction.  Structural invariants -- the determinism flags the
benchmark asserts at runtime -- are enforced unconditionally on the
candidate, so a run that silently lost bit-identity fails the gate even if
it got faster.

Throughput comparisons are only meaningful between runs of the same shape:
if the baseline and candidate differ in scale or SIMD dispatch level (CI
runners rarely match the machine that produced the tracked baseline), the
relative-rate check is SKIPPED with a note and only the structural checks
apply.

Usage:
  python3 tools/perf_gate.py BASELINE.json CANDIDATE.json [--max-regression 0.10]
"""

from __future__ import annotations

import argparse
import json
import sys

PATHS = ("scalar", "batched", "vector", "vector_t2")


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def structural_errors(doc: dict, label: str) -> list[str]:
    errors = []
    for w in doc.get("workloads", []):
        name = w.get("name", "<unnamed>")
        if not w.get("paths_identical", False):
            errors.append(f"{label}: {name}: scalar/batched paths not bit-identical")
        if not w.get("vector_paths_identical", False):
            errors.append(
                f"{label}: {name}: vector threads=1 vs threads=2 not bit-identical")
        rel = w.get("vector_vs_batched_p99_rel")
        if rel is None:
            errors.append(f"{label}: {name}: missing vector_vs_batched_p99_rel")
        elif abs(rel) > 0.15:
            errors.append(
                f"{label}: {name}: vector p99 deviates {rel:+.3f} from batched "
                "(golden-change band is +/-15%)")
        for p in PATHS:
            if p not in w:
                errors.append(f"{label}: {name}: missing path '{p}'")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="allowed fractional throughput drop per (workload, path)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    errors = structural_errors(cand, "candidate")
    if errors:
        for e in errors:
            print(f"FAIL {e}")
        return 1

    comparable = True
    for key in ("scale", "simd_dispatch"):
        if base.get(key) != cand.get(key):
            print(f"SKIP rate comparison: {key} differs "
                  f"(baseline={base.get(key)!r}, candidate={cand.get(key)!r})")
            comparable = False
    if not comparable:
        print("OK   structural invariants hold; throughput not compared")
        return 0

    base_rows = {w["name"]: w for w in base.get("workloads", [])}
    failures = []
    for w in cand.get("workloads", []):
        name = w["name"]
        ref = base_rows.get(name)
        if ref is None:
            print(f"NOTE {name}: not in baseline, skipping rates")
            continue
        for p in PATHS:
            if p not in ref:
                # Baseline predates this path family; nothing to regress from.
                continue
            b = ref[p]["tasks_per_sec_p50"]
            c = w[p]["tasks_per_sec_p50"]
            if b <= 0:
                continue
            drop = (b - c) / b
            status = "FAIL" if drop > args.max_regression else "ok  "
            print(f"{status} {name:28s} {p:10s} "
                  f"{b / 1e6:8.2f} -> {c / 1e6:8.2f} Mt/s ({-drop:+.1%})")
            if drop > args.max_regression:
                failures.append((name, p, drop))

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.max_regression:.0%} threshold")
        return 1
    print("\nOK   no regressions beyond threshold; structural invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
