// CCDF curve export: the raw series behind the paper's latency plots.
//
// For a set of fork-join systems, prints P(X > x) on a log grid for both
// the simulation and the ForkTail prediction (Eq. 6) -- the full
// distributional comparison, not just one percentile.  Use --csv true and
// feed the output straight into a plotting tool.
#include <cmath>

#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/ecdf.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "CCDF export",
      "Simulated vs predicted request CCDF, N = 100, loads 80/90%",
      options);

  util::Table table({"distribution", "load%", "x_ms", "sim_ccdf",
                     "pred_ccdf"});
  for (const char* name : {"Exponential", "Empirical"}) {
    const dist::DistPtr service = dist::make_named(name);
    for (double load : {0.80, 0.90}) {
      fjsim::HomogeneousConfig cfg;
      cfg.num_nodes = 100;
      cfg.service = service;
      cfg.load = load;
      cfg.num_requests =
          bench::scaled(60000, options.scale * bench::load_boost(load));
      cfg.warmup_fraction = 0.25;
      cfg.seed = options.seed;
      const auto sim = fjsim::run_homogeneous(cfg);
      const stats::Ecdf ecdf(sim.responses);
      const core::ForkTailPredictor predictor(
          core::TaskStats{sim.task_stats.mean(), sim.task_stats.variance()});

      // Log grid from the simulated median to just past the p99.9.
      const double lo = ecdf.quantile(0.5);
      const double hi = ecdf.quantile(0.999) * 1.2;
      const int points = 25;
      for (int i = 0; i <= points; ++i) {
        const double x =
            lo * std::pow(hi / lo, static_cast<double>(i) / points);
        table.row()
            .str(name)
            .num(load * 100.0, 0)
            .num(x, 2)
            .num(1.0 - ecdf.cdf(x), 5)
            .num(1.0 - predictor.cdf(x, 100.0), 5);
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
