// Figure 12: prediction errors of the 99th percentile TARGET-job response
// times in a consolidated workload environment (trace-driven simulation).
//
// 90% of jobs are diverse background work synthesized from the Facebook
// 2010 trace description [13, 15, 43]; 10% are statistically-uniform
// target jobs whose tasks reach all N nodes (left plot) or a random half
// of them (right plot).  Clusters of 100 / 500 / 1000 / 5000 three-server
// nodes, loads 50-90%.  Paper shape: errors within 15% everywhere.
#include <array>

#include "common.hpp"
#include "parallel_runner.hpp"
#include "scenario/registry.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace {

using namespace forktail;

std::uint64_t jobs_for(std::size_t nodes, double scale) {
  // 10% of jobs are targets and the p99 needs enough of them; larger
  // clusters mean more tasks per job, so the job count tapers with N to
  // bound total work.
  std::uint64_t base = 100000;
  if (nodes >= 1000) base = 60000;
  if (nodes >= 5000) base = 30000;
  return bench::scaled(base, scale, 5000);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 12",
      "Consolidated trace-driven workload: target-job 99th percentile errors",
      options);

  const std::array<const char*, 2> modes = {"k=N", "k=N/2"};
  const std::array<std::size_t, 4> node_counts = {100, 500, 1000, 5000};
  const std::array<double, 4> loads = {0.50, 0.75, 0.80, 0.90};

  struct Cell {
    std::uint64_t targets;
    double measured;
    double predicted;
  };
  const bench::ParallelSweepRunner runner(options.threads);
  const auto cells = runner.map<Cell>(
      modes.size() * node_counts.size() * loads.size(), options.seed,
      [&](std::size_t i, util::Rng& rng) -> Cell {
        const double load = loads[i % loads.size()];
        const std::size_t nodes =
            node_counts[(i / loads.size()) % node_counts.size()];
        const bool full =
            std::string(modes[i / (loads.size() * node_counts.size())]) ==
            "k=N";
        const auto target_k =
            static_cast<std::uint32_t>(full ? nodes : nodes / 2);

        // Each cell is one declarative consolidated scenario; the converter
        // builds the Facebook workload (clamped to N) and calibrates the
        // job rate from its estimated mean work, as the hand-wired cell did.
        scenario::ScenarioSpec cell;
        cell.topology = scenario::Topology::kConsolidated;
        cell.nodes = nodes;
        cell.group.replicas = 3;
        cell.group.policy = fjsim::Policy::kRoundRobin;
        cell.workload.target_tasks = target_k;
        cell.workload.target_mean_ms = 50.0;
        cell.load = load;
        cell.requests = jobs_for(nodes, options.scale * bench::load_boost(load));
        cell.warmup_fraction = load >= 0.9 ? 0.3 : 0.2;
        cell.seed = rng.next_u64();
        auto sim = scenario::SimulatorRegistry::global().run(cell);
        const std::uint64_t targets = sim.responses.size();
        const double measured = stats::percentile_inplace(sim.responses, 99.0);
        // Black-box prediction from the target application's own measured
        // task moments (Eq. 13; the target k is fixed per mode).
        const double predicted =
            scenario::PredictorRegistry::global().find("forktail")->predict(
                sim, 99.0);
        return {targets, measured, predicted};
      });

  util::Table table({"target_k", "nodes", "load%", "targets", "sim_p99_ms",
                     "pred_p99_ms", "error%"});
  std::size_t i = 0;
  for (const char* mode : modes) {
    for (std::size_t nodes : node_counts) {
      for (double load : loads) {
        const Cell& cell = cells[i++];
        table.row()
            .str(mode)
            .integer(static_cast<long long>(nodes))
            .num(load * 100.0, 0)
            .integer(static_cast<long long>(cell.targets))
            .num(cell.measured, 2)
            .num(cell.predicted, 2)
            .num(stats::relative_error_pct(cell.predicted, cell.measured), 1);
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
