// Figure 10: prediction errors of the 99th percentile response times for a
// 1000-node cluster when the number of tasks per job is FIXED
// (k = 100 / 500 / 900), tasks dispatched to k randomly selected nodes.
//
// Paper shape: errors within 10% at 90% load and 20% at 80% for all cases;
// the exponential service case accurate (within ~6%) across the whole
// load range.
#include <array>

#include "common.hpp"
#include "parallel_runner.hpp"
#include "scenario/registry.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace {

using namespace forktail;

std::uint64_t samples_for(int k, double load, double scale) {
  std::uint64_t base = 25000;
  if (k >= 500) base = 15000;
  if (k >= 900) base = 12000;
  return bench::scaled(base, scale * bench::load_boost(load));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner("Figure 10",
                      "Fixed k <= N on 1000 nodes: 99th percentile errors",
                      options);

  const std::array<const char*, 3> dists = {"Exponential", "TruncPareto",
                                            "Empirical"};
  const std::array<int, 3> ks = {100, 500, 900};
  const std::array<double, 4> loads = {0.50, 0.75, 0.80, 0.90};

  struct Cell {
    double measured;
    double predicted;
  };
  const bench::ParallelSweepRunner runner(options.threads);
  const auto cells = runner.map<Cell>(
      dists.size() * ks.size() * loads.size(), options.seed,
      [&](std::size_t i, util::Rng& rng) -> Cell {
        const double load = loads[i % loads.size()];
        const int k = ks[(i / loads.size()) % ks.size()];
        const char* name = dists[i / (loads.size() * ks.size())];

        scenario::ScenarioSpec cell;
        cell.topology = scenario::Topology::kSubset;
        cell.nodes = 1000;
        cell.service.dist = name;
        cell.load = load;
        cell.k.mode = scenario::KSpec::Mode::kFixed;
        cell.k.fixed = k;
        cell.requests = samples_for(k, load, options.scale);
        cell.warmup_fraction = load >= 0.9 ? 0.3 : 0.25;
        cell.seed = rng.next_u64();
        auto sim = scenario::SimulatorRegistry::global().run(cell);
        const double measured = stats::percentile_inplace(sim.responses, 99.0);
        // Eq. 13 with the black-box measured task moments.
        const double predicted =
            scenario::PredictorRegistry::global().find("forktail")->predict(
                sim, 99.0);
        return {measured, predicted};
      });

  util::Table table({"distribution", "k", "load%", "sim_p99_ms", "pred_p99_ms",
                     "error%"});
  std::size_t i = 0;
  for (const char* name : dists) {
    for (int k : ks) {
      for (double load : loads) {
        const Cell& cell = cells[i++];
        table.row()
            .str(name)
            .integer(k)
            .num(load * 100.0, 0)
            .num(cell.measured, 2)
            .num(cell.predicted, 2)
            .num(stats::relative_error_pct(cell.predicted, cell.measured), 1);
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
