// Table 2: the predicted 99th percentile of latencies (ms) for requests
// with k in {10, 400, 500, 600, 900} forked tasks, 1000-node cluster at
// 90% load -- pure model output (white-box M/G/1 pipeline, Eq. 13).
//
// The Exponential row is analytic and reproduces the paper's numbers to
// the cent (291.32 / 446.97 / 456.38 / 464.08 / 481.19); the heavy-tailed
// rows depend on the synthesized empirical table and land within a few
// percent of the paper's values.
#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner("Table 2",
                      "Predicted 99th percentile latencies (ms), N = 1000, "
                      "load 90% (model only)",
                      options);

  const int ks[] = {10, 400, 500, 600, 900};
  util::Table table(
      {"distribution", "k=10", "k=400", "k=500", "k=600", "k=900"});
  for (const char* name : {"Exponential", "TruncPareto", "Empirical"}) {
    const dist::DistPtr service = dist::make_named(name);
    const double lambda = 0.9 / service->mean();
    auto row = table.row();
    row.str(name);
    for (int k : ks) {
      row.num(core::whitebox_mg1_quantile(lambda, *service,
                                          static_cast<double>(k), 99.0),
              2);
    }
  }
  bench::emit(table, options);

  if (!options.csv) {
    std::printf(
        "Paper Table 2 for reference:\n"
        "  Exponential : 291.32 446.97 456.38 464.08 481.19\n"
        "  TruncPareto : 448.83 705.45 720.97 733.66 761.87\n"
        "  Empirical   : 391.27 616.22 629.83 640.95 665.68\n");
  }
  return 0;
}
