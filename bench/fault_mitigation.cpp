// Tail-mitigation effectiveness sweep: how much of the fork-join p99 each
// mitigation strategy buys back under fault injection, and how closely the
// degraded-mode predictor tracks the mitigated tail from black-box
// telemetry alone.
//
// Strategies on a homogeneous cluster with slowdown + blip injection:
//   none         -- injection only, full barrier (the damage baseline)
//   hedge-p95    -- one duplicate per task once outstanding past the
//                   service p95
//   retry-3      -- per-attempt timeout with up to 3 backed-off retries
//   early-k      -- return after N-2 of N tasks
//
// Expected shape: hedging and early return cut the injected p99 well below
// the unmitigated run, retries recover crash-free completeness at modest
// tail cost, and the degraded predictor stays within the ~25% acceptance
// band wherever it reports non-degraded telemetry.
#include <array>
#include <cmath>
#include <memory>

#include "common.hpp"
#include "dist/basic.hpp"
#include "fault/predict.hpp"
#include "fault/sim.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace {

using namespace forktail;

struct Strategy {
  const char* name;
  fault::MitigationPolicy policy;
};

std::array<Strategy, 4> strategies(std::size_t nodes) {
  std::array<Strategy, 4> out{};
  out[0].name = "none";
  out[0].policy.early_k = static_cast<int>(nodes);  // explicit full barrier
  out[1].name = "hedge-p95";
  out[1].policy.hedge_quantile = 0.95;
  out[2].name = "retry-3";
  out[2].policy.timeout = 120.0;
  out[2].policy.max_retries = 3;
  out[2].policy.backoff_base = 5.0;
  out[3].name = "early-k";
  out[3].policy.early_k = static_cast<int>(nodes) - 2;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Fault mitigation",
      "p99 under injection: mitigation strategies vs degraded predictor",
      options);

  constexpr std::size_t kNodes = 10;
  const std::array<double, 2> loads = {0.5, 0.8};

  fault::FaultPlan inject;
  inject.inject.slowdown_rate = 0.002;
  inject.inject.slowdown_mean_duration = 100.0;
  inject.inject.slowdown_factor = 3.0;
  inject.inject.blip_rate = 0.002;
  inject.inject.blip_duration = 20.0;

  util::Table table({"strategy", "load%", "sim_p99_ms", "pred_p99_ms",
                     "error%", "degraded", "hedges", "retries", "timeouts",
                     "drops"});
  for (double load : loads) {
    for (const Strategy& strategy : strategies(kNodes)) {
      fjsim::HomogeneousConfig config;
      config.num_nodes = kNodes;
      config.service = std::make_shared<dist::Exponential>(10.0);
      config.load = load;
      config.num_requests =
          bench::scaled(20000, options.scale * bench::load_boost(load));
      config.seed = options.seed;

      fault::FaultPlan plan = inject;
      plan.mitigation = strategy.policy;
      const auto sim = fault::run_mitigated_homogeneous(config, plan);
      const double measured = stats::percentile(sim.responses, 99.0);

      fault::MitigatedStats telemetry;
      telemetry.attempt_mean = sim.attempt_stats.mean();
      telemetry.attempt_variance = sim.attempt_stats.variance();
      telemetry.attempt_count = sim.attempt_stats.count();
      telemetry.hedge_mean = sim.hedge_stats.mean();
      telemetry.hedge_variance = sim.hedge_stats.variance();
      telemetry.hedge_count = sim.hedge_stats.count();
      telemetry.hedge_delay = sim.hedge_delay;
      const auto prediction = fault::predict_mitigated(
          telemetry, plan.mitigation, static_cast<int>(kNodes), 0.99);

      table.row()
          .str(strategy.name)
          .num(load * 100.0, 0)
          .num(measured, 2)
          .num(prediction.value, 2)
          .num(stats::relative_error_pct(prediction.value, measured), 1)
          .str(prediction.degraded ? "yes" : "no")
          .integer(static_cast<long long>(sim.counters.hedges_launched))
          .integer(static_cast<long long>(sim.counters.retries))
          .integer(static_cast<long long>(sim.counters.timeouts))
          .integer(static_cast<long long>(sim.counters.dropped_requests));
    }
  }
  bench::emit(table, options);
  return 0;
}
