// Deterministic parallel execution engine for benchmark sweeps.
//
// Every error sweep in the Figure 4-7 / 10-13 family evaluates a grid of
// mutually independent simulation cells.  This runner enumerates the grid
// up front, dispatches each cell onto a util::ThreadPool, hands every cell
// its own RNG stream split deterministically from the master seed by cell
// index, and collects results into pre-indexed slots.  Because cell seeds
// depend only on (master seed, cell index) and results are written to the
// cell's own slot, the assembled output is BIT-IDENTICAL for every thread
// count and every schedule; `--threads` trades wall-clock only.
//
// Exceptions thrown by a cell (e.g. an unknown distribution name) are
// captured by the pool and rethrown here after the remaining cells finish,
// so a bad configuration fails the benchmark instead of aborting the
// process.
//
// Cells must not touch `util::global_pool()` (a nested `wait_idle` from
// inside a pool task deadlocks); simulators expose `max_parallelism = 1`
// for exactly this purpose.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace forktail::bench {

namespace detail {
// Sweep-grid telemetry: cells evaluated and per-cell wall time.  A cell is
// one full simulation run, so the span is coarse -- it never perturbs the
// replay hot loops.
struct SweepMetrics {
  obs::Counter& cells = obs::Registry::global().counter("sweep.cells");
  obs::Histogram& cell_seconds =
      obs::Registry::global().histogram("sweep.cell_seconds");
  static SweepMetrics& get() {
    static SweepMetrics m;
    return m;
  }
};
}  // namespace detail

class ParallelSweepRunner {
 public:
  /// `num_threads == 0` selects hardware_concurrency(); 1 runs every cell
  /// inline on the calling thread (no pool, no worker threads).
  explicit ParallelSweepRunner(std::size_t num_threads = 0)
      : threads_(num_threads != 0
                     ? num_threads
                     : std::max<std::size_t>(
                           1, std::thread::hardware_concurrency())) {
    if (threads_ > 1) pool_ = std::make_unique<util::ThreadPool>(threads_);
  }

  std::size_t threads() const noexcept { return threads_; }

  /// Seed of grid cell `index` under `master_seed`: a pure function of the
  /// pair, via Rng::split, so the same cell always replays the same stream.
  static std::uint64_t cell_seed(std::uint64_t master_seed,
                                 std::size_t index) noexcept {
    return util::Rng(master_seed).split(index).seed();
  }

  /// Evaluate `fn(index, rng)` for every index in [0, n) and return the
  /// results in index order.  `rng` is the cell's private stream.
  template <typename Result>
  std::vector<Result> map(
      std::size_t n, std::uint64_t master_seed,
      const std::function<Result(std::size_t, util::Rng&)>& fn) const {
    std::vector<Result> results(n);
    for_each(n, [&](std::size_t i) {
      util::Rng rng(cell_seed(master_seed, i));
      const obs::ScopedSpan cell_span(detail::SweepMetrics::get().cell_seconds);
      results[i] = fn(i, rng);
      detail::SweepMetrics::get().cells.add(1);
    });
    return results;
  }

  /// Run `fn(i)` for every i in [0, n) across the pool; blocks until all
  /// cells finish, then rethrows the first cell exception if any.  With one
  /// thread, runs inline (and fails fast on the first exception).
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) const {
    if (!pool_) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      pool_->submit([&fn, i] { fn(i); });
    }
    pool_->wait_idle();
  }

 private:
  std::size_t threads_;
  std::unique_ptr<util::ThreadPool> pool_;  // null => inline execution
};

}  // namespace forktail::bench
