// Ablation: the independence assumption (Eq. 4).
//
// The paper identifies the shared arrival sample paths as "the root cause
// that renders the Fork-Join models extremely difficult to solve" and
// postulates that the error of assuming independent task response times
// vanishes as load grows.  This bench measures both halves directly on the
// two-node system:
//   - the Spearman correlation of sibling task response times vs load
//     (dependence is real and grows with load);
//   - the p99 error of the independence-based prediction vs load
//     (yet the prediction error shrinks -- the paper's postulate).
#include <cmath>

#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace {

using namespace forktail;

// Spearman rank correlation of two equal-length vectors.
double spearman(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = a.size();
  auto rank = [n](std::vector<double>& v) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = rank(a);
  const auto rb = rank(b);
  const double mean = (static_cast<double>(n) - 1.0) / 2.0;
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (ra[i] - mean) * (rb[i] - mean);
    da += (ra[i] - mean) * (ra[i] - mean);
    db += (rb[i] - mean) * (rb[i] - mean);
  }
  return num / std::sqrt(da * db);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Ablation: independence assumption",
      "Sibling-task dependence vs prediction error across load (Empirical "
      "service)",
      options);

  const dist::DistPtr service = dist::make_named("Empirical");
  util::Table table({"load%", "sibling_spearman", "sim_p99_N2_ms",
                     "pred_p99_N2_ms", "err_N2%", "err_N100%"});

  for (double load : {0.30, 0.50, 0.70, 0.80, 0.90, 0.95}) {
    // Two-node sibling correlation via a direct Lindley replay.
    const std::uint64_t n =
        bench::scaled(60000, options.scale * bench::load_boost(load));
    util::Rng master(options.seed);
    util::Rng arr = master.split(0);
    util::Rng s1 = master.split(1);
    util::Rng s2 = master.split(2);
    const double lambda = load / service->mean();
    std::vector<double> r1;
    std::vector<double> r2;
    r1.reserve(n);
    r2.reserve(n);
    double t = 0.0;
    double f1 = 0.0;
    double f2 = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
      t += arr.exponential(1.0 / lambda);
      f1 = std::max(t, f1) + service->sample(s1);
      f2 = std::max(t, f2) + service->sample(s2);
      if (i >= n / 5) {  // drop transient
        r1.push_back(f1 - t);
        r2.push_back(f2 - t);
      }
    }
    const double rho_s = spearman(r1, r2);

    auto run_case = [&](std::size_t nodes) {
      fjsim::HomogeneousConfig cfg;
      cfg.num_nodes = nodes;
      cfg.service = service;
      cfg.load = load;
      cfg.num_requests =
          bench::scaled(nodes >= 100 ? 40000 : 80000,
                        options.scale * bench::load_boost(load));
      cfg.warmup_fraction = 0.25;
      cfg.seed = options.seed;
      auto sim = fjsim::run_homogeneous(cfg);
      const double measured = stats::percentile_inplace(sim.responses, 99.0);
      const double predicted = core::homogeneous_quantile(
          {sim.task_stats.mean(), sim.task_stats.variance()},
          static_cast<double>(nodes), 99.0);
      return std::tuple{measured, predicted,
                        stats::relative_error_pct(predicted, measured)};
    };
    const auto [m2, p2, e2] = run_case(2);
    const auto [m100, p100, e100] = run_case(100);
    (void)m100;
    (void)p100;
    table.row()
        .num(load * 100.0, 0)
        .num(rho_s, 3)
        .num(m2, 2)
        .num(p2, 2)
        .num(e2, 1)
        .num(e100, 1);
  }
  bench::emit(table, options);
  if (!options.csv) {
    std::printf(
        "Sibling dependence GROWS with load, yet the independence-based\n"
        "prediction error SHRINKS: under heavy traffic the per-node response\n"
        "distribution is tail-dominated by queueing noise that decorrelates\n"
        "at the quantile of the max -- the paper's Section 3 postulate.\n");
  }
  return 0;
}
