// Shared error-sweep runner for the Figure 4-7 family: homogeneous k = N
// fork-join systems over (distribution x N x load), comparing a ForkTail
// prediction against the simulated 99th percentile.
//
// Cells are executed by bench::ParallelSweepRunner: enumerated up front,
// dispatched onto a thread pool with a deterministic per-cell RNG stream,
// and emitted in grid order -- the table is byte-identical for every
// `--threads` value.
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/predictor.hpp"
#include "parallel_runner.hpp"
#include "scenario/registry.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "stats/welford.hpp"

namespace forktail::bench {

struct SweepSpec {
  std::vector<std::string> distributions = {"Empirical", "TruncPareto", "Weibull"};
  std::vector<std::size_t> node_counts = {10, 100, 500, 1000};
  std::vector<double> loads = {0.50, 0.75, 0.80, 0.90};
  /// Independent simulation replications per grid cell (distinct RNG
  /// streams).  With replicas > 1 the table reports the across-replica mean
  /// of each quantity plus spread (sample stddev) columns.
  int replicas = 1;
  /// Servers per fork node (1 = the paper's single-server case; 3 with
  /// round-robin or redundant-issue policies for Figs. 6-7).
  int servers_per_node = 1;
  fjsim::Policy policy = fjsim::Policy::kSingle;
  double redundant_delay = 10.0;
  double percentile = 99.0;
};

/// How the prediction is produced from a finished simulation:
/// (service distribution, lambda-per-server-equivalent, measured task
/// stats, k) -> predicted percentile.
using Predictor = std::function<double(
    const dist::Distribution& service, double lambda,
    const core::TaskStats& measured, double k, double percentile)>;

inline std::uint64_t sweep_samples(std::size_t nodes, double load,
                                   double scale) {
  std::uint64_t base = 12000;
  if (nodes <= 10) {
    base = 120000;
  } else if (nodes <= 100) {
    base = 50000;
  } else if (nodes <= 500) {
    base = 20000;
  }
  return scaled(base, scale * load_boost(load));
}

/// Build the error-sweep table.  Grid cells (and their replicas) run in
/// parallel on `options.threads` workers; rows appear in
/// distribution-major, node, load order regardless of schedule.
inline util::Table error_sweep_table(const SweepSpec& spec,
                                     const Predictor& predictor,
                                     const BenchOptions& options) {
  struct CellOutcome {
    double measured = 0.0;
    double predicted = 0.0;
    double error_pct = 0.0;
  };

  const std::size_t replicas =
      spec.replicas > 0 ? static_cast<std::size_t>(spec.replicas) : 1;
  const std::size_t base_cells =
      spec.distributions.size() * spec.node_counts.size() * spec.loads.size();
  const std::size_t total_cells = base_cells * replicas;

  ParallelSweepRunner runner(options.threads);
  const auto outcomes = runner.map<CellOutcome>(
      total_cells, options.seed,
      [&](std::size_t cell, util::Rng& rng) -> CellOutcome {
        const std::size_t base = cell / replicas;
        const std::size_t load_i = base % spec.loads.size();
        const std::size_t node_i =
            (base / spec.loads.size()) % spec.node_counts.size();
        const std::size_t dist_i =
            base / (spec.loads.size() * spec.node_counts.size());

        const std::size_t nodes = spec.node_counts[node_i];
        const double load = spec.loads[load_i];

        // Each cell is one declarative scenario: the registry validates it
        // (a bad distribution name throws here -- the runner surfaces it)
        // and dispatches to the homogeneous engine with exactly the config
        // the hand-wired cell used to assemble.
        scenario::ScenarioSpec scn;
        scn.topology = scenario::Topology::kHomogeneous;
        scn.nodes = nodes;
        scn.group.replicas = spec.servers_per_node;
        scn.group.policy = spec.policy;
        scn.group.redundant_delay = spec.redundant_delay;
        scn.service.dist = spec.distributions[dist_i];
        scn.load = load;
        scn.requests = sweep_samples(nodes, load, options.scale);
        scn.warmup_fraction = load >= 0.9 ? 0.3 : 0.25;
        scn.seed = rng.next_u64();
        scn.max_parallelism = 1;  // cell-level parallelism only
        auto sim = scenario::SimulatorRegistry::global().run(scn);

        CellOutcome out;
        out.measured = stats::percentile_inplace(sim.responses, spec.percentile);
        out.predicted = predictor(*sim.service, sim.lambda, sim.task_stats,
                                  static_cast<double>(nodes), spec.percentile);
        out.error_pct = stats::relative_error_pct(out.predicted, out.measured);
        return out;
      });

  std::vector<std::string> columns = {"distribution", "nodes", "load%",
                                      "sim_p99_ms", "pred_p99_ms", "error%"};
  if (replicas > 1) {
    columns = {"distribution", "nodes",       "load%",  "sim_p99_ms",
               "sim_sd",       "pred_p99_ms", "error%", "err_sd"};
  }
  util::Table table(columns);
  for (std::size_t base = 0; base < base_cells; ++base) {
    const std::size_t load_i = base % spec.loads.size();
    const std::size_t node_i =
        (base / spec.loads.size()) % spec.node_counts.size();
    const std::size_t dist_i =
        base / (spec.loads.size() * spec.node_counts.size());

    stats::Welford measured;
    stats::Welford predicted;
    stats::Welford error;
    for (std::size_t r = 0; r < replicas; ++r) {
      const auto& out = outcomes[base * replicas + r];
      measured.add(out.measured);
      predicted.add(out.predicted);
      error.add(out.error_pct);
    }
    auto row = table.row();
    row.str(spec.distributions[dist_i])
        .integer(static_cast<long long>(spec.node_counts[node_i]))
        .num(spec.loads[load_i] * 100.0, 0)
        .num(measured.mean(), 2);
    if (replicas > 1) row.num(std::sqrt(measured.sample_variance()), 2);
    row.num(predicted.mean(), 2).num(error.mean(), 1);
    if (replicas > 1) row.num(std::sqrt(error.sample_variance()), 1);
  }
  return table;
}

inline void run_error_sweep(const SweepSpec& spec, const Predictor& predictor,
                            const BenchOptions& options) {
  emit(error_sweep_table(spec, predictor, options), options);
}

}  // namespace forktail::bench
