// Shared error-sweep runner for the Figure 4-7 family: homogeneous k = N
// fork-join systems over (distribution x N x load), comparing a ForkTail
// prediction against the simulated 99th percentile.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace forktail::bench {

struct SweepSpec {
  std::vector<std::string> distributions = {"Empirical", "TruncPareto", "Weibull"};
  std::vector<std::size_t> node_counts = {10, 100, 500, 1000};
  std::vector<double> loads = {0.50, 0.75, 0.80, 0.90};
  int replicas = 1;
  fjsim::Policy policy = fjsim::Policy::kSingle;
  double redundant_delay = 10.0;
  double percentile = 99.0;
};

/// How the prediction is produced from a finished simulation:
/// (service distribution, lambda-per-server-equivalent, measured task
/// stats, k) -> predicted percentile.
using Predictor = std::function<double(
    const dist::Distribution& service, double lambda,
    const core::TaskStats& measured, double k, double percentile)>;

inline std::uint64_t sweep_samples(std::size_t nodes, double load,
                                   double scale) {
  std::uint64_t base = 12000;
  if (nodes <= 10) {
    base = 120000;
  } else if (nodes <= 100) {
    base = 50000;
  } else if (nodes <= 500) {
    base = 20000;
  }
  return scaled(base, scale * load_boost(load));
}

inline void run_error_sweep(const SweepSpec& spec, const Predictor& predictor,
                            const BenchOptions& options) {
  util::Table table({"distribution", "nodes", "load%", "sim_p99_ms",
                     "pred_p99_ms", "error%"});
  for (const auto& name : spec.distributions) {
    const dist::DistPtr service = dist::make_named(name);
    for (std::size_t nodes : spec.node_counts) {
      for (double load : spec.loads) {
        fjsim::HomogeneousConfig cfg;
        cfg.num_nodes = nodes;
        cfg.replicas = spec.replicas;
        cfg.policy = spec.policy;
        cfg.redundant_delay = spec.redundant_delay;
        cfg.service = service;
        cfg.load = load;
        cfg.num_requests = sweep_samples(nodes, load, options.scale);
        cfg.warmup_fraction = load >= 0.9 ? 0.3 : 0.25;
        cfg.seed = options.seed;
        const auto sim = fjsim::run_homogeneous(cfg);
        const double measured =
            stats::percentile(sim.responses, spec.percentile);
        const core::TaskStats task_stats{sim.task_stats.mean(),
                                         sim.task_stats.variance()};
        const double predicted =
            predictor(*service, sim.lambda, task_stats,
                      static_cast<double>(nodes), spec.percentile);
        table.row()
            .str(name)
            .integer(static_cast<long long>(nodes))
            .num(load * 100.0, 0)
            .num(measured, 2)
            .num(predicted, 2)
            .num(stats::relative_error_pct(predicted, measured), 1);
      }
    }
  }
  emit(table, options);
}

}  // namespace forktail::bench
