#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>

namespace forktail::bench {

bool parse_options(int argc, const char* const* argv, util::CliFlags& flags,
                   BenchOptions& options) {
  flags.declare("scale", "default", "sample-count scale: smoke|default|full");
  flags.declare("seed", "1", "master RNG seed");
  flags.declare("csv", "false", "emit CSV instead of text tables");
  flags.declare("threads", "0",
                "worker threads for parallel sweeps (0 = hardware)");
  if (!flags.parse(argc, argv)) return false;
  options.scale = util::scale_factor(util::parse_scale(flags.get_string("scale")));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.csv = flags.get_bool("csv");
  const auto threads = flags.get_int("threads");
  if (threads < 0) throw std::invalid_argument("--threads must be >= 0");
  options.threads = static_cast<std::size_t>(threads);
  return true;
}

bool parse_options(int argc, const char* const* argv, BenchOptions& options) {
  util::CliFlags flags;
  return parse_options(argc, argv, flags, options);
}

std::uint64_t scaled(std::uint64_t base, double factor, std::uint64_t floor) {
  const auto n = static_cast<std::uint64_t>(static_cast<double>(base) * factor);
  return std::max(n, floor);
}

void print_banner(const std::string& exhibit, const std::string& description,
                  const BenchOptions& options) {
  if (options.csv) return;
  std::printf("=== %s ===\n%s\n(scale x%.1f, seed %llu)\n\n", exhibit.c_str(),
              description.c_str(), options.scale,
              static_cast<unsigned long long>(options.seed));
}

void emit(const util::Table& table, const BenchOptions& options) {
  if (options.csv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_text().c_str(), stdout);
    std::fputs("\n", stdout);
  }
}

}  // namespace forktail::bench
