// Figure 11: prediction errors of the 99th percentile response times for a
// 1000-node cluster when the number of tasks per job is UNIFORMLY
// distributed over [80,120], [400,600], [800,1000], or [10,990].
//
// Prediction uses the mixture model (Eqs. 8-9 / 14) with the black-box
// measured task moments.  Paper shape: good approximations at >= 80% load;
// exponential accurate across the whole range.
#include <array>

#include "common.hpp"
#include "parallel_runner.hpp"
#include "scenario/registry.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner("Figure 11",
                      "Uniform k <= N on 1000 nodes: 99th percentile errors",
                      options);

  struct Range {
    int lo;
    int hi;
  };
  const std::array<const char*, 3> dists = {"Exponential", "TruncPareto",
                                            "Empirical"};
  const std::array<Range, 4> ranges = {
      Range{80, 120}, Range{400, 600}, Range{800, 1000}, Range{10, 990}};
  const std::array<double, 4> loads = {0.50, 0.75, 0.80, 0.90};

  struct Cell {
    double measured;
    double predicted;
  };
  const bench::ParallelSweepRunner runner(options.threads);
  const auto cells = runner.map<Cell>(
      dists.size() * ranges.size() * loads.size(), options.seed,
      [&](std::size_t i, util::Rng& rng) -> Cell {
        const double load = loads[i % loads.size()];
        const Range& range = ranges[(i / loads.size()) % ranges.size()];
        const char* name = dists[i / (loads.size() * ranges.size())];

        scenario::ScenarioSpec cell;
        cell.topology = scenario::Topology::kSubset;
        cell.nodes = 1000;
        cell.service.dist = name;
        cell.load = load;
        cell.k.mode = scenario::KSpec::Mode::kUniform;
        cell.k.lo = range.lo;
        cell.k.hi = range.hi;
        cell.requests =
            bench::scaled(15000, options.scale * bench::load_boost(load));
        cell.warmup_fraction = load >= 0.9 ? 0.3 : 0.25;
        cell.seed = rng.next_u64();
        auto sim = scenario::SimulatorRegistry::global().run(cell);
        const double measured = stats::percentile_inplace(sim.responses, 99.0);
        // Mixture model (Eqs. 8-9 / 14) with K ~ U[lo, hi].
        const double predicted =
            scenario::PredictorRegistry::global().find("mixture")->predict(
                sim, 99.0);
        return {measured, predicted};
      });

  util::Table table({"distribution", "k_range", "load%", "sim_p99_ms",
                     "pred_p99_ms", "error%"});
  std::size_t i = 0;
  for (const char* name : dists) {
    for (const Range& range : ranges) {
      for (double load : loads) {
        const Cell& cell = cells[i++];
        table.row()
            .str(name)
            .str("U[" + std::to_string(range.lo) + "," +
                 std::to_string(range.hi) + "]")
            .num(load * 100.0, 0)
            .num(cell.measured, 2)
            .num(cell.predicted, 2)
            .num(stats::relative_error_pct(cell.predicted, cell.measured), 1);
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
