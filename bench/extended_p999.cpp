// Extended-version sweep: 99.9th percentile prediction errors.
//
// The paper reports 99th-percentile results and defers the 99.9th to its
// extended version [3] ("all the conclusions drawn in this paper stay
// intact").  This bench verifies that statement on this reproduction:
// black-box single-server k = N systems, p99.9 errors across load.
//
// Note the measurement itself is an order of magnitude harder: a p99.9
// estimate needs ~10x the samples of a p99 for the same confidence, so this
// bench uses longer runs and fewer cells.
#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Extended version",
      "99.9th percentile prediction errors (black-box, single server, k = N)",
      options);

  util::Table table({"distribution", "nodes", "load%", "sim_p999_ms",
                     "pred_p999_ms", "error%"});
  for (const char* name : {"Exponential", "Weibull", "TruncPareto", "Empirical"}) {
    const dist::DistPtr service = dist::make_named(name);
    for (std::size_t nodes : {100, 1000}) {
      for (double load : {0.80, 0.90}) {
        fjsim::HomogeneousConfig cfg;
        cfg.num_nodes = nodes;
        cfg.service = service;
        cfg.load = load;
        cfg.num_requests = bench::scaled(
            nodes >= 1000 ? 60000 : 150000,
            options.scale * bench::load_boost(load));
        cfg.warmup_fraction = 0.3;
        cfg.seed = options.seed;
        auto sim = fjsim::run_homogeneous(cfg);
        const double measured = stats::percentile_inplace(sim.responses, 99.9);
        const double predicted = core::homogeneous_quantile(
            {sim.task_stats.mean(), sim.task_stats.variance()},
            static_cast<double>(nodes), 99.9);
        table.row()
            .str(name)
            .integer(static_cast<long long>(nodes))
            .num(load * 100.0, 0)
            .num(measured, 2)
            .num(predicted, 2)
            .num(stats::relative_error_pct(predicted, measured), 1);
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
