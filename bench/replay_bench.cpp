#include "replay_bench.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common.hpp"
#include "dist/factory.hpp"
#include "obs/report.hpp"
#include "fjsim/heterogeneous.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/pipeline.hpp"
#include "fjsim/replay.hpp"
#include "fjsim/subset.hpp"
#include "fjsim/vector_engine.hpp"
#include "stats/percentile.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace forktail::bench {

namespace {

/// Which replay pipeline a run exercises:
///  * kScalar   -- the pre-batching pipeline: one virtual sample() per task,
///    tail quantiles via copy + full sort (stats::percentiles).
///  * kBatched  -- the batched legacy pipeline: fused/block demand draws,
///    tail quantiles via partitioned selection (stats::percentiles_inplace).
///  * kVector   -- the SIMD engine (fjsim/vector_engine.hpp): lockstep
///    xoshiro lanes, block inverse-CDF sampling, vectorized Lindley tiles.
///  * kVectorT2 -- the same engine sharded across 2 worker threads, the
///    determinism demonstrator (bit-identical to kVector by contract).
/// kScalar and kBatched must produce bit-identical quantiles (asserted per
/// run), and so must kVector and kVectorT2; the vector family's quantiles
/// differ from legacy within sampling noise (documented golden change,
/// docs/performance.md) and the relative p99 gap is recorded in the JSON.
enum class Path { kScalar, kBatched, kVector, kVectorT2 };

constexpr bool is_vector(Path path) {
  return path == Path::kVector || path == Path::kVectorT2;
}

/// One simulation run of a workload through one pipeline.
struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t tasks = 0;
  std::array<double, 3> tail{};  ///< p50/p95/p99 responses -- the cross-check
};

struct Workload {
  std::string name;
  std::string kind;
  std::function<RunOutcome(Path path)> run;
};

/// Tail extraction, included in the timed window: the scalar pipeline pays
/// the pre-change copy + O(n log n) sort, the batched pipeline the
/// multi-percentile nth_element selection.  Bit-identical by construction
/// (test_percentile.cpp) -- the cross-check asserts it per workload.
std::array<double, 3> tail_percentiles(Path path,
                                       std::vector<double>& responses) {
  static constexpr std::array<double, 3> kPs{50.0, 95.0, 99.0};
  const auto q = path == Path::kScalar
                     ? stats::percentiles(responses, kPs)
                     : stats::percentiles_inplace(responses, kPs);
  return {q[0], q[1], q[2]};
}

std::size_t batch_for(Path path) {
  return path == Path::kScalar ? 1 : 0;  // 0 = default block size
}

fjsim::Engine engine_for(Path path) {
  return is_vector(path) ? fjsim::Engine::kVector : fjsim::Engine::kLegacy;
}

std::size_t threads_for(Path path, std::size_t base_threads) {
  return path == Path::kVectorT2 ? 2 : base_threads;
}

/// Timing summary of one (workload, path): per-rep task throughput.
struct PathResult {
  double p99 = 0.0;
  std::uint64_t tasks = 0;
  double rate_p50 = 0.0;  ///< tasks/sec, median of reps
  double rate_p95 = 0.0;
  double seconds_p50 = 0.0;
};

std::uint64_t warmup_requests(double warmup_fraction, std::uint64_t requests) {
  return static_cast<std::uint64_t>(warmup_fraction / (1.0 - warmup_fraction) *
                                    static_cast<double>(requests));
}

/// Accumulates interleaved reps of one (workload, path).
class PathAccumulator {
 public:
  PathAccumulator(const Workload& w, Path path, std::size_t reps)
      : workload_(&w), path_(path) {
    rates_.reserve(reps);
    seconds_.reserve(reps);
    warm_ = w.run(path);  // warm-up: untimed discard
  }

  void rep() {
    const RunOutcome o = workload_->run(path_);
    if (o.tail != warm_.tail) {
      throw std::logic_error("replay_bench: " + workload_->name +
                             " is not deterministic across repetitions");
    }
    rates_.push_back(static_cast<double>(o.tasks) / o.seconds);
    seconds_.push_back(o.seconds);
  }

  const RunOutcome& warm() const { return warm_; }

  PathResult finish() {
    PathResult out;
    out.p99 = warm_.tail[2];
    out.tasks = warm_.tasks;
    const std::array<double, 2> ps{50.0, 95.0};
    const auto rq = stats::percentiles_inplace(rates_, ps);
    out.rate_p50 = rq[0];
    out.rate_p95 = rq[1];
    out.seconds_p50 = stats::percentile_inplace(seconds_, 50.0);
    return out;
  }

 private:
  const Workload* workload_;
  Path path_;
  RunOutcome warm_;
  std::vector<double> rates_;
  std::vector<double> seconds_;
};

long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // bytes on macOS
#else
    return usage.ru_maxrss;  // KiB on Linux
#endif
  }
#endif
  return -1;
}

std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::vector<Workload> build_workloads(const ReplayBenchOptions& options) {
  const double scale = options.scale;
  const std::uint64_t seed = options.seed;
  const std::size_t threads = options.threads;

  const auto homogeneous = [=](std::string name, const std::string& dist_name,
                               std::size_t nodes, double load, int replicas,
                               fjsim::Policy policy, std::uint64_t base_reqs) {
    auto run = [=](Path path) {
      fjsim::HomogeneousConfig cfg;
      cfg.num_nodes = nodes;
      cfg.replicas = replicas;
      cfg.policy = policy;
      cfg.service = dist::make_named(dist_name);
      cfg.load = load;
      cfg.num_requests = scaled(base_reqs, scale);
      // Relaxation to steady state slows like (1 - load)^-2, so the
      // high-load rows discard a larger warm-up prefix before measuring.
      if (load >= 0.9) cfg.warmup_fraction = 1.0 / 3.0;
      cfg.seed = seed;
      cfg.engine = engine_for(path);
      cfg.max_parallelism = threads_for(path, threads);
      cfg.batch = batch_for(path);
      util::Stopwatch watch;
      auto sim = fjsim::run_homogeneous(cfg);
      const auto tail = tail_percentiles(path, sim.responses);
      const double seconds = watch.elapsed_seconds();
      return RunOutcome{seconds, sim.total_tasks, tail};
    };
    return Workload{std::move(name), "homogeneous", std::move(run)};
  };

  std::vector<Workload> workloads;
  // The acceptance workload: the ISSUE's >= 1.5x speedup target is measured
  // on this row.  1M retained requests per run is the top of the paper's
  // regime for stable p99 estimates (Section 5 uses 1e5..1e6 samples per
  // point); at this size the tail-extraction term (full sort pre-change vs
  // multi-percentile selection now) is a visible part of the pipeline.
  workloads.push_back(homogeneous("homog-exp-n32-load90", "Exponential", 32,
                                  0.90, 1, fjsim::Policy::kSingle, 1000000));
  workloads.push_back(homogeneous("homog-weibull-n100-load80", "Weibull", 100,
                                  0.80, 1, fjsim::Policy::kSingle, 20000));
  workloads.push_back(homogeneous("homog-rr-n16-r3-load85", "Exponential", 16,
                                  0.85, 3, fjsim::Policy::kRoundRobin, 30000));

  workloads.push_back(Workload{
      "hetero-mixed-n64", "heterogeneous", [=](Path path) {
        fjsim::HeterogeneousConfig cfg;
        const auto names = dist::named_distributions();
        for (std::size_t n = 0; n < 64; ++n) {
          cfg.services.push_back(dist::make_named(names[n % names.size()]));
        }
        cfg.lambda = fjsim::lambda_for_max_load(cfg.services, 0.85);
        cfg.num_requests = scaled(20000, scale);
        cfg.seed = seed;
        cfg.engine = engine_for(path);
        cfg.max_parallelism = threads_for(path, threads);
        cfg.batch = batch_for(path);
        const std::uint64_t tasks =
            (warmup_requests(cfg.warmup_fraction, cfg.num_requests) +
             cfg.num_requests) *
            cfg.services.size();
        util::Stopwatch watch;
        auto sim = fjsim::run_heterogeneous(cfg);
        const auto tail = tail_percentiles(path, sim.responses);
        const double seconds = watch.elapsed_seconds();
        return RunOutcome{seconds, tasks, tail};
      }});

  workloads.push_back(Workload{
      "subset-n100-k16-load80", "subset", [=](Path path) {
        fjsim::SubsetConfig cfg;
        cfg.num_nodes = 100;
        cfg.k_fixed = 16;
        cfg.service = dist::make_named("Exponential");
        cfg.load = 0.80;
        cfg.num_requests = scaled(30000, scale);
        cfg.seed = seed;
        cfg.engine = engine_for(path);
        cfg.max_parallelism = threads_for(path, threads);
        cfg.batch = batch_for(path);
        util::Stopwatch watch;
        auto sim = fjsim::run_subset(cfg);
        const auto tail = tail_percentiles(path, sim.responses);
        const double seconds = watch.elapsed_seconds();
        return RunOutcome{seconds, sim.total_tasks, tail};
      }});

  workloads.push_back(Workload{
      "pipeline-3stage-load80", "pipeline", [=](Path path) {
        fjsim::PipelineConfig cfg;
        cfg.stages.push_back({16, dist::make_named("Exponential")});
        cfg.stages.push_back({8, dist::make_named("Erlang-2")});
        cfg.stages.push_back({4, dist::make_named("HyperExp2")});
        cfg.load = 0.80;
        cfg.num_requests = scaled(20000, scale);
        cfg.seed = seed;
        cfg.engine = engine_for(path);
        cfg.max_parallelism = threads_for(path, threads);
        cfg.batch = batch_for(path);
        std::uint64_t nodes = 0;
        for (const auto& s : cfg.stages) nodes += s.num_nodes;
        const std::uint64_t tasks =
            (warmup_requests(cfg.warmup_fraction, cfg.num_requests) +
             cfg.num_requests) *
            nodes;
        util::Stopwatch watch;
        auto sim = fjsim::run_pipeline(cfg);
        const auto tail = tail_percentiles(path, sim.responses);
        const double seconds = watch.elapsed_seconds();
        return RunOutcome{seconds, tasks, tail};
      }});
  return workloads;
}

struct WorkloadResult {
  const Workload* workload = nullptr;
  PathResult scalar;
  PathResult batched;
  PathResult vec;
  PathResult vec_t2;
  bool identical = false;         ///< scalar == batched (bitwise)
  bool vector_identical = false;  ///< vector == vector_t2 (bitwise)
  /// Relative p99 gap between the vector and batched engines; a golden
  /// change, expected within sampling noise (|gap| well under 15%).
  double vector_p99_rel = 0.0;
  double speedup() const { return batched.rate_p50 / scalar.rate_p50; }
  double speedup_vector() const { return vec.rate_p50 / batched.rate_p50; }
  double speedup_vector_t2() const {
    return vec_t2.rate_p50 / batched.rate_p50;
  }
};

void write_json(const std::string& path, const ReplayBenchOptions& options,
                const std::vector<WorkloadResult>& results) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("replay_bench: cannot write " + path);
  os << "{\n";
  os << "  \"benchmark\": \"bench_replay\",\n";
  os << "  \"scale\": \"" << options.scale_name << "\",\n";
  os << "  \"seed\": " << options.seed << ",\n";
  os << "  \"reps\": " << options.reps << ",\n";
  os << "  \"threads\": " << options.threads << ",\n";
  os << "  \"default_batch\": " << fjsim::kDefaultReplayBatch << ",\n";
  os << "  \"scalar_pipeline\": \"per-task virtual sample() + sort-based "
        "percentiles (pre-change)\",\n";
  os << "  \"batched_pipeline\": \"fused/block demand draws + selection-based "
        "percentiles\",\n";
  os << "  \"vector_pipeline\": \"SIMD lane engine (lockstep xoshiro blocks, "
        "inverse-CDF sampling, vectorized Lindley tiles) + selection-based "
        "percentiles\",\n";
  os << "  \"simd_dispatch\": \"" << fjsim::vector_dispatch_level()
     << "\",\n";
  os << "  \"peak_rss_kib\": " << peak_rss_kib() << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    const auto path_json = [&](const char* label, const PathResult& p) {
      os << "      \"" << label << "\": {\n";
      os << "        \"seconds_p50\": " << json_num(p.seconds_p50) << ",\n";
      os << "        \"tasks_per_sec_p50\": " << json_num(p.rate_p50) << ",\n";
      os << "        \"tasks_per_sec_p95\": " << json_num(p.rate_p95) << "\n";
      os << "      }";
    };
    os << "    {\n";
    os << "      \"name\": \"" << r.workload->name << "\",\n";
    os << "      \"kind\": \"" << r.workload->kind << "\",\n";
    os << "      \"tasks_per_run\": " << r.scalar.tasks << ",\n";
    os << "      \"p99_response\": " << json_num(r.scalar.p99) << ",\n";
    os << "      \"paths_identical\": " << (r.identical ? "true" : "false")
       << ",\n";
    os << "      \"vector_paths_identical\": "
       << (r.vector_identical ? "true" : "false") << ",\n";
    os << "      \"vector_vs_batched_p99_rel\": "
       << json_num(r.vector_p99_rel) << ",\n";
    path_json("scalar", r.scalar);
    os << ",\n";
    path_json("batched", r.batched);
    os << ",\n";
    path_json("vector", r.vec);
    os << ",\n";
    path_json("vector_t2", r.vec_t2);
    os << ",\n";
    os << "      \"speedup_p50\": " << json_num(r.speedup()) << ",\n";
    os << "      \"speedup_vector_p50\": " << json_num(r.speedup_vector())
       << ",\n";
    os << "      \"speedup_vector_t2_p50\": "
       << json_num(r.speedup_vector_t2()) << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace

int run_replay_bench(const ReplayBenchOptions& options) {
  if (options.reps == 0) {
    throw std::invalid_argument("replay_bench: --reps must be >= 1");
  }
  const auto workloads = build_workloads(options);

  std::vector<WorkloadResult> results;
  results.reserve(workloads.size());
  bool all_identical = true;
  for (const Workload& w : workloads) {
    WorkloadResult r;
    r.workload = &w;
    PathAccumulator scalar(w, Path::kScalar, options.reps);
    PathAccumulator batched(w, Path::kBatched, options.reps);
    PathAccumulator vec(w, Path::kVector, options.reps);
    PathAccumulator vec_t2(w, Path::kVectorT2, options.reps);
    // Interleave the reps so slow clock / turbo drift hits every path
    // equally: each speedup is a ratio of medians over the same window.
    for (std::size_t rep = 0; rep < options.reps; ++rep) {
      scalar.rep();
      batched.rep();
      vec.rep();
      vec_t2.rep();
    }
    // Bitwise cross-checks: the batched pipeline must reproduce the scalar
    // pipeline's tail quantiles exactly (== on the doubles, no tolerance),
    // and the sharded vector run must reproduce the single-thread vector
    // run exactly -- that is the engine's determinism contract.
    r.identical = scalar.warm().tail == batched.warm().tail;
    r.vector_identical = vec.warm().tail == vec_t2.warm().tail;
    const double p99_legacy = batched.warm().tail[2];
    r.vector_p99_rel = (vec.warm().tail[2] - p99_legacy) / p99_legacy;
    r.scalar = scalar.finish();
    r.batched = batched.finish();
    r.vec = vec.finish();
    r.vec_t2 = vec_t2.finish();
    all_identical = all_identical && r.identical && r.vector_identical;
    results.push_back(r);
  }

  util::Table table({"workload", "tasks/run", "scalar_Mt/s", "batched_Mt/s",
                     "vector_Mt/s", "vec_t2_Mt/s", "vec_speedup",
                     "identical"});
  for (const WorkloadResult& r : results) {
    table.row()
        .str(r.workload->name)
        .integer(static_cast<long long>(r.scalar.tasks))
        .num(r.scalar.rate_p50 / 1e6, 2)
        .num(r.batched.rate_p50 / 1e6, 2)
        .num(r.vec.rate_p50 / 1e6, 2)
        .num(r.vec_t2.rate_p50 / 1e6, 2)
        .num(r.speedup_vector(), 2)
        .str(r.identical && r.vector_identical ? "yes" : "NO");
  }
  BenchOptions print_options;
  print_options.csv = options.csv;
  emit(table, print_options);

  if (!options.out.empty()) {
    write_json(options.out, options, results);
    std::printf("wrote %s (peak RSS %ld KiB)\n", options.out.c_str(),
                peak_rss_kib());
  }
  if (!options.metrics_out.empty()) {
    const obs::RunReport report =
        obs::RunReport::capture(obs::Registry::global(), "bench_replay");
    report.write(options.metrics_out);
    std::printf("wrote %s (run telemetry%s)\n", options.metrics_out.c_str(),
                obs::enabled() ? "" : ", observability compiled out");
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "replay_bench: a pipeline diverged from its bit-identity "
                 "partner (scalar/batched or vector/vector_t2) -- "
                 "determinism regression\n");
    return 1;
  }
  for (const WorkloadResult& r : results) {
    // The vector family is a documented golden change, not a free-for-all:
    // a p99 further than 15% from legacy means a sampler or kernel bug, not
    // sampling noise (observed gaps are ~2%).
    if (std::abs(r.vector_p99_rel) > 0.15) {
      std::fprintf(stderr,
                   "replay_bench: %s vector p99 is %+.1f%% from the legacy "
                   "engine -- outside the documented equivalence band\n",
                   r.workload->name.c_str(), 100.0 * r.vector_p99_rel);
      return 1;
    }
  }
  return 0;
}

}  // namespace forktail::bench
