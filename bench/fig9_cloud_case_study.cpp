// Figure 9 + Table 1: the Amazon EC2 / Spark keyword-count case study,
// reproduced on the cloud substrate (see DESIGN.md substitution #3).
//
// For 32 and 64 workers and arrival rates 3.0-5.5 req/s, prints the
// measured 95th and 99th percentile request latencies alongside the
// homogeneous (Eq. 6) and inhomogeneous (Eq. 4) ForkTail predictions --
// the paper's finding is that the inhomogeneous model tracks the
// measurement at high load while the homogeneous one drifts.  Table 1's
// estimated load per arrival rate is reproduced exactly.
#include <array>
#include <vector>

#include "cloud/spark_cluster.hpp"
#include "common.hpp"
#include "core/predictor.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner("Figure 9 + Table 1",
                      "Cloud case study: measured vs predicted tail latencies",
                      options);

  // Table 1: estimated loads (%) for the testing cluster.
  util::Table table1({"workers", "lam=3.0", "lam=3.5", "lam=4.0", "lam=4.5",
                      "lam=5.0", "lam=5.5"});
  for (std::size_t workers : {32, 64}) {
    auto row = table1.row();
    row.integer(static_cast<long long>(workers));
    for (double lambda : {3.0, 3.5, 4.0, 4.5, 5.0, 5.5}) {
      row.num(cloud::table1_load_percent(lambda, workers), 2);
    }
  }
  bench::emit(table1, options);

  // Figure 9: measured vs predicted p95/p99 for both cluster sizes.
  util::Table fig9({"workers", "lambda_rps", "load%", "percentile",
                    "measured_ms", "inhom_pred_ms", "inhom_err%",
                    "hom_pred_ms", "hom_err%"});
  for (std::size_t workers : {32, 64}) {
    for (double lambda : {3.0, 3.5, 4.0, 4.5, 5.0, 5.5}) {
      cloud::CloudConfig cfg;
      cfg.num_workers = workers;
      cfg.lambda = lambda;
      cfg.base_mean_max = workers >= 64 ? 0.16680 : 0.16110;
      cfg.num_requests = bench::scaled(30000, options.scale);
      cfg.seed = options.seed;
      auto r = cloud::run_cloud_case_study(cfg);

      std::vector<core::TaskStats> nodes;
      nodes.reserve(r.worker_task_stats.size());
      for (const auto& w : r.worker_task_stats) {
        nodes.push_back({w.mean(), w.variance()});
      }
      const core::TaskStats pooled{r.pooled_task_stats.mean(),
                                   r.pooled_task_stats.variance()};
      const std::array<double, 2> ps{95.0, 99.0};
      const auto measured_q = stats::percentiles_inplace(r.responses, ps);
      for (std::size_t pi = 0; pi < ps.size(); ++pi) {
        const double p = ps[pi];
        const double measured = measured_q[pi] * 1000.0;  // seconds -> ms
        const double inhom = core::inhomogeneous_quantile(nodes, p) * 1000.0;
        const double hom =
            core::homogeneous_quantile(pooled, static_cast<double>(workers), p) *
            1000.0;
        fig9.row()
            .integer(static_cast<long long>(workers))
            .num(lambda, 1)
            .num(100.0 * r.estimated_load, 2)
            .num(p, 1)
            .num(measured, 1)
            .num(inhom, 1)
            .num(stats::relative_error_pct(inhom, measured), 1)
            .num(hom, 1)
            .num(stats::relative_error_pct(hom, measured), 1);
      }
    }
  }
  bench::emit(fig9, options);
  return 0;
}
