// Batched-vs-scalar replay throughput benchmark (see replay_bench.hpp and
// docs/performance.md).
//
//   bench_replay [--scale smoke|default|full] [--seed N] [--reps N]
//                [--threads N] [--csv true] [--out BENCH_replay.json]
//
// --threads here bounds the fjsim node-replay parallelism; it defaults to
// single-threaded so the tracked throughput numbers are not a function of
// the machine's core count.
#include <stdexcept>

#include "common.hpp"
#include "replay_bench.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  util::CliFlags flags;
  flags.declare("reps", "5", "timed repetitions per (workload, path)");
  flags.declare("out", "BENCH_replay.json",
                "output JSON path (empty disables the file)");
  flags.declare("metrics-out", "BENCH_replay.metrics.json",
                "run-telemetry report path (.prom for Prometheus text; "
                "empty disables)");
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, flags, options)) return 0;

  bench::ReplayBenchOptions replay;
  replay.scale = options.scale;
  replay.scale_name = flags.get_string("scale");
  replay.seed = options.seed;
  replay.csv = options.csv;
  const auto reps = flags.get_int("reps");
  if (reps < 1) throw std::invalid_argument("--reps must be >= 1");
  replay.reps = static_cast<std::size_t>(reps);
  replay.threads = options.threads == 0 ? 1 : options.threads;
  replay.out = flags.get_string("out");
  replay.metrics_out = flags.get_string("metrics-out");

  bench::print_banner("bench_replay",
                      "Batched replay engine: throughput vs the scalar "
                      "reference path",
                      options);
  return bench::run_replay_bench(replay);
}
