// Heavy-tail breakdown benchmark: plain ForkTail vs the EVT-corrected
// predictor on regularly-varying services.
//
//   bench_heavy_tail [--scale smoke|default|full] [--seed N] [--csv true]
//                    [--out BENCH_heavy.json]
//
// Each row simulates a homogeneous fork-join cluster whose service is
// "Pareto" or "HeavyMixture" at an explicit tail index alpha, measures the
// request p99 by replay, and evaluates two registry predictors on the same
// outcome: "forktail" (the paper's GE max quantile, a Gumbel-domain model)
// and "evt" (the Frechet-domain order-statistic correction selected by the
// service's declared tail capability).  The sweep walks the breakdown
// boundary: as alpha falls toward 2 and the fan-out n grows toward 10^3,
// the max of n sojourns leaves the Gumbel domain and the GE fit
// underestimates the p99 by more than the paper's 20% accuracy envelope.
// The tracked BENCH_heavy.json pins that boundary: at least one row is out
// of envelope for plain ForkTail, and on every such row the EVT predictor
// must beat the plain error (tools/perf_gate.py fails CI otherwise).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "dist/distribution.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "stats/percentile.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace forktail::bench {
namespace {

/// Relative error past which a prediction leaves the paper's accuracy
/// envelope (20% at the 80th percentile and beyond; evaluated at p99).
constexpr double kEnvelope = 0.20;

struct RowSpec {
  std::string name;
  std::string dist;  ///< "Pareto" | "HeavyMixture"
  double alpha;      ///< regular-variation tail index
  std::size_t nodes; ///< fan-out n (k = N homogeneous fork-join)
  double load;
  std::uint64_t base_requests;
  /// Smallest request count at which the row's p99 estimate has seen
  /// enough giant-job events to stop drifting.  Heavy-tail quantiles
  /// converge from below (the estimate is dominated by a handful of rare
  /// busy periods), so --scale smoke must not cut a row below the budget
  /// its envelope flags were calibrated at.
  std::uint64_t min_requests;
};

struct RowResult {
  RowSpec spec;
  std::uint64_t requests = 0;
  double measured = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double forktail = 0.0;
  double evt = 0.0;
  double forktail_err = 0.0;
  double evt_err = 0.0;
  bool forktail_within = false;
  bool evt_within = false;
  std::string tail_class;
  double seconds = 0.0;
};

/// 99% distribution-free confidence interval for the q-quantile from order
/// statistics: indices m*q -+ z*sqrt(m q (1-q)), z = 2.576.
void quantile_ci(std::vector<double>& sorted, double q, double* lo,
                 double* hi) {
  std::sort(sorted.begin(), sorted.end());
  const double m = static_cast<double>(sorted.size());
  const double half = 2.576 * std::sqrt(m * q * (1.0 - q));
  const auto clamp_index = [&](double j) {
    return static_cast<std::size_t>(
        std::min(m - 1.0, std::max(0.0, std::round(j))));
  };
  *lo = sorted[clamp_index(m * q - half - 1.0)];
  *hi = sorted[clamp_index(m * q + half)];
}

std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

RowResult run_row(const RowSpec& row, const BenchOptions& options) {
  scenario::ScenarioSpec spec;
  spec.name = row.name;
  spec.topology = scenario::Topology::kHomogeneous;
  spec.nodes = row.nodes;
  spec.service.dist = row.dist;
  spec.service.tail = row.alpha;
  spec.load = row.load;
  spec.requests = scaled(row.base_requests, options.scale, row.min_requests);
  spec.seed = options.seed;

  util::Stopwatch watch;
  scenario::Outcome outcome = scenario::SimulatorRegistry::global().run(spec);

  const auto& predictors = scenario::PredictorRegistry::global();
  RowResult out;
  out.spec = row;
  out.requests = outcome.responses.size();
  out.forktail = predictors.find("forktail")->predict(outcome, 99.0);
  out.evt = predictors.find("evt")->predict(outcome, 99.0);
  out.tail_class = dist::tail_class_name(outcome.service->capabilities().tail);

  quantile_ci(outcome.responses, 0.99, &out.ci_lo, &out.ci_hi);
  out.measured = stats::percentile(outcome.responses, 99.0);
  out.forktail_err = std::fabs(out.forktail - out.measured) / out.measured;
  out.evt_err = std::fabs(out.evt - out.measured) / out.measured;
  out.forktail_within = out.forktail_err <= kEnvelope;
  out.evt_within = out.evt_err <= kEnvelope;
  out.seconds = watch.elapsed_seconds();
  return out;
}

void write_json(const std::string& path, const BenchOptions& options,
                const std::string& scale_name,
                const std::vector<RowResult>& results) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("bench_heavy_tail: cannot write " + path);
  std::size_t out_rows = 0;
  std::size_t recovered = 0;
  bool evt_beats_plain = true;
  for (const RowResult& r : results) {
    if (!r.forktail_within) {
      ++out_rows;
      recovered += r.evt_within ? 1 : 0;
      evt_beats_plain = evt_beats_plain && r.evt_err < r.forktail_err;
    }
  }
  // The tracked claim: the sweep exhibits the breakdown (some row is out of
  // envelope for plain ForkTail), the EVT correction strictly improves every
  // such row, and at least one broken row is pulled back inside the
  // envelope.
  const bool envelope_recovered =
      out_rows > 0 && recovered > 0 && evt_beats_plain;
  os << "{\n";
  os << "  \"benchmark\": \"bench_heavy\",\n";
  os << "  \"scale\": \"" << scale_name << "\",\n";
  os << "  \"seed\": " << options.seed << ",\n";
  os << "  \"percentile\": 99.0,\n";
  os << "  \"envelope\": " << json_num(kEnvelope) << ",\n";
  os << "  \"out_of_envelope_rows\": " << out_rows << ",\n";
  os << "  \"recovered_rows\": " << recovered << ",\n";
  os << "  \"envelope_recovered\": " << (envelope_recovered ? "true" : "false")
     << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RowResult& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.spec.name << "\",\n";
    os << "      \"dist\": \"" << r.spec.dist << "\",\n";
    os << "      \"alpha\": " << json_num(r.spec.alpha) << ",\n";
    os << "      \"tail_class\": \"" << r.tail_class << "\",\n";
    os << "      \"nodes\": " << r.spec.nodes << ",\n";
    os << "      \"load\": " << json_num(r.spec.load) << ",\n";
    os << "      \"requests\": " << r.requests << ",\n";
    os << "      \"measured_ms\": " << json_num(r.measured) << ",\n";
    os << "      \"ci_lo_ms\": " << json_num(r.ci_lo) << ",\n";
    os << "      \"ci_hi_ms\": " << json_num(r.ci_hi) << ",\n";
    os << "      \"forktail_ms\": " << json_num(r.forktail) << ",\n";
    os << "      \"evt_ms\": " << json_num(r.evt) << ",\n";
    os << "      \"forktail_err\": " << json_num(r.forktail_err) << ",\n";
    os << "      \"evt_err\": " << json_num(r.evt_err) << ",\n";
    os << "      \"forktail_within\": "
       << (r.forktail_within ? "true" : "false") << ",\n";
    os << "      \"evt_within\": " << (r.evt_within ? "true" : "false")
       << ",\n";
    os << "      \"seconds\": " << json_num(r.seconds) << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace
}  // namespace forktail::bench

int main(int argc, char** argv) {
  using namespace forktail;
  util::CliFlags flags;
  flags.declare("out", "BENCH_heavy.json",
                "output JSON path (empty disables the file)");
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, flags, options)) return 0;
  const std::string out = flags.get_string("out");

  bench::print_banner("bench_heavy_tail",
                      "Plain ForkTail vs the EVT correction on "
                      "regularly-varying services, p99",
                      options);

  // The sweep brackets the breakdown boundary in (alpha, load, n): alpha
  // 3.5 keeps E[S^3] finite (the GE fit holds), alpha 2.6 / 2.2 push the
  // third and then the second moment toward divergence; n climbs to 10^3.
  // Budgets are sized so each row's p99 window contains hundreds of the
  // giant-job events that drive it (the dominant event grows rarer like
  // n^{-1/(alpha-1)} per request, hence the per-row floors).
  const std::vector<bench::RowSpec> rows = {
      {"pareto-a3.5-n4-load50", "Pareto", 3.5, 4, 0.50, 600000, 60000},
      {"pareto-a3.5-n100-load80", "Pareto", 3.5, 100, 0.80, 1000000, 100000},
      {"pareto-a3.5-n1000-load80", "Pareto", 3.5, 1000, 0.80, 1000000,
       100000},
      {"pareto-a2.6-n4-load50", "Pareto", 2.6, 4, 0.50, 2000000, 200000},
      {"pareto-a2.6-n100-load80", "Pareto", 2.6, 100, 0.80, 3000000,
       1500000},
      {"pareto-a2.6-n1000-load80", "Pareto", 2.6, 1000, 0.80, 500000,
       500000},
      {"pareto-a2.2-n100-load80", "Pareto", 2.2, 100, 0.80, 6000000,
       3000000},
      {"mixture-a2.2-n100-load80", "HeavyMixture", 2.2, 100, 0.80, 3000000,
       300000},
  };

  std::vector<bench::RowResult> results;
  results.reserve(rows.size());
  for (const bench::RowSpec& row : rows) {
    results.push_back(bench::run_row(row, options));
  }

  util::Table table({"row", "req", "p99_ms", "forktail_ms", "evt_ms",
                     "ft_err", "evt_err", "ft_in", "evt_in", "sec"});
  for (const bench::RowResult& r : results) {
    table.row()
        .str(r.spec.name)
        .integer(static_cast<long long>(r.requests))
        .num(r.measured, 2)
        .num(r.forktail, 2)
        .num(r.evt, 2)
        .num(r.forktail_err, 3)
        .num(r.evt_err, 3)
        .str(r.forktail_within ? "yes" : "NO")
        .str(r.evt_within ? "yes" : "NO")
        .num(r.seconds, 2);
  }
  bench::emit(table, options);

  if (!out.empty()) {
    bench::write_json(out, options, flags.get_string("scale"), results);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
