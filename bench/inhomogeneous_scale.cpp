// Inhomogeneous prediction at scale (Eq. 4/5 beyond the 32/64-worker cloud
// case study): heterogeneous clusters where node speeds spread by up to
// 4x, comparing the fine-grained per-node model against pooled (homogeneous)
// prediction.
//
// Paper context: Section 3 presents Eq. 5 as "a fine-grained tail latency
// expression" for heterogeneous fork nodes and uneven background load; the
// EC2 case study (Fig. 9) demonstrates it at 32/64 nodes.  This bench
// extends the comparison to larger N and controlled heterogeneity.
#include <memory>

#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/basic.hpp"
#include "fjsim/heterogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "stats/welford.hpp"

namespace {

using namespace forktail;

std::vector<dist::DistPtr> spread_cluster(std::size_t n, double spread,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<dist::DistPtr> services;
  services.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Node means log-uniform in [1, spread] ms: persistent heterogeneity.
    const double mean = std::exp(rng.uniform(0.0, std::log(spread)));
    services.push_back(std::make_shared<dist::Exponential>(mean));
  }
  return services;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Inhomogeneous scale",
      "Eq. 4 per-node prediction vs pooled prediction on heterogeneous "
      "clusters",
      options);

  util::Table table({"nodes", "speed_spread", "bottleneck_load%", "sim_p99_ms",
                     "inhom_err%", "pooled_err%"});
  for (std::size_t nodes : {32, 128, 512}) {
    for (double spread : {1.5, 4.0}) {
      const auto services = spread_cluster(nodes, spread, options.seed + nodes);
      for (double rho : {0.70, 0.90}) {
        fjsim::HeterogeneousConfig cfg;
        cfg.services = services;
        cfg.lambda = fjsim::lambda_for_max_load(services, rho);
        cfg.num_requests =
            bench::scaled(40000, options.scale * bench::load_boost(rho));
        cfg.warmup_fraction = rho >= 0.9 ? 0.3 : 0.25;
        cfg.seed = options.seed;
        auto r = fjsim::run_heterogeneous(cfg);
        const double measured = stats::percentile_inplace(r.responses, 99.0);

        std::vector<core::TaskStats> per_node;
        stats::Welford pooled;
        for (const auto& w : r.node_stats) {
          per_node.push_back({w.mean(), w.variance()});
          pooled.merge(w);
        }
        const double inhom = core::inhomogeneous_quantile(per_node, 99.0);
        const double hom = core::homogeneous_quantile(
            {pooled.mean(), pooled.variance()}, static_cast<double>(nodes),
            99.0);
        table.row()
            .integer(static_cast<long long>(nodes))
            .num(spread, 1)
            .num(rho * 100.0, 0)
            .num(measured, 2)
            .num(stats::relative_error_pct(inhom, measured), 1)
            .num(stats::relative_error_pct(hom, measured), 1);
      }
    }
  }
  bench::emit(table, options);
  if (!options.csv) {
    std::printf(
        "With mild heterogeneity pooling is harmless; as the speed spread\n"
        "grows the pooled model misattributes the slow nodes' tail and the\n"
        "per-node expression (Eq. 4) keeps tracking -- the scaled-up version\n"
        "of the Fig. 9 effect.\n");
  }
  return 0;
}
