// Figure 5: prediction errors of the 99th percentile response times for
// BLACK-BOX systems with single-server fork nodes.
//
// Identical systems to Figure 4, but the task response-time mean and
// variance are *measured* at the (black-box) fork nodes rather than derived
// from a known service distribution.  Paper shape: errors nearly identical
// to Figure 4 -- the white-box and black-box pipelines should coincide up
// to measurement noise.
#include "core/predictor.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 5",
      "Black-box prediction errors, single-server fork nodes, k = N",
      options);

  bench::SweepSpec spec;
  bench::run_error_sweep(
      spec,
      [](const dist::Distribution& /*service*/, double /*lambda*/,
         const core::TaskStats& measured, double k, double percentile) {
        return core::homogeneous_quantile(measured, k, percentile);
      },
      options);
  return 0;
}
