// Figure 6: prediction errors of the 99th percentile response times for
// black-box systems with 3-server fork nodes and round-robin dispatching.
//
// Paper shape: errors very close to the single-server case (Fig. 5) --
// round-robin at the same per-server load makes each replica look like the
// single-server scenario -- within 20% at 80% load and 10% at 90%.
#include "core/predictor.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 6",
      "Black-box prediction errors, 3-server fork nodes, round-robin",
      options);

  bench::SweepSpec spec;
  spec.servers_per_node = 3;
  spec.policy = fjsim::Policy::kRoundRobin;
  bench::run_error_sweep(
      spec,
      [](const dist::Distribution& /*service*/, double /*lambda*/,
         const core::TaskStats& measured, double k, double percentile) {
        return core::homogeneous_quantile(measured, k, percentile);
      },
      options);
  return 0;
}
