// Cluster-scale event-engine benchmark: the calendar-queue engine
// (sim/engine.hpp, typed POD events) against the frozen binary-heap +
// std::function engine (sim/heap_engine.hpp) it replaced.
//
//   bench_cluster [--scale smoke|default|full] [--seed N] [--reps N]
//                 [--csv true] [--min-speedup X] [--out BENCH_cluster.json]
//                 [--metrics-out BENCH_cluster.metrics.json]
//
// Rows (see docs/performance.md, part 3):
//   * fj-n1000-k16-load70  -- the ACCEPTANCE row: 1000 fork nodes, fixed
//     k = 16, nominal load 0.70, 10M measured requests at --scale full.
//     The tracked BENCH_cluster.json must show >= 3x events/sec p50 over
//     the heap engine here.  record_responses = false keeps memory bounded
//     by in-flight concurrency, not the request count.
//   * fj-n100-all-load70   -- all-nodes fork-join (k = N) on the same pair.
//   * closed-loop-n1000-k16 -- the SLO admission loop at cluster scale;
//     baseline = 1 stats shard + per-request response vector, candidate =
//     16 shards + histogram-only.  The speedup is expected near 1x; the row
//     exists for the bit-identity flag (sharding must not change a single
//     output bit) and the bounded-memory mode's throughput.
//   * engine-cancel-heavy  -- engine microbenchmark, ~50% hedging-style
//     cancels: rounds of schedule-cancellable / cancel-half / drain.  The
//     calendar engine compacts tombstones (compactions > 0); the heap
//     engine carries them to pop.
//
// Every row asserts bit-identity between its two paths at runtime (exit 1
// on divergence) and across repetitions; --min-speedup fails the run when
// the acceptance row comes in under the bar (0 disables, the default --
// CI smoke runs are too noisy/small to gate on a ratio).
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common.hpp"
#include "dist/factory.hpp"
#include "obs/report.hpp"
#include "sched/closed_loop.hpp"
#include "sim/engine.hpp"
#include "sim/heap_engine.hpp"
#include "sim/network.hpp"
#include "stats/percentile.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace forktail::bench {
namespace {

/// Which implementation a run exercises:
///  * kBaseline  -- the pre-change path (binary-heap engine, std::function
///    handlers, O(total_requests) driver state; for the closed loop: one
///    stats shard + full response vector).
///  * kCandidate -- the calendar-queue engine with typed POD events (for
///    the closed loop: 16 stats shards + histogram-only responses).
enum class Path { kBaseline, kCandidate };

/// One timed run: wall seconds, the throughput numerator, and a bitwise
/// fingerprint both paths (and every repetition) must reproduce exactly.
struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t count = 0;  ///< events (or requests) per run
  std::vector<double> fingerprint;
};

struct Workload {
  std::string name;
  std::string kind;
  std::string unit;  ///< what `count` counts: "events" or "requests"
  std::string baseline_label;
  std::string candidate_label;
  bool acceptance = false;
  std::size_t nodes = 0;
  std::uint64_t requests = 0;
  std::function<RunOutcome(Path path)> run;
};

/// Timing summary of one (workload, path): per-rep event throughput.
struct PathResult {
  std::uint64_t count = 0;
  double rate_p50 = 0.0;  ///< count/sec, median of reps
  double rate_p95 = 0.0;
  double seconds_p50 = 0.0;
};

/// Accumulates interleaved reps of one (workload, path).
class PathAccumulator {
 public:
  PathAccumulator(const Workload& w, Path path, std::size_t reps)
      : workload_(&w), path_(path) {
    rates_.reserve(reps);
    seconds_.reserve(reps);
    warm_ = w.run(path);  // warm-up: untimed discard
  }

  void rep() {
    const RunOutcome o = workload_->run(path_);
    if (o.fingerprint != warm_.fingerprint) {
      throw std::logic_error("bench_cluster: " + workload_->name +
                             " is not deterministic across repetitions");
    }
    rates_.push_back(static_cast<double>(o.count) / o.seconds);
    seconds_.push_back(o.seconds);
  }

  const RunOutcome& warm() const { return warm_; }

  PathResult finish() {
    PathResult out;
    out.count = warm_.count;
    const std::array<double, 2> ps{50.0, 95.0};
    const auto rq = stats::percentiles_inplace(rates_, ps);
    out.rate_p50 = rq[0];
    out.rate_p95 = rq[1];
    out.seconds_p50 = stats::percentile_inplace(seconds_, 50.0);
    return out;
  }

 private:
  const Workload* workload_;
  Path path_;
  RunOutcome warm_;
  std::vector<double> rates_;
  std::vector<double> seconds_;
};

long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // bytes on macOS
#else
    return usage.ru_maxrss;  // KiB on Linux
#endif
  }
#endif
  return -1;
}

std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// ~50%-cancel engine microbenchmark, generic over the two engine types
/// (identical schedule/cancel sequence => identical firing order).  Each
/// round schedules `batch` cancellable no-op events at deterministic
/// uniform offsets, cancels every other one before draining, then runs the
/// engine dry.  Returns {final now, fired, cancelled} as the fingerprint.
template <typename EngineT>
RunOutcome run_cancel_heavy(std::uint64_t seed, std::size_t batch,
                            std::size_t rounds) {
  util::Rng rng(seed);
  EngineT engine;
  std::vector<typename EngineT::EventId> ids;
  ids.reserve(batch);
  util::Stopwatch watch;
  for (std::size_t r = 0; r < rounds; ++r) {
    ids.clear();
    const double base = engine.now();
    for (std::size_t i = 0; i < batch; ++i) {
      ids.push_back(engine.schedule_cancellable(
          base + 100.0 * rng.uniform(), [] {}));
    }
    for (std::size_t i = 0; i < batch; i += 2) engine.cancel(ids[i]);
    engine.run();
  }
  RunOutcome out;
  out.seconds = watch.elapsed_seconds();
  out.count = engine.events_processed();
  out.fingerprint = {engine.now(),
                     static_cast<double>(engine.events_processed()),
                     static_cast<double>(engine.events_cancelled())};
  return out;
}

std::vector<Workload> build_workloads(const BenchOptions& options,
                                      std::uint64_t* compactions_out) {
  const double scale = options.scale;
  const std::uint64_t seed = options.seed;

  const auto forkjoin = [=](std::string name, std::size_t nodes,
                            sim::TaskCountMode k_mode, int k_fixed,
                            double load, std::uint64_t base_reqs,
                            bool acceptance) {
    const std::uint64_t requests = scaled(base_reqs, scale);
    auto run = [=](Path path) {
      sim::FjConfig cfg;
      cfg.num_nodes = nodes;
      cfg.service = dist::make_named("Exponential");
      cfg.k_mode = k_mode;
      cfg.k_fixed = k_fixed;
      cfg.num_requests = requests;
      cfg.seed = seed;
      // Memory must stay bounded by in-flight concurrency at 10M requests:
      // neither path keeps the per-request response vector.
      cfg.record_responses = false;
      cfg.lambda = sim::lambda_for_nominal_load(cfg, load);
      util::Stopwatch watch;
      const sim::FjResult res = path == Path::kBaseline
                                    ? sim::run_fj_simulation_baseline(cfg)
                                    : sim::run_fj_simulation(cfg);
      RunOutcome out;
      out.seconds = watch.elapsed_seconds();
      out.count = res.events_processed;
      out.fingerprint = {res.pooled_task_stats.mean(),
                         res.pooled_task_stats.variance(),
                         static_cast<double>(res.pooled_task_stats.count()),
                         res.sim_end_time,
                         static_cast<double>(res.total_tasks),
                         static_cast<double>(res.events_processed)};
      return out;
    };
    Workload w{std::move(name),
               "forkjoin",
               "events",
               "heap engine + std::function driver",
               "calendar engine + typed events",
               acceptance,
               nodes,
               requests,
               std::move(run)};
    return w;
  };

  std::vector<Workload> workloads;
  // The acceptance workload (ISSUE 7): 1000 nodes, fixed k = 16, load 0.70.
  // 2M measured requests at default scale; --scale full (x5) is the 10M-
  // request configuration the tracked baseline is generated at.
  workloads.push_back(forkjoin("fj-n1000-k16-load70", 1000,
                               sim::TaskCountMode::kFixed, 16, 0.70,
                               2'000'000, /*acceptance=*/true));
  workloads.push_back(forkjoin("fj-n100-all-load70", 100,
                               sim::TaskCountMode::kAllNodes, 0, 0.70,
                               40'000, /*acceptance=*/false));

  {
    const std::uint64_t requests = scaled(2'000'000, scale);
    auto run = [=](Path path) {
      sched::ClosedLoopConfig cfg;
      cfg.num_nodes = 1000;
      cfg.service = dist::make_named("Exponential");
      cfg.tasks_per_request = 16;
      // Nominal per-node load 0.60 at k/N task fan-out; a loose SLO keeps
      // stage-2 admission (the expensive best-k search) off the common path.
      cfg.lambda = 0.60 * 1000.0 / 16.0;
      cfg.slo = {99.0, 25.0};
      cfg.num_requests = requests;
      cfg.seed = seed;
      cfg.record_responses = path == Path::kBaseline;
      cfg.stats_shards = path == Path::kBaseline ? 1 : 16;
      util::Stopwatch watch;
      const sched::ClosedLoopResult res = sched::run_closed_loop(cfg);
      RunOutcome out;
      out.seconds = watch.elapsed_seconds();
      out.count = res.offered;
      out.fingerprint = {static_cast<double>(res.admitted),
                         static_cast<double>(res.rejected),
                         static_cast<double>(res.violations),
                         res.violation_rate,
                         res.mean_predicted_latency,
                         res.response_histogram.percentile(99.0),
                         res.node_tasks.pooled.mean(),
                         res.node_tasks.pooled.variance(),
                         static_cast<double>(res.node_tasks.samples)};
      return out;
    };
    workloads.push_back(Workload{"closed-loop-n1000-k16",
                                 "closed_loop",
                                 "requests",
                                 "1 stats shard + response vector",
                                 "16 stats shards + histogram only",
                                 /*acceptance=*/false,
                                 1000,
                                 requests,
                                 std::move(run)});
  }

  {
    const std::size_t batch = 131072;
    const std::size_t rounds =
        static_cast<std::size_t>(scaled(16, scale, /*floor=*/2));
    auto run = [=](Path path) {
      return path == Path::kBaseline
                 ? run_cancel_heavy<sim::HeapEngine>(seed, batch, rounds)
                 : run_cancel_heavy<sim::Engine>(seed, batch, rounds);
    };
    workloads.push_back(Workload{"engine-cancel-heavy",
                                 "engine",
                                 "events",
                                 "heap engine, tombstones carried to pop",
                                 "calendar engine, ~50% dead compaction",
                                 /*acceptance=*/false,
                                 0,
                                 static_cast<std::uint64_t>(batch) * rounds,
                                 std::move(run)});
    // Record that compaction actually ran (structural claim in the JSON).
    sim::Engine engine;
    util::Rng rng(seed);
    std::vector<sim::Engine::EventId> ids;
    for (std::size_t i = 0; i < batch; ++i) {
      ids.push_back(
          engine.schedule_cancellable(100.0 * rng.uniform(), [] {}));
    }
    for (std::size_t i = 0; i < batch; i += 2) engine.cancel(ids[i]);
    engine.run();
    *compactions_out = engine.compactions();
  }
  return workloads;
}

struct WorkloadResult {
  const Workload* workload = nullptr;
  PathResult baseline;
  PathResult candidate;
  bool identical = false;  ///< baseline == candidate fingerprint (bitwise)
  double speedup() const { return candidate.rate_p50 / baseline.rate_p50; }
};

void write_json(const std::string& path, const BenchOptions& options,
                const std::string& scale_name, std::size_t reps,
                std::uint64_t compactions,
                const std::vector<WorkloadResult>& results) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("bench_cluster: cannot write " + path);
  os << "{\n";
  os << "  \"benchmark\": \"bench_cluster\",\n";
  os << "  \"scale\": \"" << scale_name << "\",\n";
  os << "  \"seed\": " << options.seed << ",\n";
  os << "  \"reps\": " << reps << ",\n";
  os << "  \"baseline_engine\": \"binary heap + std::function handlers "
        "(sim/heap_engine.hpp, pre-change driver)\",\n";
  os << "  \"candidate_engine\": \"two-level calendar queue + typed POD "
        "events (sim/engine.hpp)\",\n";
  os << "  \"cancel_heavy_compactions\": " << compactions << ",\n";
  os << "  \"peak_rss_kib\": " << peak_rss_kib() << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    const auto path_json = [&](const char* label, const PathResult& p) {
      os << "      \"" << label << "\": {\n";
      os << "        \"seconds_p50\": " << json_num(p.seconds_p50) << ",\n";
      os << "        \"events_per_sec_p50\": " << json_num(p.rate_p50)
         << ",\n";
      os << "        \"events_per_sec_p95\": " << json_num(p.rate_p95)
         << "\n";
      os << "      }";
    };
    os << "    {\n";
    os << "      \"name\": \"" << r.workload->name << "\",\n";
    os << "      \"kind\": \"" << r.workload->kind << "\",\n";
    os << "      \"unit\": \"" << r.workload->unit << "\",\n";
    os << "      \"acceptance\": "
       << (r.workload->acceptance ? "true" : "false") << ",\n";
    os << "      \"nodes\": " << r.workload->nodes << ",\n";
    os << "      \"requests\": " << r.workload->requests << ",\n";
    os << "      \"events_per_run\": " << r.candidate.count << ",\n";
    os << "      \"baseline_label\": \"" << r.workload->baseline_label
       << "\",\n";
    os << "      \"candidate_label\": \"" << r.workload->candidate_label
       << "\",\n";
    os << "      \"identical\": " << (r.identical ? "true" : "false")
       << ",\n";
    path_json("baseline", r.baseline);
    os << ",\n";
    path_json("candidate", r.candidate);
    os << ",\n";
    os << "      \"speedup_p50\": " << json_num(r.speedup()) << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace
}  // namespace forktail::bench

int main(int argc, char** argv) {
  using namespace forktail;
  util::CliFlags flags;
  flags.declare("reps", "3", "timed repetitions per (workload, path)");
  flags.declare("min-speedup", "0",
                "fail unless the acceptance row speedup is >= this "
                "(0 disables)");
  flags.declare("out", "BENCH_cluster.json",
                "output JSON path (empty disables the file)");
  flags.declare("metrics-out", "BENCH_cluster.metrics.json",
                "run-telemetry report path (.prom for Prometheus text; "
                "empty disables)");
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, flags, options)) return 0;
  const auto reps_flag = flags.get_int("reps");
  if (reps_flag < 1) throw std::invalid_argument("--reps must be >= 1");
  const auto reps = static_cast<std::size_t>(reps_flag);
  const double min_speedup = flags.get_double("min-speedup");
  const std::string out = flags.get_string("out");
  const std::string metrics_out = flags.get_string("metrics-out");

  bench::print_banner("bench_cluster",
                      "Calendar-queue event engine vs the binary-heap "
                      "baseline at cluster scale",
                      options);

  std::uint64_t compactions = 0;
  const auto workloads = bench::build_workloads(options, &compactions);

  std::vector<bench::WorkloadResult> results;
  results.reserve(workloads.size());
  bool all_identical = true;
  for (const bench::Workload& w : workloads) {
    bench::WorkloadResult r;
    r.workload = &w;
    bench::PathAccumulator baseline(w, bench::Path::kBaseline, reps);
    bench::PathAccumulator candidate(w, bench::Path::kCandidate, reps);
    // Interleave the reps so clock / turbo drift hits both paths equally:
    // each speedup is a ratio of medians over the same window.
    for (std::size_t rep = 0; rep < reps; ++rep) {
      baseline.rep();
      candidate.rep();
    }
    // Bitwise cross-check: the calendar engine must reproduce the heap
    // engine's outputs exactly (== on the doubles, no tolerance) -- the
    // determinism contract of the rewrite.
    r.identical = baseline.warm().fingerprint == candidate.warm().fingerprint;
    r.baseline = baseline.finish();
    r.candidate = candidate.finish();
    all_identical = all_identical && r.identical;
    results.push_back(r);
  }

  util::Table table({"workload", "unit", "count/run", "base_Mev/s",
                     "cand_Mev/s", "speedup", "identical"});
  for (const bench::WorkloadResult& r : results) {
    table.row()
        .str(r.workload->name)
        .str(r.workload->unit)
        .integer(static_cast<long long>(r.candidate.count))
        .num(r.baseline.rate_p50 / 1e6, 2)
        .num(r.candidate.rate_p50 / 1e6, 2)
        .num(r.speedup(), 2)
        .str(r.identical ? "yes" : "NO");
  }
  bench::emit(table, options);

  if (!out.empty()) {
    bench::write_json(out, options, flags.get_string("scale"), reps,
                      compactions, results);
    std::printf("wrote %s (peak RSS %ld KiB, %llu compactions in the "
                "cancel-heavy probe)\n",
                out.c_str(), bench::peak_rss_kib(),
                static_cast<unsigned long long>(compactions));
  }
  if (!metrics_out.empty()) {
    const obs::RunReport report =
        obs::RunReport::capture(obs::Registry::global(), "bench_cluster");
    report.write(metrics_out);
    std::printf("wrote %s (run telemetry%s)\n", metrics_out.c_str(),
                obs::enabled() ? "" : ", observability compiled out");
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_cluster: a workload diverged between the heap and "
                 "calendar paths -- determinism regression\n");
    return 1;
  }
  if (min_speedup > 0.0) {
    for (const bench::WorkloadResult& r : results) {
      if (r.workload->acceptance && r.speedup() < min_speedup) {
        std::fprintf(stderr,
                     "bench_cluster: acceptance row %s speedup %.2fx is "
                     "under the %.2fx bar\n",
                     r.workload->name.c_str(), r.speedup(), min_speedup);
        return 1;
      }
    }
  }
  return 0;
}
