// Ablation: how many task samples does the prediction need?
//
// Section 3 argues that ~1000 task samples (20 seconds at 50 req/s) give a
// "reasonably accurate" estimate of the moments and hence the tail, versus
// ~100k samples (33 minutes) for direct tail measurement.  This bench puts
// numbers on that: for each service distribution it reports
//   - the delta-method prediction standard error at n = 100 / 1k / 10k
//     samples (core/sensitivity),
//   - the empirically realized error spread across many independent
//     n-sample measurement windows drawn in simulation,
//   - the sample count direct measurement needs for the same precision.
#include <cmath>

#include "baselines/direct.hpp"
#include "common.hpp"
#include "core/forktail.hpp"
#include "dist/factory.hpp"
#include "queueing/mg1.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Ablation: sample count",
      "Prediction precision vs measurement window size (N = 100, load 90%)",
      options);

  util::Table table({"distribution", "samples", "delta_stderr%",
                     "realized_stderr%", "n_for_5%", "direct_n_for_p99"});
  for (const char* name : {"Exponential", "Weibull", "TruncPareto", "Empirical"}) {
    const dist::DistPtr service = dist::make_named(name);
    const double lambda = 0.9 / service->mean();
    const auto analytic = queueing::mg1_response(lambda, *service);
    const core::TaskStats truth{analytic.mean, analytic.variance};
    const double k = 100.0;

    for (std::uint64_t n : {100ULL, 1000ULL, 10000ULL}) {
      const auto u = core::prediction_uncertainty(truth, k, 99.0, n);
      // Realized spread: draw many independent n-sample windows from the
      // fitted GE (the model's own view of the response distribution) and
      // re-predict from each window's moments.
      const core::GenExp model = core::GenExp::fit_moments(truth.mean,
                                                           truth.variance);
      util::Rng rng(options.seed);
      stats::Welford spread;
      const int windows = static_cast<int>(bench::scaled(200, options.scale, 50));
      for (int w = 0; w < windows; ++w) {
        stats::Welford window;
        for (std::uint64_t i = 0; i < n; ++i) window.add(model.sample(rng));
        spread.add(core::homogeneous_quantile(
            {window.mean(), window.variance()}, k, 99.0));
      }
      const double realized = std::sqrt(spread.variance()) / spread.mean();
      table.row()
          .str(name)
          .integer(static_cast<long long>(n))
          .num(100.0 * u.stderr_rel, 2)
          .num(100.0 * realized, 2)
          .integer(static_cast<long long>(
              core::samples_for_precision(truth, k, 99.0, 0.05)))
          .integer(static_cast<long long>(baselines::required_samples(99.0)));
    }
  }
  bench::emit(table, options);
  if (!options.csv) {
    std::printf(
        "delta_stderr is the analytic (delta-method) prediction noise;\n"
        "realized_stderr is the Monte-Carlo truth.  'n_for_5%%' is the\n"
        "window size ForkTail needs for a 5%% (1-sigma) prediction;\n"
        "direct p99 measurement needs ~10^4 request samples regardless.\n");
  }
  return 0;
}
