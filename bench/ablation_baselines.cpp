// Ablation: what each modelling ingredient buys.
//
// Compares three predictors against simulation on the same homogeneous
// fork-join systems:
//   - exponential fit  (mean only -- the authors' earlier HotCloud'16 model
//                       that ForkTail's GE fit replaces),
//   - ForkTail GE fit  (mean + variance),
//   - EAT baseline     (exact marginal CDF + copula dependence correction;
//                       phase-type services only).
// Paper context: Section 3 ("this distribution significantly outperforms
// the exponential distribution in terms of tail latency predictive
// accuracy") and the Fig. 3 comparison.
#include "baselines/baseline.hpp"
#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Ablation: baselines",
      "p99 errors: exponential fit vs ForkTail GE fit vs EAT, N = 100",
      options);

  util::Table table({"distribution", "load%", "sim_p99_ms", "expfit_err%",
                     "forktail_err%", "eat_err%"});
  const baselines::BaselineRegistry& registry =
      baselines::BaselineRegistry::global();
  const baselines::Baseline& expfit_baseline = *registry.find("expfit");
  const baselines::Baseline& eat_baseline = *registry.find("eat");
  for (const char* name :
       {"Erlang-2", "Exponential", "HyperExp2", "Weibull", "TruncPareto",
        "Empirical"}) {
    const dist::DistPtr service = dist::make_named(name);
    for (double load : {0.50, 0.80, 0.90}) {
      fjsim::HomogeneousConfig cfg;
      cfg.num_nodes = 100;
      cfg.service = service;
      cfg.load = load;
      cfg.num_requests =
          bench::scaled(50000, options.scale * bench::load_boost(load));
      cfg.warmup_fraction = load >= 0.9 ? 0.3 : 0.25;
      cfg.seed = options.seed;
      auto sim = fjsim::run_homogeneous(cfg);
      const double measured = stats::percentile_inplace(sim.responses, 99.0);
      const core::TaskStats stats{sim.task_stats.mean(),
                                  sim.task_stats.variance()};
      baselines::BaselineInput in;
      in.task_stats = stats;
      in.service = service;
      in.lambda = sim.lambda;
      in.load = load;
      in.cluster_nodes = 100;
      in.fanout = 100;
      in.join = 100;
      in.mean_fanout = 100.0;
      in.single_server_fifo = true;
      in.homogeneous_topology = true;
      in.nk_clean = true;
      const double expfit = expfit_baseline.predict(in, 99.0);
      const double forktail = core::homogeneous_quantile(stats, 100.0, 99.0);
      std::string eat_err = "n/a";
      if (eat_baseline.applicable(in)) {
        eat_err = util::format_fixed(
            stats::relative_error_pct(eat_baseline.predict(in, 99.0), measured),
            1);
      }
      table.row()
          .str(name)
          .num(load * 100.0, 0)
          .num(measured, 2)
          .num(stats::relative_error_pct(expfit, measured), 1)
          .num(stats::relative_error_pct(forktail, measured), 1)
          .str(eat_err);
    }
  }
  bench::emit(table, options);
  if (!options.csv) {
    std::printf(
        "expfit uses the measured mean only; ForkTail adds the variance; EAT\n"
        "adds the full marginal CDF plus a dependence correction (phase-type\n"
        "services only).  The GE fit's gain over expfit concentrates exactly\n"
        "where the service CV differs from 1.\n");
  }
  return 0;
}
