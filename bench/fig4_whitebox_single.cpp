// Figure 4: prediction errors of the 99th percentile response times for
// WHITE-BOX systems with single-server fork nodes.
//
// The service-time distribution is assumed known; task response moments
// come from the Takacs/Pollaczek-Khinchine formulas (Eqs. 10-11), then the
// GE fit and Eq. 13.  Paper shape: Weibull within ~5% everywhere; the
// heavy-tailed Empirical and truncated-Pareto cases within ~17% at 80%
// load and ~5% at 90%, with larger (negative) errors at 50% load.
#include "core/predictor.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 4",
      "White-box prediction errors, single-server fork nodes, k = N",
      options);

  bench::SweepSpec spec;  // defaults match the paper's Figure 4 sweep
  bench::run_error_sweep(
      spec,
      [](const dist::Distribution& service, double lambda,
         const core::TaskStats& /*measured*/, double k, double percentile) {
        return core::whitebox_mg1_quantile(lambda, service, k, percentile);
      },
      options);
  return 0;
}
