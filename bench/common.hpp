// Shared harness for the figure/table reproduction binaries.
//
// Every binary accepts:
//   --scale smoke|default|full   sample-count multiplier (0.1 / 1 / 5)
//   --seed <n>                   master seed
//   --csv true                   emit CSV instead of aligned text tables
//   --threads <n>                sweep worker threads (0 = hardware)
// and prints the same rows/series the corresponding paper exhibit reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/cli.hpp"
#include "util/table.hpp"

namespace forktail::bench {

struct BenchOptions {
  double scale = 1.0;
  std::uint64_t seed = 1;
  bool csv = false;
  /// Worker threads for grid-cell parallel sweeps (ParallelSweepRunner);
  /// 0 = hardware_concurrency, 1 = fully serial.  Output tables are
  /// byte-identical for every value.
  std::size_t threads = 0;
};

/// Parse the standard flags; returns false (after printing usage) on
/// --help.  Extra flags can be declared on `flags` before calling.
bool parse_options(int argc, const char* const* argv, util::CliFlags& flags,
                   BenchOptions& options);
bool parse_options(int argc, const char* const* argv, BenchOptions& options);

/// Scale a sample count, keeping a sane floor.
std::uint64_t scaled(std::uint64_t base, double factor,
                     std::uint64_t floor = 2000);

/// Sample-count multiplier for heavy-traffic points: the p99-of-max
/// estimator is long-range dependent near saturation, so high-load cells
/// need proportionally longer runs to keep measurement noise below the
/// error bands being reported.
inline double load_boost(double load) {
  if (load >= 0.88) return 4.0;
  if (load >= 0.72) return 2.0;
  return 1.0;
}

/// Print the exhibit banner.
void print_banner(const std::string& exhibit, const std::string& description,
                  const BenchOptions& options);

/// Print a table in the selected format.
void emit(const util::Table& table, const BenchOptions& options);

}  // namespace forktail::bench
