// Figure 7: prediction errors of the 99th percentile response times for
// black-box systems with 3-server fork nodes and redundant task issue
// (tail-cutting with a 10 ms threshold ~ p95 of the empirical service
// distribution).
//
// Paper shape: the tail-cutting policy shortens the response tail and
// shrinks the prediction errors relative to Fig. 6 in the high-load
// region.  Our redundancy model uses speculative-execution semantics
// (service-time trigger, kill-on-win); see DESIGN.md for the discussion of
// how this differs from the paper's underspecified policy -- the measured
// tail reduction is reproduced, while mid-load errors remain larger than
// the paper reports.
#include "core/predictor.hpp"
#include "sweep.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 7",
      "Black-box prediction errors, 3-server fork nodes, redundant issue",
      options);

  bench::SweepSpec spec;
  spec.servers_per_node = 3;
  spec.policy = fjsim::Policy::kRedundant;
  spec.redundant_delay = 10.0;
  bench::run_error_sweep(
      spec,
      [](const dist::Distribution& /*service*/, double /*lambda*/,
         const core::TaskStats& measured, double k, double percentile) {
        return core::homogeneous_quantile(measured, k, percentile);
      },
      options);
  return 0;
}
