// Computational-cost comparison (Section 4.1's runtime discussion):
// ForkTail's prediction pipeline is microseconds per quantile -- the paper
// claims "< 5 ms" against EAT's seconds -- making online scheduling
// feasible.  google-benchmark micro-benchmarks for every prediction path
// and for the EAT baseline at two accuracy settings.
//
// Note: our EAT reimplementation (Laplace inversion + Gaussian copula) is
// substantially faster than the original matrix-analytic method, so the
// absolute gap understates the paper's; the scaling with the accuracy
// knob C is the comparable signal.
#include <benchmark/benchmark.h>

#include "baselines/eat.hpp"
#include "baselines/expfit.hpp"
#include "core/forktail.hpp"
#include "dist/factory.hpp"
#include "queueing/mg1.hpp"

namespace {

using namespace forktail;

void BM_GenExpFitMoments(benchmark::State& state) {
  double mean = 42.0;
  const double variance = 2000.0;
  for (auto _ : state) {
    const auto ge = core::GenExp::fit_moments(mean, variance);
    benchmark::DoNotOptimize(ge.alpha());
    mean += 1e-9;  // defeat caching
  }
}
BENCHMARK(BM_GenExpFitMoments);

void BM_HomogeneousQuantile(benchmark::State& state) {
  const auto k = static_cast<double>(state.range(0));
  core::TaskStats stats{42.0, 2000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::homogeneous_quantile(stats, k, 99.0));
    stats.mean += 1e-9;
  }
}
BENCHMARK(BM_HomogeneousQuantile)->Arg(100)->Arg(1000);

void BM_InhomogeneousQuantile(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<core::TaskStats> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i] = {40.0 + static_cast<double>(i % 7), 1900.0 + 10.0 * (i % 11)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::inhomogeneous_quantile(nodes, 99.0));
    nodes[0].mean += 1e-9;
  }
}
BENCHMARK(BM_InhomogeneousQuantile)->Arg(32)->Arg(1000);

void BM_MixtureQuantile(benchmark::State& state) {
  const auto mixture = core::TaskCountMixture::uniform_int(10, 990);
  core::TaskStats stats{42.0, 2000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::mixture_quantile(stats, mixture, 99.0));
    stats.mean += 1e-9;
  }
}
BENCHMARK(BM_MixtureQuantile);

void BM_WhiteBoxPipeline(benchmark::State& state) {
  const auto service = dist::make_named("Empirical");
  double lambda = 0.9 / service->mean();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::whitebox_mg1_quantile(lambda, *service, 1000.0, 99.0));
    lambda += 1e-12;
  }
}
BENCHMARK(BM_WhiteBoxPipeline);

void BM_ExponentialFitBaseline(benchmark::State& state) {
  core::TaskStats stats{42.0, 2000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::exponential_fit_quantile(stats, 1000.0, 99.0));
    stats.mean += 1e-9;
  }
}
BENCHMARK(BM_ExponentialFitBaseline);

void BM_EatConstruct(benchmark::State& state) {
  const auto service = dist::make_named("Exponential");
  const double lambda = 0.9 / service->mean();
  const auto accuracy = static_cast<int>(state.range(0));
  for (auto _ : state) {
    baselines::EatPredictor eat(lambda, service, 1000,
                                {.accuracy = accuracy,
                                 .calibration_samples = 200000,
                                 .calibration_seed = 1});
    benchmark::DoNotOptimize(eat.copula_correlation());
  }
}
BENCHMARK(BM_EatConstruct)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_EatQuantile(benchmark::State& state) {
  const auto service = dist::make_named("Exponential");
  const double lambda = 0.9 / service->mean();
  const auto accuracy = static_cast<int>(state.range(0));
  baselines::EatPredictor eat(lambda, service, 1000, {.accuracy = accuracy});
  double p = 99.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eat.quantile(p));
    p = p == 99.0 ? 99.0000001 : 99.0;  // defeat caching
  }
}
BENCHMARK(BM_EatQuantile)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_OnlinePredictorUpdate(benchmark::State& state) {
  core::OnlineTailPredictor online(1, 20.0, 30);
  util::Rng rng(1);
  double now = 0.0;
  for (auto _ : state) {
    now += 0.001;
    online.record(0, now, rng.exponential(0.042));
    benchmark::DoNotOptimize(online.node_stats(0));
  }
}
BENCHMARK(BM_OnlinePredictorUpdate);

}  // namespace

BENCHMARK_MAIN();
