// Extension exhibit: multi-stage workflow prediction accuracy.
//
// The paper evaluates a single fork-join stage; real request workflows
// chain several (its own Introduction's point).  This bench validates
// core::PipelinePredictor -- per-stage GE composition plus moment-matched
// stage sums -- against the pipeline simulator across loads and stage
// mixes, reporting end-to-end p99 errors.  Expected shape: the same
// heavy-load convergence as the single-stage results, since both the
// within-stage (Eq. 4) and the new across-stage independence assumptions
// sharpen as queueing noise dominates.
#include <string>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "dist/factory.hpp"
#include "fjsim/pipeline.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

namespace {

using namespace forktail;

struct Workflow {
  std::string name;
  std::vector<fjsim::PipelineStageConfig> stages;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Pipeline validation (extension)",
      "End-to-end p99 errors for multi-stage fork-join workflows", options);

  const std::vector<Workflow> workflows = {
      {"2-tier kv (64+16)",
       {{64, dist::make_named("Empirical")},
        {16, dist::make_named("Exponential")}}},
      {"3-tier search (64+16+4)",
       {{64, dist::make_named("Empirical")},
        {16, dist::make_named("Exponential")},
        {4, dist::make_named("Weibull")}}},
      {"balanced heavy (32+32)",
       {{32, dist::make_named("TruncPareto")},
        {32, dist::make_named("TruncPareto")}}},
      {"deep (8x4 tiers)",
       {{8, dist::make_named("Exponential")},
        {8, dist::make_named("Weibull")},
        {8, dist::make_named("Exponential")},
        {8, dist::make_named("Weibull")}}},
  };

  util::Table table({"workflow", "load%", "sim_p99_ms", "pred_p99_ms",
                     "error%", "bottleneck"});
  for (const Workflow& wf : workflows) {
    for (double load : {0.50, 0.75, 0.80, 0.90}) {
      fjsim::PipelineConfig cfg;
      cfg.stages = wf.stages;
      cfg.load = load;
      cfg.num_requests =
          bench::scaled(40000, options.scale * bench::load_boost(load));
      cfg.warmup_fraction = load >= 0.9 ? 0.3 : 0.25;
      cfg.seed = options.seed;
      auto sim = fjsim::run_pipeline(cfg);

      std::vector<core::StageSpec> specs;
      for (std::size_t s = 0; s < wf.stages.size(); ++s) {
        specs.push_back({"s" + std::to_string(s),
                         {sim.stage_task_stats[s].mean(),
                          sim.stage_task_stats[s].variance()},
                         static_cast<double>(wf.stages[s].num_nodes)});
      }
      const core::PipelinePredictor predictor(specs);
      const double measured = stats::percentile_inplace(sim.responses, 99.0);
      const double predicted = predictor.quantile(99.0);
      table.row()
          .str(wf.name)
          .num(load * 100.0, 0)
          .num(measured, 2)
          .num(predicted, 2)
          .num(stats::relative_error_pct(predicted, measured), 1)
          .str(specs[predictor.bottleneck_stage(99.0)].name);
    }
  }
  bench::emit(table, options);
  return 0;
}
