// Figure 13 + Section 5 sensitivity analysis: simulated vs predicted 99th
// percentile response times across the 78-95% load range for 1000-node
// systems, plus the implied resource over/under-provisioning margin.
//
// For each load point the bench reports the load at which the *simulated*
// curve reaches the predicted latency; the difference is the provisioning
// margin the prediction error translates into.  Paper shape: exponential /
// Weibull overestimate slightly (<= 1% overprovisioning); truncated-Pareto
// / empirical underestimate by up to ~4% at 80% load and ~2% at 90%.
#include <vector>

#include "common.hpp"
#include "core/predictor.hpp"
#include "core/provisioning.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 13",
      "Sensitivity: simulated vs predicted p99 across 78-95% load, N = 1000",
      options);

  const double loads[] = {0.78, 0.80, 0.82, 0.84, 0.86, 0.88,
                          0.90, 0.92, 0.94, 0.95};

  util::Table table({"distribution", "load%", "sim_p99_ms", "pred_p99_ms",
                     "error%", "equiv_load%", "margin_pp"});
  for (const char* name : {"Exponential", "Weibull", "TruncPareto", "Empirical"}) {
    const dist::DistPtr service = dist::make_named(name);
    std::vector<double> load_axis;
    std::vector<double> sim_curve;
    std::vector<double> pred_curve;
    for (double load : loads) {
      fjsim::HomogeneousConfig cfg;
      cfg.num_nodes = 1000;
      cfg.service = service;
      cfg.load = load;
      cfg.num_requests =
          bench::scaled(15000, options.scale * bench::load_boost(load));
      cfg.warmup_fraction = load >= 0.92 ? 0.35 : 0.3;
      cfg.seed = options.seed;
      const auto sim = fjsim::run_homogeneous(cfg);
      load_axis.push_back(load * 100.0);
      sim_curve.push_back(stats::percentile(sim.responses, 99.0));
      pred_curve.push_back(core::homogeneous_quantile(
          {sim.task_stats.mean(), sim.task_stats.variance()}, 1000.0, 99.0));
    }
    for (std::size_t i = 0; i < load_axis.size(); ++i) {
      // The load at which the simulated curve reaches the predicted value:
      // > load means the prediction overestimates (overprovisioning margin),
      // < load means it underestimates.
      const double equiv =
          core::equivalent_load(load_axis, sim_curve, pred_curve[i]);
      table.row()
          .str(name)
          .num(load_axis[i], 0)
          .num(sim_curve[i], 2)
          .num(pred_curve[i], 2)
          .num(stats::relative_error_pct(pred_curve[i], sim_curve[i]), 1)
          .num(equiv, 2)
          .num(equiv - load_axis[i], 2);
    }
  }
  bench::emit(table, options);
  return 0;
}
