// Figure 13 + Section 5 sensitivity analysis: simulated vs predicted 99th
// percentile response times across the 78-95% load range for 1000-node
// systems, plus the implied resource over/under-provisioning margin.
//
// For each load point the bench reports the load at which the *simulated*
// curve reaches the predicted latency; the difference is the provisioning
// margin the prediction error translates into.  Paper shape: exponential /
// Weibull overestimate slightly (<= 1% overprovisioning); truncated-Pareto
// / empirical underestimate by up to ~4% at 80% load and ~2% at 90%.
#include <array>
#include <vector>

#include "common.hpp"
#include "core/predictor.hpp"
#include "core/provisioning.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "parallel_runner.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 13",
      "Sensitivity: simulated vs predicted p99 across 78-95% load, N = 1000",
      options);

  const std::array<const char*, 4> dists = {"Exponential", "Weibull",
                                            "TruncPareto", "Empirical"};
  const std::array<double, 10> loads = {0.78, 0.80, 0.82, 0.84, 0.86,
                                        0.88, 0.90, 0.92, 0.94, 0.95};

  struct Cell {
    double measured;
    double predicted;
  };
  const bench::ParallelSweepRunner runner(options.threads);
  const auto cells = runner.map<Cell>(
      dists.size() * loads.size(), options.seed,
      [&](std::size_t i, util::Rng& rng) -> Cell {
        const double load = loads[i % loads.size()];
        const char* name = dists[i / loads.size()];

        fjsim::HomogeneousConfig cfg;
        cfg.num_nodes = 1000;
        cfg.service = dist::make_named(name);
        cfg.load = load;
        cfg.num_requests =
            bench::scaled(15000, options.scale * bench::load_boost(load));
        cfg.warmup_fraction = load >= 0.92 ? 0.35 : 0.3;
        cfg.seed = rng.next_u64();
        cfg.max_parallelism = 1;
        auto sim = fjsim::run_homogeneous(cfg);
        return {stats::percentile_inplace(sim.responses, 99.0),
                core::homogeneous_quantile(
                    {sim.task_stats.mean(), sim.task_stats.variance()}, 1000.0,
                    99.0)};
      });

  util::Table table({"distribution", "load%", "sim_p99_ms", "pred_p99_ms",
                     "error%", "equiv_load%", "margin_pp"});
  for (std::size_t d = 0; d < dists.size(); ++d) {
    const char* name = dists[d];
    std::vector<double> load_axis;
    std::vector<double> sim_curve;
    std::vector<double> pred_curve;
    for (std::size_t l = 0; l < loads.size(); ++l) {
      const Cell& cell = cells[d * loads.size() + l];
      load_axis.push_back(loads[l] * 100.0);
      sim_curve.push_back(cell.measured);
      pred_curve.push_back(cell.predicted);
    }
    for (std::size_t i = 0; i < load_axis.size(); ++i) {
      // The load at which the simulated curve reaches the predicted value:
      // > load means the prediction overestimates (overprovisioning margin),
      // < load means it underestimates.
      const double equiv =
          core::equivalent_load(load_axis, sim_curve, pred_curve[i]);
      table.row()
          .str(name)
          .num(load_axis[i], 0)
          .num(sim_curve[i], 2)
          .num(pred_curve[i], 2)
          .num(stats::relative_error_pct(pred_curve[i], sim_curve[i]), 1)
          .num(equiv, 2)
          .num(equiv - load_axis[i], 2);
    }
  }
  bench::emit(table, options);
  return 0;
}
