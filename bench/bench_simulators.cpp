// Simulator throughput: tasks/second of the Lindley fast path vs the
// general event-driven engine vs the queued redundant node -- the ablation
// behind DESIGN.md's "Lindley fast path vs general event engine" choice.
#include <benchmark/benchmark.h>

#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/node.hpp"
#include "fjsim/redundant_node.hpp"
#include "sim/network.hpp"

namespace {

using namespace forktail;

void BM_FastNodeReplay(benchmark::State& state) {
  const auto service = dist::make_named("Exponential");
  const double lambda = 0.8 / service->mean();
  for (auto _ : state) {
    fjsim::FastNode node(service.get(), 1, fjsim::Policy::kSingle, util::Rng(1));
    util::Rng arr(2);
    double t = 0.0;
    double sink = 0.0;
    auto cb = [&](std::uint64_t, double a, double d) { sink += d - a; };
    for (int i = 0; i < 100000; ++i) {
      t += arr.exponential(1.0 / lambda);
      node.submit_task(t, static_cast<std::uint64_t>(i), cb);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_FastNodeReplay)->Unit(benchmark::kMillisecond);

void BM_RedundantNodeReplay(benchmark::State& state) {
  const auto service = dist::make_named("Empirical");
  const double lambda = 3.0 * 0.8 / service->mean();
  for (auto _ : state) {
    fjsim::RedundantNode node(service.get(), 3, 10.0, util::Rng(1));
    util::Rng arr(2);
    double t = 0.0;
    double sink = 0.0;
    auto cb = [&](std::uint64_t, double a, double d) { sink += d - a; };
    for (int i = 0; i < 100000; ++i) {
      t += arr.exponential(1.0 / lambda);
      node.submit_task(t, static_cast<std::uint64_t>(i), cb);
    }
    node.flush(cb);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_RedundantNodeReplay)->Unit(benchmark::kMillisecond);

void BM_EventDrivenFjSystem(benchmark::State& state) {
  sim::FjConfig cfg;
  cfg.num_nodes = 16;
  cfg.service = dist::make_named("Exponential");
  cfg.num_requests = 5000;
  cfg.warmup_fraction = 0.2;
  cfg.seed = 3;
  cfg.lambda = sim::lambda_for_nominal_load(cfg, 0.8);
  for (auto _ : state) {
    const auto r = sim::run_fj_simulation(cfg);
    benchmark::DoNotOptimize(r.request_responses.data());
  }
  state.SetItemsProcessed(state.iterations() * 5000 * 16);
}
BENCHMARK(BM_EventDrivenFjSystem)->Unit(benchmark::kMillisecond);

void BM_FastHomogeneousSystem(benchmark::State& state) {
  fjsim::HomogeneousConfig cfg;
  cfg.num_nodes = 16;
  cfg.service = dist::make_named("Exponential");
  cfg.load = 0.8;
  cfg.num_requests = 5000;
  cfg.warmup_fraction = 0.2;
  cfg.seed = 3;
  for (auto _ : state) {
    const auto r = fjsim::run_homogeneous(cfg);
    benchmark::DoNotOptimize(r.responses.data());
  }
  state.SetItemsProcessed(state.iterations() * 5000 * 16);
}
BENCHMARK(BM_FastHomogeneousSystem)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
