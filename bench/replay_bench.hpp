// Self-timing benchmark for the batched replay engine.
//
// Runs a fixed roster of fork-join replay workloads twice each -- once on
// the scalar reference path (batch = 1, the pre-batching code) and once on
// the batched path (batch = 0, the default block size) -- with one warm-up
// run plus `reps` timed repetitions per path, and reports task throughput
// per path plus the batched/scalar speedup.  Because both paths are
// bit-identical by contract, the engine also cross-validates them: the p99
// of the measured responses must compare EQUAL (==, not approximately)
// between the two paths, or the run fails.
//
// Results go to stdout as a table and to a JSON file (BENCH_replay.json by
// default) tracked in the repository as the performance baseline; see
// docs/performance.md for how to read it.
#pragma once

#include <cstdint>
#include <string>

namespace forktail::bench {

struct ReplayBenchOptions {
  double scale = 1.0;        ///< sample-count multiplier (see --scale)
  std::string scale_name = "default";
  std::uint64_t seed = 1;
  std::size_t reps = 5;      ///< timed repetitions per (workload, path)
  std::size_t threads = 1;   ///< fjsim worker parallelism (0 = pool width)
  bool csv = false;
  /// Output JSON path; empty disables the file.
  std::string out = "BENCH_replay.json";
  /// Observability RunReport path (see docs/observability.md); written
  /// alongside the baseline.  A ".prom" suffix selects Prometheus text
  /// exposition instead of JSON; empty disables the file.
  std::string metrics_out = "BENCH_replay.metrics.json";
};

/// Run the suite.  Returns 0 on success, 1 if any workload's scalar and
/// batched p99 checksums differ (a determinism regression).
int run_replay_bench(const ReplayBenchOptions& options);

}  // namespace forktail::bench
