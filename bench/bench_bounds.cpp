// Certified-bracket benchmark: the (n, k) linear-transformation bounds
// (baselines/linear_bounds.hpp) against perfect-sampling ground truth
// (fjsim/perfect_sampler.hpp).
//
//   bench_bounds [--scale smoke|default|full] [--seed N] [--csv true]
//                [--out BENCH_bounds.json]
//
// Every row draws its responses with sampler = "perfect" -- each response
// is an exact stationary draw, so the comparison carries no warm-up bias:
// if the sample's confidence interval misses the certified bracket, the
// bracket (or the sampler) is wrong, full stop.  Two containment claims
// are tracked per row:
//   * contained           -- the measured p99's 99% order-statistic CI
//                            overlaps [lower, upper].  The bounds certify
//                            the TRUE quantile, so this must hold up to CI
//                            noise (< 1% of rows on a fresh seed).
//   * forktail_contained  -- ForkTail's black-box prediction lies inside
//                            the bracket: the paper's model is consistent
//                            with what is provable about the system.
// The tracked BENCH_bounds.json pins both at 100% for these rows;
// tools/perf_gate.py fails CI when either claim regresses or brackets
// widen materially at the same scale.
//
// Row selection is deliberate: the association bound is near-tight for
// exponential homogeneous systems, so those rows run at moderate load
// where ForkTail's GE fit sits safely inside; heavy-tailed services only
// admit Chernoff-grade bounds whose generous slack makes containment
// structural rather than statistical.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "stats/percentile.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace forktail::bench {
namespace {

struct RowSpec {
  std::string name;
  scenario::Topology topology;
  std::string dist;
  std::size_t nodes;
  int k;  ///< 0 = all nodes (homogeneous)
  double load;
  std::uint64_t base_draws;
};

struct RowResult {
  RowSpec spec;
  std::uint64_t draws = 0;
  double measured = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double forktail = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  bool certified = false;
  bool contained = false;
  bool forktail_contained = false;
  double seconds = 0.0;
};

/// 99% distribution-free confidence interval for the q-quantile from order
/// statistics: indices m*q -+ z*sqrt(m q (1-q)), z = 2.576.
void quantile_ci(std::vector<double>& sorted, double q, double* lo,
                 double* hi) {
  std::sort(sorted.begin(), sorted.end());
  const double m = static_cast<double>(sorted.size());
  const double half = 2.576 * std::sqrt(m * q * (1.0 - q));
  const auto clamp_index = [&](double j) {
    return static_cast<std::size_t>(
        std::min(m - 1.0, std::max(0.0, std::round(j))));
  };
  *lo = sorted[clamp_index(m * q - half - 1.0)];
  *hi = sorted[clamp_index(m * q + half)];
}

std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

RowResult run_row(const RowSpec& row, const BenchOptions& options) {
  scenario::ScenarioSpec spec;
  spec.name = row.name;
  spec.topology = row.topology;
  spec.nodes = row.nodes;
  spec.service.dist = row.dist;
  spec.load = row.load;
  if (row.k > 0) {
    spec.k.mode = scenario::KSpec::Mode::kFixed;
    spec.k.fixed = row.k;
  }
  spec.requests = scaled(row.base_draws, options.scale);
  spec.sampler = scenario::Sampler::kPerfect;
  spec.seed = options.seed;

  util::Stopwatch watch;
  scenario::Outcome outcome = scenario::SimulatorRegistry::global().run(spec);

  RowResult out;
  out.spec = row;
  out.draws = outcome.responses.size();
  out.forktail =
      scenario::PredictorRegistry::global().find("forktail")->predict(outcome,
                                                                      99.0);
  const baselines::Bracket bracket = scenario::certified_bracket(outcome, 99.0);
  out.lower = bracket.lower;
  out.upper = bracket.upper;
  out.certified = bracket.certified;

  quantile_ci(outcome.responses, 0.99, &out.ci_lo, &out.ci_hi);
  out.measured = stats::percentile(outcome.responses, 99.0);
  out.seconds = watch.elapsed_seconds();

  // CI-overlap containment: the bracket certifies the TRUE quantile, and
  // the CI covers it with 99% confidence, so requiring overlap (not point
  // membership) keeps the claim sound under sampling noise.
  out.contained =
      bracket.certified && out.ci_hi >= bracket.lower && out.ci_lo <= bracket.upper;
  out.forktail_contained = bracket.certified && bracket.contains(out.forktail);
  return out;
}

void write_json(const std::string& path, const BenchOptions& options,
                const std::string& scale_name,
                const std::vector<RowResult>& results) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("bench_bounds: cannot write " + path);
  std::size_t contained = 0;
  std::size_t ft_contained = 0;
  for (const RowResult& r : results) {
    contained += r.contained ? 1 : 0;
    ft_contained += r.forktail_contained ? 1 : 0;
  }
  os << "{\n";
  os << "  \"benchmark\": \"bench_bounds\",\n";
  os << "  \"scale\": \"" << scale_name << "\",\n";
  os << "  \"seed\": " << options.seed << ",\n";
  os << "  \"percentile\": 99.0,\n";
  os << "  \"ground_truth\": \"perfect sampler (exact stationary draws; "
        "fjsim/perfect_sampler.hpp)\",\n";
  os << "  \"containment_rate\": "
     << json_num(static_cast<double>(contained) /
                 static_cast<double>(results.size()))
     << ",\n";
  os << "  \"forktail_containment_rate\": "
     << json_num(static_cast<double>(ft_contained) /
                 static_cast<double>(results.size()))
     << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RowResult& r = results[i];
    os << "    {\n";
    os << "      \"name\": \"" << r.spec.name << "\",\n";
    os << "      \"topology\": \""
       << scenario::topology_name(r.spec.topology) << "\",\n";
    os << "      \"dist\": \"" << r.spec.dist << "\",\n";
    os << "      \"nodes\": " << r.spec.nodes << ",\n";
    os << "      \"k\": " << r.spec.k << ",\n";
    os << "      \"load\": " << json_num(r.spec.load) << ",\n";
    os << "      \"draws\": " << r.draws << ",\n";
    os << "      \"measured_ms\": " << json_num(r.measured) << ",\n";
    os << "      \"ci_lo_ms\": " << json_num(r.ci_lo) << ",\n";
    os << "      \"ci_hi_ms\": " << json_num(r.ci_hi) << ",\n";
    os << "      \"forktail_ms\": " << json_num(r.forktail) << ",\n";
    os << "      \"lower_ms\": " << json_num(r.lower) << ",\n";
    os << "      \"upper_ms\": " << json_num(r.upper) << ",\n";
    os << "      \"width_rel\": "
       << json_num((r.upper - r.lower) / r.upper) << ",\n";
    os << "      \"certified\": " << (r.certified ? "true" : "false")
       << ",\n";
    os << "      \"contained\": " << (r.contained ? "true" : "false")
       << ",\n";
    os << "      \"forktail_contained\": "
       << (r.forktail_contained ? "true" : "false") << ",\n";
    os << "      \"seconds\": " << json_num(r.seconds) << "\n";
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace
}  // namespace forktail::bench

int main(int argc, char** argv) {
  using namespace forktail;
  util::CliFlags flags;
  flags.declare("out", "BENCH_bounds.json",
                "output JSON path (empty disables the file)");
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, flags, options)) return 0;
  const std::string out = flags.get_string("out");

  bench::print_banner("bench_bounds",
                      "Certified (n, k) brackets vs perfect-sampling "
                      "ground truth, p99",
                      options);

  // Draw budgets reflect the CFTP cost model (docs/performance.md):
  // coalescence depth grows like 1 / ((1 - rho) * theta), so high-load and
  // wide-fan-out rows get smaller budgets.
  const std::vector<bench::RowSpec> rows = {
      {"hom-n8-exp-load70", scenario::Topology::kHomogeneous, "Exponential",
       8, 0, 0.70, 20000},
      {"hom-n8-erlang2-load70", scenario::Topology::kHomogeneous, "Erlang-2",
       8, 0, 0.70, 30000},
      {"hom-n16-hyperexp2-load50", scenario::Topology::kHomogeneous,
       "HyperExp2", 16, 0, 0.50, 20000},
      {"hom-n4-empirical-load60", scenario::Topology::kHomogeneous,
       "Empirical", 4, 0, 0.60, 30000},
      {"subset-n64-k16-exp-load50", scenario::Topology::kSubset,
       "Exponential", 64, 16, 0.50, 20000},
      {"subset-n64-k16-erlang2-load70", scenario::Topology::kSubset,
       "Erlang-2", 64, 16, 0.70, 15000},
      {"subset-n64-k16-pareto-load80", scenario::Topology::kSubset,
       "TruncPareto", 64, 16, 0.80, 12000},
  };

  std::vector<bench::RowResult> results;
  results.reserve(rows.size());
  for (const bench::RowSpec& row : rows) {
    results.push_back(bench::run_row(row, options));
  }

  util::Table table({"row", "draws", "p99_ms", "ci", "forktail_ms",
                     "lower_ms", "upper_ms", "contained", "ft_in", "sec"});
  for (const bench::RowResult& r : results) {
    table.row()
        .str(r.spec.name)
        .integer(static_cast<long long>(r.draws))
        .num(r.measured, 2)
        .str("[" + util::format_fixed(r.ci_lo, 2) + ", " +
             util::format_fixed(r.ci_hi, 2) + "]")
        .num(r.forktail, 2)
        .num(r.lower, 2)
        .num(r.upper, 2)
        .str(r.contained ? "yes" : "NO")
        .str(r.forktail_contained ? "yes" : "NO")
        .num(r.seconds, 2);
  }
  bench::emit(table, options);

  if (!out.empty()) {
    bench::write_json(out, options, flags.get_string("scale"), results);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
