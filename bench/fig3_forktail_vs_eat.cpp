// Figure 3: prediction errors of the 99th percentile response times for
// ForkTail and the EAT baseline, homogeneous M/G/1 fork-join networks.
//
// Paper sweep: Erlang-2 / Exponential / Hyperexponential-2 service (all
// mean 4.22 ms), loads 10% / 50% / 90%, N = 100 / 500 / 1000 nodes.
// Paper shape: EAT within a few percent everywhere; ForkTail mostly
// within 10% across the whole load range for these light-tailed cases.
#include <vector>

#include "baselines/baseline.hpp"
#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace forktail;

std::uint64_t samples_for(std::size_t nodes, double load, double scale) {
  std::uint64_t base = 15000;
  if (nodes <= 100) {
    base = 60000;
  } else if (nodes <= 500) {
    base = 25000;
  }
  return bench::scaled(base, scale * bench::load_boost(load));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner(
      "Figure 3",
      "ForkTail vs EAT, 99th percentile errors (M/G/1 fork-join, k = N)",
      options);

  util::Table table({"distribution", "load%", "nodes", "sim_p99_ms",
                     "forktail_p99_ms", "forktail_err%", "eat_p99_ms",
                     "eat_err%", "forktail_ms", "eat_ms"});

  const std::vector<std::string> dists = {"Erlang-2", "Exponential", "HyperExp2"};
  const double loads[] = {0.10, 0.50, 0.90};
  const std::size_t node_counts[] = {100, 500, 1000};
  const baselines::Baseline& eat =
      *baselines::BaselineRegistry::global().find("eat");

  for (const auto& name : dists) {
    const dist::DistPtr service = dist::make_named(name);
    for (double load : loads) {
      const double lambda = load / service->mean();
      for (std::size_t nodes : node_counts) {
        fjsim::HomogeneousConfig cfg;
        cfg.num_nodes = nodes;
        cfg.service = service;
        cfg.load = load;
        cfg.num_requests = samples_for(nodes, load, options.scale);
        cfg.warmup_fraction = 0.25;
        cfg.seed = options.seed;
        auto sim = fjsim::run_homogeneous(cfg);
        const double measured = stats::percentile_inplace(sim.responses, 99.0);

        util::Stopwatch ft_watch;
        const double forktail = core::whitebox_mg1_quantile(
            lambda, *service, static_cast<double>(nodes), 99.0);
        const double ft_ms = ft_watch.elapsed_ms();

        baselines::BaselineInput in;
        in.lambda = lambda;
        in.load = load;
        in.service = service;
        in.cluster_nodes = nodes;
        in.fanout = static_cast<int>(nodes);
        in.join = in.fanout;
        in.mean_fanout = static_cast<double>(nodes);
        in.single_server_fifo = true;
        in.homogeneous_topology = true;
        in.nk_clean = true;

        util::Stopwatch eat_watch;
        const double eat_p99 = eat.predict(in, 99.0);
        const double eat_ms = eat_watch.elapsed_ms();

        table.row()
            .str(name)
            .num(load * 100.0, 0)
            .integer(static_cast<long long>(nodes))
            .num(measured, 2)
            .num(forktail, 2)
            .num(stats::relative_error_pct(forktail, measured), 1)
            .num(eat_p99, 2)
            .num(stats::relative_error_pct(eat_p99, measured), 1)
            .num(ft_ms, 3)
            .num(eat_ms, 1);
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
