// Table 3: errors in the 99th percentile prediction when tracking request
// groups with a given number of tasks (k in {10, 400, 500, 600, 900}) at
// 90% load on a 1000-node cluster.
//
// Paper shape: all errors well within 10%.  Each (distribution, k) cell
// also reports the certified [lower, upper] bracket from the
// linear-transformation bounds (baselines/linear_bounds.hpp) and flags
// predictions that fall outside it: "yes" rows mean ForkTail is provably
// wrong for that cell, not merely far from the finite-sample estimate.
// Heavy-tailed services only admit Chernoff-grade bounds, so their
// brackets are wide but still certified.
#include <limits>

#include "common.hpp"
#include "scenario/registry.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner("Table 3",
                      "Per-k tracking errors (%) at 90% load, N = 1000",
                      options);

  const int ks[] = {10, 400, 500, 600, 900};
  util::Table table({"distribution", "k", "sim_p99_ms", "forktail_p99_ms",
                     "err%", "lower_ms", "upper_ms", "out_of_bracket"});
  for (const char* name : {"Exponential", "TruncPareto", "Empirical"}) {
    for (int k : ks) {
      scenario::ScenarioSpec cell;
      cell.topology = scenario::Topology::kSubset;
      cell.nodes = 1000;
      cell.service.dist = name;
      cell.load = 0.90;
      cell.k.mode = scenario::KSpec::Mode::kFixed;
      cell.k.fixed = k;
      cell.requests = bench::scaled(k >= 500 ? 12000 : 20000,
                                    options.scale * bench::load_boost(0.9));
      cell.warmup_fraction = 0.3;
      cell.seed = options.seed;
      auto sim = scenario::SimulatorRegistry::global().run(cell);
      const double measured = stats::percentile_inplace(sim.responses, 99.0);
      const double predicted =
          scenario::PredictorRegistry::global().find("forktail")->predict(sim,
                                                                          99.0);
      const baselines::Bracket bracket = scenario::certified_bracket(sim, 99.0);
      auto row = table.row();
      row.str(name)
          .integer(k)
          .num(measured, 2)
          .num(predicted, 2)
          .num(stats::relative_error_pct(predicted, measured), 2);
      if (bracket.certified) {
        row.num(bracket.lower, 2)
            .num(bracket.upper, 2)
            .str(bracket.contains(predicted) ? "no" : "yes");
      } else {
        row.str("n/a").str("n/a").str("n/a");
      }
    }
  }
  bench::emit(table, options);
  return 0;
}
