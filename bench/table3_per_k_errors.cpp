// Table 3: errors in the 99th percentile prediction when tracking request
// groups with a given number of tasks (k in {10, 400, 500, 600, 900}) at
// 90% load on a 1000-node cluster.
//
// Paper shape: all errors well within 10%.
#include "common.hpp"
#include "core/predictor.hpp"
#include "dist/factory.hpp"
#include "fjsim/subset.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner("Table 3",
                      "Per-k tracking errors (%) at 90% load, N = 1000",
                      options);

  const int ks[] = {10, 400, 500, 600, 900};
  util::Table table(
      {"distribution", "k=10", "k=400", "k=500", "k=600", "k=900"});
  for (const char* name : {"Exponential", "TruncPareto", "Empirical"}) {
    const dist::DistPtr service = dist::make_named(name);
    auto row = table.row();
    row.str(name);
    for (int k : ks) {
      fjsim::SubsetConfig cfg;
      cfg.num_nodes = 1000;
      cfg.service = service;
      cfg.load = 0.90;
      cfg.k_mode = fjsim::KMode::kFixed;
      cfg.k_fixed = k;
      cfg.num_requests = bench::scaled(k >= 500 ? 12000 : 20000,
                                       options.scale * bench::load_boost(0.9));
      cfg.warmup_fraction = 0.3;
      cfg.seed = options.seed;
      auto sim = fjsim::run_subset(cfg);
      const double measured = stats::percentile_inplace(sim.responses, 99.0);
      const double predicted = core::homogeneous_quantile(
          {sim.task_stats.mean(), sim.task_stats.variance()},
          static_cast<double>(k), 99.0);
      row.num(stats::relative_error_pct(predicted, measured), 2);
    }
  }
  bench::emit(table, options);
  return 0;
}
