// Table 3: errors in the 99th percentile prediction when tracking request
// groups with a given number of tasks (k in {10, 400, 500, 600, 900}) at
// 90% load on a 1000-node cluster.
//
// Paper shape: all errors well within 10%.
#include "common.hpp"
#include "scenario/registry.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace forktail;
  bench::BenchOptions options;
  if (!bench::parse_options(argc, argv, options)) return 0;
  bench::print_banner("Table 3",
                      "Per-k tracking errors (%) at 90% load, N = 1000",
                      options);

  const int ks[] = {10, 400, 500, 600, 900};
  util::Table table(
      {"distribution", "k=10", "k=400", "k=500", "k=600", "k=900"});
  for (const char* name : {"Exponential", "TruncPareto", "Empirical"}) {
    auto row = table.row();
    row.str(name);
    for (int k : ks) {
      scenario::ScenarioSpec cell;
      cell.topology = scenario::Topology::kSubset;
      cell.nodes = 1000;
      cell.service.dist = name;
      cell.load = 0.90;
      cell.k.mode = scenario::KSpec::Mode::kFixed;
      cell.k.fixed = k;
      cell.requests = bench::scaled(k >= 500 ? 12000 : 20000,
                                    options.scale * bench::load_boost(0.9));
      cell.warmup_fraction = 0.3;
      cell.seed = options.seed;
      auto sim = scenario::SimulatorRegistry::global().run(cell);
      const double measured = stats::percentile_inplace(sim.responses, 99.0);
      const double predicted =
          scenario::PredictorRegistry::global().find("forktail")->predict(sim,
                                                                          99.0);
      row.num(stats::relative_error_pct(predicted, measured), 2);
    }
  }
  bench::emit(table, options);
  return 0;
}
