// Online prediction vs direct measurement (the Section 2 / Section 3
// argument): ForkTail needs two moments from a short sliding window, while
// direct tail measurement needs orders of magnitude more samples.
//
// The example streams task completions from a nonstationary workload (the
// load steps from 80% to 90% mid-run), maintains a 20-second sliding
// window, and prints the predicted p99 once per second -- showing the
// estimate settling within roughly one window after the regime change.
#include <cstdio>

#include "baselines/direct.hpp"
#include "core/forktail.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"

int main() {
  using namespace forktail;

  constexpr std::size_t kNodes = 50;
  const dist::DistPtr service = dist::make_named("Empirical");

  // Ground-truth regimes from the bundled simulator.
  auto simulate = [&](double load, std::uint64_t seed) {
    fjsim::HomogeneousConfig cfg;
    cfg.num_nodes = kNodes;
    cfg.service = service;
    cfg.load = load;
    cfg.num_requests = 30000;
    cfg.seed = seed;
    return fjsim::run_homogeneous(cfg);
  };
  const auto regime_a = simulate(0.80, 1);
  const auto regime_b = simulate(0.90, 2);

  // One logical monitoring window pooling task samples (homogeneous view).
  core::OnlineTailPredictor online(1, /*window_seconds=*/20.0,
                                   /*min_samples=*/500);
  util::Rng sampler(99);
  double now = 0.0;

  // Replay a regime for `seconds` of simulated wall time: tasks complete at
  // rate lambda * N, with response times drawn from the regime's measured
  // moment-matched model.
  auto replay = [&](const fjsim::HomogeneousResult& regime, double seconds,
                    const char* label) {
    std::printf("-- %s --\n", label);
    const core::GenExp model = core::GenExp::fit_moments(
        regime.task_stats.mean(), regime.task_stats.variance());
    const double tasks_per_second =
        regime.lambda * 1000.0 * static_cast<double>(kNodes);
    const double dt = 1.0 / tasks_per_second;
    const double t_end = now + seconds;
    double next_print = std::ceil(now);
    while (now < t_end) {
      now += dt;
      online.record(0, now, model.sample(sampler));
      if (now >= next_print) {
        next_print += 1.0;
        if (const auto p = online.predict_homogeneous(99.0, kNodes)) {
          std::printf("t=%5.1fs   predicted p99 = %7.1f ms\n", now, *p);
        } else {
          std::printf("t=%5.1fs   (window still filling)\n", now);
        }
      }
    }
  };

  replay(regime_a, 6.0, "regime A: 80% load");
  replay(regime_b, 10.0, "regime B: 90% load (load spike)");

  std::printf("\nsimulated ground truth:  p99 = %.1f ms at 80%%,  %.1f ms at 90%%\n",
              stats::percentile(regime_a.responses, 99.0),
              stats::percentile(regime_b.responses, 99.0));

  const double req_per_s = regime_b.lambda * 1000.0;
  std::printf(
      "\ndirect measurement at %.0f req/s would need %llu samples (~%.0f s)\n"
      "per estimate; the sliding-window predictor above refreshes every\n"
      "update and settled within ~one 20 s window of the regime change.\n",
      req_per_s, static_cast<unsigned long long>(baselines::required_samples(99.0)),
      baselines::measurement_time_seconds(99.0, req_per_s));
  return 0;
}
