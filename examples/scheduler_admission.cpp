// Tail-latency-SLO-guaranteed admission control (Section 6, Fig. 14).
//
// A hybrid centralized-and-distributed scheduler: every fork node
// continuously measures its task response-time mean/variance over a
// sliding window and periodically reports to the central registry; on each
// request arrival the controller picks the k best nodes and admits the
// request only if the predicted p99 (Eq. 5) meets its SLO.
//
// The example runs a 16-node cluster where 3 nodes degrade mid-run
// (background load spike), and shows admission decisions adapting.
#include <cstdio>

#include "core/forktail.hpp"
#include "util/rng.hpp"

int main() {
  using namespace forktail;

  constexpr std::size_t kNodes = 16;
  core::OnlineTailPredictor monitors(kNodes, /*window_seconds=*/20.0,
                                     /*min_samples=*/50);
  core::NodeStatsRegistry registry(kNodes, /*staleness_limit=*/30.0);
  util::Rng rng(2024);

  // Phase 1: healthy cluster -- all nodes ~ Exp(5 ms) task responses.
  double now = 0.0;
  for (int step = 0; step < 5000; ++step) {
    now += 0.004;
    for (std::size_t n = 0; n < kNodes; ++n) {
      monitors.record(n, now, rng.exponential(5.0));
    }
  }
  for (std::size_t n = 0; n < kNodes; ++n) {
    if (auto s = monitors.node_stats(n)) registry.report(n, now, *s);
  }

  const core::AdmissionController controller(registry);
  const core::TailSlo slo{99.0, 60.0};  // p99 <= 60 ms

  auto report = [&](const char* phase) {
    const auto d8 = controller.admit(8, slo, now);
    const auto d16 = controller.admit(16, slo, now);
    std::printf("%-22s k=8 : %s (predicted p99 %.1f ms)\n", phase,
                d8.admitted ? "ADMIT " : "REJECT", d8.predicted_latency);
    std::printf("%-22s k=16: %s (predicted p99 %.1f ms)\n", "",
                d16.admitted ? "ADMIT " : "REJECT", d16.predicted_latency);
  };
  report("healthy cluster:");

  // Phase 2: nodes 13..15 degrade 6x (co-located batch work).
  for (int step = 0; step < 5000; ++step) {
    now += 0.004;
    for (std::size_t n = 0; n < kNodes; ++n) {
      const double mean = n >= 13 ? 30.0 : 5.0;
      monitors.record(n, now, rng.exponential(mean));
    }
  }
  for (std::size_t n = 0; n < kNodes; ++n) {
    if (auto s = monitors.node_stats(n)) registry.report(n, now, *s);
  }
  std::printf("\nnodes 13-15 degraded to ~30 ms task means\n");
  report("degraded cluster:");

  std::printf(
      "\nWith k=8 the controller routes around the slow nodes and still\n"
      "admits; with k=16 every node must participate, the predicted tail\n"
      "violates the SLO, and the request is rejected (or renegotiated).\n");

  // Fine-grained per-request prediction (Eq. 5): compare a subset that
  // includes a degraded node with one that avoids it.
  const std::size_t clean[] = {0, 1, 2, 3};
  const std::size_t dirty[] = {0, 1, 2, 15};
  if (auto p = monitors.predict_subset(clean, 99.0)) {
    std::printf("\np99 over nodes {0,1,2,3}  : %6.1f ms\n", *p);
  }
  if (auto p = monitors.predict_subset(dirty, 99.0)) {
    std::printf("p99 over nodes {0,1,2,15} : %6.1f ms\n", *p);
  }
  return 0;
}
