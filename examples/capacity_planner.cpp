// Capacity planning with a tail-latency SLO (Section 6, "Resource
// Provisioning").
//
// Step (a): translate the SLO "p99 of request latency <= 250 ms" for a
// service whose requests spawn K ~ U[80, 120] tasks into a
// platform-independent per-task performance budget (mean, variance).
//
// Step (b): probe a candidate fork-node configuration -- here a simulated
// 3-replica node running the Google-leaf-like workload -- at increasing
// task arrival rates until the measured statistics exhaust the budget.
// The largest sustainable rate is the per-node throughput the platform can
// be sold at while meeting the SLO.
#include <cstdio>

#include "core/forktail.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"

int main() {
  using namespace forktail;

  const core::TailSlo slo{99.0, 250.0};  // p99 <= 250 ms
  const auto mixture = core::TaskCountMixture::uniform_int(80, 120);

  // Step (a): the task budget.  The SCV hint comes from any prototype
  // measurement; heavy-traffic theory says ~1 (exponential) is the safe
  // default.
  const core::TaskBudget budget = core::derive_task_budget(slo, mixture, 1.0);
  std::printf("SLO: p%.0f <= %.0f ms for K ~ U[80,120]\n", slo.percentile,
              slo.latency);
  std::printf("task budget: mean <= %.3f ms, variance <= %.3f ms^2\n\n",
              budget.mean, budget.variance);

  // Step (b): probe the candidate node.  Each probe runs the node-level
  // simulator at the requested per-server task rate and reports measured
  // task response moments -- exactly what a staging experiment would do
  // with a real VM.
  const dist::DistPtr service = dist::make_named("Empirical");
  auto probe = [&](double lambda) {
    fjsim::HomogeneousConfig cfg;
    cfg.num_nodes = 1;
    cfg.replicas = 3;
    cfg.policy = fjsim::Policy::kRoundRobin;
    cfg.service = service;
    // lambda is the total task arrival rate at the node; the config takes
    // per-server utilization.
    cfg.load = lambda * service->mean() / 3.0;
    cfg.num_requests = 40000;
    cfg.seed = 7;
    const auto r = fjsim::run_homogeneous(cfg);
    return core::TaskStats{r.task_stats.mean(), r.task_stats.variance()};
  };

  const double lambda_hi = 0.98 * 3.0 / service->mean();  // stability bound

  // The budget-based search (the paper's literal step (b)): stop when the
  // measured mean or variance exhausts the budget.  With a heavy-tailed
  // service, the measured CV exceeds the SCV hint the budget assumed, so
  // this can overshoot the SLO -- which is why the library also provides
  // the shape-robust SLO-based search below.
  const auto by_budget =
      core::max_sustainable_lambda(probe, budget, 0.01, lambda_hi, 5e-3);

  // Shape-robust search: predict the tail from the measured (mean,
  // variance) at every probe point and stop when the prediction reaches
  // the SLO.
  const auto by_slo =
      core::max_lambda_for_slo(probe, slo, mixture, 0.01, lambda_hi, 5e-3);

  if (!by_slo.feasible) {
    std::printf("this node type cannot meet the SLO at any rate; "
                "use a faster instance or renegotiate the SLO.\n");
    return 1;
  }
  auto report = [&](const char* label, const core::ProvisioningResult& r) {
    const double per_server_load = r.max_lambda * service->mean() / 3.0;
    const double predicted =
        core::mixture_quantile(r.stats_at_max, mixture, slo.percentile);
    std::printf("%s\n  max task rate %.3f /ms (per-server load %.1f%%)\n"
                "  measured mean %.3f ms, variance %.3f ms^2\n"
                "  predicted p99 at that operating point: %.1f ms (SLO %.0f)\n",
                label, r.max_lambda, 100.0 * per_server_load,
                r.stats_at_max.mean, r.stats_at_max.variance, predicted,
                slo.latency);
  };
  report("budget-based search (paper's step (b)):", by_budget);
  report("SLO-based search (shape-robust):", by_slo);
  std::printf(
      "\nA request throughput target R can now be met with N = ceil(R * E[K]\n"
      "/ max_rate) fork nodes; the budget itself is platform-independent.\n");
  return 0;
}
