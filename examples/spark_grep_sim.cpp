// The Amazon EC2 / Spark grep case study as a runnable example
// (Section 4.1, Figs. 8-9): a keyword-count service over N HDFS shards,
// one task per worker, central virtual queues in the driver.
//
// Demonstrates why the inhomogeneous model matters in real deployments:
// at low arrival rates the workers look identical; at high rates data
// locality misses skew them, and only the per-worker (Eq. 4) prediction
// keeps tracking the measured tail.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "cloud/spark_cluster.hpp"
#include "core/forktail.hpp"
#include "stats/percentile.hpp"

int main() {
  using namespace forktail;

  std::printf("Spark-like grep cluster, 32 workers, 128 MB shards\n");
  std::printf("%-8s %-7s %-12s %-22s %-22s %s\n", "rate", "load%", "meas p99",
              "inhomogeneous (Eq. 4)", "homogeneous (Eq. 6)", "worker spread");

  for (double lambda : {3.0, 4.0, 5.0, 5.5}) {
    cloud::CloudConfig cfg;
    cfg.num_workers = 32;
    cfg.lambda = lambda;
    cfg.num_requests = 30000;
    cfg.seed = 11;
    const auto r = cloud::run_cloud_case_study(cfg);

    const double measured = stats::percentile(r.responses, 99.0);
    std::vector<core::TaskStats> workers;
    double slowest = 0.0;
    double fastest = 1e300;
    for (const auto& w : r.worker_task_stats) {
      workers.push_back({w.mean(), w.variance()});
      slowest = std::max(slowest, w.mean());
      fastest = std::min(fastest, w.mean());
    }
    const double inhom = core::inhomogeneous_quantile(workers, 99.0);
    const double hom = core::homogeneous_quantile(
        {r.pooled_task_stats.mean(), r.pooled_task_stats.variance()}, 32.0,
        99.0);
    std::printf("%-8.1f %-7.1f %8.2f s   %8.2f s (%+6.1f%%)   %8.2f s (%+6.1f%%)   %.2fx\n",
                lambda, 100.0 * r.estimated_load, measured, inhom,
                100.0 * (inhom - measured) / measured, hom,
                100.0 * (hom - measured) / measured, slowest / fastest);
  }

  std::printf(
      "\nThe 'worker spread' column (slowest/fastest mean task response)\n"
      "shows the cluster drifting inhomogeneous as locality misses ramp up\n"
      "with load -- exactly the effect the paper measured on EC2; the\n"
      "homogeneous model underestimates once that happens.\n");
  return 0;
}
