// Closed-loop SLO-guaranteed scheduling (the paper's Section 6 vision,
// built out in src/sched): distributed sliding-window measurement, central
// registry, per-request admission with Eq. 5.
//
// The demo runs the same 32-node cluster under three regimes and shows the
// controller's value proposition: the violation rate among admitted
// requests stays bounded even when the offered load exceeds capacity,
// because excess work is rejected before it queues.
#include <cstdio>

#include "dist/factory.hpp"
#include "sched/closed_loop.hpp"
#include "stats/percentile.hpp"

int main() {
  using namespace forktail;

  auto make_config = [](double load_multiple, double slo_latency,
                        bool admission) {
    sched::ClosedLoopConfig cfg;
    cfg.num_nodes = 32;
    cfg.service = dist::make_named("Empirical");  // heavy-tailed, mean 4.22 ms
    cfg.tasks_per_request = 8;
    cfg.lambda = load_multiple * 32.0 / (8.0 * 4.22);
    cfg.window_seconds = 500.0;
    cfg.report_interval = 50.0;
    cfg.num_requests = 50000;
    cfg.seed = 7;
    cfg.slo = {99.0, slo_latency};
    cfg.admission_enabled = admission;
    return cfg;
  };

  // Calibrate an SLO with headroom at a healthy operating point.
  const auto reference = sched::run_closed_loop(make_config(0.7, 1e9, false));
  const double p99_healthy =
      stats::percentile(reference.admitted_responses, 99.0);
  const double slo = 1.5 * p99_healthy;
  std::printf("p99 at 70%% load: %.1f ms  =>  SLO: p99 <= %.1f ms\n\n",
              p99_healthy, slo);

  struct Row {
    const char* label;
    double load;
    bool admission;
  };
  const Row rows[] = {
      {"80% load, admission on ", 0.80, true},
      {"80% load, admission off", 0.80, false},
      {"125% load, admission on ", 1.25, true},
      {"125% load, admission off", 1.25, false},
  };
  std::printf("%-26s %9s %10s %12s %12s\n", "scenario", "admit%", "viol%",
              "p99(ms)", "p50(ms)");
  for (const Row& row : rows) {
    const auto r = sched::run_closed_loop(make_config(row.load, slo, row.admission));
    std::printf("%-26s %8.1f%% %9.2f%% %12.1f %12.1f\n", row.label,
                100.0 * r.admit_rate, 100.0 * r.violation_rate,
                stats::percentile(r.admitted_responses, 99.0),
                stats::percentile(r.admitted_responses, 50.0));
  }

  std::printf(
      "\nAt 80%% load the SLO is achievable and the controller admits nearly\n"
      "everything.  At 125%% load the uncontrolled system diverges (every\n"
      "request violates, latencies unbounded); the controller sheds the\n"
      "excess and keeps the requests it accepts within a small multiple of\n"
      "the SLO -- tail-latency protection by design, not by reaction.\n");
  return 0;
}
