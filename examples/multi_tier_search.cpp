// Multi-tier workflow prediction: a web-search-like pipeline.
//
// The paper's opening example -- "a Fork-Join structure is a critical
// building block in the request processing workflow ... more than
// two-thirds of the total processing time for a Web search engine" --
// involves several fork-join stages in sequence.  This example simulates a
// three-tier search workflow (retrieval fan-out over index shards, ranking
// fan-out over feature servers, snippet assembly) and predicts the
// end-to-end tail from per-stage black-box measurements with
// core::PipelinePredictor.
#include <cstdio>

#include "core/forktail.hpp"
#include "dist/factory.hpp"
#include "fjsim/pipeline.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace forktail;

  // The "production" workflow we pretend to measure.
  fjsim::PipelineConfig cluster;
  cluster.stages = {
      {64, dist::make_named("Empirical")},    // retrieval: 64 index shards
      {16, dist::make_named("Exponential")},  // ranking: 16 feature servers
      {4, dist::make_named("Weibull")},       // assembly: 4 snippet servers
  };
  cluster.load = 0.85;
  cluster.num_requests = 60000;
  cluster.seed = 99;
  const auto sim = fjsim::run_pipeline(cluster);

  // Black-box measurement: per-stage task response moments.
  const char* names[] = {"retrieval", "ranking", "assembly"};
  std::vector<core::StageSpec> stages;
  for (std::size_t s = 0; s < cluster.stages.size(); ++s) {
    stages.push_back({names[s],
                      {sim.stage_task_stats[s].mean(),
                       sim.stage_task_stats[s].variance()},
                      static_cast<double>(cluster.stages[s].num_nodes)});
  }
  const core::PipelinePredictor predictor(stages);

  std::printf("three-tier search workflow at 85%% bottleneck load\n\n");
  std::printf("%-12s %8s %14s %14s\n", "stage", "fanout", "mean (sim)",
              "mean (model)");
  const auto breakdown = predictor.mean_breakdown();
  for (std::size_t s = 0; s < stages.size(); ++s) {
    std::printf("%-12s %8.0f %11.2f ms %11.2f ms  (%4.1f%% of total)\n",
                names[s], stages[s].fanout, sim.stage_latency_stats[s].mean(),
                predictor.stage_latencies()[s].mean, 100.0 * breakdown[s]);
  }
  std::printf("\nbottleneck stage at p99: %s\n",
              names[predictor.bottleneck_stage(99.0)]);

  const double sim_p99 = stats::percentile(sim.responses, 99.0);
  const double pred_p99 = predictor.quantile(99.0);
  std::printf("\nend-to-end p50  predicted %8.1f ms\n", predictor.quantile(50.0));
  std::printf("end-to-end p99  predicted %8.1f ms   simulated %8.1f ms (%+.1f%%)\n",
              pred_p99, sim_p99, stats::relative_error_pct(pred_p99, sim_p99));
  std::printf("end-to-end p99.9 predicted %7.1f ms\n", predictor.quantile(99.9));

  std::printf(
      "\nWhat-if: doubling the retrieval fan-out to 128 shards (same per-task\n"
      "statistics) moves the predicted end-to-end p99 to %.1f ms -- the\n"
      "marginal tail cost of wider fan-out, from measurements alone.\n",
      [&] {
        auto wider = stages;
        wider[0].fanout = 128.0;
        return core::PipelinePredictor(wider).quantile(99.0);
      }());
  return 0;
}
