// Quickstart: predict the tail latency of a fork-join service from
// black-box task measurements.
//
// Scenario: a 100-node search tier.  You cannot (and need not) know the
// service-time distribution inside each leaf -- you only sample task
// response times at each node for a few seconds and feed the mean and
// variance to ForkTail.  The example fabricates those "measurements" with
// the bundled simulator, then predicts p95/p99/p99.9 and checks the p99
// prediction against the simulated ground truth.
#include <cstdio>

#include "core/forktail.hpp"
#include "dist/factory.hpp"
#include "fjsim/homogeneous.hpp"
#include "stats/percentile.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace forktail;

  // --- a cluster we pretend is the production system --------------------
  fjsim::HomogeneousConfig cluster;
  cluster.num_nodes = 100;
  cluster.service = dist::make_named("Empirical");  // Google-leaf-like tasks
  cluster.load = 0.90;                              // busy tier
  cluster.num_requests = 50000;
  cluster.seed = 42;
  const auto measured = fjsim::run_homogeneous(cluster);

  // --- the three lines an operator actually writes -----------------------
  // 1. collect (mean, variance) of task response times -- any few hundred
  //    samples will do (here: the simulator's own pooled measurement);
  const core::TaskStats stats{measured.task_stats.mean(),
                              measured.task_stats.variance()};
  // 2. build a predictor;
  const core::ForkTailPredictor predictor(stats);
  // 3. ask for quantiles.
  std::printf("measured task stats: mean %.2f ms, stddev %.2f ms\n", stats.mean,
              std::sqrt(stats.variance));
  for (double p : {95.0, 99.0, 99.9}) {
    std::printf("predicted p%-5.1f of request latency: %8.2f ms\n", p,
                predictor.quantile(p, 100.0));
  }

  // --- sanity against simulated ground truth -----------------------------
  const double sim_p99 = stats::percentile(measured.responses, 99.0);
  const double pred_p99 = predictor.quantile(99.0, 100.0);
  std::printf("\nsimulated p99:  %.2f ms\npredicted p99:  %.2f ms (%+.1f%%)\n",
              sim_p99, pred_p99, stats::relative_error_pct(pred_p99, sim_p99));
  std::printf(
      "\nThe prediction used %llu task samples; direct measurement of p99\n"
      "to the same confidence needs ~%llu request samples (Section 2).\n",
      static_cast<unsigned long long>(measured.task_stats.count()),
      static_cast<unsigned long long>(10000));
  return 0;
}
