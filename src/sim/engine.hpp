// General discrete-event simulation engine.
//
// A two-level calendar queue over arena-allocated, type-tagged POD events:
//
//   * The *window* is an array of buckets of width `width_` starting at
//     `origin_`; an event at time t lands in bucket (t - origin_) / width_.
//     Buckets are unsorted vectors -- scheduling is an append.
//   * Events beyond the window land in an unsorted *overflow* vector.  When
//     the window drains, the overflow is re-bucketed into a fresh window
//     whose bucket width adapts to the observed event density (span /
//     count * 2, bucket count the next power of two near count / 2).
//   * Extraction is *batched*: the next non-empty bucket is swapped out,
//     sorted once by (time, seq), and consumed through a cursor.  Events
//     scheduled into the already-drained region (always >= now) are
//     sort-inserted into the live batch past the cursor, preserving the
//     global (time, seq) firing order.
//
// Events are 40-byte trivially-copyable records: a timestamp, a sequence
// number, an EventKind tag, and a two-word payload union.  Typed events are
// dispatched through one bound function pointer (`bind`) and a switch in the
// driver -- no per-event heap allocation and no std::function type erasure
// on the hot path.  The legacy `Handler` API is kept as a compatibility shim:
// handlers live in a slab (vector + free list) and fire through a kHandler
// event carrying the slot index.
//
// Cancellation stays lazy (tombstone set, skipped on pop), but tombstones no
// longer accumulate without bound: when at least half the queued events are
// dead the calendar is compacted in one sweep (see `cancel`).
//
// Determinism contract: events fire in strict (time, seq) order and seq is
// assigned per schedule call, so any driver issuing the same schedule/cancel
// calls in the same order observes the same firing order as the reference
// binary-heap engine (sim/heap_engine.hpp), bit for bit.
//
// The fork-join systems in `src/sim` are built on this engine; the Lindley
// fast path in `src/fjsim` is the specialised alternative, and the two are
// cross-validated in the test suite.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <unordered_set>
#include <vector>

namespace forktail::sim {

/// Closed enum of event types.  Drivers switch on the kind; kHandler is
/// reserved for the legacy std::function shim.
enum class EventKind : std::uint8_t {
  kHandler = 0,   ///< legacy shim: payload.handler.slot indexes the slab
  kArrival,       ///< open/closed-loop request arrival
  kTaskComplete,  ///< a node finished one task
  kReport,        ///< periodic reporting / monitoring tick
  kTimer,         ///< generic driver timer (hedge launches, deadlines)
};

/// Two-word payload interpreted per EventKind.  Drivers own the meaning of
/// each field; the engine never reads the payload.
union EventPayload {
  struct {
    std::uint64_t a, b;
  } raw;
  struct {
    std::uint32_t slot;  ///< index into the engine's handler slab
  } handler;
  struct {
    std::uint64_t index;  ///< request ordinal
  } arrival;
  struct {
    std::uint32_t slot;     ///< driver request-slot index
    std::uint32_t task;     ///< task ordinal within the request
    std::uint32_t node;     ///< node the task ran on
    std::uint32_t replica;  ///< replica ordinal (redundant dispatch)
  } task;
  struct {
    std::uint32_t kind;    ///< driver-private timer discriminator
    std::uint32_t index;   ///< driver-private index
    std::uint64_t cookie;  ///< driver-private correlation value
  } timer;
};
static_assert(sizeof(EventPayload) == 16, "payload must stay two words");

/// One calendar entry.  Trivially copyable by design: buckets are plain
/// vectors and batch extraction memmoves freely.
struct Event {
  double time;
  std::uint64_t seq;
  EventPayload payload;
  EventKind kind;
  std::uint8_t flags;  ///< Engine::kFlagCancellable
};
static_assert(std::is_trivially_copyable_v<Event>, "events must stay POD");
static_assert(sizeof(Event) <= 40, "events must stay arena-friendly");

class Engine {
 public:
  using Handler = std::function<void()>;
  /// Identifies one cancellable event (see schedule_cancellable).
  using EventId = std::uint64_t;
  /// Typed-event sink: called for every fired non-kHandler event.
  using Dispatcher = void (*)(void* ctx, Engine& engine, const Event& ev);

  double now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }
  std::uint64_t events_cancelled() const noexcept { return cancelled_count_; }

  /// Number of tombstone-compaction sweeps over the engine's lifetime.
  std::uint64_t compactions() const noexcept { return compactions_; }

  /// High-water mark of the event calendar over this engine's lifetime.
  std::size_t max_queue_depth() const noexcept { return max_depth_; }

  /// Events currently queued (tombstones included until compacted).
  std::size_t queue_depth() const noexcept { return size_; }

  /// Bind the typed-event sink.  Must be set before any non-kHandler event
  /// fires; typically `engine.bind(this, &Driver::on_event_thunk)`.
  void bind(void* ctx, Dispatcher dispatcher) noexcept {
    ctx_ = ctx;
    dispatcher_ = dispatcher;
  }

  /// Schedule a typed event at absolute time `time` (>= now, finite).
  /// Events at equal times fire in scheduling order.  O(1) amortised: an
  /// append into a bucket, no allocation once the calendar is warm.
  EventId schedule_event(double time, EventKind kind, EventPayload payload) {
    check_time(time);
    const Event ev{time, seq_++, payload, kind, 0};
    push(ev);
    return ev.seq;
  }

  /// Schedule a typed event at now + delay.
  EventId schedule_event_in(double delay, EventKind kind,
                            EventPayload payload) {
    return schedule_event(now_ + delay, kind, payload);
  }

  /// Schedule a *cancellable* typed event.  The returned id stays valid
  /// until the event fires or is cancelled.
  EventId schedule_cancellable_event(double time, EventKind kind,
                                     EventPayload payload) {
    check_time(time);
    const Event ev{time, seq_++, payload, kind, kFlagCancellable};
    push(ev);
    cancellable_.insert(ev.seq);
    return ev.seq;
  }

  /// Legacy shim: schedule `handler` at absolute time `time` (>= now).
  /// The handler is parked in a slab and fired through a kHandler event.
  void schedule(double time, Handler handler);

  /// Schedule at now + delay.
  void schedule_in(double delay, Handler handler) {
    schedule(now_ + delay, std::move(handler));
  }

  /// Schedule a *cancellable* handler event (timeout deadlines, hedge
  /// launches: anything that a cancel-on-first-complete race may retract).
  /// The returned id stays valid until the event fires or is cancelled.
  EventId schedule_cancellable(double time, Handler handler);

  /// Cancel a pending cancellable event.  Returns false (harmlessly) when
  /// the event already fired, was already cancelled, or never existed.
  /// Cancellation is lazy -- the calendar entry becomes a tombstone skipped
  /// on pop, without advancing simulated time or the processed count -- so
  /// cancel is O(1).  When tombstones reach half the queue the calendar is
  /// compacted in one sweep, bounding memory under cancel-heavy load.
  bool cancel(EventId id);

  /// Run until the event queue empties or `stop()` is called.
  void run();

  /// Run until simulated time exceeds `t_end` (events after t_end stay
  /// queued).
  void run_until(double t_end);

  /// Request termination from inside a handler.
  void stop() noexcept { stopped_ = true; }

  bool empty() const noexcept { return size_ == 0; }

 private:
  static constexpr std::uint8_t kFlagCancellable = 1;
  /// Compaction triggers once at least this many tombstones are queued and
  /// they make up >= half the queue.
  static constexpr std::size_t kCompactMinDead = 64;

  struct EarlierByTimeSeq {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }
  };

  /// Validate a schedule time: >= now and finite.  NaN fails the first
  /// comparison (same exception the binary-heap engine threw for past
  /// times); time - time is 0 for finite values and NaN for +/-inf, so no
  /// isfinite call.  The throws live in a cold out-of-line helper so this
  /// inlines into every schedule call.
  void check_time(double time) const {
    if (!(time >= now_)) throw_bad_time(true);
    if (time - time != 0.0) throw_bad_time(false);
  }

  [[noreturn]] static void throw_bad_time(bool past);

  /// Insert into the calendar: current batch (sorted, past the cursor) when
  /// the event lands in the drained region, else its bucket, else overflow.
  void push(const Event& ev);

  /// Point at the next live event, consuming tombstones on the way; null
  /// when the calendar is empty.  The pointer is invalidated by any
  /// subsequent schedule call.
  const Event* peek_live();

  /// Sort the current batch by (time, seq): insertion sort for the common
  /// tiny batch, std::sort beyond that.
  void sort_batch();

  /// Swap-and-sort the next non-empty bucket into the batch, re-bucketing
  /// the overflow into a fresh window when the current one is drained.
  /// Returns false when no events remain.
  bool refill_batch();

  /// Build a new window from the overflow (adaptive width, see file
  /// comment).
  void rebucket();

  /// Drop every tombstone from the calendar in one sweep and release their
  /// handler slots.  Runs when cancel() sees >= 50% dead events.
  void compact();

  /// Fire one event: slab handler for kHandler, bound dispatcher otherwise.
  void fire(const Event& ev);

  std::uint32_t acquire_slot(Handler handler);
  void release_slot_of(const Event& ev);

  /// Flush run-loop telemetry into the global metrics registry (no-op when
  /// observability is compiled out).  Deltas are this run's counts.
  void publish_metrics(std::uint64_t events, std::uint64_t compactions) const;

  // --- calendar storage -------------------------------------------------
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;
  std::vector<Event> scratch_;  ///< rebucket/compact spill, capacity reused
  std::vector<Event> batch_;    ///< current sorted batch
  std::size_t batch_pos_ = 0;   ///< consumption cursor into batch_
  std::size_t scan_ = 0;        ///< next bucket index to drain
  std::size_t nbuckets_ = 0;    ///< active window size (0: no window yet)
  double origin_ = 0.0;         ///< window start time
  double inv_width_ = 1.0;      ///< 1 / bucket width
  double window_end_ = 0.0;     ///< origin_ + nbuckets_ * width
  std::size_t size_ = 0;        ///< queued events, tombstones included

  // --- handler slab (legacy shim) ---------------------------------------
  std::vector<Handler> handlers_;
  std::vector<std::uint32_t> free_slots_;

  // --- typed dispatch ---------------------------------------------------
  void* ctx_ = nullptr;
  Dispatcher dispatcher_ = nullptr;

  // --- bookkeeping ------------------------------------------------------
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t max_depth_ = 0;
  bool stopped_ = false;
  /// Sequence numbers of live cancellable events / of cancelled-but-still-
  /// queued tombstones.  Ordinary events appear in neither, so the FIFO hot
  /// path never touches these sets (the cancellable flag gates the lookup).
  std::unordered_set<std::uint64_t> cancellable_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace forktail::sim
