#include "sim/cluster_stats.hpp"

#include <cmath>
#include <cstring>
#include <limits>

static_assert(forktail::sim::LatencyHistogram::kSubBuckets == 8,
              "bucket_index reads exactly the top 3 mantissa bits");

namespace forktail::sim {

namespace {
// Majors cover binades [2^-32, 2^32): more than enough dynamic range for
// task/response times in simulated seconds.  Values below the range land in
// the underflow bucket (index 0, shared with v <= 0), values above in the
// overflow bucket.
constexpr int kMinBinade = -32;
constexpr int kMaxBinade = 31;
}  // namespace

std::size_t LatencyHistogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // catches v <= 0 and NaN
  // Read the binade straight off the IEEE-754 exponent field and the
  // sub-bucket off the top mantissa bits: no frexp call on the hot path.
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const int biased = static_cast<int>((bits >> 52) & 0x7ff);
  if (biased == 0x7ff) return kBuckets - 1;  // +inf (NaN handled above)
  const int binade = biased - 1023;  // v in [2^binade, 2^(binade+1))
  if (biased == 0 || binade < kMinBinade) return 0;  // subnormal/underflow
  if (binade > kMaxBinade) return kBuckets - 1;
  const std::size_t major = static_cast<std::size_t>(binade - kMinBinade);
  const std::size_t sub = (bits >> 49) & (kSubBuckets - 1);
  return 1 + major * kSubBuckets + sub;
}

double LatencyHistogram::bucket_upper_edge(std::size_t i) noexcept {
  if (i == 0) return std::ldexp(1.0, kMinBinade);
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t major = (i - 1) / kSubBuckets;
  const std::size_t sub = (i - 1) % kSubBuckets;
  const double lo = std::ldexp(1.0, static_cast<int>(major) + kMinBinade);
  return lo * (1.0 + static_cast<double>(sub + 1) /
                         static_cast<double>(kSubBuckets));
}

double LatencyHistogram::percentile(double pct) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  if (pct < 0.0) pct = 0.0;
  if (pct > 100.0) pct = 100.0;
  // Rank on the nearest-rank definition: the smallest bucket whose
  // cumulative count reaches ceil(pct/100 * n).
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += counts_[i];
    if (cum >= target) return bucket_upper_edge(i);
  }
  return bucket_upper_edge(kBuckets - 1);
}

ClusterStats::ClusterStats(std::size_t num_nodes, std::size_t num_shards)
    : num_nodes_(num_nodes) {
  if (num_nodes == 0) num_nodes = 1;  // degenerate but safe
  if (num_shards == 0) num_shards = (num_nodes + 63) / 64;
  if (num_shards > num_nodes) num_shards = num_nodes;
  // Round the stride up to a power of two: shard_of becomes a shift.
  const std::size_t min_stride = (num_nodes + num_shards - 1) / num_shards;
  stride_ = 1;
  shard_shift_ = 0;
  while (stride_ < min_stride) {
    stride_ <<= 1;
    ++shard_shift_;
  }
  const std::size_t actual_shards = (num_nodes + stride_ - 1) / stride_;
  shards_.resize(actual_shards);
  for (std::size_t s = 0; s < actual_shards; ++s) {
    const std::size_t first = s * stride_;
    const std::size_t last =
        s + 1 == actual_shards ? num_nodes : first + stride_;
    shards_[s].first_node = first;
    shards_[s].nodes.resize(last - first);
  }
}

ClusterSummary ClusterStats::summary() const {
  ClusterSummary out;
  out.per_node.reserve(num_nodes_);
  // Walk nodes in node order (shards are contiguous ranges, so iterating
  // shards in order *is* node order): the pooled merge sequence -- and
  // therefore every pooled double -- is independent of the shard count.
  for (const Shard& sh : shards_) {
    for (const NodeStats& ns : sh.nodes) {
      out.per_node.push_back(ns.task_times);
      out.pooled.merge(ns.task_times);
    }
    out.histogram.merge(sh.histogram);
  }
  out.samples = out.pooled.count();
  return out;
}

void ClusterStats::reset() {
  for (Shard& sh : shards_) {
    for (NodeStats& ns : sh.nodes) ns.task_times.reset();
    sh.histogram = LatencyHistogram{};
  }
}

}  // namespace forktail::sim
