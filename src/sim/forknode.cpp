#include "sim/forknode.hpp"

#include "dist/basic.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace forktail::sim {

ForkNode::ForkNode(Engine& engine, dist::DistPtr service, int replicas,
                   DispatchPolicy policy, double redundant_delay, util::Rng rng)
    : engine_(engine),
      service_(std::move(service)),
      policy_(policy),
      rng_(rng) {
  if (!service_) throw std::invalid_argument("ForkNode: null service distribution");
  if (replicas < 1) throw std::invalid_argument("ForkNode: replicas must be >= 1");
  if (policy == DispatchPolicy::kSingle && replicas != 1) {
    throw std::invalid_argument("ForkNode: kSingle requires exactly one replica");
  }
  if (policy == DispatchPolicy::kRedundant) {
    if (!(redundant_delay > 0.0)) {
      throw std::invalid_argument("ForkNode: kRedundant requires a positive delay");
    }
    redundant_ = std::make_unique<fjsim::RedundantNode>(
        service_.get(), replicas, redundant_delay, rng_);
  }
  servers_.resize(static_cast<std::size_t>(replicas));
  if (const auto* exp = dynamic_cast<const dist::Exponential*>(service_.get())) {
    exp_mean_ = exp->moment(1);
  }
}

void ForkNode::resolve(std::uint64_t id, double arrival, double completion) {
  if (const auto it = pending_callbacks_.find(id);
      it != pending_callbacks_.end()) {
    TaskCallback cb = std::move(it->second);
    pending_callbacks_.erase(it);
    cb(arrival, completion);
    return;
  }
  if (const auto it = pending_cookies_.find(id); it != pending_cookies_.end()) {
    const std::uint64_t cookie = it->second;
    pending_cookies_.erase(it);
    completion_fn_(completion_ctx_, cookie, arrival, completion);
    return;
  }
  throw std::logic_error("ForkNode: completion for unknown task");
}

void ForkNode::submit(TaskCallback on_complete) {
  const double arrival = engine_.now();
  if (policy_ == DispatchPolicy::kRedundant) {
    const std::uint64_t id = next_task_id_++;
    pending_callbacks_.emplace(id, std::move(on_complete));
    redundant_->submit_task(
        arrival, id, [this](std::uint64_t tid, double arr, double done) {
          resolve(tid, arr, done);
        });
    return;
  }
  const double service = draw_service();
  const std::size_t server = next_server();
  const double done = servers_[server].submit(arrival, service);
  engine_.schedule(done, [arrival, done, cb = std::move(on_complete)] {
    cb(arrival, done);
  });
}

void ForkNode::submit_task(std::uint64_t cookie) {
  const double arrival = engine_.now();
  if (policy_ == DispatchPolicy::kRedundant) {
    const std::uint64_t id = next_task_id_++;
    pending_cookies_.emplace(id, cookie);
    redundant_->submit_task(
        arrival, id, [this](std::uint64_t tid, double arr, double done) {
          resolve(tid, arr, done);
        });
    return;
  }
  const double service = draw_service();
  const std::size_t server = next_server();
  const double done = servers_[server].submit(arrival, service);
  // The payload carries the cookie plus the arrival time's bit pattern;
  // completion time is the event's own timestamp.  No allocation, no
  // capture -- this is the whole fast path.
  EventPayload payload;
  payload.raw.a = cookie;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&payload.raw.b, &arrival, sizeof(double));
  engine_.schedule_event(done, EventKind::kTaskComplete, payload);
}

void ForkNode::flush() {
  if (policy_ != DispatchPolicy::kRedundant) return;
  redundant_->flush([this](std::uint64_t tid, double arr, double done) {
    resolve(tid, arr, done);
  });
}

std::uint64_t ForkNode::redundant_issues() const noexcept {
  return redundant_ ? redundant_->redundant_issues() : 0;
}

}  // namespace forktail::sim
