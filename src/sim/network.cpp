#include "sim/network.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace forktail::sim {

namespace {

double mean_tasks_per_request(const FjConfig& c) {
  switch (c.k_mode) {
    case TaskCountMode::kAllNodes:
      return static_cast<double>(c.num_nodes);
    case TaskCountMode::kFixed:
      return static_cast<double>(c.k_fixed);
    case TaskCountMode::kUniform:
      return 0.5 * static_cast<double>(c.k_lo + c.k_hi);
  }
  return 0.0;
}

void validate(const FjConfig& c) {
  if (c.num_nodes == 0) throw std::invalid_argument("FjConfig: num_nodes == 0");
  if (!c.service) throw std::invalid_argument("FjConfig: null service");
  if (!(c.lambda > 0.0)) throw std::invalid_argument("FjConfig: lambda <= 0");
  if (c.num_requests == 0) throw std::invalid_argument("FjConfig: no requests");
  if (c.k_mode == TaskCountMode::kFixed &&
      (c.k_fixed < 1 || static_cast<std::size_t>(c.k_fixed) > c.num_nodes)) {
    throw std::invalid_argument("FjConfig: k_fixed out of range");
  }
  if (c.k_mode == TaskCountMode::kUniform &&
      (c.k_lo < 1 || c.k_hi < c.k_lo ||
       static_cast<std::size_t>(c.k_hi) > c.num_nodes)) {
    throw std::invalid_argument("FjConfig: uniform k range out of range");
  }
  if (!(c.warmup_fraction >= 0.0 && c.warmup_fraction < 1.0)) {
    throw std::invalid_argument("FjConfig: warmup_fraction must be in [0,1)");
  }
}

struct RequestState {
  double arrival = 0.0;
  double max_completion = 0.0;
  std::uint32_t remaining = 0;
};

}  // namespace

double nominal_load(const FjConfig& config) {
  return config.lambda * mean_tasks_per_request(config) /
         static_cast<double>(config.num_nodes) * config.service->mean() /
         static_cast<double>(config.replicas);
}

double lambda_for_nominal_load(const FjConfig& config, double rho) {
  if (!(rho > 0.0 && rho < 1.0)) {
    throw std::invalid_argument("lambda_for_nominal_load: rho must be in (0,1)");
  }
  return rho * static_cast<double>(config.num_nodes) *
         static_cast<double>(config.replicas) /
         (mean_tasks_per_request(config) * config.service->mean());
}

FjResult run_fj_simulation(const FjConfig& config) {
  validate(config);
  Engine engine;
  util::Rng master(config.seed);
  util::Rng arrival_rng = master.split(0);
  util::Rng pick_rng = master.split(1);
  util::Rng k_rng = master.split(2);

  std::vector<std::unique_ptr<ForkNode>> nodes;
  nodes.reserve(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    nodes.push_back(std::make_unique<ForkNode>(
        engine, config.service, config.replicas, config.policy,
        config.redundant_delay, master.split(100 + i)));
  }

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total_requests = warmup + config.num_requests;

  FjResult result;
  result.request_responses.reserve(config.num_requests);
  result.node_task_stats.resize(config.num_nodes);

  std::vector<RequestState> requests(total_requests);
  // Scratch for subset sampling (partial Fisher-Yates).
  std::vector<std::uint32_t> node_index(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    node_index[i] = static_cast<std::uint32_t>(i);
  }

  const double mean_interarrival = 1.0 / config.lambda;
  std::uint64_t issued = 0;

  // One shared arrival handler reschedules itself until all requests are in.
  std::function<void()> arrive = [&] {
    const std::uint64_t id = issued++;
    RequestState& req = requests[id];
    req.arrival = engine.now();

    std::size_t k = config.num_nodes;
    if (config.k_mode == TaskCountMode::kFixed) {
      k = static_cast<std::size_t>(config.k_fixed);
    } else if (config.k_mode == TaskCountMode::kUniform) {
      k = static_cast<std::size_t>(k_rng.uniform_int(config.k_lo, config.k_hi));
    }
    req.remaining = static_cast<std::uint32_t>(k);

    const bool measured = id >= warmup;
    auto touch = [&, id, measured](std::size_t node_id) {
      nodes[node_id]->submit([&, id, measured, node_id](double arrival,
                                                        double completion) {
        const double response = completion - arrival;
        if (measured) {
          result.pooled_task_stats.add(response);
          result.node_task_stats[node_id].add(response);
        }
        RequestState& r = requests[id];
        r.max_completion = std::max(r.max_completion, completion);
        if (--r.remaining == 0 && measured) {
          result.request_responses.push_back(r.max_completion - r.arrival);
        }
      });
      ++result.total_tasks;
    };

    if (k == config.num_nodes) {
      for (std::size_t n = 0; n < config.num_nodes; ++n) touch(n);
    } else {
      // Partial Fisher-Yates: the first k entries become the chosen subset.
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    pick_rng.uniform_int(config.num_nodes - i));
        std::swap(node_index[i], node_index[j]);
        touch(node_index[i]);
      }
    }

    if (issued < total_requests) {
      engine.schedule_in(arrival_rng.exponential(mean_interarrival), arrive);
    }
  };

  engine.schedule(arrival_rng.exponential(mean_interarrival), arrive);
  engine.run();
  for (const auto& node : nodes) node->flush();

  for (const auto& node : nodes) result.redundant_issues += node->redundant_issues();
  result.sim_end_time = engine.now();
  return result;
}

}  // namespace forktail::sim
