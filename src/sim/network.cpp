#include "sim/network.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace forktail::sim {

namespace {

double mean_tasks_per_request(const FjConfig& c) {
  switch (c.k_mode) {
    case TaskCountMode::kAllNodes:
      return static_cast<double>(c.num_nodes);
    case TaskCountMode::kFixed:
      return static_cast<double>(c.k_fixed);
    case TaskCountMode::kUniform:
      return 0.5 * static_cast<double>(c.k_lo + c.k_hi);
  }
  return 0.0;
}

void validate(const FjConfig& c) {
  if (c.num_nodes == 0) throw std::invalid_argument("FjConfig: num_nodes == 0");
  if (!c.service) throw std::invalid_argument("FjConfig: null service");
  if (!(c.lambda > 0.0)) throw std::invalid_argument("FjConfig: lambda <= 0");
  if (c.num_requests == 0) throw std::invalid_argument("FjConfig: no requests");
  if (c.k_mode == TaskCountMode::kFixed &&
      (c.k_fixed < 1 || static_cast<std::size_t>(c.k_fixed) > c.num_nodes)) {
    throw std::invalid_argument("FjConfig: k_fixed out of range");
  }
  if (c.k_mode == TaskCountMode::kUniform &&
      (c.k_lo < 1 || c.k_hi < c.k_lo ||
       static_cast<std::size_t>(c.k_hi) > c.num_nodes)) {
    throw std::invalid_argument("FjConfig: uniform k range out of range");
  }
  if (!(c.warmup_fraction >= 0.0 && c.warmup_fraction < 1.0)) {
    throw std::invalid_argument("FjConfig: warmup_fraction must be in [0,1)");
  }
}

/// The whole fork-join system as one typed-event driver.  State lives in
/// flat arrays; the engine dispatches kArrival / kTaskComplete events into
/// the switch below through one bound function pointer.
///
/// In-flight requests live in a *slot arena* with a free list, so memory
/// scales with concurrency, not with the total request count (the legacy
/// driver kept an O(total_requests) state array).  A slot is freed exactly
/// when its last task joins, and every task resolves exactly once, so no
/// completion can observe a recycled slot.
///
/// Determinism: the driver consumes RNG draws and engine sequence numbers
/// in exactly the order of the legacy callback driver
/// (run_fj_simulation_baseline) -- per arrival: optional k draw, then per
/// task a subset pick and a service draw, then the next-arrival draw -- so
/// both produce bit-identical results on every config.
class FjDriver {
 public:
  FjDriver(const FjConfig& config, Engine& engine)
      : config_(config),
        engine_(engine),
        master_(config.seed),
        arrival_rng_(master_.split(0)),
        pick_rng_(master_.split(1)),
        k_rng_(master_.split(2)),
        cluster_(config.num_nodes, config.stats_shards),
        mean_interarrival_(1.0 / config.lambda) {
    nodes_.reserve(config.num_nodes);
    for (std::size_t i = 0; i < config.num_nodes; ++i) {
      nodes_.push_back(std::make_unique<ForkNode>(
          engine, config.service, config.replicas, config.policy,
          config.redundant_delay, master_.split(100 + i)));
      nodes_.back()->bind_completions(this, &FjDriver::on_node_completion);
    }
    warmup_ = static_cast<std::uint64_t>(
        config.warmup_fraction / (1.0 - config.warmup_fraction) *
        static_cast<double>(config.num_requests));
    total_requests_ = warmup_ + config.num_requests;
    node_index_.resize(config.num_nodes);
    for (std::size_t i = 0; i < config.num_nodes; ++i) {
      node_index_[i] = static_cast<std::uint32_t>(i);
    }
    if (config.record_responses) {
      result_.request_responses.reserve(config.num_requests);
    }
    engine.bind(this, &FjDriver::dispatch);
  }

  FjResult run() {
    engine_.schedule_event(arrival_rng_.exponential(mean_interarrival_),
                           EventKind::kArrival, EventPayload{});
    engine_.run();
    for (const auto& node : nodes_) node->flush();

    for (const auto& node : nodes_) {
      result_.redundant_issues += node->redundant_issues();
    }
    result_.node_task_stats.reserve(config_.num_nodes);
    for (std::size_t n = 0; n < config_.num_nodes; ++n) {
      result_.node_task_stats.push_back(cluster_.node(n));
    }
    result_.sim_end_time = engine_.now();
    result_.events_processed = engine_.events_processed();
    return std::move(result_);
  }

 private:
  struct RequestSlot {
    double arrival = 0.0;
    double max_completion = 0.0;
    std::uint32_t remaining = 0;
    bool measured = false;
  };

  static void dispatch(void* ctx, Engine&, const Event& ev) {
    auto* self = static_cast<FjDriver*>(ctx);
    switch (ev.kind) {
      case EventKind::kArrival:
        self->on_arrival();
        break;
      case EventKind::kTaskComplete: {
        double arrival;
        std::memcpy(&arrival, &ev.payload.raw.b, sizeof(double));
        self->on_task_complete(ev.payload.raw.a, arrival, ev.time);
        break;
      }
      default:
        throw std::logic_error("FjDriver: unexpected event kind");
    }
  }

  /// Redundant-policy completions arrive here straight from the node (no
  /// engine event); FIFO completions arrive via kTaskComplete above.  Both
  /// funnel into the same join bookkeeping.
  static void on_node_completion(void* ctx, std::uint64_t cookie,
                                 double arrival, double completion) {
    static_cast<FjDriver*>(ctx)->on_task_complete(cookie, arrival, completion);
  }

  static std::uint64_t make_cookie(std::uint32_t slot,
                                   std::uint32_t node) noexcept {
    return (static_cast<std::uint64_t>(slot) << 32) | node;
  }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t s = free_slots_.back();
      free_slots_.pop_back();
      return s;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void on_arrival() {
    const std::uint64_t id = issued_++;
    const std::uint32_t slot = acquire_slot();
    RequestSlot& req = slots_[slot];
    req.arrival = engine_.now();
    req.max_completion = 0.0;
    req.measured = id >= warmup_;

    std::size_t k = config_.num_nodes;
    if (config_.k_mode == TaskCountMode::kFixed) {
      k = static_cast<std::size_t>(config_.k_fixed);
    } else if (config_.k_mode == TaskCountMode::kUniform) {
      k = static_cast<std::size_t>(
          k_rng_.uniform_int(config_.k_lo, config_.k_hi));
    }
    req.remaining = static_cast<std::uint32_t>(k);

    if (k == config_.num_nodes) {
      for (std::size_t n = 0; n < config_.num_nodes; ++n) {
        nodes_[n]->submit_task(
            make_cookie(slot, static_cast<std::uint32_t>(n)));
      }
    } else {
      // Partial Fisher-Yates: the first k entries become the chosen subset.
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    pick_rng_.uniform_int(config_.num_nodes - i));
        std::swap(node_index_[i], node_index_[j]);
        nodes_[node_index_[i]]->submit_task(
            make_cookie(slot, node_index_[i]));
      }
    }
    result_.total_tasks += k;

    if (issued_ < total_requests_) {
      engine_.schedule_event_in(arrival_rng_.exponential(mean_interarrival_),
                                EventKind::kArrival, EventPayload{});
    }
  }

  void on_task_complete(std::uint64_t cookie, double arrival,
                        double completion) {
    const auto slot = static_cast<std::uint32_t>(cookie >> 32);
    const auto node = static_cast<std::uint32_t>(cookie);
    RequestSlot& req = slots_[slot];
    if (req.measured) {
      const double response = completion - arrival;
      result_.pooled_task_stats.add(response);
      cluster_.record_moments(node, response);
    }
    if (completion > req.max_completion) req.max_completion = completion;
    if (--req.remaining == 0) {
      if (req.measured) {
        const double response = req.max_completion - req.arrival;
        if (config_.record_responses) {
          result_.request_responses.push_back(response);
        }
        result_.response_histogram.record(response);
        ++result_.measured_requests;
      }
      free_slots_.push_back(slot);
    }
  }

  const FjConfig& config_;
  Engine& engine_;
  util::Rng master_;
  util::Rng arrival_rng_;
  util::Rng pick_rng_;
  util::Rng k_rng_;
  std::vector<std::unique_ptr<ForkNode>> nodes_;
  ClusterStats cluster_;
  FjResult result_;
  std::vector<RequestSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> node_index_;  ///< Fisher-Yates scratch
  double mean_interarrival_;
  std::uint64_t warmup_ = 0;
  std::uint64_t total_requests_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace

double nominal_load(const FjConfig& config) {
  return config.lambda * mean_tasks_per_request(config) /
         static_cast<double>(config.num_nodes) * config.service->mean() /
         static_cast<double>(config.replicas);
}

double lambda_for_nominal_load(const FjConfig& config, double rho) {
  if (!(rho > 0.0 && rho < 1.0)) {
    throw std::invalid_argument("lambda_for_nominal_load: rho must be in (0,1)");
  }
  return rho * static_cast<double>(config.num_nodes) *
         static_cast<double>(config.replicas) /
         (mean_tasks_per_request(config) * config.service->mean());
}

FjResult run_fj_simulation(const FjConfig& config) {
  validate(config);
  Engine engine;
  FjDriver driver(config, engine);
  return driver.run();
}

}  // namespace forktail::sim
