// The pre-calendar-queue fork-join driver, kept verbatim (modulo the
// HeapEngine spelling and the record_responses switch) as the determinism
// reference and bench baseline for run_fj_simulation.  The determinism
// suite pins the typed-event driver bit-identical to this one; do not
// optimise this file.
#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "fjsim/redundant_node.hpp"
#include "sim/heap_engine.hpp"
#include "sim/network.hpp"

namespace forktail::sim {

namespace {

void validate_baseline(const FjConfig& c) {
  if (c.num_nodes == 0) throw std::invalid_argument("FjConfig: num_nodes == 0");
  if (!c.service) throw std::invalid_argument("FjConfig: null service");
  if (!(c.lambda > 0.0)) throw std::invalid_argument("FjConfig: lambda <= 0");
  if (c.num_requests == 0) throw std::invalid_argument("FjConfig: no requests");
  if (c.k_mode == TaskCountMode::kFixed &&
      (c.k_fixed < 1 || static_cast<std::size_t>(c.k_fixed) > c.num_nodes)) {
    throw std::invalid_argument("FjConfig: k_fixed out of range");
  }
  if (c.k_mode == TaskCountMode::kUniform &&
      (c.k_lo < 1 || c.k_hi < c.k_lo ||
       static_cast<std::size_t>(c.k_hi) > c.num_nodes)) {
    throw std::invalid_argument("FjConfig: uniform k range out of range");
  }
  if (!(c.warmup_fraction >= 0.0 && c.warmup_fraction < 1.0)) {
    throw std::invalid_argument("FjConfig: warmup_fraction must be in [0,1)");
  }
}

/// The original callback ForkNode, specialised to HeapEngine.  Identical
/// logic to sim::ForkNode's legacy path, frozen alongside the engine it
/// runs on.
class BaselineForkNode {
 public:
  using TaskCallback = std::function<void(double arrival, double completion)>;

  BaselineForkNode(HeapEngine& engine, dist::DistPtr service, int replicas,
                   DispatchPolicy policy, double redundant_delay,
                   util::Rng rng)
      : engine_(engine),
        service_(std::move(service)),
        policy_(policy),
        rng_(rng) {
    if (!service_) {
      throw std::invalid_argument("ForkNode: null service distribution");
    }
    if (replicas < 1) {
      throw std::invalid_argument("ForkNode: replicas must be >= 1");
    }
    if (policy == DispatchPolicy::kSingle && replicas != 1) {
      throw std::invalid_argument(
          "ForkNode: kSingle requires exactly one replica");
    }
    if (policy == DispatchPolicy::kRedundant) {
      if (!(redundant_delay > 0.0)) {
        throw std::invalid_argument(
            "ForkNode: kRedundant requires a positive delay");
      }
      redundant_ = std::make_unique<fjsim::RedundantNode>(
          service_.get(), replicas, redundant_delay, rng_);
    }
    servers_.resize(static_cast<std::size_t>(replicas));
  }

  BaselineForkNode(const BaselineForkNode&) = delete;
  BaselineForkNode& operator=(const BaselineForkNode&) = delete;

  void submit(TaskCallback on_complete) {
    const double arrival = engine_.now();
    if (policy_ == DispatchPolicy::kRedundant) {
      const std::uint64_t id = next_task_id_++;
      pending_callbacks_.emplace(id, std::move(on_complete));
      redundant_->submit_task(
          arrival, id, [this](std::uint64_t tid, double arr, double done) {
            resolve(tid, arr, done);
          });
      return;
    }
    const double service = service_->sample(rng_);
    const std::size_t server = next_server();
    const double done = servers_[server].submit(arrival, service);
    engine_.schedule(done, [arrival, done, cb = std::move(on_complete)] {
      cb(arrival, done);
    });
  }

  void flush() {
    if (policy_ != DispatchPolicy::kRedundant) return;
    redundant_->flush([this](std::uint64_t tid, double arr, double done) {
      resolve(tid, arr, done);
    });
  }

  std::uint64_t redundant_issues() const noexcept {
    return redundant_ ? redundant_->redundant_issues() : 0;
  }

 private:
  HeapEngine& engine_;
  dist::DistPtr service_;
  std::vector<FifoServer> servers_;
  DispatchPolicy policy_;
  util::Rng rng_;
  std::size_t rr_next_ = 0;
  std::unique_ptr<fjsim::RedundantNode> redundant_;
  std::unordered_map<std::uint64_t, TaskCallback> pending_callbacks_;
  std::uint64_t next_task_id_ = 0;

  std::size_t next_server() noexcept {
    const std::size_t s = rr_next_;
    rr_next_ = (rr_next_ + 1) % servers_.size();
    return s;
  }

  void resolve(std::uint64_t id, double arrival, double completion) {
    const auto it = pending_callbacks_.find(id);
    if (it == pending_callbacks_.end()) {
      throw std::logic_error("BaselineForkNode: completion for unknown task");
    }
    TaskCallback cb = std::move(it->second);
    pending_callbacks_.erase(it);
    cb(arrival, completion);
  }
};

struct RequestState {
  double arrival = 0.0;
  double max_completion = 0.0;
  std::uint32_t remaining = 0;
};

}  // namespace

FjResult run_fj_simulation_baseline(const FjConfig& config) {
  validate_baseline(config);
  HeapEngine engine;
  util::Rng master(config.seed);
  util::Rng arrival_rng = master.split(0);
  util::Rng pick_rng = master.split(1);
  util::Rng k_rng = master.split(2);

  std::vector<std::unique_ptr<BaselineForkNode>> nodes;
  nodes.reserve(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    nodes.push_back(std::make_unique<BaselineForkNode>(
        engine, config.service, config.replicas, config.policy,
        config.redundant_delay, master.split(100 + i)));
  }

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total_requests = warmup + config.num_requests;

  FjResult result;
  if (config.record_responses) {
    result.request_responses.reserve(config.num_requests);
  }
  result.node_task_stats.resize(config.num_nodes);

  std::vector<RequestState> requests(total_requests);
  // Scratch for subset sampling (partial Fisher-Yates).
  std::vector<std::uint32_t> node_index(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    node_index[i] = static_cast<std::uint32_t>(i);
  }

  const double mean_interarrival = 1.0 / config.lambda;
  std::uint64_t issued = 0;

  // One shared arrival handler reschedules itself until all requests are in.
  std::function<void()> arrive = [&] {
    const std::uint64_t id = issued++;
    RequestState& req = requests[id];
    req.arrival = engine.now();

    std::size_t k = config.num_nodes;
    if (config.k_mode == TaskCountMode::kFixed) {
      k = static_cast<std::size_t>(config.k_fixed);
    } else if (config.k_mode == TaskCountMode::kUniform) {
      k = static_cast<std::size_t>(k_rng.uniform_int(config.k_lo, config.k_hi));
    }
    req.remaining = static_cast<std::uint32_t>(k);

    const bool measured = id >= warmup;
    auto touch = [&, id, measured](std::size_t node_id) {
      nodes[node_id]->submit([&, id, measured, node_id](double arrival,
                                                        double completion) {
        const double response = completion - arrival;
        if (measured) {
          result.pooled_task_stats.add(response);
          result.node_task_stats[node_id].add(response);
        }
        RequestState& r = requests[id];
        r.max_completion = std::max(r.max_completion, completion);
        if (--r.remaining == 0 && measured) {
          if (config.record_responses) {
            result.request_responses.push_back(r.max_completion - r.arrival);
          }
          ++result.measured_requests;
        }
      });
      ++result.total_tasks;
    };

    if (k == config.num_nodes) {
      for (std::size_t n = 0; n < config.num_nodes; ++n) touch(n);
    } else {
      // Partial Fisher-Yates: the first k entries become the chosen subset.
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    pick_rng.uniform_int(config.num_nodes - i));
        std::swap(node_index[i], node_index[j]);
        touch(node_index[i]);
      }
    }

    if (issued < total_requests) {
      engine.schedule_in(arrival_rng.exponential(mean_interarrival), arrive);
    }
  };

  engine.schedule(arrival_rng.exponential(mean_interarrival), arrive);
  engine.run();
  for (const auto& node : nodes) node->flush();

  for (const auto& node : nodes) {
    result.redundant_issues += node->redundant_issues();
  }
  result.sim_end_time = engine.now();
  result.events_processed = engine.events_processed();
  return result;
}

}  // namespace forktail::sim
