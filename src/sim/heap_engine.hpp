// The pre-calendar-queue discrete-event engine: a binary heap of
// (time, sequence, std::function) events.
//
// Kept as the reference implementation the rebuilt `sim::Engine` (a
// two-level calendar queue over arena-allocated typed events, engine.hpp)
// is cross-validated and benchmarked against: the determinism suite pins
// run_fj_simulation() on the new engine bit-identical to
// run_fj_simulation_baseline() on this one, and bench_cluster reports the
// new engine's events/sec as a multiple of this engine's (the
// BENCH_cluster.json acceptance row).  Semantics are frozen -- do not
// optimise this class.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace forktail::sim {

class HeapEngine {
 public:
  using Handler = std::function<void()>;
  /// Identifies one cancellable event (see schedule_cancellable).
  using EventId = std::uint64_t;

  double now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }
  std::uint64_t events_cancelled() const noexcept { return cancelled_count_; }

  /// High-water mark of the event calendar over this engine's lifetime.
  std::size_t max_queue_depth() const noexcept { return max_depth_; }

  /// Schedule `handler` at absolute time `time` (>= now).  Events at equal
  /// times fire in scheduling order.
  void schedule(double time, Handler handler);

  /// Schedule at now + delay.
  void schedule_in(double delay, Handler handler) {
    schedule(now_ + delay, std::move(handler));
  }

  /// Schedule a *cancellable* event (timeout deadlines, hedge launches:
  /// anything that a cancel-on-first-complete race may retract).  The
  /// returned id stays valid until the event fires or is cancelled.
  /// Cancellation is lazy -- the heap entry is skipped on pop without
  /// advancing simulated time or the processed count -- so cancel is O(1)
  /// and the calendar needs no removal support.
  EventId schedule_cancellable(double time, Handler handler);

  /// Cancel a pending cancellable event.  Returns false (harmlessly) when
  /// the event already fired, was already cancelled, or never existed.
  bool cancel(EventId id);

  /// Run until the event queue empties or `stop()` is called.
  void run();

  /// Run until simulated time exceeds `t_end` (events after t_end stay
  /// queued).
  void run_until(double t_end);

  /// Request termination from inside a handler.
  void stop() noexcept { stopped_ = true; }

  bool empty() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// True (and consumes the tombstone) when a popped event was cancelled.
  bool consume_cancellation(const Event& ev);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t max_depth_ = 0;
  bool stopped_ = false;
  /// Sequence numbers of live cancellable events / of cancelled-but-still-
  /// queued tombstones.  Ordinary schedule() events appear in neither.
  std::unordered_set<std::uint64_t> cancellable_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t cancelled_count_ = 0;
};

}  // namespace forktail::sim
