#include "sim/heap_engine.hpp"

#include <stdexcept>

namespace forktail::sim {

void HeapEngine::schedule(double time, Handler handler) {
  if (time < now_) {
    throw std::invalid_argument("HeapEngine::schedule: time is in the past");
  }
  queue_.push(Event{time, seq_++, std::move(handler)});
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
}

HeapEngine::EventId HeapEngine::schedule_cancellable(double time,
                                                     Handler handler) {
  if (time < now_) {
    throw std::invalid_argument(
        "HeapEngine::schedule_cancellable: time is in the past");
  }
  const EventId id = seq_;
  queue_.push(Event{time, seq_++, std::move(handler)});
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  cancellable_.insert(id);
  return id;
}

bool HeapEngine::cancel(EventId id) {
  // Only a still-pending cancellable event can be cancelled; the id is
  // moved to the tombstone set so the heap entry is skipped on pop.
  if (cancellable_.erase(id) == 0) return false;
  cancelled_.insert(id);
  ++cancelled_count_;
  return true;
}

bool HeapEngine::consume_cancellation(const Event& ev) {
  if (cancelled_.empty()) return false;
  return cancelled_.erase(ev.seq) > 0;
}

void HeapEngine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top returns const&; the handler must be moved out
    // before pop, so copy the POD fields and steal the handler.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    // A cancelled event is a tombstone: skip it without advancing now_ or
    // the processed count (cancellation must be observationally free).
    if (consume_cancellation(ev)) continue;
    cancellable_.erase(ev.seq);
    now_ = ev.time;
    ++processed_;
    ev.handler();
  }
}

void HeapEngine::run_until(double t_end) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t_end) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (consume_cancellation(ev)) continue;
    cancellable_.erase(ev.seq);
    now_ = ev.time;
    ++processed_;
    ev.handler();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace forktail::sim
