// Fork-node models for the event-driven simulator.
//
// A fork node is a black box containing one or more replicated FIFO
// servers (Fig. 1 of the paper).  Three dispatch policies from Section 4.1:
//   - single server (r = 1)
//   - round-robin over r replicas
//   - round-robin with redundant task issue and kill-on-win (speculative
//     execution): if a copy has been executing for D time units without
//     completing, a single replica is issued to the next server; the first
//     completion wins and the losing copy is cancelled immediately.  This
//     policy is delegated to fjsim::RedundantNode, the shared queued-server
//     implementation (cancellation breaks plain Lindley accounting).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dist/distribution.hpp"
#include "fjsim/redundant_node.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace forktail::sim {

enum class DispatchPolicy : std::uint8_t {
  kSingle,      ///< r must be 1
  kRoundRobin,  ///< RR over r replicas
  kRedundant,   ///< RR + one redundant issue after `redundant_delay`
};

/// One FIFO work-conserving server: tracks the time it next becomes free.
/// Submissions must arrive in non-decreasing time order (guaranteed when
/// driven through the event engine).
class FifoServer {
 public:
  /// Returns the completion time of a task arriving at `arrival` with the
  /// given service demand.
  double submit(double arrival, double service) noexcept {
    const double start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + service;
    return next_free_;
  }

  double next_free() const noexcept { return next_free_; }
  void reset() noexcept { next_free_ = 0.0; }

 private:
  double next_free_ = 0.0;
};

class ForkNode {
 public:
  /// `on_task_complete(arrival, completion)` fires exactly once per task.
  /// For the redundant policy the callback may fire from a later submit()
  /// or from flush() (the completion *values* are exact; only the calling
  /// point differs, which no consumer depends on).
  using TaskCallback = std::function<void(double arrival, double completion)>;

  /// Typed-path completion sink: `fn(ctx, cookie, arrival, completion)`
  /// fires exactly once per submit_task(cookie).  A raw function pointer,
  /// not std::function: one indirect call, no type erasure, no allocation.
  using CompletionFn = void (*)(void* ctx, std::uint64_t cookie,
                                double arrival, double completion);

  ForkNode(Engine& engine, dist::DistPtr service, int replicas,
           DispatchPolicy policy, double redundant_delay, util::Rng rng);

  /// Submit a task arriving now (engine time).  The service demand is drawn
  /// internally; the callback fires at completion.
  void submit(TaskCallback on_complete);

  /// Bind the typed-path completion sink (required before submit_task).
  /// FIFO-policy completions are delivered through a kTaskComplete engine
  /// event whose payload carries (cookie, arrival-bits) -- the driver's
  /// dispatcher decodes it (see network.cpp) -- while redundant-policy
  /// completions call `fn` directly from a later submit_task() or
  /// flush(), exactly where the legacy callback path fired them.
  void bind_completions(void* ctx, CompletionFn fn) noexcept {
    completion_ctx_ = ctx;
    completion_fn_ = fn;
  }

  /// Typed fast path of submit(): submit a task arriving now, tagged with
  /// an opaque driver cookie.  Consumes the same RNG draws and engine
  /// sequence numbers as submit(), so the two paths fire completions in
  /// bit-identical order.
  void submit_task(std::uint64_t cookie);

  /// Resolve any still-pending redundant completions (call after the event
  /// loop drains).  No-op for the FIFO policies.
  void flush();

  int replicas() const noexcept { return static_cast<int>(servers_.size()); }
  DispatchPolicy policy() const noexcept { return policy_; }

  /// Count of redundant replicas actually issued (for load accounting).
  std::uint64_t redundant_issues() const noexcept;

 private:
  Engine& engine_;
  dist::DistPtr service_;
  std::vector<FifoServer> servers_;
  DispatchPolicy policy_;
  util::Rng rng_;
  std::size_t rr_next_ = 0;
  /// Monomorphic fast path: when the service distribution is the (by far
  /// most common) exponential, draw it inline instead of through the
  /// vtable.  Negative when the general path must be used.  Draws are
  /// identical either way (Exponential::sample == rng.exponential(mean)).
  double exp_mean_ = -1.0;

  double draw_service() noexcept {
    return exp_mean_ > 0.0 ? rng_.exponential(exp_mean_)
                           : service_->sample(rng_);
  }

  // Typed-path sink (bind_completions).
  void* completion_ctx_ = nullptr;
  CompletionFn completion_fn_ = nullptr;

  // Redundant policy state: the shared queued-server node plus the pending
  // callbacks (legacy path) / cookies (typed path) keyed by task id.
  std::unique_ptr<fjsim::RedundantNode> redundant_;
  std::unordered_map<std::uint64_t, TaskCallback> pending_callbacks_;
  std::unordered_map<std::uint64_t, std::uint64_t> pending_cookies_;
  std::uint64_t next_task_id_ = 0;

  std::size_t next_server() noexcept {
    // Wrap with a compare, not a modulo: an integer division per task is
    // measurable at cluster scale.
    const std::size_t s = rr_next_;
    rr_next_ = s + 1 == servers_.size() ? 0 : s + 1;
    return s;
  }

  void resolve(std::uint64_t id, double arrival, double completion);
};

}  // namespace forktail::sim
