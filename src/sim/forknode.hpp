// Fork-node models for the event-driven simulator.
//
// A fork node is a black box containing one or more replicated FIFO
// servers (Fig. 1 of the paper).  Three dispatch policies from Section 4.1:
//   - single server (r = 1)
//   - round-robin over r replicas
//   - round-robin with redundant task issue and kill-on-win (speculative
//     execution): if a copy has been executing for D time units without
//     completing, a single replica is issued to the next server; the first
//     completion wins and the losing copy is cancelled immediately.  This
//     policy is delegated to fjsim::RedundantNode, the shared queued-server
//     implementation (cancellation breaks plain Lindley accounting).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dist/distribution.hpp"
#include "fjsim/redundant_node.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace forktail::sim {

enum class DispatchPolicy : std::uint8_t {
  kSingle,      ///< r must be 1
  kRoundRobin,  ///< RR over r replicas
  kRedundant,   ///< RR + one redundant issue after `redundant_delay`
};

/// One FIFO work-conserving server: tracks the time it next becomes free.
/// Submissions must arrive in non-decreasing time order (guaranteed when
/// driven through the event engine).
class FifoServer {
 public:
  /// Returns the completion time of a task arriving at `arrival` with the
  /// given service demand.
  double submit(double arrival, double service) noexcept {
    const double start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + service;
    return next_free_;
  }

  double next_free() const noexcept { return next_free_; }
  void reset() noexcept { next_free_ = 0.0; }

 private:
  double next_free_ = 0.0;
};

class ForkNode {
 public:
  /// `on_task_complete(arrival, completion)` fires exactly once per task.
  /// For the redundant policy the callback may fire from a later submit()
  /// or from flush() (the completion *values* are exact; only the calling
  /// point differs, which no consumer depends on).
  using TaskCallback = std::function<void(double arrival, double completion)>;

  ForkNode(Engine& engine, dist::DistPtr service, int replicas,
           DispatchPolicy policy, double redundant_delay, util::Rng rng);

  /// Submit a task arriving now (engine time).  The service demand is drawn
  /// internally; the callback fires at completion.
  void submit(TaskCallback on_complete);

  /// Resolve any still-pending redundant completions (call after the event
  /// loop drains).  No-op for the FIFO policies.
  void flush();

  int replicas() const noexcept { return static_cast<int>(servers_.size()); }
  DispatchPolicy policy() const noexcept { return policy_; }

  /// Count of redundant replicas actually issued (for load accounting).
  std::uint64_t redundant_issues() const noexcept;

 private:
  Engine& engine_;
  dist::DistPtr service_;
  std::vector<FifoServer> servers_;
  DispatchPolicy policy_;
  util::Rng rng_;
  std::size_t rr_next_ = 0;

  // Redundant policy state: the shared queued-server node plus the pending
  // callbacks keyed by task id.
  std::unique_ptr<fjsim::RedundantNode> redundant_;
  std::unordered_map<std::uint64_t, TaskCallback> pending_callbacks_;
  std::uint64_t next_task_id_ = 0;

  std::size_t next_server() noexcept {
    const std::size_t s = rr_next_;
    rr_next_ = (rr_next_ + 1) % servers_.size();
    return s;
  }

  void resolve(std::uint64_t id, double arrival, double completion);
};

}  // namespace forktail::sim
