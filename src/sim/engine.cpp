#include "sim/engine.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace forktail::sim {

void Engine::schedule(double time, Handler handler) {
  if (time < now_) {
    throw std::invalid_argument("Engine::schedule: time is in the past");
  }
  queue_.push(Event{time, seq_++, std::move(handler)});
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
}

Engine::EventId Engine::schedule_cancellable(double time, Handler handler) {
  if (time < now_) {
    throw std::invalid_argument(
        "Engine::schedule_cancellable: time is in the past");
  }
  const EventId id = seq_;
  queue_.push(Event{time, seq_++, std::move(handler)});
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  cancellable_.insert(id);
  return id;
}

bool Engine::cancel(EventId id) {
  // Only a still-pending cancellable event can be cancelled; the id is
  // moved to the tombstone set so the heap entry is skipped on pop.
  if (cancellable_.erase(id) == 0) return false;
  cancelled_.insert(id);
  ++cancelled_count_;
  static obs::Counter& cancelled =
      obs::Registry::global().counter("sim.engine.cancelled");
  cancelled.add(1);
  return true;
}

bool Engine::consume_cancellation(const Event& ev) {
  if (cancelled_.empty()) return false;
  return cancelled_.erase(ev.seq) > 0;
}

void Engine::publish_metrics(std::uint64_t events) const {
  // One registry touch per run() call, not per event: the run loop itself
  // stays untouched, so the engine's cost profile is identical with
  // observability on.
  static obs::Counter& processed =
      obs::Registry::global().counter("sim.engine.events");
  static obs::Gauge& depth =
      obs::Registry::global().gauge("sim.engine.max_queue_depth");
  processed.add(events);
  depth.set_max(static_cast<double>(max_depth_));
}

void Engine::run() {
  stopped_ = false;
  const std::uint64_t before = processed_;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top returns const&; the handler must be moved out
    // before pop, so copy the POD fields and steal the handler.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    // A cancelled event is a tombstone: skip it without advancing now_ or
    // the processed count (cancellation must be observationally free).
    if (consume_cancellation(ev)) continue;
    cancellable_.erase(ev.seq);
    now_ = ev.time;
    ++processed_;
    ev.handler();
  }
  publish_metrics(processed_ - before);
}

void Engine::run_until(double t_end) {
  stopped_ = false;
  const std::uint64_t before = processed_;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t_end) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (consume_cancellation(ev)) continue;
    cancellable_.erase(ev.seq);
    now_ = ev.time;
    ++processed_;
    ev.handler();
  }
  if (now_ < t_end) now_ = t_end;
  publish_metrics(processed_ - before);
}

}  // namespace forktail::sim
