#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace forktail::sim {

void Engine::throw_bad_time(bool past) {
  if (past) {
    throw std::invalid_argument("Engine::schedule: time is in the past");
  }
  throw std::invalid_argument("Engine::schedule: time is not finite");
}

void Engine::push(const Event& ev) {
  ++size_;
  if (size_ > max_depth_) max_depth_ = size_;
  if (nbuckets_ != 0 && ev.time < window_end_) {
    // rel can be negative when an event is scheduled before the window
    // origin (legal after a partial run_until); clamp instead of casting a
    // negative double.  Bucket 0 / the batch still order it correctly
    // because extraction sorts by actual (time, seq).
    const double rel = (ev.time - origin_) * inv_width_;
    std::size_t idx = rel > 0.0 ? static_cast<std::size_t>(rel) : 0;
    if (idx >= nbuckets_) idx = nbuckets_ - 1;
    if (idx < scan_) {
      // The event lands in the already-drained part of the window, which is
      // only reachable for times >= now (check_time): sort-insert into the
      // live batch past the consumption cursor so (time, seq) order holds.
      const auto pos = std::upper_bound(batch_.begin() + batch_pos_,
                                        batch_.end(), ev, EarlierByTimeSeq{});
      batch_.insert(pos, ev);
    } else {
      buckets_[idx].push_back(ev);
    }
  } else {
    overflow_.push_back(ev);
  }
}

const Event* Engine::peek_live() {
  for (;;) {
    while (batch_pos_ < batch_.size()) {
      const Event& ev = batch_[batch_pos_];
      // A cancelled event is a tombstone: skip it without advancing now_ or
      // the processed count (cancellation must be observationally free).
      if ((ev.flags & kFlagCancellable) && !cancelled_.empty() &&
          cancelled_.erase(ev.seq) > 0) {
        release_slot_of(ev);
        ++batch_pos_;
        --size_;
        continue;
      }
      return &ev;
    }
    if (!refill_batch()) return nullptr;
  }
}

bool Engine::refill_batch() {
  batch_.clear();
  batch_pos_ = 0;
  for (;;) {
    while (scan_ < nbuckets_) {
      std::vector<Event>& bucket = buckets_[scan_++];
      if (bucket.empty()) continue;
      // Swap keeps the bucket's capacity circulating through the batch, so
      // a warm calendar schedules and drains without allocating.
      batch_.swap(bucket);
      sort_batch();
      return true;
    }
    if (overflow_.empty()) {
      nbuckets_ = 0;
      scan_ = 0;
      return false;
    }
    rebucket();
  }
}

void Engine::sort_batch() {
  // Buckets average ~2 events, so an inlined insertion sort beats the
  // std::sort dispatch overhead; large batches still get introsort.
  const std::size_t n = batch_.size();
  if (n < 2) return;
  if (n > 24) {
    std::sort(batch_.begin(), batch_.end(), EarlierByTimeSeq{});
    return;
  }
  const EarlierByTimeSeq earlier{};
  for (std::size_t i = 1; i < n; ++i) {
    const Event ev = batch_[i];
    std::size_t j = i;
    while (j > 0 && earlier(ev, batch_[j - 1])) {
      batch_[j] = batch_[j - 1];
      --j;
    }
    batch_[j] = ev;
  }
}

void Engine::rebucket() {
  double tmin = overflow_.front().time;
  double tmax = tmin;
  for (const Event& ev : overflow_) {
    if (ev.time < tmin) tmin = ev.time;
    if (ev.time > tmax) tmax = ev.time;
  }
  const std::size_t count = overflow_.size();
  // Aim for ~2 events per bucket; power-of-two count, clamped to keep the
  // per-window scan bounded for sparse queues and the array bounded for
  // dense ones.
  std::size_t nb = 16;
  while (nb < count / 2 && nb < 65536) nb <<= 1;
  const double span = tmax - tmin;
  double width = span > 0.0 ? span * 2.0 / static_cast<double>(count) : 1.0;
  if (!(width > 0.0) || !std::isfinite(width)) width = 1.0;
  // Guard against a width that underflows next to a large origin: the
  // window must strictly contain tmin or the drain loop would spin.
  while (tmin + width * static_cast<double>(nb) <= tmin) width *= 2.0;
  if (buckets_.size() < nb) buckets_.resize(nb);
  nbuckets_ = nb;
  scan_ = 0;
  origin_ = tmin;
  inv_width_ = 1.0 / width;
  window_end_ = tmin + width * static_cast<double>(nb);
  scratch_.clear();
  for (const Event& ev : overflow_) {
    if (ev.time < window_end_) {
      std::size_t idx =
          static_cast<std::size_t>((ev.time - origin_) * inv_width_);
      if (idx >= nbuckets_) idx = nbuckets_ - 1;
      buckets_[idx].push_back(ev);
    } else {
      scratch_.push_back(ev);
    }
  }
  overflow_.swap(scratch_);
}

void Engine::compact() {
  ++compactions_;
  // One pass per container: keep live events in place, release the handler
  // slots of dead ones, and retire their tombstones.  cancelled_ drains to
  // empty because every tombstone corresponds to exactly one queued event.
  const auto sweep = [this](std::vector<Event>& v, std::size_t begin) {
    std::size_t w = begin;
    for (std::size_t r = begin; r < v.size(); ++r) {
      const Event& ev = v[r];
      if ((ev.flags & kFlagCancellable) && cancelled_.erase(ev.seq) > 0) {
        release_slot_of(ev);
        --size_;
        continue;
      }
      v[w++] = ev;
    }
    v.resize(w);
  };
  sweep(batch_, batch_pos_);
  // Drop the consumed batch prefix too, so a long-lived batch does not pin
  // memory across compactions.
  batch_.erase(batch_.begin(),
               batch_.begin() + static_cast<std::ptrdiff_t>(batch_pos_));
  batch_pos_ = 0;
  for (std::size_t i = scan_; i < nbuckets_; ++i) sweep(buckets_[i], 0);
  sweep(overflow_, 0);
}

void Engine::schedule(double time, Handler handler) {
  check_time(time);
  EventPayload payload;
  payload.handler.slot = acquire_slot(std::move(handler));
  const Event ev{time, seq_++, payload, EventKind::kHandler, 0};
  push(ev);
}

Engine::EventId Engine::schedule_cancellable(double time, Handler handler) {
  check_time(time);
  EventPayload payload;
  payload.handler.slot = acquire_slot(std::move(handler));
  const Event ev{time, seq_++, payload, EventKind::kHandler,
                 kFlagCancellable};
  push(ev);
  cancellable_.insert(ev.seq);
  return ev.seq;
}

bool Engine::cancel(EventId id) {
  // Only a still-pending cancellable event can be cancelled; the id is
  // moved to the tombstone set so the calendar entry is skipped on pop.
  if (cancellable_.erase(id) == 0) return false;
  cancelled_.insert(id);
  ++cancelled_count_;
  static obs::Counter& cancelled =
      obs::Registry::global().counter("sim.engine.cancelled");
  cancelled.add(1);
  if (cancelled_.size() >= kCompactMinDead &&
      cancelled_.size() * 2 >= size_) {
    compact();
  }
  return true;
}

std::uint32_t Engine::acquire_slot(Handler handler) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    handlers_[slot] = std::move(handler);
    return slot;
  }
  handlers_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(handlers_.size() - 1);
}

void Engine::release_slot_of(const Event& ev) {
  if (ev.kind != EventKind::kHandler) return;
  const std::uint32_t slot = ev.payload.handler.slot;
  handlers_[slot] = nullptr;
  free_slots_.push_back(slot);
}

void Engine::fire(const Event& ev) {
  if (ev.kind == EventKind::kHandler) {
    const std::uint32_t slot = ev.payload.handler.slot;
    // Move the handler out before invoking it: the handler may schedule and
    // reallocate the slab, and its slot is free for reuse immediately.
    Handler handler = std::move(handlers_[slot]);
    handlers_[slot] = nullptr;
    free_slots_.push_back(slot);
    handler();
  } else {
    dispatcher_(ctx_, *this, ev);
  }
}

void Engine::publish_metrics(std::uint64_t events,
                             std::uint64_t compactions) const {
  // One registry touch per run() call, not per event: the run loop itself
  // stays untouched, so the engine's cost profile is identical with
  // observability on.
  static obs::Counter& processed =
      obs::Registry::global().counter("sim.events_processed");
  static obs::Counter& processed_legacy =
      obs::Registry::global().counter("sim.engine.events");
  static obs::Gauge& depth = obs::Registry::global().gauge("sim.queue_depth");
  static obs::Gauge& depth_legacy =
      obs::Registry::global().gauge("sim.engine.max_queue_depth");
  static obs::Counter& compacted =
      obs::Registry::global().counter("sim.compactions");
  processed.add(events);
  processed_legacy.add(events);
  depth.set_max(static_cast<double>(max_depth_));
  depth_legacy.set_max(static_cast<double>(max_depth_));
  compacted.add(compactions);
}

void Engine::run() {
  stopped_ = false;
  const std::uint64_t events_before = processed_;
  const std::uint64_t compactions_before = compactions_;
  while (!stopped_) {
    const Event* next = peek_live();
    if (next == nullptr) break;
    const Event ev = *next;  // copy: fired events may grow the batch
    ++batch_pos_;
    --size_;
    if (ev.flags & kFlagCancellable) cancellable_.erase(ev.seq);
    now_ = ev.time;
    ++processed_;
    fire(ev);
  }
  publish_metrics(processed_ - events_before,
                  compactions_ - compactions_before);
}

void Engine::run_until(double t_end) {
  stopped_ = false;
  const std::uint64_t events_before = processed_;
  const std::uint64_t compactions_before = compactions_;
  while (!stopped_) {
    const Event* next = peek_live();
    if (next == nullptr || next->time > t_end) break;
    const Event ev = *next;
    ++batch_pos_;
    --size_;
    if (ev.flags & kFlagCancellable) cancellable_.erase(ev.seq);
    now_ = ev.time;
    ++processed_;
    fire(ev);
  }
  if (now_ < t_end) now_ = t_end;
  publish_metrics(processed_ - events_before,
                  compactions_ - compactions_before);
}

}  // namespace forktail::sim
