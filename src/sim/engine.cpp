#include "sim/engine.hpp"

#include <stdexcept>

namespace forktail::sim {

void Engine::schedule(double time, Handler handler) {
  if (time < now_) {
    throw std::invalid_argument("Engine::schedule: time is in the past");
  }
  queue_.push(Event{time, seq_++, std::move(handler)});
}

void Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top returns const&; the handler must be moved out
    // before pop, so copy the POD fields and steal the handler.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.handler();
  }
}

void Engine::run_until(double t_end) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t_end) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.handler();
  }
  if (now_ < t_end) now_ = t_end;
}

}  // namespace forktail::sim
