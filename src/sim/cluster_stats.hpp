// Sharded per-node statistics registry for cluster-scale simulations.
//
// At >= 1k nodes the per-node Welford accumulators are the hottest shared
// state after the event calendar: every task completion records one sample.
// ClusterStats splits the node range into cache-line-padded shards (node ->
// shard by contiguous ranges, so one node's samples always land in one
// shard and its accumulator stays *exact*, not approximately merged), which
// keeps recording allocation-free and -- because shards never share a cache
// line -- lets future multi-replication drivers record from one thread per
// shard without false sharing.
//
// Determinism contract: `summary()` is bit-identical for every shard count.
//   * Per-node moments are exact (a node lives in exactly one shard, and
//     samples for one node are recorded in simulation order).
//   * The pooled Welford is produced by merging the per-node accumulators
//     in *node* order, which is independent of the shard layout.
//   * The latency histogram uses integer bucket counts on a fixed log2-
//     linear grid, so merge order cannot perturb it.
// Note the pooled moments are a node-ordered *merge* of exact per-node
// accumulators -- a deliberate definition (it is what a black-box monitor
// that only sees per-node (count, mean, variance) reports can compute), not
// a sample-ordered global Welford.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/welford.hpp"

namespace forktail::sim {

/// Fixed-grid log2-linear latency histogram: 64 major (power-of-two) ranges
/// of 8 linear sub-buckets each covering [2^-32, 2^32), plus an underflow
/// and an overflow bucket.  Integer counts make merges exact and
/// order-independent.
class LatencyHistogram {
 public:
  static constexpr std::size_t kMajors = 64;
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kBuckets = kMajors * kSubBuckets + 2;

  void record(double v) noexcept { ++counts_[bucket_index(v)]; }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  }

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t c : counts_) t += c;
    return t;
  }

  /// Smallest value v such that at least `pct`% of samples are <= the upper
  /// edge of v's bucket (upper-edge rule: a conservative tail estimate).
  /// Returns 0 when empty.
  double percentile(double pct) const noexcept;

  const std::uint64_t* counts() const noexcept { return counts_; }

  /// Bucket index for a value: bucket 0 catches v <= 0 (and NaN), the last
  /// bucket catches +inf/overflow, the rest split each binade [2^e, 2^e+1)
  /// into kSubBuckets linear slices.
  static std::size_t bucket_index(double v) noexcept;

  /// Upper edge of bucket `i` (the value reported for percentiles).
  static double bucket_upper_edge(std::size_t i) noexcept;

 private:
  std::uint64_t counts_[kBuckets] = {};
};

/// One node's view: exact streaming moments plus its histogram contribution.
struct NodeStats {
  stats::Welford task_times;
};

/// Deterministic roll-up of the whole registry (see file comment).
struct ClusterSummary {
  stats::Welford pooled;               ///< node-order merge of per-node stats
  std::vector<stats::Welford> per_node;
  LatencyHistogram histogram;          ///< pooled latency histogram
  std::uint64_t samples = 0;
};

class ClusterStats {
 public:
  /// `num_shards` == 0 picks one shard per 64 nodes (min 1).  Nodes map to
  /// shards by contiguous ranges: shard s owns nodes [s*stride, ...), with
  /// the stride rounded up to a power of two (so the actual shard count may
  /// be below the request; summary() is bit-identical either way).
  explicit ClusterStats(std::size_t num_nodes, std::size_t num_shards = 0);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

  std::size_t shard_of(std::size_t node) const noexcept {
    // stride is a power of two, so the hot-path mapping is a shift.
    return node >> shard_shift_;
  }

  /// Record one task response time for `node`.  O(1), allocation-free.
  void record(std::size_t node, double task_time) noexcept {
    Shard& sh = shards_[shard_of(node)];
    sh.nodes[node - sh.first_node].task_times.add(task_time);
    sh.histogram.record(task_time);
  }

  /// record() without the histogram update, for consumers that only read
  /// the per-node moments (the fork-join driver keeps its own response
  /// histogram at join granularity).
  void record_moments(std::size_t node, double task_time) noexcept {
    Shard& sh = shards_[shard_of(node)];
    sh.nodes[node - sh.first_node].task_times.add(task_time);
  }

  /// Exact accumulator for one node (its shard slice).
  const stats::Welford& node(std::size_t node) const noexcept {
    const Shard& sh = shards_[shard_of(node)];
    return sh.nodes[node - sh.first_node].task_times;
  }

  /// Deterministic roll-up: identical for every shard count (see file
  /// comment for why).
  ClusterSummary summary() const;

  void reset();

 private:
  /// Cache-line padded so adjacent shards never share a line.  The nodes
  /// vector is per-shard (contiguous slice), the histogram is the shard's
  /// pooled contribution.
  struct alignas(64) Shard {
    std::size_t first_node = 0;
    std::vector<NodeStats> nodes;
    LatencyHistogram histogram;
  };

  std::size_t num_nodes_;
  std::size_t stride_;       ///< nodes per shard (power of two)
  unsigned shard_shift_;     ///< log2(stride_)
  std::vector<Shard> shards_;
};

}  // namespace forktail::sim
