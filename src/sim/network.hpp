// Complete fork-join system assembled on the event engine: Poisson request
// source, task dispatcher (k = N, fixed k <= N, or uniform random k), N
// fork nodes, join barrier, and metrics collection.
//
// This is the reference ("model-based") simulator; the Lindley fast path in
// src/fjsim produces statistically identical results orders of magnitude
// faster and is used for the large paper-scale sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"
#include "sim/cluster_stats.hpp"
#include "sim/forknode.hpp"
#include "stats/welford.hpp"

namespace forktail::sim {

enum class TaskCountMode : std::uint8_t {
  kAllNodes,   ///< k = N (Case 1 of the paper)
  kFixed,      ///< fixed k <= N, random node subset (Case 2, Scenario 1)
  kUniform,    ///< k ~ U[k_lo, k_hi], random node subset (Case 2, Scenario 2)
};

struct FjConfig {
  std::size_t num_nodes = 10;
  int replicas = 1;
  DispatchPolicy policy = DispatchPolicy::kSingle;
  double redundant_delay = 10.0;
  dist::DistPtr service;            ///< per-task service time distribution
  double lambda = 1.0;              ///< request arrival rate
  TaskCountMode k_mode = TaskCountMode::kAllNodes;
  int k_fixed = 0;
  int k_lo = 0;
  int k_hi = 0;
  std::uint64_t num_requests = 10000;   ///< measured requests (post warm-up)
  double warmup_fraction = 0.2;         ///< extra requests run before measuring
  std::uint64_t seed = 1;
  /// Keep the per-request response vector (true, the default, preserves the
  /// historical result shape).  Cluster-scale runs (10M+ requests) set this
  /// false and read the pooled stats / histogram instead, so memory stays
  /// bounded by the number of *in-flight* requests, not the request count.
  bool record_responses = true;
  /// Shard count for the per-node stats registry; 0 picks one shard per 64
  /// nodes.  Results are bit-identical for every value (see cluster_stats).
  std::size_t stats_shards = 0;
};

struct FjResult {
  std::vector<double> request_responses;     ///< one per measured request
                                             ///< (empty if !record_responses)
  stats::Welford pooled_task_stats;          ///< task response times, pooled
  std::vector<stats::Welford> node_task_stats;  ///< per fork node
  /// Request response times pooled into the fixed log2-linear histogram
  /// (tail percentiles without keeping every sample).  Measured requests
  /// only; filled whether or not responses are recorded.
  LatencyHistogram response_histogram;
  double sim_end_time = 0.0;
  std::uint64_t total_tasks = 0;
  std::uint64_t redundant_issues = 0;
  std::uint64_t measured_requests = 0;
  std::uint64_t events_processed = 0;
};

/// Run the system to completion (all requests joined).
FjResult run_fj_simulation(const FjConfig& config);

/// The pre-calendar-queue implementation of run_fj_simulation: the original
/// callback driver on the binary-heap engine (sim/heap_engine.hpp).  Frozen
/// as the determinism reference and the bench_cluster speedup baseline; it
/// honours `record_responses` but ignores `stats_shards` (it has no
/// sharding) and leaves `response_histogram` empty.
FjResult run_fj_simulation_baseline(const FjConfig& config);

/// Nominal per-server utilization implied by a config (ignores redundant
/// replicas): rho = lambda * E[k]/N * E[S] / replicas.
double nominal_load(const FjConfig& config);

/// Request arrival rate that produces the target nominal load.
double lambda_for_nominal_load(const FjConfig& config, double rho);

}  // namespace forktail::sim
