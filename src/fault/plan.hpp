// FaultPlan: declarative fault injection + tail mitigation for a scenario.
//
// Real fork-join services meet their SLOs through tail-mitigation
// mechanisms -- per-task timeouts with bounded retries, hedged duplicate
// requests, and partial (k-of-n) completion -- and they do so while nodes
// crash, run slow, and stall.  A FaultPlan is the value type that describes
// both halves for one node group: the fault processes injected into every
// node (crash / slowdown / blip windows, each an independent renewal
// process driven by its own util::Rng stream) and the mitigation policy the
// request path uses against them.  It extends the forktail.scenario.v1
// document under a "faults" key (parsed in scenario/spec.cpp with the same
// field-typed ConfigError discipline as the rest of the spec).
//
// The default-constructed plan is inert: every rate is zero and every
// mitigation knob is off, and an inert plan routes scenarios through the
// unmodified fjsim engines, bit-identical to a spec with no "faults" key.
#pragma once

#include <string>

#include "fjsim/config.hpp"
#include "util/json.hpp"

namespace forktail::fault {

/// Per-node fault injection: three independent renewal processes of fault
/// windows.  Rates are events per unit time (the service-time unit);
/// windows never overlap within one process.  An attempt is affected by the
/// window (if any) covering its start instant: a crash loses the attempt
/// and holds the server down until the window ends, a slowdown multiplies
/// its service demand, a blip adds a fixed stall (a GC-pause model).
struct FaultProcess {
  double crash_rate = 0.0;
  double crash_mean_duration = 0.0;  ///< exponential window length
  double slowdown_rate = 0.0;
  double slowdown_mean_duration = 0.0;  ///< exponential window length
  double slowdown_factor = 2.0;         ///< service multiplier (>= 1)
  double blip_rate = 0.0;
  double blip_duration = 0.0;  ///< fixed window length = added stall

  bool inert() const noexcept {
    return crash_rate == 0.0 && slowdown_rate == 0.0 && blip_rate == 0.0;
  }
  bool operator==(const FaultProcess&) const = default;
};

/// Tail-mitigation policy applied by the request path.
struct MitigationPolicy {
  /// Per-attempt timeout measured from the attempt's dispatch; 0 = off.
  /// A timed-out attempt frees its server at the deadline (cancellation).
  double timeout = 0.0;
  /// Retries after a timed-out attempt (requires timeout > 0).  Retry r is
  /// dispatched at deadline + backoff_base * backoff_mult^r with a freshly
  /// resampled service demand (an independent Rng::split stream, so results
  /// stay bit-reproducible).
  int max_retries = 0;
  double backoff_base = 0.0;
  double backoff_mult = 2.0;
  /// Launch one hedged duplicate per task once the task has been
  /// outstanding for the service distribution's q-quantile (0 = off).  The
  /// duplicate runs on the node's hedge lane; first completion wins and
  /// cancels the loser (cancel-on-first-complete).
  double hedge_quantile = 0.0;
  /// Early return once `early_k` of the request's tasks have completed
  /// (k-of-n fork-join); 0 = wait for all of them.
  int early_k = 0;

  bool inert() const noexcept {
    return timeout == 0.0 && hedge_quantile == 0.0 && early_k == 0;
  }
  bool operator==(const MitigationPolicy&) const = default;
};

struct FaultPlan {
  FaultProcess inject;
  MitigationPolicy mitigation;

  /// True when the plan changes nothing: no injection, no mitigation.
  /// Inert plans run on the unmodified engines (golden bit-identity).
  bool inert() const noexcept { return inject.inert() && mitigation.inert(); }
  bool operator==(const FaultPlan&) const = default;
};

/// Field-typed validation (throws fjsim::ConfigError); `where` prefixes the
/// offending field ("faults" from the scenario parser).
void validate(const FaultPlan& plan, const std::string& where);

/// JSON layer for the scenario document's "faults" section.  Unknown keys
/// are rejected; missing keys take the inert defaults; parse(to_json(p))
/// == p for every plan.
FaultPlan parse_fault_plan(const util::Json& obj, const std::string& where);
util::Json to_json(const FaultPlan& plan);

}  // namespace forktail::fault
