#include "fault/predict.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/genexp.hpp"
#include "obs/metrics.hpp"

namespace forktail::fault {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fit a GE to measured moments, degrading (not aborting) on bad
/// telemetry: a non-positive variance falls back to the exponential
/// moment relation V = E^2, and a thin sample is flagged but still used.
/// Returns nullopt only when the mean itself is unusable.
std::optional<core::GenExp> fit_or_degrade(double mean, double variance,
                                           std::uint64_t count,
                                           const std::string& what,
                                           DegradedPrediction& out) {
  if (!(mean > 0.0) || !std::isfinite(mean)) {
    out.degraded = true;
    out.reasons.push_back(what + " mean is unusable (" +
                          std::to_string(mean) + ")");
    return std::nullopt;
  }
  if (count < kMinMomentSamples) {
    out.degraded = true;
    out.reasons.push_back(what + " telemetry thin (" + std::to_string(count) +
                          " samples < " + std::to_string(kMinMomentSamples) +
                          ")");
  }
  if (!(variance > 0.0) || !std::isfinite(variance)) {
    out.degraded = true;
    out.reasons.push_back(what +
                          " variance non-positive; assuming exponential");
    variance = mean * mean;
  }
  return core::GenExp::fit_moments(mean, variance);
}

/// The mitigated task completion law N(t) (possibly defective).
class TaskLaw {
 public:
  TaskLaw(const core::GenExp& primary, const core::GenExp& hedge,
          const MitigationPolicy& policy, double hedge_delay)
      : primary_(primary),
        hedge_(hedge),
        policy_(policy),
        hedge_delay_(hedge_delay),
        timeout_(policy.timeout > 0.0 ? policy.timeout : kInf) {}

  /// Geometric retry mixture G(t) over the primary lane.
  double primary_cdf(double t) const {
    if (!std::isfinite(timeout_)) return t > 0.0 ? primary_.cdf(t) : 0.0;
    const double p_timeout = 1.0 - primary_.cdf(timeout_);
    double mass = 0.0;
    double survive = 1.0;  // P(all earlier attempts timed out)
    double offset = 0.0;
    for (int r = 0; r <= policy_.max_retries; ++r) {
      const double local = t - offset;
      if (local > 0.0) {
        mass += survive * primary_.cdf(std::min(local, timeout_));
      }
      survive *= p_timeout;
      offset +=
          timeout_ + policy_.backoff_base * std::pow(policy_.backoff_mult, r);
    }
    return mass;
  }

  /// Min-of-two hedge transform N(t).
  double cdf(double t) const {
    const double g = primary_cdf(t);
    if (policy_.hedge_quantile <= 0.0) return g;
    const double th = t - hedge_delay_;
    if (th <= 0.0) return g;
    return 1.0 - (1.0 - g) * (1.0 - hedge_.cdf(th));
  }

  /// Limiting completion mass (1 unless every attempt can be exhausted).
  double limit_mass() const {
    if (policy_.hedge_quantile > 0.0) return 1.0;
    if (!std::isfinite(timeout_)) return 1.0;
    const double p_timeout = 1.0 - primary_.cdf(timeout_);
    return 1.0 - std::pow(p_timeout, policy_.max_retries + 1);
  }

 private:
  const core::GenExp& primary_;
  const core::GenExp& hedge_;
  const MitigationPolicy& policy_;
  double hedge_delay_;
  double timeout_;
};

/// P(at least k of n iid tasks with per-task CDF value `p` are done):
/// binomial upper tail, summed in log space so n in the thousands stays
/// finite.
double binomial_tail(double p, int n, int k) {
  if (k <= 0) return 1.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  if (k == n) return std::pow(p, n);
  const double log_p = std::log(p);
  const double log_1p = std::log1p(-p);
  const double log_n_fact = std::lgamma(static_cast<double>(n) + 1.0);
  double sum = 0.0;
  for (int i = k; i <= n; ++i) {
    const double log_term =
        log_n_fact - std::lgamma(static_cast<double>(i) + 1.0) -
        std::lgamma(static_cast<double>(n - i) + 1.0) +
        static_cast<double>(i) * log_p + static_cast<double>(n - i) * log_1p;
    sum += std::exp(log_term);
  }
  return std::min(sum, 1.0);
}

}  // namespace

DegradedPrediction predict_mitigated(const MitigatedStats& stats,
                                     const MitigationPolicy& policy,
                                     int fanout, double percentile) {
  DegradedPrediction out;
  out.value = std::numeric_limits<double>::quiet_NaN();
  if (fanout < 1 || !(percentile > 0.0 && percentile < 1.0)) {
    out.degraded = true;
    out.reasons.push_back("invalid fanout/percentile request");
    return out;
  }

  const auto primary = fit_or_degrade(stats.attempt_mean,
                                      stats.attempt_variance,
                                      stats.attempt_count, "attempt", out);
  if (!primary) return out;

  // Hedge-lane law: fit its own moments when available, otherwise fall
  // back to the primary law (degraded -- the lanes see different queues).
  std::optional<core::GenExp> hedge;
  if (policy.hedge_quantile > 0.0) {
    if (stats.hedge_count == 0) {
      out.degraded = true;
      out.reasons.push_back(
          "hedge telemetry missing; assuming the primary-lane law");
    } else {
      hedge = fit_or_degrade(stats.hedge_mean, stats.hedge_variance,
                             stats.hedge_count, "hedge", out);
    }
  }

  const TaskLaw law(*primary, hedge ? *hedge : *primary, policy,
                    stats.hedge_delay);
  const int k = policy.early_k > 0 ? std::min(policy.early_k, fanout) : fanout;

  // Defective completion law: a timeout policy with bounded retries (and
  // no hedge) leaves mass unfinished forever.  The simulator reports
  // percentiles over *completed* requests, so condition on completion.
  const double task_mass = law.limit_mass();
  const double request_mass = binomial_tail(task_mass, fanout, k);
  double target = percentile;
  if (request_mass < 1.0 - 1e-9) {
    out.degraded = true;
    out.reasons.push_back("completion mass " + std::to_string(request_mass) +
                          " < 1; conditioning on completed requests");
    target = percentile * request_mass;
  }
  if (!(target > 0.0)) {
    out.reasons.push_back("no request ever completes under this policy");
    out.degraded = true;
    return out;
  }

  // Quantile by bisection with a doubling upper bracket.
  const auto request_cdf = [&](double t) {
    return binomial_tail(law.cdf(t), fanout, k);
  };
  double hi = std::max({stats.attempt_mean, stats.hedge_delay, 1e-9});
  int doublings = 0;
  while (request_cdf(hi) < target && doublings < 200) {
    hi *= 2.0;
    ++doublings;
  }
  if (doublings == 200) {
    out.degraded = true;
    out.reasons.push_back("target percentile unreachable numerically");
    return out;
  }
  double lo = 0.0;
  for (int i = 0; i < 100 && hi - lo > 1e-12 * (1.0 + hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    (request_cdf(mid) < target ? lo : hi) = mid;
  }
  out.value = 0.5 * (lo + hi);
  obs::Registry::global().gauge("predict.degraded").set(out.degraded ? 1.0
                                                                     : 0.0);
  return out;
}

}  // namespace forktail::fault
