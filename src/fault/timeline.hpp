// Per-node fault timelines: lazily generated renewal processes of fault
// windows.
//
// Each node owns three independent window streams (crash / slowdown /
// blip), each driven by its own util::Rng child stream, so the fault
// history of a node is a pure function of (seed, plan, node index) --
// exactly reproducible and independent of how the simulation interleaves
// its queries.  Windows are generated forward on demand and *retained*:
// after a hedge cancellation rewinds a lane, the next query can be earlier
// than the previous one, so coverage is answered by binary search over the
// generated prefix rather than a moving cursor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace forktail::fault {

enum class FaultKind : std::uint8_t { kNone, kCrash, kSlowdown, kBlip };

/// The fault (if any) in force at one instant.
struct FaultEffect {
  FaultKind kind = FaultKind::kNone;
  double window_end = 0.0;  ///< when the fault clears
  double factor = 1.0;      ///< service multiplier (slowdown)
  double stall = 0.0;       ///< added service stall (blip)
};

/// One renewal process of non-overlapping fault windows: gap ~ Exp(1/rate),
/// duration ~ Exp(mean_duration) (or exactly mean_duration when fixed, the
/// blip/GC-pause model).  rate <= 0 disables the stream entirely.
class WindowStream {
 public:
  struct Window {
    double start = 0.0;
    double end = 0.0;
    bool hit = false;  ///< has this window affected an attempt yet?
  };

  WindowStream(double rate, double mean_duration, bool fixed_duration,
               util::Rng rng) noexcept
      : rate_(rate),
        mean_duration_(mean_duration),
        fixed_(fixed_duration),
        rng_(rng) {}

  /// The window covering instant `t`, or nullptr.  Queries may move
  /// backwards (hedge-cancel rewinds); generation only moves forward.
  Window* covering(double t) {
    if (rate_ <= 0.0) return nullptr;
    // Coverage at t is decided once the generated horizon passes t: every
    // generated window advances frontier_ by gap + duration > 0.
    while (frontier_ <= t) {
      const double start = frontier_ + rng_.exponential(1.0 / rate_);
      const double duration =
          fixed_ ? mean_duration_ : rng_.exponential(mean_duration_);
      windows_.push_back({start, start + duration, false});
      frontier_ = start + duration;
    }
    auto it = std::upper_bound(
        windows_.begin(), windows_.end(), t,
        [](double v, const Window& w) { return v < w.start; });
    if (it == windows_.begin()) return nullptr;
    --it;
    return t < it->end ? &*it : nullptr;
  }

 private:
  double rate_;
  double mean_duration_;
  bool fixed_;
  util::Rng rng_;
  double frontier_ = 0.0;  ///< end of the last generated window
  std::vector<Window> windows_;
};

/// A node's composite fault state.  Crash dominates slowdown dominates
/// blip when windows from different streams overlap.  Each window bumps
/// its counter the first time it actually affects an attempt (so the
/// "injected" counters report faults that mattered, not every window on an
/// idle node).
class FaultTimeline {
 public:
  FaultTimeline(const FaultProcess& p, const util::Rng& stream_master) noexcept
      : crash_(p.crash_rate, p.crash_mean_duration, false,
               stream_master.split(0)),
        slowdown_(p.slowdown_rate, p.slowdown_mean_duration, false,
                  stream_master.split(1)),
        blip_(p.blip_rate, p.blip_duration, true, stream_master.split(2)),
        slowdown_factor_(p.slowdown_factor),
        blip_stall_(p.blip_duration) {}

  FaultEffect effect_at(double t) {
    if (WindowStream::Window* w = crash_.covering(t)) {
      count_hit(*w, crashes_);
      return {FaultKind::kCrash, w->end, 1.0, 0.0};
    }
    if (WindowStream::Window* w = slowdown_.covering(t)) {
      count_hit(*w, slowdowns_);
      return {FaultKind::kSlowdown, w->end, slowdown_factor_, 0.0};
    }
    if (WindowStream::Window* w = blip_.covering(t)) {
      count_hit(*w, blips_);
      return {FaultKind::kBlip, w->end, 1.0, blip_stall_};
    }
    return {};
  }

  std::uint64_t crashes() const noexcept { return crashes_; }
  std::uint64_t slowdowns() const noexcept { return slowdowns_; }
  std::uint64_t blips() const noexcept { return blips_; }

 private:
  static void count_hit(WindowStream::Window& w, std::uint64_t& counter) {
    if (!w.hit) {
      w.hit = true;
      ++counter;
    }
  }

  WindowStream crash_;
  WindowStream slowdown_;
  WindowStream blip_;
  double slowdown_factor_;
  double blip_stall_;
  std::uint64_t crashes_ = 0;
  std::uint64_t slowdowns_ = 0;
  std::uint64_t blips_ = 0;
};

}  // namespace forktail::fault
