#include "fault/plan.hpp"

#include <algorithm>
#include <cmath>

namespace forktail::fault {

using fjsim::ConfigError;

namespace {

/// Mirror of scenario/spec.cpp's unknown-key rejection: a typo in a fault
/// plan must not silently run the inert defaults.
void check_keys(const util::Json& obj, const std::string& where,
                std::initializer_list<const char*> allowed) {
  for (const auto& key : obj.keys()) {
    if (std::find_if(allowed.begin(), allowed.end(), [&](const char* a) {
          return key == a;
        }) == allowed.end()) {
      throw ConfigError(where + "." + key, "unknown key in fault plan");
    }
  }
}

double get_number(const util::Json& obj, const char* key, double fallback) {
  return obj.contains(key) ? obj.at(key).as_number() : fallback;
}

int get_int(const util::Json& obj, const char* key, int fallback,
            const std::string& where) {
  if (!obj.contains(key)) return fallback;
  const double v = obj.at(key).as_number();
  if (v != std::floor(v)) {
    throw ConfigError(where + "." + key, "must be an integer");
  }
  return static_cast<int>(v);
}

void require_finite_nonneg(double v, const std::string& field) {
  if (!(v >= 0.0) || !std::isfinite(v)) {
    throw ConfigError(field, "must be finite and >= 0");
  }
}

}  // namespace

void validate(const FaultPlan& plan, const std::string& where) {
  const FaultProcess& f = plan.inject;
  require_finite_nonneg(f.crash_rate, where + ".inject.crash_rate");
  require_finite_nonneg(f.crash_mean_duration,
                        where + ".inject.crash_mean_duration");
  require_finite_nonneg(f.slowdown_rate, where + ".inject.slowdown_rate");
  require_finite_nonneg(f.slowdown_mean_duration,
                        where + ".inject.slowdown_mean_duration");
  require_finite_nonneg(f.blip_rate, where + ".inject.blip_rate");
  require_finite_nonneg(f.blip_duration, where + ".inject.blip_duration");
  if (f.crash_rate > 0.0 && !(f.crash_mean_duration > 0.0)) {
    throw ConfigError(where + ".inject.crash_mean_duration",
                      "must be > 0 when crash_rate > 0");
  }
  if (f.slowdown_rate > 0.0 && !(f.slowdown_mean_duration > 0.0)) {
    throw ConfigError(where + ".inject.slowdown_mean_duration",
                      "must be > 0 when slowdown_rate > 0");
  }
  if (!(f.slowdown_factor >= 1.0)) {
    throw ConfigError(where + ".inject.slowdown_factor",
                      "must be >= 1 (a factor below 1 is a speedup)");
  }
  if (f.blip_rate > 0.0 && !(f.blip_duration > 0.0)) {
    throw ConfigError(where + ".inject.blip_duration",
                      "must be > 0 when blip_rate > 0");
  }

  const MitigationPolicy& m = plan.mitigation;
  require_finite_nonneg(m.timeout, where + ".mitigation.timeout");
  if (m.max_retries < 0) {
    throw ConfigError(where + ".mitigation.max_retries", "must be >= 0");
  }
  if (m.max_retries > 0 && !(m.timeout > 0.0)) {
    throw ConfigError(where + ".mitigation.max_retries",
                      "retries need a timeout > 0 to trigger them");
  }
  require_finite_nonneg(m.backoff_base, where + ".mitigation.backoff_base");
  if (!(m.backoff_mult >= 1.0)) {
    throw ConfigError(where + ".mitigation.backoff_mult", "must be >= 1");
  }
  if (!(m.hedge_quantile >= 0.0 && m.hedge_quantile < 1.0)) {
    throw ConfigError(where + ".mitigation.hedge_quantile",
                      "must be in [0, 1) (0 = hedging off)");
  }
  if (m.early_k < 0) {
    throw ConfigError(where + ".mitigation.early_k",
                      "must be >= 0 (0 = wait for every task)");
  }
}

FaultPlan parse_fault_plan(const util::Json& obj, const std::string& where) {
  if (!obj.is_object()) {
    throw ConfigError(where, "must be a JSON object");
  }
  check_keys(obj, where, {"inject", "mitigation"});
  FaultPlan plan;
  if (obj.contains("inject")) {
    const util::Json& inject = obj.at("inject");
    const std::string iw = where + ".inject";
    check_keys(inject, iw,
               {"crash_rate", "crash_mean_duration", "slowdown_rate",
                "slowdown_mean_duration", "slowdown_factor", "blip_rate",
                "blip_duration"});
    FaultProcess& f = plan.inject;
    f.crash_rate = get_number(inject, "crash_rate", f.crash_rate);
    f.crash_mean_duration =
        get_number(inject, "crash_mean_duration", f.crash_mean_duration);
    f.slowdown_rate = get_number(inject, "slowdown_rate", f.slowdown_rate);
    f.slowdown_mean_duration =
        get_number(inject, "slowdown_mean_duration", f.slowdown_mean_duration);
    f.slowdown_factor = get_number(inject, "slowdown_factor", f.slowdown_factor);
    f.blip_rate = get_number(inject, "blip_rate", f.blip_rate);
    f.blip_duration = get_number(inject, "blip_duration", f.blip_duration);
  }
  if (obj.contains("mitigation")) {
    const util::Json& mit = obj.at("mitigation");
    const std::string mw = where + ".mitigation";
    check_keys(mit, mw,
               {"timeout", "max_retries", "backoff_base", "backoff_mult",
                "hedge_quantile", "early_k"});
    MitigationPolicy& m = plan.mitigation;
    m.timeout = get_number(mit, "timeout", m.timeout);
    m.max_retries = get_int(mit, "max_retries", m.max_retries, mw);
    m.backoff_base = get_number(mit, "backoff_base", m.backoff_base);
    m.backoff_mult = get_number(mit, "backoff_mult", m.backoff_mult);
    m.hedge_quantile = get_number(mit, "hedge_quantile", m.hedge_quantile);
    m.early_k = get_int(mit, "early_k", m.early_k, mw);
  }
  return plan;
}

util::Json to_json(const FaultPlan& plan) {
  util::Json inject = util::Json::object();
  inject.set("crash_rate", plan.inject.crash_rate);
  inject.set("crash_mean_duration", plan.inject.crash_mean_duration);
  inject.set("slowdown_rate", plan.inject.slowdown_rate);
  inject.set("slowdown_mean_duration", plan.inject.slowdown_mean_duration);
  inject.set("slowdown_factor", plan.inject.slowdown_factor);
  inject.set("blip_rate", plan.inject.blip_rate);
  inject.set("blip_duration", plan.inject.blip_duration);

  util::Json mitigation = util::Json::object();
  mitigation.set("timeout", plan.mitigation.timeout);
  mitigation.set("max_retries", plan.mitigation.max_retries);
  mitigation.set("backoff_base", plan.mitigation.backoff_base);
  mitigation.set("backoff_mult", plan.mitigation.backoff_mult);
  mitigation.set("hedge_quantile", plan.mitigation.hedge_quantile);
  mitigation.set("early_k", plan.mitigation.early_k);

  util::Json doc = util::Json::object();
  doc.set("inject", std::move(inject));
  doc.set("mitigation", std::move(mitigation));
  return doc;
}

}  // namespace forktail::fault
