// Degraded-mode tail prediction under an active mitigation policy.
//
// ForkTail's black-box model fits a generalized exponential to measured
// task response moments and reads request percentiles off the max order
// statistic.  Under mitigation the task completion law is no longer the
// raw attempt law, so the predictor composes the GE fit with closed-form
// response-time transforms:
//
//   * timeout + retries: a geometric retry mixture.  With per-attempt
//     timeout T, retry r dispatched at offset o_r (o_0 = 0,
//     o_{r+1} = o_r + T + backoff_r) and q = F(T) the per-attempt success
//     probability, the completion CDF is the (defective) mixture
//         G(t) = sum_r (1-q)^r F(min(t - o_r, T))  over attempts r,
//     with limiting mass 1 - (1-q)^{R+1}.
//   * hedging: min-of-two.  With the hedge launched at delay d and H the
//     hedge-lane latency law, N(t) = 1 - (1 - G(t))(1 - H(t - d)).
//   * k-of-n early return: the binomial tail over n tasks,
//         P(t) = sum_{i>=k} C(n,i) N(t)^i (1 - N(t))^{n-i}
//     (k = n reduces to the ForkTail max order statistic N^n).
//
// The predictor *degrades instead of aborting*: stale or missing
// telemetry (too few attempt samples, absent hedge-lane moments,
// non-positive variance) and defective completion mass each fall back to
// a stated approximation and set `degraded` with a human-readable reason,
// mirrored as a `degraded: true` flag in the RunReport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"

namespace forktail::fault {

/// Black-box measurements the degraded predictor consumes (from
/// MitigatedResult's counterfactual attempt/hedge accumulators, or from
/// any external telemetry source).
struct MitigatedStats {
  double attempt_mean = 0.0;
  double attempt_variance = 0.0;
  std::uint64_t attempt_count = 0;
  double hedge_mean = 0.0;
  double hedge_variance = 0.0;
  std::uint64_t hedge_count = 0;
  /// Hedge launch delay in force (MitigatedResult::hedge_delay).
  double hedge_delay = 0.0;
};

struct DegradedPrediction {
  /// Predicted request response-time percentile; NaN only when no finite
  /// prediction exists at all (e.g. nothing ever completes).
  double value = 0.0;
  bool degraded = false;
  /// One line per fallback taken; empty iff !degraded.
  std::vector<std::string> reasons;
};

/// Minimum sample count below which a moment fit is flagged as degraded.
inline constexpr std::uint64_t kMinMomentSamples = 64;

/// Predict the `percentile` (in (0,1)) response time of a fork-join
/// request with `fanout` tasks under `policy`, from measured mitigated
/// telemetry.  Never throws on bad telemetry: every fallback is reported
/// through `degraded` + `reasons`.
DegradedPrediction predict_mitigated(const MitigatedStats& stats,
                                     const MitigationPolicy& policy,
                                     int fanout, double percentile);

}  // namespace forktail::fault
