#include "fault/sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "fault/timeline.hpp"
#include "fjsim/replay.hpp"
#include "obs/metrics.hpp"

namespace forktail::fault {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rng::split stream-index regions for the fault paths.  The plain replay
/// owns the low indices (0 = arrivals, 100+n = node service); the fault
/// streams live in disjoint high regions so no node count can collide.
constexpr std::uint64_t kPrimaryFaultStream = 1ULL << 32;
constexpr std::uint64_t kHedgeFaultStream = 2ULL << 32;
constexpr std::uint64_t kRetryServiceStream = 3ULL << 32;
constexpr std::uint64_t kHedgeServiceStream = 4ULL << 32;

/// One primary-lane attempt, recorded so a hedge win at time w can rewind
/// the lane: replaying the records decides where the server actually ends
/// up free once everything after w evaporates.
struct AttemptRec {
  double start = 0.0;      ///< service start (max of dispatch, lane free)
  double nf_before = 0.0;  ///< lane next-free before this attempt
  double nf_after = 0.0;   ///< lane next-free after it ran / was cancelled
  bool crashed = false;
};

/// Lane next-free after cancelling a task's remaining primary work at `w`.
/// Walk the attempts in order: an attempt that had not started by w
/// evaporates (lane stays at its nf_before); a crash holds the server down
/// regardless of cancellation; a running attempt is killed at w; an
/// attempt that already finished (or timed out) before w keeps its effect.
double rewind_lane(const std::vector<AttemptRec>& attempts, double w) {
  double nf = attempts.front().nf_before;
  for (const AttemptRec& a : attempts) {
    if (a.crashed) {
      nf = a.nf_after;
      continue;
    }
    if (a.start >= w) break;
    nf = std::min(a.nf_after, w);
  }
  return nf;
}

}  // namespace

double dist_quantile(const dist::Distribution& d, double q) {
  if (!(q > 0.0)) return 0.0;
  // Bracket by doubling from the mean, then bisect.  cdf is monotone.
  double hi = std::max(d.mean(), 1e-12);
  while (d.cdf(hi) < q) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200 && hi - lo > 1e-12 * (1.0 + hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    (d.cdf(mid) < q ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

MitigatedResult run_mitigated_homogeneous(const fjsim::HomogeneousConfig& config,
                                          const FaultPlan& plan) {
  fjsim::validate(config);
  validate(plan, "faults");
  if (config.policy != fjsim::Policy::kSingle || config.replicas != 1) {
    throw fjsim::ConfigError(
        "faults", "fault injection requires single-server nodes "
                  "(policy \"single\", replicas = 1)");
  }
  const MitigationPolicy& mit = plan.mitigation;
  if (mit.early_k > 0 &&
      mit.early_k > static_cast<int>(config.num_nodes)) {
    throw fjsim::ConfigError("faults.mitigation.early_k",
                             "must be <= the node count");
  }

  util::Rng master(config.seed);
  const double lambda = config.load / config.service->mean();
  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total = warmup + config.num_requests;

  // Shared arrival epochs: identical to the fault-free replay by
  // construction (same stream, same draws).
  std::vector<double> arrivals(total);
  {
    util::Rng arrival_rng = master.split(0);
    double t = 0.0;
    for (auto& a : arrivals) {
      t += arrival_rng.exponential(1.0 / lambda);
      a = t;
    }
  }

  MitigatedResult result;
  result.lambda = lambda;
  result.total_tasks = total * config.num_nodes;
  if (mit.hedge_quantile > 0.0) {
    result.hedge_delay = dist_quantile(*config.service, mit.hedge_quantile);
  }

  const double timeout = mit.timeout > 0.0 ? mit.timeout : kInf;
  const bool hedging = mit.hedge_quantile > 0.0;

  // Per-request aggregation: max across nodes, or the early_k-th smallest
  // completion when the policy allows partial (k-of-n) return.  +inf
  // completions (lost tasks) propagate so a dead task drops the request
  // unless early return covers it.
  std::vector<double> completion_max(total, 0.0);
  std::optional<fjsim::OrderStatArena> arena;
  if (mit.early_k > 0) arena.emplace(total, mit.early_k);

  FaultCounters& counters = result.counters;
  // Sharded per-node registry for the mitigated task times; the node-major
  // replay touches exactly one shard per outer iteration.
  sim::ClusterStats cluster(config.num_nodes);
  std::vector<AttemptRec> attempts;
  attempts.reserve(static_cast<std::size_t>(mit.max_retries) + 1);

  // Serial node-major replay.  Lanes are per-node single FIFO servers;
  // retries stay on the primary lane (and are served with the owning
  // task's priority), hedges run on a dedicated per-node hedge lane.
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    util::Rng service_rng = master.split(100 + n);
    util::Rng retry_rng = master.split(kRetryServiceStream + n);
    util::Rng hedge_service_rng = master.split(kHedgeServiceStream + n);
    FaultTimeline primary_tl(plan.inject, master.split(kPrimaryFaultStream + n));
    FaultTimeline hedge_tl(plan.inject, master.split(kHedgeFaultStream + n));

    double nf = 0.0;    // primary lane next-free
    double nf_h = 0.0;  // hedge lane next-free

    for (std::uint64_t j = 0; j < total; ++j) {
      const double arrival = arrivals[j];
      const bool measured = j >= warmup;

      // --- primary lane: attempt 0 plus up to max_retries retries ------
      attempts.clear();
      double primary_completion = kInf;
      double first_cand = kInf;
      double dispatch = arrival;
      for (int r = 0;; ++r) {
        const double start = std::max(dispatch, nf);
        const FaultEffect eff = primary_tl.effect_at(start);
        double demand = config.service->sample(r == 0 ? service_rng : retry_rng);
        AttemptRec rec;
        rec.start = start;
        rec.nf_before = nf;
        double cand;
        if (eff.kind == FaultKind::kCrash) {
          rec.crashed = true;
          cand = kInf;
          rec.nf_after = std::max(nf, eff.window_end);
        } else {
          if (eff.kind == FaultKind::kSlowdown) demand *= eff.factor;
          if (eff.kind == FaultKind::kBlip) demand += eff.stall;
          cand = start + demand;
          rec.nf_after = cand;
        }
        if (r == 0) first_cand = cand;
        const double deadline = dispatch + timeout;
        if (cand > deadline) {
          // Timed out (or crashed): cancel the attempt.  A cancelled
          // attempt frees its server at the deadline; one that never
          // started by then leaves the lane untouched; a crash holds the
          // server down regardless.
          if (std::isfinite(deadline)) ++counters.timeouts;
          if (!rec.crashed) {
            rec.nf_after = rec.start >= deadline ? rec.nf_before
                                                 : std::min(cand, deadline);
          }
          attempts.push_back(rec);
          nf = rec.nf_after;
          if (std::isfinite(deadline) && r < mit.max_retries) {
            ++counters.retries;
            dispatch = deadline + mit.backoff_base *
                                      std::pow(mit.backoff_mult, r);
            continue;
          }
          break;  // attempts exhausted (or an unmitigated crash): lost
        }
        attempts.push_back(rec);
        nf = rec.nf_after;
        primary_completion = cand;
        break;
      }
      if (measured && std::isfinite(first_cand)) {
        result.attempt_stats.add(first_cand - arrival);
      }

      // --- hedge lane: one duplicate, cancel-on-first-complete ---------
      double completion = primary_completion;
      if (hedging) {
        const double launch = arrival + result.hedge_delay;
        if (primary_completion > launch) {
          ++counters.hedges_launched;
          const double start_h = std::max(launch, nf_h);
          const FaultEffect eff_h = hedge_tl.effect_at(start_h);
          double demand_h = config.service->sample(hedge_service_rng);
          const bool crashed_h = eff_h.kind == FaultKind::kCrash;
          double cand_h = kInf;
          if (!crashed_h) {
            if (eff_h.kind == FaultKind::kSlowdown) demand_h *= eff_h.factor;
            if (eff_h.kind == FaultKind::kBlip) demand_h += eff_h.stall;
            cand_h = start_h + demand_h;
            if (measured) result.hedge_stats.add(cand_h - launch);
          }
          if (cand_h < primary_completion) {
            // Hedge wins: it holds its lane to completion; the primary
            // lane's remaining work for this task is cancelled at the win.
            ++counters.hedges_won;
            completion = cand_h;
            nf_h = cand_h;
            nf = rewind_lane(attempts, cand_h);
          } else if (crashed_h) {
            nf_h = std::max(nf_h, eff_h.window_end);
          } else if (start_h < primary_completion) {
            // Primary won while the hedge was running: kill it there.
            nf_h = std::min(cand_h, primary_completion);
          }
          // else: the hedge never started before the primary finished --
          // it evaporates from the hedge queue, lane untouched.
        }
      }

      if (measured && std::isfinite(completion)) {
        result.task_stats.add(completion - arrival);
        cluster.record(n, completion - arrival);
      }
      if (arena) {
        arena->insert(j, completion);
      } else if (completion > completion_max[j]) {
        completion_max[j] = completion;
      }
    }

    counters.crashes += primary_tl.crashes() + hedge_tl.crashes();
    counters.slowdowns += primary_tl.slowdowns() + hedge_tl.slowdowns();
    counters.blips += primary_tl.blips() + hedge_tl.blips();
  }

  result.responses.reserve(config.num_requests);
  for (std::uint64_t j = warmup; j < total; ++j) {
    const double completion = arena ? arena->kth(j) : completion_max[j];
    if (std::isfinite(completion)) {
      result.responses.push_back(completion - arrivals[j]);
    } else {
      ++counters.dropped_requests;
    }
  }

  auto& reg = obs::Registry::global();
  reg.counter("fault.injected.crashes").add(counters.crashes);
  reg.counter("fault.injected.slowdowns").add(counters.slowdowns);
  reg.counter("fault.injected.blips").add(counters.blips);
  reg.counter("fault.hedges.launched").add(counters.hedges_launched);
  reg.counter("fault.hedges.won").add(counters.hedges_won);
  reg.counter("fault.retries").add(counters.retries);
  reg.counter("fault.timeouts").add(counters.timeouts);
  reg.counter("fault.dropped_requests").add(counters.dropped_requests);
  result.node_tasks = cluster.summary();
  return result;
}

}  // namespace forktail::fault
