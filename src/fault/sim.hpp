// Mitigated homogeneous fork-join simulation under an active FaultPlan.
//
// The plain node-major replay (fjsim/homogeneous.hpp) assumes every task
// runs to completion on a healthy server; this engine simulates the same
// system -- identical arrival epochs, identical per-node service streams --
// with fault windows injected per node and the plan's mitigation policy
// executed on the request path: per-attempt timeouts with bounded
// backed-off retries, one hedged duplicate per task on a per-node hedge
// lane with cancel-on-first-complete, and k-of-n early return.
//
// Determinism: every random draw comes from a deterministic Rng::split
// stream of the config seed (arrivals: split(0); node n primary service:
// split(100+n); fault timelines: split((1<<32)+n) primary and
// split((2<<32)+n) hedge lane; retry resampling: split((3<<32)+n); hedge
// service: split((4<<32)+n)).  Same seed + same plan => bit-identical
// outcomes.  The engine is strictly opt-in: inert plans never reach it
// (the scenario layer routes them to the unmodified fjsim engines), so
// pre-existing goldens are bit-identical by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "fjsim/homogeneous.hpp"
#include "sim/cluster_stats.hpp"
#include "stats/welford.hpp"

namespace forktail::fault {

/// What the injection and mitigation machinery actually did, for obs
/// counters and CI assertions.  "Injected" counters use first-hit
/// semantics: a fault window counts once it affects at least one attempt.
struct FaultCounters {
  std::uint64_t crashes = 0;
  std::uint64_t slowdowns = 0;
  std::uint64_t blips = 0;
  std::uint64_t hedges_launched = 0;
  std::uint64_t hedges_won = 0;  ///< hedge strictly beat the primary lane
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;          ///< attempt cancellations
  std::uint64_t dropped_requests = 0;  ///< measured requests that never completed
};

struct MitigatedResult {
  /// Measured request responses; dropped requests (a task lost to a crash
  /// with no surviving attempt) are excluded here and counted in
  /// `counters.dropped_requests`.
  std::vector<double> responses;
  /// Measured *mitigated* task responses (completion - arrival, after
  /// retries/hedging resolved; finite only).
  stats::Welford task_stats;
  /// Counterfactual first-attempt latencies on the primary lane (what the
  /// attempt would have taken with no timeout/hedge cancellation) -- the
  /// black-box measurement the degraded-mode predictor fits its GE to.
  /// Recording the counterfactual even for cancelled attempts keeps the
  /// sample uncensored (no survivor bias toward fast attempts).
  stats::Welford attempt_stats;
  /// Counterfactual hedge latencies measured from hedge launch.
  stats::Welford hedge_stats;
  double lambda = 0.0;
  /// Hedge launch delay actually used (service quantile at
  /// mitigation.hedge_quantile); 0 when hedging is off.
  double hedge_delay = 0.0;
  std::uint64_t total_tasks = 0;
  FaultCounters counters;
  /// Per-node mitigated task-time moments (same samples as `task_stats`,
  /// keyed by node) rolled up from the sharded sim::ClusterStats registry:
  /// pinpoints which nodes a fault window actually hurt.  Purely additive
  /// -- every pre-existing field above is untouched.
  sim::ClusterSummary node_tasks;
};

/// Run the homogeneous scenario under `plan`.  Requires the single-server
/// node policy (replicas == 1, Policy::kSingle); throws fjsim::ConfigError
/// otherwise.  Publishes the fault counters to the obs registry
/// ("fault.*") on completion.
MitigatedResult run_mitigated_homogeneous(const fjsim::HomogeneousConfig& config,
                                          const FaultPlan& plan);

/// Invert a service distribution's CDF at quantile q in [0, 1) by bisection
/// (Distribution exposes only cdf()).  Used for the hedge launch delay.
double dist_quantile(const dist::Distribution& d, double q);

}  // namespace forktail::fault
