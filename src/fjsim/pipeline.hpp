// Multi-stage fork-join workflow simulator: a request passes through a
// sequence of fork-join stages; at each stage it forks one task to every
// node of that stage (k = N within the stage) and proceeds to the next
// stage when the slowest task completes.
//
// Ground truth for core::PipelinePredictor: downstream stages see the
// (correlated, non-Poisson) completion process of their predecessor, which
// is exactly the approximation error the predictor's stage-independence
// assumption incurs.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"
#include "fjsim/config.hpp"
#include "fjsim/node.hpp"
#include "stats/welford.hpp"

namespace forktail::fjsim {

struct PipelineStageConfig {
  std::size_t num_nodes = 8;
  dist::DistPtr service;
};

struct PipelineConfig {
  std::vector<PipelineStageConfig> stages;
  /// Target utilization of the busiest stage; the request rate is
  /// lambda = load / max_s E[S_s] (every stage serves every request).
  double load = 0.8;
  std::uint64_t num_requests = 10000;  ///< measured (post warm-up)
  double warmup_fraction = 0.25;
  std::uint64_t seed = 1;
  /// Service-demand block size: 0 = default, 1 = scalar reference path
  /// (see HomogeneousConfig::batch).  Bit-identical for every value.
  std::size_t batch = 0;
  /// Replay implementation (see fjsim/config.hpp::Engine).
  Engine engine = Engine::kLegacy;
  /// Upper bound on worker parallelism for the vector engine's per-stage
  /// node sharding; 0 = pool width, 1 = inline.  Results are bit-identical
  /// for every value.  The legacy engine replays serially and ignores it.
  std::size_t max_parallelism = 0;
};

struct PipelineResult {
  std::vector<double> responses;  ///< measured end-to-end latencies
  /// Pooled per-task response moments per stage (the black-box inputs the
  /// predictor would measure).
  std::vector<stats::Welford> stage_task_stats;
  /// Per-stage request-level latency moments (for breakdown validation).
  std::vector<stats::Welford> stage_latency_stats;
  double lambda = 0.0;
};

PipelineResult run_pipeline(const PipelineConfig& config);

}  // namespace forktail::fjsim
