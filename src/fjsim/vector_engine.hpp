// SIMD replay engine: public entry points and runtime ISA dispatch.
//
// Selected per run with Engine::kVector on a simulator config.  The engine
// replays the same fork-join models as the legacy scalar/batched paths but
// generates service demands in 8-lane lockstep xoshiro256++ blocks with
// batched inverse-CDF transforms (dist/vec_sampler.hpp), runs the Lindley
// recursion over structure-of-arrays node state, and shards whole-replay
// execution across the thread pool in groups of 8 nodes, merging per-shard
// completion maxima through the same MaxArena row discipline the legacy
// engines use.
//
// Determinism contract (tested in tests/test_replay_vector.cpp):
//   * Results are bit-identical for any thread count / max_parallelism,
//     any batch (tile) size, and any dispatch level (generic/avx2/avx512).
//     The kernels are element-wise plain C++ compiled with
//     -ffp-contract=off, so every level executes the same IEEE operations.
//   * Results are NOT bit-identical to Engine::kLegacy: the engine uses
//     polynomial log/exp kernels, a branch-free uniform_pos clamp, an
//     inverse-CDF LogNormal, pooled demand lanes + counter-hash picks in
//     the subset simulator, and a stable radix sort in the pipeline
//     simulator.  docs/performance.md ("Golden-change policy") documents
//     every deviation with statistical-equivalence evidence.
//
// Dispatch: one implementation, compiled three times behind per-function
// __attribute__((target(...))) levels (see vector_engine_impl.hpp).  The
// level is chosen once per process from CPUID; the FORKTAIL_SIMD
// environment variable ("generic", "avx2", "avx512") forces a level for
// cross-ISA identity testing and is ignored when the CPU lacks it.
#pragma once

#include "fjsim/heterogeneous.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/pipeline.hpp"
#include "fjsim/subset.hpp"

// True when the per-ISA translation units (x86-64-v3 / v4 function targets)
// are compiled in; the generic level exists everywhere.
#if (defined(__x86_64__) || defined(__amd64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FORKTAIL_VE_X86 1
#else
#define FORKTAIL_VE_X86 0
#endif

namespace forktail::fjsim {

HomogeneousResult run_homogeneous_vector(const HomogeneousConfig& config);
HeterogeneousResult run_heterogeneous_vector(const HeterogeneousConfig& config);
SubsetResult run_subset_vector(const SubsetConfig& config);
PipelineResult run_pipeline_vector(const PipelineConfig& config);

/// Name of the ISA level the vector engine dispatches to in this process:
/// "avx512", "avx2", or "generic".  Resolved once (first call), honoring
/// FORKTAIL_SIMD when set and supported.
const char* vector_dispatch_level();

}  // namespace forktail::fjsim
