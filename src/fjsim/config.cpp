#include "fjsim/config.hpp"

#include "fjsim/consolidated.hpp"
#include "fjsim/homogeneous.hpp"
#include "fjsim/subset.hpp"

namespace forktail::fjsim {

void validate_node_group(const NodeGroupConfig& group, const std::string& where) {
  if (group.replicas < 1) {
    throw ConfigError(where + ".replicas", "must be >= 1");
  }
  if (group.policy == Policy::kSingle && group.replicas != 1) {
    throw ConfigError(where + ".replicas",
                      "Policy::kSingle requires exactly 1 replica");
  }
  if (group.policy == Policy::kRedundant && !(group.redundant_delay > 0.0)) {
    throw ConfigError(where + ".redundant_delay",
                      "must be > 0 under Policy::kRedundant");
  }
}

namespace {

void validate_sampling(std::uint64_t num_requests, double warmup_fraction,
                       const std::string& where) {
  if (num_requests == 0) {
    throw ConfigError(where + ".num_requests", "must be >= 1");
  }
  if (!(warmup_fraction >= 0.0 && warmup_fraction < 1.0)) {
    throw ConfigError(where + ".warmup_fraction", "must be in [0, 1)");
  }
}

void validate_load(double load, const std::string& where) {
  if (!(load > 0.0 && load < 1.0)) {
    throw ConfigError(where + ".load", "utilization must be in (0, 1)");
  }
}

}  // namespace

void validate(const HomogeneousConfig& config) {
  const std::string where = "HomogeneousConfig";
  if (config.num_nodes == 0) throw ConfigError(where + ".num_nodes", "must be >= 1");
  if (!config.service) throw ConfigError(where + ".service", "null service distribution");
  validate_load(config.load, where);
  validate_node_group(config, where);
  validate_sampling(config.num_requests, config.warmup_fraction, where);
}

void validate(const SubsetConfig& config) {
  const std::string where = "SubsetConfig";
  if (config.num_nodes == 0) throw ConfigError(where + ".num_nodes", "must be >= 1");
  if (!config.service) throw ConfigError(where + ".service", "null service distribution");
  validate_load(config.load, where);
  validate_node_group(config, where);
  validate_sampling(config.num_requests, config.warmup_fraction, where);
  // k-bounds, checked up front: the defaults (k_lo = k_hi = 0) are NOT a
  // runnable configuration under KMode::kUniformInt and must be rejected
  // loudly rather than silently simulating k = 0 requests.
  if (config.k_mode == KMode::kFixed) {
    if (config.k_fixed < 1) {
      throw ConfigError(where + ".k_fixed", "must be >= 1");
    }
    if (static_cast<std::size_t>(config.k_fixed) > config.num_nodes) {
      throw ConfigError(where + ".k_fixed",
                        "must be <= num_nodes (cannot fork more tasks than nodes)");
    }
  } else {
    if (config.k_lo < 1) {
      throw ConfigError(where + ".k_lo",
                        "must be >= 1 under KMode::kUniformInt (the default 0 "
                        "is not a runnable range)");
    }
    if (config.k_hi < config.k_lo) {
      throw ConfigError(where + ".k_hi", "must be >= k_lo");
    }
    if (static_cast<std::size_t>(config.k_hi) > config.num_nodes) {
      throw ConfigError(where + ".k_hi", "must be <= num_nodes");
    }
  }
  if (config.early_k < 0) {
    throw ConfigError(where + ".early_k", "must be >= 0 (0 = wait for all)");
  }
  if (config.early_k > 0) {
    // Every request must fork at least early_k tasks, or it could never
    // return: bound by the smallest possible fan-out.
    const int min_k = config.k_mode == KMode::kFixed ? config.k_fixed : config.k_lo;
    if (config.early_k > min_k) {
      throw ConfigError(where + ".early_k",
                        "must be <= the smallest request fan-out (" +
                            std::to_string(min_k) + ")");
    }
  }
}

void validate(const ConsolidatedConfig& config) {
  const std::string where = "ConsolidatedConfig";
  if (config.num_nodes == 0) throw ConfigError(where + ".num_nodes", "must be >= 1");
  if (!config.generator) throw ConfigError(where + ".generator", "null job generator");
  validate_load(config.load, where);
  validate_node_group(config, where);
  if (config.policy == Policy::kRedundant) {
    throw ConfigError(where + ".policy",
                      "redundant-issue is not supported by the trace-driven "
                      "simulator (jobs carry explicit per-task demands)");
  }
  validate_sampling(config.num_jobs, config.warmup_fraction, where);
  if (!(config.mean_work_per_job > 0.0)) {
    throw ConfigError(where + ".mean_work_per_job", "must be > 0");
  }
  if (!(config.service_floor >= 0.0)) {
    throw ConfigError(where + ".service_floor", "must be >= 0");
  }
}

}  // namespace forktail::fjsim
