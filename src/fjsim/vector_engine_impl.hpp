// Vector replay engine implementation, instantiated once per ISA level.
//
// Including translation units define:
//   FORKTAIL_VE_NS      -- namespace for this level (ve_generic, ve_avx2, ...)
//   FORKTAIL_VE_TARGET  -- per-function __attribute__((target(...))) for the
//                          level, empty for the baseline build.
//
// Every hot loop lives in a FORKTAIL_VE_TARGET function; the block helpers
// it calls (XoshiroBlock::fill, LaneSampler::fill, vec_log/vec_exp, ...) are
// force-inlined (FORKTAIL_VEC_INLINE) so their loops compile at the caller's
// ISA.  All TUs themselves build at the baseline -march with
// -ffp-contract=off, which keeps two guarantees:
//   * no out-of-line COMDAT symbol (std::vector internals, Welford methods,
//     ...) is ever emitted with a higher ISA encoding, so linker symbol
//     merging cannot smuggle AVX code into a baseline code path;
//   * no fused multiply-adds anywhere in the engine, so every level
//     executes the same IEEE-754 operations and results are bit-identical
//     across generic/avx2/avx512 (asserted by tests/test_replay_vector.cpp).
//
// Determinism across sharding comes from the same three properties the
// legacy batched engines rely on: per-node RNG streams are derived from
// (seed, node index) alone; per-request completion maxima are exact and
// order-independent (MaxArena row merge); and moment accumulators are kept
// per node lane and merged in a fixed node order.

#ifndef FORKTAIL_VE_NS
#error "vector_engine_impl.hpp must be included with FORKTAIL_VE_NS defined"
#endif
#ifndef FORKTAIL_VE_TARGET
#error "vector_engine_impl.hpp must be included with FORKTAIL_VE_TARGET defined"
#endif

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dist/vec_sampler.hpp"
#include "fjsim/config.hpp"
#include "fjsim/replay.hpp"
#include "fjsim/telemetry.hpp"
#include "fjsim/vector_engine.hpp"
#include "stats/welford.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"
#include "util/vec_rng.hpp"

namespace forktail::fjsim {
namespace FORKTAIL_VE_NS {
namespace {

constexpr std::size_t kL = util::kVecLanes;  // 8

/// Demand tile size in requests (rows of 8 lanes).  The config `batch` knob
/// overrides it (0 = this default).  128 rows keeps the demand tile (8 KiB)
/// plus the arrival slice L1-resident -- at 1024 rows the fill->replay
/// round trip streamed 64 KiB through L2 and cost ~15% of replay
/// throughput.  One-draw distributions produce bit-identical results for
/// every tile size (asserted by tests); Erlang's stage-major block draw
/// order IS tile-dependent, so this default is part of the engine's golden
/// definition (docs/performance.md).
constexpr std::size_t kDefaultTileRows = 128;

std::size_t resolve_tile(std::size_t batch) {
  return batch == 0 ? kDefaultTileRows : batch;
}

std::uint64_t warmup_count(std::uint64_t num_requests, double warmup_fraction) {
  return static_cast<std::uint64_t>(warmup_fraction / (1.0 - warmup_fraction) *
                                    static_cast<double>(num_requests));
}

std::size_t resolve_parallelism(std::size_t max_parallelism) {
  return max_parallelism > 0
             ? max_parallelism
             : std::max<std::size_t>(1, util::global_pool().size());
}

// ---------------------------------------------------------------------------
// Per-lane moment accumulators (structure of arrays).
//
// Raw power sums (count, sum, sum of squares) instead of the scalar
// engines' Welford recurrence: the Welford mean update divides by the
// running count EVERY sample, and that vector divide dominated the Lindley
// tile.  The sums convert to Welford parts at lane extraction
// (mean = S1/S0, m2 = S2 - S1^2/S0); for replay response magnitudes the
// conversion agrees with sequential Welford to ~1e-12 relative -- a
// documented golden change, pinned statistically by
// tests/test_replay_vector.cpp.  Accumulation order is sample order per
// lane regardless of tile partition, so thread/batch invariance of the
// vector engine's own output is unaffected.
// ---------------------------------------------------------------------------
struct LaneStats {
  double cnt[kL]{};
  double sum[kL]{};
  double sq[kL]{};
  double mn[kL];
  double mx[kL];

  LaneStats() {
    for (std::size_t l = 0; l < kL; ++l) {
      mn[l] = std::numeric_limits<double>::infinity();
      mx[l] = -std::numeric_limits<double>::infinity();
    }
  }

  stats::Welford lane(std::size_t l) const {
    if (cnt[l] == 0.0) {
      return stats::Welford::from_parts(0, 0.0, 0.0, mn[l], mx[l]);
    }
    const double mean = sum[l] / cnt[l];
    double m2 = sq[l] - sum[l] * mean;
    m2 = m2 > 0.0 ? m2 : 0.0;  // cancellation can leave a tiny negative
    return stats::Welford::from_parts(static_cast<std::uint64_t>(cnt[l]),
                                      mean, m2, mn[l], mx[l]);
  }
};

/// One moment step on lane `l` of raw SoA accumulator arrays.  The explicit
/// fma is one exact IEEE op on every ISA level (see util/vec_math.hpp).
FORKTAIL_VEC_INLINE void moment_step(double* __restrict cnt,
                                     double* __restrict sum,
                                     double* __restrict sq,
                                     double* __restrict mn,
                                     double* __restrict mx, std::size_t l,
                                     double x) noexcept {
  cnt[l] += 1.0;
  sum[l] += x;
  sq[l] = std::fma(x, x, sq[l]);
  mn[l] = x < mn[l] ? x : mn[l];
  mx[l] = x > mx[l] ? x : mx[l];
}

/// Horizontal max of 8 lanes as a halving reduction (high half onto low
/// half, twice, then one scalar max).  The shape matters: written as a
/// pairwise tree over adjacent elements, GCC's SLP lowers it to ~13
/// element-extract + scalar-max ops, all fighting for the shuffle port; the
/// halving form maps to extract-half + packed-max at each level (6 ops).
/// Max is exactly associative/commutative, so the result is bit-identical
/// either way.
FORKTAIL_VEC_INLINE double hmax8(const double* __restrict c) noexcept {
  double t4[4];
  for (std::size_t l = 0; l < 4; ++l) t4[l] = c[l] > c[l + 4] ? c[l] : c[l + 4];
  double t2[2];
  for (std::size_t l = 0; l < 2; ++l) t2[l] = t4[l] > t4[l + 2] ? t4[l] : t4[l + 2];
  return t2[0] > t2[1] ? t2[0] : t2[1];
}

// ---------------------------------------------------------------------------
// Lindley tile kernels
// ---------------------------------------------------------------------------

/// Replay one arrival tile through 8 node lanes: SoA Lindley recursion with
/// per-lane Welford and a completion-max row fold.  `check_warmup`/`stats`
/// are compile-time constants at every call site (the callers pass
/// literals), so the dead branches fold away after force-inlining.
///
/// Accumulators and next-free state are copied to locals for the tile:
/// row[.] stores are double writes that could alias the accumulator fields,
/// and the locals keep the whole recurrent state in vector registers.
FORKTAIL_VEC_INLINE void lindley_tile(const double* __restrict arr,
                                      std::uint64_t t0, std::size_t len,
                                      double* __restrict dem,
                                      double* __restrict nf, LaneStats& ls,
                                      double* __restrict row,
                                      std::uint64_t warmup, bool check_warmup,
                                      bool stats) noexcept {
  double nfl[kL], cnt[kL], sum[kL], sq[kL], mn[kL], mx[kL];
  for (std::size_t l = 0; l < kL; ++l) {
    nfl[l] = nf[l];
    cnt[l] = ls.cnt[l];
    sum[l] = ls.sum[l];
    sq[l] = ls.sq[l];
    mn[l] = ls.mn[l];
    mx[l] = ls.mx[l];
  }
  for (std::size_t i = 0; i < len; ++i) {
    const double a = arr[i];
    double c[kL];
    for (std::size_t l = 0; l < kL; ++l) {
      double v = nfl[l] < a ? a : nfl[l];
      v += dem[i * kL + l];
      nfl[l] = v;
      c[l] = v;
    }
    if (stats && (!check_warmup || t0 + i >= warmup)) {
      for (std::size_t l = 0; l < kL; ++l) {
        moment_step(cnt, sum, sq, mn, mx, l, c[l] - a);
      }
      const double m = hmax8(c);
      row[t0 + i] = row[t0 + i] > m ? row[t0 + i] : m;
    }
  }
  for (std::size_t l = 0; l < kL; ++l) {
    nf[l] = nfl[l];
    ls.cnt[l] = cnt[l];
    ls.sum[l] = sum[l];
    ls.sq[l] = sq[l];
    ls.mn[l] = mn[l];
    ls.mx[l] = mx[l];
  }
}

/// Round-robin replica variant: each lane owns `replicas` next-free servers
/// cycled per request (FastNode/LindleyState round-robin semantics).  The
/// replica cursor is uniform across lanes, so the inner lane loop still
/// vectorizes; next-free state goes through memory (nf[replicas][8]).
FORKTAIL_VEC_INLINE std::size_t lindley_tile_rr(
    const double* __restrict arr, std::uint64_t t0, std::size_t len,
    double* __restrict dem, double* __restrict nf, std::size_t replicas,
    std::size_t rep0, LaneStats& ls, double* __restrict row,
    std::uint64_t warmup, bool check_warmup, bool stats) noexcept {
  double cnt[kL], sum[kL], sq[kL], mn[kL], mx[kL];
  for (std::size_t l = 0; l < kL; ++l) {
    cnt[l] = ls.cnt[l];
    sum[l] = ls.sum[l];
    sq[l] = ls.sq[l];
    mn[l] = ls.mn[l];
    mx[l] = ls.mx[l];
  }
  std::size_t rep = rep0;
  for (std::size_t i = 0; i < len; ++i) {
    const double a = arr[i];
    double* __restrict nfr = nf + rep * kL;
    double c[kL];
    for (std::size_t l = 0; l < kL; ++l) {
      double v = nfr[l] < a ? a : nfr[l];
      v += dem[i * kL + l];
      nfr[l] = v;
      c[l] = v;
    }
    if (stats && (!check_warmup || t0 + i >= warmup)) {
      for (std::size_t l = 0; l < kL; ++l) {
        moment_step(cnt, sum, sq, mn, mx, l, c[l] - a);
      }
      const double m = hmax8(c);
      row[t0 + i] = row[t0 + i] > m ? row[t0 + i] : m;
    }
    rep = rep + 1 == replicas ? 0 : rep + 1;
  }
  for (std::size_t l = 0; l < kL; ++l) {
    ls.cnt[l] = cnt[l];
    ls.sum[l] = sum[l];
    ls.sq[l] = sq[l];
    ls.mn[l] = mn[l];
    ls.mx[l] = mx[l];
  }
  return rep;
}

/// Pipeline variant: the row (stage completion) fold is UNCONDITIONAL --
/// downstream stages consume every request's completion, warm-up included
/// -- while per-task stats are gated by a per-index measured mask (request
/// ids arrive shuffled by upstream completion order).
FORKTAIL_VEC_INLINE void lindley_tile_mask(
    const double* __restrict arr, std::uint64_t t0, std::size_t len,
    double* __restrict dem, double* __restrict nf, LaneStats& ls,
    double* __restrict row, const unsigned char* __restrict meas) noexcept {
  double nfl[kL], cnt[kL], sum[kL], sq[kL], mn[kL], mx[kL];
  for (std::size_t l = 0; l < kL; ++l) {
    nfl[l] = nf[l];
    cnt[l] = ls.cnt[l];
    sum[l] = ls.sum[l];
    sq[l] = ls.sq[l];
    mn[l] = ls.mn[l];
    mx[l] = ls.mx[l];
  }
  for (std::size_t i = 0; i < len; ++i) {
    const double a = arr[i];
    double c[kL];
    for (std::size_t l = 0; l < kL; ++l) {
      double v = nfl[l] < a ? a : nfl[l];
      v += dem[i * kL + l];
      nfl[l] = v;
      c[l] = v;
    }
    const double m = hmax8(c);
    row[t0 + i] = row[t0 + i] > m ? row[t0 + i] : m;
    // Branch-free masked accumulation: the measured flag is shuffled by the
    // upstream completion order, so a branch here mispredicts constantly.
    // With g in {0,1} every masked-off op is an exact identity (x*0 adds
    // 0.0, min/max against +-inf), so the sums are bit-identical to the
    // branchy form.
    const double g = meas[t0 + i] ? 1.0 : 0.0;
    const bool on = meas[t0 + i] != 0;
    for (std::size_t l = 0; l < kL; ++l) {
      const double x = c[l] - a;
      const double xg = x * g;
      cnt[l] += g;
      sum[l] += xg;
      sq[l] = std::fma(xg, x, sq[l]);
      const double xmn = on ? x : std::numeric_limits<double>::infinity();
      const double xmx = on ? x : -std::numeric_limits<double>::infinity();
      mn[l] = xmn < mn[l] ? xmn : mn[l];
      mx[l] = xmx > mx[l] ? xmx : mx[l];
    }
  }
  for (std::size_t l = 0; l < kL; ++l) {
    nf[l] = nfl[l];
    ls.cnt[l] = cnt[l];
    ls.sum[l] = sum[l];
    ls.sq[l] = sq[l];
    ls.mn[l] = mn[l];
    ls.mx[l] = mx[l];
  }
}

// ---------------------------------------------------------------------------
// Arrival generation
// ---------------------------------------------------------------------------

/// Poisson arrival epochs from the scalar stream `Rng(seed)` would walk, but
/// with the engine's block transforms: one u64 per arrival (branch-free
/// uniform_pos clamp instead of rejection), vec_log instead of libm.  The
/// raw u64 stream equals the legacy arrival stream; the epoch VALUES differ
/// in the last ulps (documented golden change).
FORKTAIL_VE_TARGET void gen_arrivals(std::uint64_t seed, double mean,
                                     std::vector<double>& out) {
  util::Xoshiro256pp eng(seed);
  constexpr std::size_t kChunk = 4096;
  std::uint64_t raw[kChunk];
  double gap[kChunk];
  double t = 0.0;
  const std::size_t total = out.size();
  for (std::size_t base = 0; base < total; base += kChunk) {
    const std::size_t n = std::min(kChunk, total - base);
    for (std::size_t i = 0; i < n; ++i) raw[i] = eng();
    util::unit_pos_block(raw, gap, n);
    util::log_block_inplace(gap, n);
    for (std::size_t i = 0; i < n; ++i) {
      t += gap[i] * -mean;
      out[base + i] = t;
    }
  }
}

// ---------------------------------------------------------------------------
// Node groups
// ---------------------------------------------------------------------------

/// One 8-lane shard of nodes sharing a VecClass.  `node_ids` are global node
/// indices (lane l serves node_ids[l]); lanes beyond node_ids.size() are
/// inactive (demand 0, never read back).
struct GroupDef {
  std::vector<std::uint32_t> node_ids;
  std::vector<dist::LaneSampler::Lane> lanes;
};

/// Chunk `nodes` (already filtered to one VecClass) into 8-lane groups.
/// `seed_of(node)` gives the lane's RNG stream seed -- the exact
/// Rng::split_seed value the legacy engine uses for that node.
template <typename SeedOf>
void append_groups(std::vector<GroupDef>& groups,
                   const std::vector<std::uint32_t>& nodes,
                   const dist::Distribution* const* dists, SeedOf&& seed_of) {
  for (std::size_t base = 0; base < nodes.size(); base += kL) {
    const std::size_t cnt = std::min(kL, nodes.size() - base);
    GroupDef g;
    g.node_ids.assign(nodes.begin() + static_cast<std::ptrdiff_t>(base),
                      nodes.begin() + static_cast<std::ptrdiff_t>(base + cnt));
    g.lanes.reserve(cnt);
    for (std::size_t l = 0; l < cnt; ++l) {
      const std::uint32_t node = g.node_ids[l];
      g.lanes.push_back({dists[node], seed_of(node)});
    }
    groups.push_back(std::move(g));
  }
}

/// Tiled replay of one group over the full arrival sequence, with the
/// legacy warm-up tile split (pure warm-up tiles skip stats AND the row
/// fold -- nothing reads the merged row below `warmup`).  Returns the tile
/// count (for the fjsim.tiles counter, accumulated per group so the total
/// is independent of the block partition).
FORKTAIL_VE_TARGET std::uint64_t replay_group(
    dist::LaneSampler& sampler, const std::vector<double>& arrivals,
    std::uint64_t warmup, std::size_t tile_rows, std::size_t replicas,
    double* nf, LaneStats& ls, double* row, std::vector<double>& dembuf) {
  const std::uint64_t total = arrivals.size();
  if (dembuf.size() < tile_rows * kL) dembuf.resize(tile_rows * kL);
  std::uint64_t tiles = 0;
  std::size_t rep = 0;
  for (std::uint64_t t0 = 0; t0 < total; t0 += tile_rows, ++tiles) {
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(tile_rows, total - t0));
    sampler.fill(dembuf.data(), len);
    const double* arr = arrivals.data() + t0;
    if (replicas == 1) {
      if (t0 + len <= warmup) {
        lindley_tile(arr, t0, len, dembuf.data(), nf, ls, row, warmup, false,
                     false);
      } else if (t0 >= warmup) {
        lindley_tile(arr, t0, len, dembuf.data(), nf, ls, row, warmup, false,
                     true);
      } else {
        lindley_tile(arr, t0, len, dembuf.data(), nf, ls, row, warmup, true,
                     true);
      }
    } else {
      if (t0 + len <= warmup) {
        rep = lindley_tile_rr(arr, t0, len, dembuf.data(), nf, replicas, rep,
                              ls, row, warmup, false, false);
      } else if (t0 >= warmup) {
        rep = lindley_tile_rr(arr, t0, len, dembuf.data(), nf, replicas, rep,
                              ls, row, warmup, false, true);
      } else {
        rep = lindley_tile_rr(arr, t0, len, dembuf.data(), nf, replicas, rep,
                              ls, row, warmup, true, true);
      }
    }
  }
  return tiles;
}

/// Pipeline-stage group replay: same tiling, measured-mask stats.
FORKTAIL_VE_TARGET void replay_group_mask(dist::LaneSampler& sampler,
                                          const std::vector<double>& arrivals,
                                          const unsigned char* meas,
                                          std::size_t tile_rows, double* nf,
                                          LaneStats& ls, double* row,
                                          std::vector<double>& dembuf) {
  const std::uint64_t total = arrivals.size();
  if (dembuf.size() < tile_rows * kL) dembuf.resize(tile_rows * kL);
  for (std::uint64_t t0 = 0; t0 < total; t0 += tile_rows) {
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(tile_rows, total - t0));
    sampler.fill(dembuf.data(), len);
    lindley_tile_mask(arrivals.data() + t0, t0, len, dembuf.data(), nf, ls,
                      row, meas);
  }
}

// ---------------------------------------------------------------------------
// Stable sort on positive-double keys (pipeline stage reorder)
// ---------------------------------------------------------------------------

/// Scratch shared by the bucket path (idx2/hist) and the radix fallback.
struct RadixScratch {
  std::vector<std::uint64_t> keys, keys2;
  std::vector<std::uint32_t> idx2;
  std::vector<std::uint32_t> hist;
};

/// Stable LSD radix fallback: 6x11-bit passes over the raw double bits with
/// a combined histogram pre-pass that skips constant digits.  Only used
/// when the value distribution defeats the bucket pass below; both paths
/// produce THE stable (value, original index) order, so which one runs
/// never changes a result bit.
FORKTAIL_VE_TARGET void radix_sort_by_completion(
    const std::vector<double>& completion, std::vector<std::uint32_t>& idx,
    RadixScratch& rs) {
  const std::size_t n = completion.size();
  constexpr int kBits = 11;
  constexpr int kPasses = 6;  // 66 bits >= 64
  constexpr std::size_t kBuckets = std::size_t{1} << kBits;
  constexpr std::uint64_t kMask = kBuckets - 1;
  rs.keys.resize(n);
  rs.keys2.resize(n);
  rs.idx2.resize(n);
  rs.hist.assign(kPasses * kBuckets, 0);
  idx.resize(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < n; ++i) {
    rs.keys[i] = std::bit_cast<std::uint64_t>(completion[i]);
  }
  std::uint32_t* __restrict hist = rs.hist.data();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = rs.keys[i];
    for (int p = 0; p < kPasses; ++p) {
      ++hist[static_cast<std::size_t>(p) * kBuckets +
             ((k >> (p * kBits)) & kMask)];
    }
  }
  std::uint64_t* src_k = rs.keys.data();
  std::uint64_t* dst_k = rs.keys2.data();
  std::uint32_t* src_i = idx.data();
  std::uint32_t* dst_i = rs.idx2.data();
  std::uint32_t offs[kBuckets];
  for (int p = 0; p < kPasses; ++p) {
    const std::uint32_t* h = hist + static_cast<std::size_t>(p) * kBuckets;
    const int shift = p * kBits;
    // All keys share this digit => the pass is the identity permutation.
    if (n > 0 && h[(src_k[0] >> shift) & kMask] == n) continue;
    std::uint32_t sum = 0;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      offs[d] = sum;
      sum += h[d];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = src_k[i];
      const std::uint32_t pos = offs[(k >> shift) & kMask]++;
      dst_k[pos] = k;
      dst_i[pos] = src_i[i];
    }
    std::swap(src_k, dst_k);
    std::swap(src_i, dst_i);
  }
  if (src_i != idx.data()) {
    std::memcpy(idx.data(), src_i, n * sizeof(std::uint32_t));
  }
}

/// Sort `idx` so completion[idx[i]] is non-decreasing, ties by original
/// index (stable -- a documented deviation from the legacy std::sort, whose
/// tie order is unspecified).  Stage completions are spread nearly
/// uniformly over the arrival window, so a single bucket-scatter pass puts
/// the permutation within a handful of slots of sorted order and one
/// insertion repair sweep finishes it -- O(n) end to end, ~4x faster than
/// the radix fallback that handles pathological clustering.
FORKTAIL_VE_TARGET void sort_by_completion(const std::vector<double>& completion,
                                           std::vector<std::uint32_t>& idx,
                                           RadixScratch& rs) {
  const std::size_t n = completion.size();
  idx.resize(n);
  if (n < 2) {
    if (n == 1) idx[0] = 0;
    return;
  }
  const double* __restrict c = completion.data();
  double mn = c[0], mx = c[0];
  for (std::size_t i = 1; i < n; ++i) {
    mn = c[i] < mn ? c[i] : mn;
    mx = c[i] > mx ? c[i] : mx;
  }
  if (!(mx > mn)) {  // all equal: identity is the stable order
    for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
    return;
  }
  // Average bucket occupancy 2: halves the histogram footprint, and the
  // repair sweep handles occupancy-sized disorder for free.
  const std::size_t nb = n / 2 + 1;
  const double scale = static_cast<double>(nb) / (mx - mn);
  const auto bucket_of = [&](double v) {
    auto b = static_cast<std::size_t>((v - mn) * scale);
    return b < nb ? b : nb - 1;
  };
  rs.hist.assign(nb + 1, 0);
  std::uint32_t* __restrict hist = rs.hist.data();
  std::uint32_t peak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t h = ++hist[bucket_of(c[i])];
    peak = h > peak ? h : peak;
  }
  // A spike this deep would make the quadratic repair sweep the hot spot;
  // hand off to the radix path instead (same output, value-independent
  // cost).
  if (peak > 64) {
    radix_sort_by_completion(completion, idx, rs);
    return;
  }
  std::uint32_t off = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint32_t cnt = hist[b];
    hist[b] = off;
    off += cnt;
  }
  std::uint32_t* __restrict out = idx.data();
  for (std::size_t i = 0; i < n; ++i) {
    out[hist[bucket_of(c[i])]++] = static_cast<std::uint32_t>(i);
  }
  // Insertion repair: buckets are ordered by construction, so only
  // within-bucket inversions remain.  The strict `<` keeps equal keys in
  // scatter (= original index) order: stability preserved.
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t v = out[i];
    const double key = c[v];
    if (key >= c[out[i - 1]]) continue;
    std::size_t j = i;
    do {
      out[j] = out[j - 1];
      --j;
    } while (j > 0 && c[out[j - 1]] > key);
    out[j] = v;
  }
}

// ---------------------------------------------------------------------------
// Homogeneous / heterogeneous engines (shared shard driver)
// ---------------------------------------------------------------------------

struct ShardedReplay {
  MaxArena arena;
  std::vector<stats::Welford> node_stats;
  std::size_t num_blocks;
};

/// Shard `groups` over the pool (one MaxArena row per block), replay each
/// group tiled, and collect per-node Welfords in node order.  Per-block
/// telemetry mirrors the legacy engines: block_seconds span plus
/// warmup/measured task counters; the tiles counter accumulates per GROUP
/// so its total is invariant under the block partition (unlike the legacy
/// batched path, whose per-block tile count varies with the pool width).
ShardedReplay replay_sharded(const std::vector<GroupDef>& groups,
                             std::size_t num_nodes,
                             const std::vector<double>& arrivals,
                             std::uint64_t warmup, std::size_t tile_rows,
                             std::size_t replicas, std::size_t parallelism) {
  const std::uint64_t total = arrivals.size();
  const std::size_t num_blocks =
      std::min<std::size_t>(std::max<std::size_t>(groups.size(), 1),
                            parallelism);
  ShardedReplay out{MaxArena(num_blocks, total),
                    std::vector<stats::Welford>(num_nodes), num_blocks};

  const auto replay_block = [&](std::size_t b) {
    const std::size_t glo = groups.size() * b / num_blocks;
    const std::size_t ghi = groups.size() * (b + 1) / num_blocks;
    const obs::ScopedSpan block_span(ReplayMetrics::get().block_seconds);
    std::size_t block_nodes = 0;
    for (std::size_t g = glo; g < ghi; ++g) {
      block_nodes += groups[g].node_ids.size();
    }
    ReplayMetrics::get().tasks_warmup.add(warmup * block_nodes);
    ReplayMetrics::get().tasks_measured.add((total - warmup) * block_nodes);
    double* row = out.arena.row(b).data();
    std::vector<double> dembuf(tile_rows * kL);
    std::vector<double> nf(replicas * kL);
    std::uint64_t tiles = 0;
    for (std::size_t g = glo; g < ghi; ++g) {
      const GroupDef& def = groups[g];
      dist::LaneSampler sampler(
          std::span<const dist::LaneSampler::Lane>(def.lanes));
      std::fill(nf.begin(), nf.end(), 0.0);
      LaneStats ls;
      tiles += replay_group(sampler, arrivals, warmup, tile_rows, replicas,
                            nf.data(), ls, row, dembuf);
      for (std::size_t l = 0; l < def.node_ids.size(); ++l) {
        out.node_stats[def.node_ids[l]] = ls.lane(l);
      }
    }
    ReplayMetrics::get().tiles.add(tiles);
  };
  if (num_blocks == 1) {
    replay_block(0);
  } else {
    util::parallel_for(util::global_pool(), 0, num_blocks, replay_block);
  }
  return out;
}

HomogeneousResult homogeneous_impl(const HomogeneousConfig& config) {
  validate(config);
  if (config.policy == Policy::kRedundant) {
    throw ConfigError("HomogeneousConfig.engine",
                      "Engine::kVector does not support Policy::kRedundant "
                      "(use Engine::kLegacy)");
  }
  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);

  const double lambda = config.load * static_cast<double>(config.replicas) /
                        config.service->mean();
  const std::uint64_t warmup =
      warmup_count(config.num_requests, config.warmup_fraction);
  const std::uint64_t total = warmup + config.num_requests;
  const std::size_t tile_rows = resolve_tile(config.batch);

  std::vector<double> arrivals(total);
  gen_arrivals(util::Rng::split_seed(config.seed, 0), 1.0 / lambda, arrivals);

  std::vector<std::uint32_t> nodes(config.num_nodes);
  std::iota(nodes.begin(), nodes.end(), 0u);
  std::vector<const dist::Distribution*> dists(config.num_nodes,
                                               config.service.get());
  std::vector<GroupDef> groups;
  append_groups(groups, nodes, dists.data(), [&](std::uint32_t node) {
    return util::Rng::split_seed(config.seed, 100 + node);
  });

  ShardedReplay sr = replay_sharded(
      groups, config.num_nodes, arrivals, warmup, tile_rows,
      static_cast<std::size_t>(config.replicas),
      resolve_parallelism(config.max_parallelism));

  HomogeneousResult result;
  result.lambda = lambda;
  result.total_tasks = total * config.num_nodes;
  result.responses.reserve(config.num_requests);
  const std::span<const double> merged = sr.arena.merged(sr.num_blocks);
  for (std::uint64_t j = warmup; j < total; ++j) {
    result.responses.push_back(merged[j] - arrivals[j]);
  }
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    result.task_stats.merge(sr.node_stats[n]);
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

HeterogeneousResult heterogeneous_impl(const HeterogeneousConfig& config) {
  const std::size_t n = config.services.size();
  if (n == 0) throw std::invalid_argument("run_heterogeneous: no nodes");
  if (!(config.lambda > 0.0)) {
    throw std::invalid_argument("run_heterogeneous: lambda <= 0");
  }
  double max_rho = 0.0;
  for (const auto& s : config.services) {
    if (!s) throw std::invalid_argument("run_heterogeneous: null service");
    max_rho = std::max(max_rho, config.lambda * s->mean());
  }
  if (max_rho >= 1.0) {
    throw std::invalid_argument(
        "run_heterogeneous: bottleneck node unstable (rho >= 1)");
  }
  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);

  const std::uint64_t warmup =
      warmup_count(config.num_requests, config.warmup_fraction);
  const std::uint64_t total = warmup + config.num_requests;
  const std::size_t tile_rows = resolve_tile(config.batch);

  std::vector<double> arrivals(total);
  gen_arrivals(util::Rng::split_seed(config.seed, 0), 1.0 / config.lambda,
               arrivals);

  // Group nodes by VecClass (a LaneSampler's lanes must share a fill pass),
  // classes in first-appearance order, node ids ascending within a class:
  // a fixed rule, so grouping -- and therefore every result bit -- is
  // independent of thread count and dispatch level.
  std::vector<const dist::Distribution*> dists(n);
  for (std::size_t i = 0; i < n; ++i) dists[i] = config.services[i].get();
  std::vector<dist::VecClass> classes;
  std::vector<std::vector<std::uint32_t>> buckets;
  for (std::size_t i = 0; i < n; ++i) {
    const dist::VecClass c = dist::classify_vec(*dists[i]);
    std::size_t b = 0;
    while (b < classes.size() && !(classes[b] == c)) ++b;
    if (b == classes.size()) {
      classes.push_back(c);
      buckets.emplace_back();
    }
    buckets[b].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<GroupDef> groups;
  for (const auto& bucket : buckets) {
    append_groups(groups, bucket, dists.data(), [&](std::uint32_t node) {
      return util::Rng::split_seed(config.seed, 100 + node);
    });
  }

  ShardedReplay sr =
      replay_sharded(groups, n, arrivals, warmup, tile_rows, 1,
                     resolve_parallelism(config.max_parallelism));

  HeterogeneousResult result;
  result.lambda = config.lambda;
  result.max_utilization = max_rho;
  result.node_stats = std::move(sr.node_stats);
  result.responses.reserve(config.num_requests);
  const std::span<const double> merged = sr.arena.merged(sr.num_blocks);
  for (std::uint64_t j = warmup; j < total; ++j) {
    result.responses.push_back(merged[j] - arrivals[j]);
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

// ---------------------------------------------------------------------------
// Pipeline engine
// ---------------------------------------------------------------------------

PipelineResult pipeline_impl(const PipelineConfig& config) {
  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);
  if (config.stages.empty()) {
    throw std::invalid_argument("run_pipeline: no stages");
  }
  double slowest_mean = 0.0;
  for (const auto& stage : config.stages) {
    if (stage.num_nodes == 0 || !stage.service) {
      throw std::invalid_argument("run_pipeline: invalid stage");
    }
    slowest_mean = std::max(slowest_mean, stage.service->mean());
  }
  if (!(config.load > 0.0 && config.load < 1.0)) {
    throw std::invalid_argument("run_pipeline: load must be in (0,1)");
  }

  const double lambda = config.load / slowest_mean;
  const std::uint64_t warmup =
      warmup_count(config.num_requests, config.warmup_fraction);
  const std::uint64_t total = warmup + config.num_requests;
  const std::size_t tile_rows = resolve_tile(config.batch);
  const std::size_t parallelism = resolve_parallelism(config.max_parallelism);

  std::vector<double> origin(total);
  gen_arrivals(util::Rng::split_seed(config.seed, 0), 1.0 / lambda, origin);

  PipelineResult result;
  result.lambda = lambda;
  result.stage_task_stats.resize(config.stages.size());
  result.stage_latency_stats.resize(config.stages.size());

  std::vector<std::uint32_t> order(total);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> arrivals = origin;
  std::vector<double> completion(total);
  std::vector<unsigned char> meas(total);
  std::vector<std::uint32_t> idx;
  RadixScratch rs;
  std::vector<std::uint32_t> next_order(total);
  std::vector<double> next_arrivals(total);

  for (std::size_t s = 0; s < config.stages.size(); ++s) {
    const PipelineStageConfig& stage = config.stages[s];
    for (std::uint64_t i = 0; i < total; ++i) {
      meas[i] = order[i] >= warmup ? 1 : 0;
    }

    std::vector<std::uint32_t> nodes(stage.num_nodes);
    std::iota(nodes.begin(), nodes.end(), 0u);
    std::vector<const dist::Distribution*> dists(stage.num_nodes,
                                                 stage.service.get());
    std::vector<GroupDef> groups;
    append_groups(groups, nodes, dists.data(), [&](std::uint32_t node) {
      return util::Rng::split_seed(config.seed, 1000 * (s + 1) + node);
    });

    const std::size_t num_blocks =
        std::min<std::size_t>(std::max<std::size_t>(groups.size(), 1),
                              parallelism);
    MaxArena arena(num_blocks, total);
    std::vector<stats::Welford> node_stats(stage.num_nodes);
    const auto replay_block = [&](std::size_t b) {
      const std::size_t glo = groups.size() * b / num_blocks;
      const std::size_t ghi = groups.size() * (b + 1) / num_blocks;
      const obs::ScopedSpan block_span(ReplayMetrics::get().block_seconds);
      double* row = arena.row(b).data();
      std::vector<double> dembuf(tile_rows * kL);
      double nf[kL];
      for (std::size_t g = glo; g < ghi; ++g) {
        const GroupDef& def = groups[g];
        dist::LaneSampler sampler(
            std::span<const dist::LaneSampler::Lane>(def.lanes));
        std::fill(nf, nf + kL, 0.0);
        LaneStats ls;
        replay_group_mask(sampler, arrivals, meas.data(), tile_rows, nf, ls,
                          row, dembuf);
        for (std::size_t l = 0; l < def.node_ids.size(); ++l) {
          node_stats[def.node_ids[l]] = ls.lane(l);
        }
      }
    };
    if (num_blocks == 1) {
      replay_block(0);
    } else {
      util::parallel_for(util::global_pool(), 0, num_blocks, replay_block);
    }

    const std::span<const double> merged = arena.merged(num_blocks);
    std::copy(merged.begin(), merged.end(), completion.begin());
    // Stage task stats: per-node-lane Welfords merged in node order (the
    // legacy engine accumulates one shared Welford node-by-node; same
    // multiset of responses, different -- but fixed -- reduction order).
    for (std::size_t node = 0; node < stage.num_nodes; ++node) {
      result.stage_task_stats[s].merge(node_stats[node]);
    }
    // Stage latency stats: 8 masked lane sums (lane = i mod 8) folded in
    // lane order.  Equivalent-in-distribution to the legacy sequential
    // Welford over the same multiset; the reduction order is fixed, so the
    // result is deterministic and thread-count independent.
    {
      double lcnt[kL], lsum[kL], lsq[kL], lmn[kL], lmx[kL];
      for (std::size_t l = 0; l < kL; ++l) {
        lcnt[l] = 0.0;
        lsum[l] = 0.0;
        lsq[l] = 0.0;
        lmn[l] = std::numeric_limits<double>::infinity();
        lmx[l] = -std::numeric_limits<double>::infinity();
      }
      const double* __restrict cmp = completion.data();
      const double* __restrict arr = arrivals.data();
      const unsigned char* __restrict ms = meas.data();
      const std::uint64_t tiles = total / kL * kL;
      for (std::uint64_t i = 0; i < tiles; i += kL) {
        for (std::size_t l = 0; l < kL; ++l) {
          const double g = ms[i + l] ? 1.0 : 0.0;
          const bool on = ms[i + l] != 0;
          const double x = cmp[i + l] - arr[i + l];
          const double xg = x * g;
          lcnt[l] += g;
          lsum[l] += xg;
          lsq[l] = std::fma(xg, x, lsq[l]);
          const double xmn = on ? x : std::numeric_limits<double>::infinity();
          const double xmx = on ? x : -std::numeric_limits<double>::infinity();
          lmn[l] = xmn < lmn[l] ? xmn : lmn[l];
          lmx[l] = xmx > lmx[l] ? xmx : lmx[l];
        }
      }
      for (std::uint64_t i = tiles; i < total; ++i) {
        if (ms[i]) {
          const double x = cmp[i] - arr[i];
          lcnt[0] += 1.0;
          lsum[0] += x;
          lsq[0] = std::fma(x, x, lsq[0]);
          lmn[0] = x < lmn[0] ? x : lmn[0];
          lmx[0] = x > lmx[0] ? x : lmx[0];
        }
      }
      for (std::size_t l = 0; l < kL; ++l) {
        if (lcnt[l] == 0.0) continue;
        const double mean = lsum[l] / lcnt[l];
        double m2 = lsq[l] - lsum[l] * mean;
        m2 = m2 > 0.0 ? m2 : 0.0;
        result.stage_latency_stats[s].merge(stats::Welford::from_parts(
            static_cast<std::uint64_t>(lcnt[l]), mean, m2, lmn[l], lmx[l]));
      }
    }

    sort_by_completion(completion, idx, rs);
    for (std::uint64_t i = 0; i < total; ++i) {
      next_order[i] = order[idx[i]];
      next_arrivals[i] = completion[idx[i]];
    }
    std::swap(order, next_order);
    std::swap(arrivals, next_arrivals);
  }

  result.responses.reserve(config.num_requests);
  std::vector<double> final_completion(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    final_completion[order[i]] = arrivals[i];
  }
  for (std::uint64_t req = warmup; req < total; ++req) {
    result.responses.push_back(final_completion[req] - origin[req]);
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

// ---------------------------------------------------------------------------
// Subset engine (request-major; inherently serial over shared node state)
// ---------------------------------------------------------------------------

/// Pooled service-demand stream: 8 lockstep lanes refilled in blocks,
/// consumed linearly (task slot s -> row s/8, lane s%8).  Refill boundaries
/// depend only on the fixed capacity, so the consumed sequence is
/// deterministic.
struct DemandStream {
  dist::LaneSampler sampler;
  std::vector<double> buf;
  std::size_t pos = 0;
  std::size_t end = 0;

  DemandStream(std::span<const dist::LaneSampler::Lane> lanes,
               std::size_t capacity)
      : sampler(lanes), buf(capacity) {}
};

FORKTAIL_VE_TARGET void ds_refill(DemandStream& ds) {
  const std::size_t rem = ds.end - ds.pos;
  std::memmove(ds.buf.data(), ds.buf.data() + ds.pos, rem * sizeof(double));
  const std::size_t rows = (ds.buf.size() - rem) / kL;
  ds.sampler.fill(ds.buf.data() + rem, rows);
  ds.pos = 0;
  ds.end = rem + rows * kL;
}

/// Stream index bases for the subset engine's RNG streams.  0/1/2 mirror
/// the legacy arrival/pick/k streams; the demand lanes use a base far
/// outside the legacy per-node range (100 + node) so no stream is reused.
constexpr std::uint64_t kSubsetDemandStreamBase = std::uint64_t{1} << 40;

struct SubsetLoopState {
  const double* arrivals;
  std::uint64_t total, warmup;
  std::uint64_t pick_seed;
  std::size_t num_nodes;
  double* nf;                 // per-node next-free
  double* completion_max;     // per request
  int* request_k;             // nullptr unless group_by_k
  std::uint64_t* stamp;       // num_nodes epoch marks, all zero
  std::uint32_t* picks;       // k_max scratch
  double* cbuf;               // k_max scratch (task completions)
  LaneStats* ls;              // pooled task stats lanes
  std::uint64_t total_tasks = 0;
};

/// The request-major replay loop.  Node choice uses counter-hash darts with
/// a first-free-dart conflict fixup (uniform ordered distinct picks, like
/// the legacy partial Fisher-Yates but random-access and vectorizable);
/// task stats go through an 8-slot pending ring so the Welford lane of a
/// measured task is its global measured-slot index mod 8 -- invariant under
/// the tile size and (trivially) the thread count.  `ks[j]` is request j's
/// fan-out (drawn up front from the k stream, in arrival order like the
/// legacy engine).
///
/// Darts are pick_hash32(seed32, request, dart) reduced to [0, n) by the
/// Lemire multiply-shift -- all 32-bit ops, 16 lanes per AVX-512 vector,
/// and no u64->double->u32 round trip.  (The first cut used the 64-bit
/// counter_hash + bits_to_unit; the narrower pipeline measured ~17% faster
/// on subset-n100-k16 with indistinguishable pick statistics.)
FORKTAIL_VE_TARGET void subset_loop(SubsetLoopState& st, DemandStream& ds,
                                    const std::uint32_t* ks) {
  const auto nn32 = static_cast<std::uint32_t>(st.num_nodes);
  const auto s32 =
      static_cast<std::uint32_t>(st.pick_seed ^ (st.pick_seed >> 32));
  double pend[kL];
  std::size_t pc = 0;
  // Moment accumulators live in locals for the whole loop: moment_step
  // through the LaneStats reference would round-trip five accumulators
  // through memory at every flush, and the store-load chains were ~20% of
  // the loop.
  double cnt[kL], sum[kL], sq[kL], mn[kL], mx[kL];
  for (std::size_t l = 0; l < kL; ++l) {
    cnt[l] = st.ls->cnt[l];
    sum[l] = st.ls->sum[l];
    sq[l] = st.ls->sq[l];
    mn[l] = st.ls->mn[l];
    mx[l] = st.ls->mx[l];
  }
  for (std::uint64_t j = 0; j < st.total; ++j) {
    const double t = st.arrivals[j];
    const auto k = static_cast<std::size_t>(ks[j]);
    if (st.request_k != nullptr) st.request_k[j] = static_cast<int>(k);
    const auto j32 = static_cast<std::uint32_t>(j);
    // Darts: candidate i is hash_to_range(pick_hash32(s, j, i), n), one
    // vectorized block per request.
    for (std::size_t i = 0; i < k; ++i) {
      st.picks[i] = util::hash_to_range(
          util::pick_hash32(s32, j32, static_cast<std::uint32_t>(i)), nn32);
    }
    if (ds.end - ds.pos < k) ds_refill(ds);
    const double* __restrict dem = ds.buf.data() + ds.pos;
    ds.pos += k;
    // Fused conflict-fixup + service pass.  Membership is an epoch stamp
    // (stamp[p] == j+1 means "picked by THIS request"): one store per pick
    // instead of the bitmap's set-then-clear RMW pair, no cleanup sweep.
    // Conflicts redraw from a shared overflow counter in lane order,
    // exactly the pre-fusion pick sequence (service of pick i never
    // touches the stamps, so fusing cannot change which darts conflict).
    const std::uint64_t epoch = j + 1;
    auto ctr = static_cast<std::uint32_t>(k);
    for (std::size_t i = 0; i < k; ++i) {
      std::uint32_t p = st.picks[i];
      while (st.stamp[p] == epoch) {
        p = util::hash_to_range(util::pick_hash32(s32, j32, ctr++), nn32);
      }
      st.stamp[p] = epoch;
      double start = st.nf[p];
      start = start < t ? t : start;
      const double c = start + dem[i];
      st.nf[p] = c;
      st.cbuf[i] = c;
    }
    double m = 0.0;
    for (std::size_t i = 0; i < k; ++i) m = st.cbuf[i] > m ? st.cbuf[i] : m;
    st.completion_max[j] = m;
    st.total_tasks += k;
    if (j < st.warmup) continue;
    // Pooled task stats: lane of a measured task is its global
    // measured-slot index mod 8 (invariant under tile size and thread
    // count).  Aligned full blocks flush straight from cbuf; the ring
    // buffer only carries the misaligned head/tail.
    std::size_t i = 0;
    if (pc != 0) {
      while (i < k && pc < kL) pend[pc++] = st.cbuf[i++] - t;
      if (pc == kL) {
        for (std::size_t l = 0; l < kL; ++l) {
          moment_step(cnt, sum, sq, mn, mx, l, pend[l]);
        }
        pc = 0;
      }
    }
    for (; i + kL <= k; i += kL) {
      const double* __restrict c = st.cbuf + i;
      for (std::size_t l = 0; l < kL; ++l) {
        moment_step(cnt, sum, sq, mn, mx, l, c[l] - t);
      }
    }
    while (i < k) pend[pc++] = st.cbuf[i++] - t;
  }
  // Leftover pending slots map to lanes 0..pc-1 (flushes happen at
  // multiples of 8), added in lane order.
  for (std::size_t l = 0; l < pc; ++l) {
    moment_step(cnt, sum, sq, mn, mx, l, pend[l]);
  }
  for (std::size_t l = 0; l < kL; ++l) {
    st.ls->cnt[l] = cnt[l];
    st.ls->sum[l] = sum[l];
    st.ls->sq[l] = sq[l];
    st.ls->mn[l] = mn[l];
    st.ls->mx[l] = mx[l];
  }
}

SubsetResult subset_impl(const SubsetConfig& config) {
  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);
  validate(config);
  if (config.policy == Policy::kRedundant) {
    throw ConfigError("SubsetConfig.engine",
                      "Engine::kVector does not support Policy::kRedundant "
                      "(use Engine::kLegacy)");
  }
  if (config.replicas != 1) {
    throw ConfigError("SubsetConfig.engine",
                      "Engine::kVector requires replicas == 1 "
                      "(use Engine::kLegacy)");
  }
  if (config.early_k > 0) {
    throw ConfigError("SubsetConfig.engine",
                      "Engine::kVector does not support early_k > 0 "
                      "(use Engine::kLegacy)");
  }
  const double mean_k =
      config.k_mode == KMode::kFixed
          ? static_cast<double>(config.k_fixed)
          : 0.5 * static_cast<double>(config.k_lo + config.k_hi);
  const double lambda = config.load * static_cast<double>(config.num_nodes) /
                        (mean_k * config.service->mean());
  const std::uint64_t warmup =
      warmup_count(config.num_requests, config.warmup_fraction);
  const std::uint64_t total = warmup + config.num_requests;

  std::vector<double> arrivals(total);
  gen_arrivals(util::Rng::split_seed(config.seed, 0), 1.0 / lambda, arrivals);

  const auto k_max = static_cast<std::size_t>(
      config.k_mode == KMode::kFixed ? config.k_fixed : config.k_hi);
  std::vector<dist::LaneSampler::Lane> demand_lanes(kL);
  for (std::size_t l = 0; l < kL; ++l) {
    demand_lanes[l] = {config.service.get(),
                       util::Rng::split_seed(config.seed,
                                             kSubsetDemandStreamBase + l)};
  }
  // Capacity: an L1-resident refill block (8 KiB -- the same residency
  // argument as kDefaultTileRows: a 64 KiB block meant demands were
  // written ~500 requests before being read back, long since evicted to
  // L2) and comfortably more than two maximal requests, rounded to whole
  // rows.  The stream consumes linearly, so the block size never changes
  // one-draw demand order; it IS part of the golden definition for
  // stage-major (Erlang) services, like the tile default.
  const std::size_t capacity =
      std::max<std::size_t>(std::size_t{128} * kL,
                            ((2 * k_max + kL) / kL) * kL);
  DemandStream ds(std::span<const dist::LaneSampler::Lane>(demand_lanes),
                  capacity);

  std::vector<double> nf(config.num_nodes, 0.0);
  std::vector<double> completion_max(total, 0.0);
  std::vector<int> request_k(config.group_by_k ? total : 0);
  std::vector<std::uint64_t> stamp(config.num_nodes, 0);
  std::vector<std::uint32_t> picks(k_max);
  std::vector<double> cbuf(k_max);
  LaneStats ls;

  SubsetLoopState st;
  st.arrivals = arrivals.data();
  st.total = total;
  st.warmup = warmup;
  st.pick_seed = util::Rng::split_seed(config.seed, 1);
  st.num_nodes = config.num_nodes;
  st.nf = nf.data();
  st.completion_max = completion_max.data();
  st.request_k = config.group_by_k ? request_k.data() : nullptr;
  st.stamp = stamp.data();
  st.picks = picks.data();
  st.cbuf = cbuf.data();
  st.ls = &ls;

  // Fan-out sequence, drawn from the k stream in arrival order exactly as
  // the legacy engine does (same stream, same consumption order).
  std::vector<std::uint32_t> ks(total);
  if (config.k_mode == KMode::kFixed) {
    std::fill(ks.begin(), ks.end(),
              static_cast<std::uint32_t>(config.k_fixed));
  } else {
    util::Rng k_rng(util::Rng::split_seed(config.seed, 2));
    for (auto& k : ks) {
      k = static_cast<std::uint32_t>(
          k_rng.uniform_int(config.k_lo, config.k_hi));
    }
  }
  subset_loop(st, ds, ks.data());

  SubsetResult result;
  result.lambda = lambda;
  result.mean_k = mean_k;
  result.total_tasks = st.total_tasks;
  for (std::size_t l = 0; l < kL; ++l) result.task_stats.merge(ls.lane(l));
  result.responses.reserve(config.num_requests);
  for (std::uint64_t j = warmup; j < total; ++j) {
    const double response = completion_max[j] - arrivals[j];
    result.responses.push_back(response);
    if (config.group_by_k) {
      result.responses_by_k[request_k[j]].push_back(response);
    }
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

}  // namespace

// Level entry points (external linkage; the dispatch TU declares these).
HomogeneousResult run_homogeneous(const HomogeneousConfig& config) {
  return homogeneous_impl(config);
}
HeterogeneousResult run_heterogeneous(const HeterogeneousConfig& config) {
  return heterogeneous_impl(config);
}
SubsetResult run_subset(const SubsetConfig& config) {
  return subset_impl(config);
}
PipelineResult run_pipeline(const PipelineConfig& config) {
  return pipeline_impl(config);
}

}  // namespace FORKTAIL_VE_NS
}  // namespace forktail::fjsim
