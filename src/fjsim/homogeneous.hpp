// Fast simulator for Case 1 (k = N): every request forks one task to every
// node.
//
// Because all nodes see the *same* arrival epochs (the defining correlation
// of fork-join systems) but independent service draws, the system can be
// simulated node-major: generate the shared arrival sequence once, then
// replay it through each fork node independently with the Lindley
// recursion, reducing the request response to the per-request max across
// nodes.  This is exact -- not an approximation -- and makes paper-scale
// sweeps (1000 nodes x 1e5 requests) run in seconds.  Node replays are
// independent, so they are distributed over the thread pool.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"
#include "fjsim/config.hpp"
#include "fjsim/node.hpp"
#include "stats/welford.hpp"

namespace forktail::fjsim {

/// Node-group knobs (replicas / policy / redundant_delay) come from the
/// shared NodeGroupConfig base; see fjsim/config.hpp.
struct HomogeneousConfig : NodeGroupConfig {
  std::size_t num_nodes = 10;
  dist::DistPtr service;
  /// Nominal per-server utilization rho in (0,1); the request arrival rate
  /// is derived as lambda = rho * replicas / E[S].
  double load = 0.8;
  std::uint64_t num_requests = 10000;  ///< measured (post warm-up)
  double warmup_fraction = 0.25;
  std::uint64_t seed = 1;
  /// Upper bound on worker parallelism for the node replay.  0 uses the
  /// global pool's full width; 1 runs inline on the calling thread without
  /// touching the pool at all — required when the simulation itself executes
  /// as a task on that pool (e.g. one cell of a parallel sweep), since
  /// nested `wait_idle` from inside a pool task would deadlock.
  /// Results are bit-identical for every value of this knob.
  std::size_t max_parallelism = 0;
  /// Service-demand block size for the batched replay path: 0 = default
  /// (kDefaultReplayBatch), 1 = the scalar reference path (one virtual
  /// sample per task, the pre-batching code), else an explicit block size.
  /// Results are bit-identical for every value.
  std::size_t batch = 0;
  /// Replay implementation: kLegacy (scalar/batched, all historical
  /// goldens) or kVector (SIMD engine; see fjsim/config.hpp::Engine and
  /// docs/performance.md).  kVector rejects Policy::kRedundant.
  Engine engine = Engine::kLegacy;
};

struct HomogeneousResult {
  std::vector<double> responses;  ///< measured request response times
  stats::Welford task_stats;      ///< pooled measured task response times
  double lambda = 0.0;
  std::uint64_t redundant_issues = 0;
  std::uint64_t total_tasks = 0;
};

HomogeneousResult run_homogeneous(const HomogeneousConfig& config);

}  // namespace forktail::fjsim
