#include "fjsim/subset.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "fjsim/redundant_node.hpp"
#include "fjsim/vector_engine.hpp"
#include "fjsim/replay.hpp"
#include "fjsim/telemetry.hpp"

namespace forktail::fjsim {

namespace {

template <typename Node>
void run_loop(const SubsetConfig& config, std::vector<Node>& nodes,
              double lambda, std::uint64_t warmup, std::uint64_t total,
              util::Rng& arrival_rng, util::Rng& pick_rng, util::Rng& k_rng,
              std::vector<double>& arrivals, std::vector<double>& completion_max,
              std::vector<int>& request_k, OrderStatArena* early_arena,
              SubsetResult& result) {
  std::vector<std::uint32_t> perm(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    perm[i] = static_cast<std::uint32_t>(i);
  }
  auto on_done = [&](std::uint64_t id, double arrival, double completion) {
    if (id >= warmup) result.task_stats.add(completion - arrival);
    if (completion > completion_max[id]) completion_max[id] = completion;
    if (early_arena != nullptr) early_arena->insert(id, completion);
  };
  double t = 0.0;
  for (std::uint64_t j = 0; j < total; ++j) {
    t += arrival_rng.exponential(1.0 / lambda);
    arrivals[j] = t;
    std::size_t k;
    if (config.k_mode == KMode::kFixed) {
      k = static_cast<std::size_t>(config.k_fixed);
    } else {
      k = static_cast<std::size_t>(k_rng.uniform_int(config.k_lo, config.k_hi));
    }
    if (config.group_by_k) request_k[j] = static_cast<int>(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t pick =
          i + static_cast<std::size_t>(pick_rng.uniform_int(config.num_nodes - i));
      std::swap(perm[i], perm[pick]);
      nodes[perm[i]].submit_task(t, j, on_done);
    }
    result.total_tasks += k;
  }
  for (auto& node : nodes) node.flush(on_done);
}

}  // namespace

SubsetResult run_subset(const SubsetConfig& config) {
  if (config.engine == Engine::kVector) return run_subset_vector(config);
  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);
  validate(config);  // k-bounds etc., as a field-typed ConfigError
  const double mean_k =
      config.k_mode == KMode::kFixed
          ? static_cast<double>(config.k_fixed)
          : 0.5 * static_cast<double>(config.k_lo + config.k_hi);

  util::Rng master(config.seed);
  util::Rng arrival_rng = master.split(0);
  util::Rng pick_rng = master.split(1);
  util::Rng k_rng = master.split(2);

  const double lambda = config.load * static_cast<double>(config.num_nodes) *
                        static_cast<double>(config.replicas) /
                        (mean_k * config.service->mean());

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total = warmup + config.num_requests;

  std::vector<double> arrivals(total);
  std::vector<double> completion_max(total, 0.0);
  std::vector<int> request_k(config.group_by_k ? total : 0);
  // Early-return-at-k tracks each request's k smallest completions on the
  // side; with early_k == 0 the arena does not exist and the engine is
  // bit-identical to the pre-knob code path.
  std::optional<OrderStatArena> early_arena;
  if (config.early_k > 0) early_arena.emplace(total, config.early_k);

  SubsetResult result;
  result.lambda = lambda;
  result.mean_k = mean_k;

  const std::size_t batch = resolve_batch(config.batch);
  if (config.policy == Policy::kRedundant) {
    std::vector<RedundantNode> nodes;
    nodes.reserve(config.num_nodes);
    for (std::size_t n = 0; n < config.num_nodes; ++n) {
      nodes.emplace_back(config.service.get(), config.replicas,
                         config.redundant_delay, master.split(100 + n), batch);
    }
    run_loop(config, nodes, lambda, warmup, total, arrival_rng, pick_rng, k_rng,
             arrivals, completion_max, request_k,
             early_arena ? &*early_arena : nullptr, result);
  } else {
    std::vector<FastNode> nodes;
    nodes.reserve(config.num_nodes);
    for (std::size_t n = 0; n < config.num_nodes; ++n) {
      nodes.emplace_back(config.service.get(), config.replicas, config.policy,
                         master.split(100 + n), batch);
    }
    run_loop(config, nodes, lambda, warmup, total, arrival_rng, pick_rng, k_rng,
             arrivals, completion_max, request_k,
             early_arena ? &*early_arena : nullptr, result);
  }

  result.responses.reserve(config.num_requests);
  for (std::uint64_t j = warmup; j < total; ++j) {
    const double completion =
        early_arena ? early_arena->kth(j) : completion_max[j];
    const double response = completion - arrivals[j];
    result.responses.push_back(response);
    if (config.group_by_k) {
      result.responses_by_k[request_k[j]].push_back(response);
    }
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

}  // namespace forktail::fjsim
