// Fork node with redundant task issue and kill-on-win -- Spark-style
// speculative execution (Section 4.1's tail-cutting policy, [14, 39]).
//
// Unlike the plain FIFO policies, cancellation makes the Lindley shortcut
// unsound: killing a straggler mid-service frees its server early and
// re-times every queued task behind it.  This node therefore runs a real
// multi-server queue with an internal event heap.  Semantics:
//
//   - a task is assigned to the next server in round-robin order and
//     queued FIFO there;
//   - if a copy has been EXECUTING for `redundant_delay` without
//     completing, a single replica is issued to the next RR server;
//   - the first copy to complete finishes the task; the losing copy is
//     killed at that instant -- removed from its queue if still waiting,
//     or preempted (server freed immediately) if running.
//
// Submissions must be fed in non-decreasing arrival order (as with
// FastNode); completions are reported through the callback, possibly
// during a later submission or at flush().
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "dist/buffered.hpp"
#include "dist/distribution.hpp"
#include "util/rng.hpp"

namespace forktail::fjsim {

class RedundantNode {
 public:
  /// `batch` > 1 prefetches service demands in blocks (same stream, fewer
  /// virtual dispatches); 1 draws per copy -- the scalar reference path.
  RedundantNode(const dist::Distribution* service, int replicas,
                double redundant_delay, util::Rng rng, std::size_t batch = 1)
      : service_(service),
        sampler_(service, rng, batch),
        servers_(static_cast<std::size_t>(replicas)),
        redundant_delay_(redundant_delay) {
    if (service_ == nullptr) {
      throw std::invalid_argument("RedundantNode: null service distribution");
    }
    if (replicas < 2) {
      throw std::invalid_argument(
          "RedundantNode: redundant issue needs at least 2 replica servers");
    }
    if (!(redundant_delay > 0.0)) {
      throw std::invalid_argument("RedundantNode: delay must be positive");
    }
  }

  template <typename OnComplete>
  void submit_task(double arrival, std::uint64_t task_id, OnComplete&& done) {
    advance(arrival, done);
    tasks_.emplace(task_id, TaskState{arrival});
    enqueue_copy(arrival, task_id, /*is_replica=*/false, sampler_.next());
  }

  template <typename OnComplete>
  void flush(OnComplete&& done) {
    advance(std::numeric_limits<double>::infinity(), done);
  }

  std::uint64_t redundant_issues() const noexcept { return redundant_issues_; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  struct Copy {
    std::uint64_t task;
    bool is_replica;
    double service;
  };

  struct Server {
    std::deque<Copy> waiting;
    bool busy = false;
    Copy current{};
    double done_at = 0.0;
    std::uint64_t epoch = 0;  // invalidates stale completion events
  };

  struct TaskState {
    double arrival = 0.0;
    bool finished = false;
    // Where each live copy currently runs (kNone if not running).
    std::size_t primary_running_on = kNone;
    std::size_t replica_running_on = kNone;
  };

  enum class EventKind : std::uint8_t { kCompletion, kReplicaIssue };

  struct Event {
    double time;
    std::uint64_t seq;
    EventKind kind;
    std::size_t server;     // kCompletion
    std::uint64_t epoch;    // kCompletion
    std::uint64_t task;     // kReplicaIssue
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::size_t next_server() noexcept {
    const std::size_t s = rr_next_;
    rr_next_ = s + 1 == servers_.size() ? 0 : s + 1;
    return s;
  }

  template <typename OnComplete>
  void advance(double until, OnComplete&& done) {
    while (!events_.empty() && events_.top().time <= until) {
      const Event ev = events_.top();
      events_.pop();
      if (ev.kind == EventKind::kCompletion) {
        handle_completion(ev, done);
      } else {
        handle_replica_issue(ev);
      }
    }
  }

  void enqueue_copy(double now, std::uint64_t task_id, bool is_replica,
                    double service) {
    const std::size_t s = next_server();
    Server& server = servers_[s];
    server.waiting.push_back(Copy{task_id, is_replica, service});
    if (!server.busy) start_next(s, now);
  }

  /// Start the next live copy waiting at server s (skipping lazily
  /// cancelled ones).  Starting a copy never completes a task, so no
  /// completion callback is involved here.
  void start_next(std::size_t s, double now) {
    Server& server = servers_[s];
    while (!server.waiting.empty()) {
      Copy copy = server.waiting.front();
      server.waiting.pop_front();
      auto it = tasks_.find(copy.task);
      if (it == tasks_.end() || it->second.finished) continue;  // lazy cancel
      TaskState& task = it->second;
      server.busy = true;
      server.current = copy;
      server.done_at = now + copy.service;
      ++server.epoch;
      (copy.is_replica ? task.replica_running_on : task.primary_running_on) = s;
      events_.push(Event{server.done_at, seq_++, EventKind::kCompletion, s,
                         server.epoch, 0});
      // Straggler trigger: the original has been executing for
      // redundant_delay without completing (the paper sets the threshold at
      // ~p95 of the service-time distribution, so ~5% of tasks hedge).  A
      // sojourn-time trigger would hedge the majority of tasks once
      // queueing delay crosses the threshold -- a replica storm the paper's
      // "avoid overloading the server replicas" remark rules out.
      if (!copy.is_replica && copy.service > redundant_delay_) {
        events_.push(Event{now + redundant_delay_, seq_++,
                           EventKind::kReplicaIssue, 0, 0, copy.task});
      }
      return;
    }
    server.busy = false;
  }

  template <typename OnComplete>
  void handle_completion(const Event& ev, OnComplete&& done) {
    Server& server = servers_[ev.server];
    if (!server.busy || server.epoch != ev.epoch) return;  // stale (preempted)
    const Copy copy = server.current;
    server.busy = false;
    auto it = tasks_.find(copy.task);
    // The copy ran to completion; the task must still be live (a finished
    // task would have killed this copy and bumped the epoch).
    if (it != tasks_.end() && !it->second.finished) {
      TaskState& task = it->second;
      task.finished = true;
      // Kill the sibling copy: preempt if running, lazily drop if queued.
      const std::size_t sibling =
          copy.is_replica ? task.primary_running_on : task.replica_running_on;
      const double arrival = task.arrival;
      const std::uint64_t id = copy.task;
      tasks_.erase(it);
      if (sibling != kNone && sibling != ev.server) {
        Server& other = servers_[sibling];
        ++other.epoch;  // invalidate its completion event
        other.busy = false;
        start_next(sibling, ev.time);
      }
      done(id, arrival, ev.time);
    }
    start_next(ev.server, ev.time);
  }

  void handle_replica_issue(const Event& ev) {
    auto it = tasks_.find(ev.task);
    if (it == tasks_.end() || it->second.finished) return;
    ++redundant_issues_;
    enqueue_copy(ev.time, ev.task, /*is_replica=*/true, sampler_.next());
  }

  const dist::Distribution* service_;
  dist::BufferedSampler sampler_;
  std::vector<Server> servers_;
  double redundant_delay_;
  std::size_t rr_next_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t redundant_issues_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::unordered_map<std::uint64_t, TaskState> tasks_;
};

}  // namespace forktail::fjsim
