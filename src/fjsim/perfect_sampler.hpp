// Perfect (exact-stationary) sampling for the homogeneous and subset
// fork-join engines, after the coupling-from-the-past treatment of
// fork-join queues by Chen & Shi (arXiv 1607.00748).
//
// The replay engines approximate stationarity by discarding a warm-up
// prefix; every golden and error band inherits that bias.  This sampler
// draws from the *exact* stationary law instead, by running Loynes'
// scheme backwards in time: the stationary workload of fork node i seen
// by a Poisson arrival (PASTA) is
//
//   W_i = sup_{j >= 0} sum_{m=1..j} (B_{i,m} S_{i,m} - A_m),
//
// where A_m are the (shared!) reversed interarrival gaps, S_{i,m} the
// service draws and B_{i,m} the subset-thinning marks (identically 1 for
// the homogeneous engine).  The running prefix and running max are
// maintained incrementally; the walk has negative drift under stability,
// so the max stops moving once the prefix has fallen far enough behind.
//
// The stopping rule is *certified* rather than heuristic: with
// theta = theta_safety * the Lundberg root of the reversed walk
// (dist::lundberg_root), the probability that ANY node's max still grows
// beyond the current horizon is at most
//
//   sum_i e^{-theta (M_i - P_i)}        (Lundberg's inequality + union),
//
// and the walk is run until that certificate drops below `epsilon`
// (default 2^-40).  The returned draw is therefore epsilon-perfect: it
// under-estimates the true stationary workload with probability < epsilon
// per draw and is exact otherwise.  Heavy-tailed services without an MGF
// have no Lundberg certificate; they are refused with a ConfigError
// instead of silently degrading to a heuristic.
//
// Determinism: draw d consumes only the child stream Rng(seed).split(d),
// with a fixed per-step draw order (gap, then subset choice, then service
// draws in chosen-node order), so results are bit-identical across runs
// and trivially parallelizable by draw.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"
#include "fjsim/config.hpp"
#include "fjsim/subset.hpp"
#include "stats/welford.hpp"

namespace forktail::fjsim {

struct PerfectSamplerConfig {
  std::size_t num_nodes = 10;
  dist::DistPtr service;
  /// Nominal per-server utilization; the request rate derives exactly as
  /// in the replay engines (homogeneous: rho / E[S]; subset:
  /// rho N / (E[k] E[S])).
  double load = 0.8;
  /// false: homogeneous (every request forks to all N nodes).
  /// true: subset (k distinct nodes per request).
  bool subset = false;
  KMode k_mode = KMode::kFixed;
  int k_fixed = 100;
  int k_lo = 0;
  int k_hi = 0;
  /// Early return at the early_k-th task completion; 0 = full barrier.
  int early_k = 0;
  std::uint64_t draws = 10000;
  std::uint64_t seed = 1;
  /// Per-draw failure budget of the coupling certificate.
  double epsilon = 0x1p-40;
  /// Fraction of the Lundberg root used as the certificate exponent;
  /// (0, 1].  Values below 1 trade a slightly deeper walk for slack
  /// against the root's own bisection tolerance.
  double theta_safety = 0.9;
  /// Reversed steps between certificate evaluations (each costs O(N)).
  std::uint64_t check_interval = 16;
  /// Hard cap on reversed steps per draw; exceeding it is a runtime error
  /// (it means the certificate cannot coalesce, e.g. load ~ 1).
  std::uint64_t max_steps = 50000000;
};

struct PerfectSampleResult {
  std::vector<double> responses;  ///< one exact-stationary response per draw
  stats::Welford task_stats;      ///< pooled task sojourns (W_i + S'_i)
  double lambda = 0.0;            ///< derived request arrival rate
  double mean_k = 0.0;            ///< E[fan-out]
  std::uint64_t total_tasks = 0;
  double theta = 0.0;             ///< certificate exponent actually used
  double mean_depth = 0.0;        ///< mean reversed steps per draw
  std::uint64_t max_depth = 0;    ///< deepest draw
};

/// Throws fjsim::ConfigError on invalid or uncertifiable configurations
/// (no MGF, unstable load, bad k range), std::runtime_error if a draw
/// exceeds max_steps.
PerfectSampleResult run_perfect(const PerfectSamplerConfig& config);

}  // namespace forktail::fjsim
