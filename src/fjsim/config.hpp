// Shared fork-node group configuration and typed configuration errors.
//
// Before this header existed, the (replicas, policy, redundant_delay)
// triple was duplicated verbatim across HomogeneousConfig, SubsetConfig,
// and ConsolidatedConfig -- a drift hazard (a new field or a changed
// default had to be applied three times).  The simulator configs now derive
// from NodeGroupConfig so the per-node-group knobs are defined exactly
// once, and invalid configurations surface as ConfigError (which names the
// offending field) from an up-front validate() pass instead of a bare
// std::invalid_argument thrown mid-construction.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fjsim/node.hpp"

namespace forktail::fjsim {

/// Which replay implementation a simulator config selects.
///
///  * kLegacy -- the scalar/batched engines that have carried every golden
///    so far.  Bit-identical for any batch size; the default.
///  * kVector -- the SIMD engine (fjsim/vector_engine.hpp): lockstep
///    xoshiro lanes, batched inverse-CDF sampling, sharded whole-replay
///    execution.  Internally deterministic (bit-identical for any thread
///    count, batch size, and dispatch ISA level) but NOT bit-identical to
///    kLegacy -- its polynomial log/exp kernels differ from libm in the
///    last ulp.  Every deviation is documented in docs/performance.md.
enum class Engine : std::uint8_t {
  kLegacy = 0,
  kVector = 1,
};

/// How one fork node's servers are organised: how many replica servers it
/// has, how tasks are dispatched to them, and (for the redundant-issue
/// policy) how long to wait before hedging a copy.
struct NodeGroupConfig {
  int replicas = 1;
  Policy policy = Policy::kSingle;
  /// Redundant-issue hedge delay (same time unit as the service times);
  /// only meaningful under Policy::kRedundant.
  double redundant_delay = 10.0;

  bool operator==(const NodeGroupConfig&) const = default;
};

/// Typed configuration error: carries the name of the offending field so
/// callers (CLI, scenario loader, tests) can report or assert on it
/// precisely.  Derives from std::invalid_argument so existing catch sites
/// keep working.
class ConfigError : public std::invalid_argument {
 public:
  ConfigError(std::string field, const std::string& message)
      : std::invalid_argument(field + ": " + message), field_(std::move(field)) {}

  const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

/// Validate the node-group knobs shared by every simulator; `where` names
/// the owning config in the error message.  Throws ConfigError.
void validate_node_group(const NodeGroupConfig& group, const std::string& where);

struct HomogeneousConfig;
struct SubsetConfig;
struct ConsolidatedConfig;

/// Up-front validation for the simulator configs.  Each throws ConfigError
/// naming the offending field; run_*() calls these before touching any
/// state, and the scenario layer calls them when materialising a spec.
void validate(const HomogeneousConfig& config);
void validate(const SubsetConfig& config);
void validate(const ConsolidatedConfig& config);

}  // namespace forktail::fjsim
