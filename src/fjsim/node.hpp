// Fork-node state machine for the Lindley fast-path simulators.
//
// Mirrors sim::ForkNode exactly for the single-server and round-robin
// policies, without an event engine: submissions must be fed in
// non-decreasing arrival-time order, and completions are computed directly
// from the Lindley recursion
//     start = max(arrival, server.next_free);  done = start + service.
// The redundant-issue policy needs kill-on-win cancellation, which breaks
// the Lindley shortcut; it lives in RedundantNode (redundant_node.hpp).
// The equivalence tests assert that this fast path is bit-identical to the
// event-driven simulator under equal seeds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dist/buffered.hpp"
#include "dist/distribution.hpp"
#include "util/rng.hpp"

namespace forktail::fjsim {

enum class Policy : std::uint8_t {
  kSingle,
  kRoundRobin,
  kRedundant,
};

class FastNode {
 public:
  /// `service` may be null only when every submission supplies its own
  /// demand via submit_task_explicit.  The redundant policy is handled by
  /// RedundantNode, not here.  `batch` > 1 prefetches service demands in
  /// blocks of that size (bit-identical stream, amortized virtual
  /// dispatch); 1 draws per task -- the scalar reference path.
  FastNode(const dist::Distribution* service, int replicas, Policy policy,
           util::Rng rng, std::size_t batch = 1)
      : sampler_(service, rng, batch),
        next_free_(static_cast<std::size_t>(replicas), 0.0),
        policy_(policy) {
    if (policy_ == Policy::kRedundant) {
      throw std::invalid_argument(
          "FastNode: use RedundantNode for the redundant-issue policy");
    }
    if (policy_ == Policy::kSingle && replicas != 1) {
      throw std::invalid_argument("FastNode: kSingle requires one replica");
    }
  }

  /// Submit a task arriving at `arrival` (arrivals must be fed in
  /// non-decreasing time order).  `done(task_id, arrival, completion)`
  /// fires synchronously.
  template <typename OnComplete>
  void submit_task(double arrival, std::uint64_t task_id, OnComplete&& done) {
    submit_task_explicit(arrival, sampler_.next(), task_id, done);
  }

  /// As submit_task but with an externally supplied service demand (used by
  /// the trace-driven simulator, where each job carries its own service
  /// time statistics).
  template <typename OnComplete>
  void submit_task_explicit(double arrival, double service,
                            std::uint64_t task_id, OnComplete&& done) {
    const std::size_t s = next_server();
    const double start = std::max(arrival, next_free_[s]);
    next_free_[s] = start + service;
    done(task_id, arrival, next_free_[s]);
  }

  /// No deferred completions in the FIFO policies; present for interface
  /// symmetry with RedundantNode.
  template <typename OnComplete>
  void flush(OnComplete&& /*done*/) {}

  std::uint64_t redundant_issues() const noexcept { return 0; }

  void reset() {
    std::fill(next_free_.begin(), next_free_.end(), 0.0);
    rr_next_ = 0;
  }

 private:
  std::size_t next_server() noexcept {
    const std::size_t s = rr_next_;
    // Conditional wrap instead of % : the divisor is a runtime value, so
    // the modulo costs a hardware divide on every task.
    rr_next_ = s + 1 == next_free_.size() ? 0 : s + 1;
    return s;
  }

  dist::BufferedSampler sampler_;
  std::vector<double> next_free_;
  Policy policy_;
  std::size_t rr_next_ = 0;
};

}  // namespace forktail::fjsim
