// Fast simulator for Case 2 (k <= N): each request forks k tasks to k
// randomly chosen distinct nodes, with k fixed or uniformly distributed
// (Section 4.2 of the paper).
//
// Processed request-major in arrival order: each request samples its node
// subset by partial Fisher-Yates over a persistent permutation and pushes
// one task into each chosen node's Lindley state.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dist/distribution.hpp"
#include "fjsim/config.hpp"
#include "fjsim/node.hpp"
#include "stats/welford.hpp"

namespace forktail::fjsim {

enum class KMode : std::uint8_t { kFixed, kUniformInt };

/// Node-group knobs (replicas / policy / redundant_delay) come from the
/// shared NodeGroupConfig base; see fjsim/config.hpp.
struct SubsetConfig : NodeGroupConfig {
  std::size_t num_nodes = 1000;
  dist::DistPtr service;
  /// Nominal per-server utilization; lambda = rho * N * replicas / (E[k] E[S]).
  double load = 0.8;
  KMode k_mode = KMode::kFixed;
  int k_fixed = 100;
  int k_lo = 0;
  int k_hi = 0;
  std::uint64_t num_requests = 10000;
  double warmup_fraction = 0.25;
  std::uint64_t seed = 1;
  /// Also bucket measured responses by the request's k (Table 3).
  bool group_by_k = false;
  /// Per-node service-demand prefetch size: 0 = default, 1 = scalar
  /// reference path (see HomogeneousConfig::batch).  The request-major loop
  /// draws at unpredictable nodes, so batching here buffers ahead inside
  /// each node rather than tiling the replay; the consumed stream -- and
  /// therefore every result -- is bit-identical for every value.
  std::size_t batch = 0;
  /// Early return at k: a request's response is its early_k-th task
  /// completion instead of its last (partial fork-join, the tail-mitigation
  /// layer's k-of-n policy).  0 = wait for every task.  Must be <= k_fixed
  /// (or <= k_lo under KMode::kUniformInt).  Aggregation-only: per-node
  /// replay state and every RNG stream are untouched, so early_k = 0 is
  /// bit-identical to the pre-knob engine.
  int early_k = 0;
  /// Replay implementation (see fjsim/config.hpp::Engine).  kVector
  /// requires replicas == 1, Policy::kSingle, early_k == 0.
  Engine engine = Engine::kLegacy;
  /// Accepted for API uniformity with the other simulators: the vector
  /// subset engine replays request-major over shared node state, which is
  /// inherently sequential, so this knob does not change the execution
  /// schedule — results are (trivially) bit-identical for every value.
  std::size_t max_parallelism = 0;
};

struct SubsetResult {
  std::vector<double> responses;           ///< measured request responses
  stats::Welford task_stats;               ///< pooled task responses
  std::map<int, std::vector<double>> responses_by_k;  ///< when group_by_k
  double lambda = 0.0;
  double mean_k = 0.0;
  std::uint64_t total_tasks = 0;
};

SubsetResult run_subset(const SubsetConfig& config);

}  // namespace forktail::fjsim
