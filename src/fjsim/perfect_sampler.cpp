#include "fjsim/perfect_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "dist/transforms.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace forktail::fjsim {

namespace {

void validate(const PerfectSamplerConfig& config) {
  if (config.num_nodes == 0) {
    throw ConfigError("num_nodes", "must be >= 1");
  }
  if (!config.service) {
    throw ConfigError("service", "perfect sampler requires a service");
  }
  if (const dist::Capabilities caps = config.service->capabilities();
      !caps.has_mgf) {
    throw ConfigError(
        "service",
        "perfect sampling needs a Lundberg certificate, which requires a "
        "service with a finite MGF; " + config.service->name() +
            " declares a " + dist::tail_class_name(caps.tail) +
            " tail with no MGF capability (use the replay engine instead)");
  }
  if (!(config.load > 0.0 && config.load < 1.0)) {
    throw ConfigError("load", "must be in (0, 1)");
  }
  const auto n = static_cast<int>(config.num_nodes);
  int min_k = static_cast<int>(config.num_nodes);
  if (config.subset) {
    if (config.k_mode == KMode::kFixed) {
      if (config.k_fixed < 1 || config.k_fixed > n) {
        throw ConfigError("k_fixed", "must be in [1, num_nodes]");
      }
      min_k = config.k_fixed;
    } else {
      if (config.k_lo < 1 || config.k_hi < config.k_lo || config.k_hi > n) {
        throw ConfigError("k", "need 1 <= k_lo <= k_hi <= num_nodes");
      }
      min_k = config.k_lo;
    }
  }
  if (config.early_k < 0 || config.early_k > min_k) {
    throw ConfigError("early_k",
                      "must be in [0, min fan-out] (0 = full barrier)");
  }
  if (config.draws == 0) {
    throw ConfigError("draws", "must be >= 1");
  }
  if (!(config.epsilon > 0.0 && config.epsilon < 1.0)) {
    throw ConfigError("epsilon", "must be in (0, 1)");
  }
  if (!(config.theta_safety > 0.0 && config.theta_safety <= 1.0)) {
    throw ConfigError("theta_safety", "must be in (0, 1]");
  }
  if (config.check_interval == 0) {
    throw ConfigError("check_interval", "must be >= 1");
  }
}

}  // namespace

PerfectSampleResult run_perfect(const PerfectSamplerConfig& config) {
  validate(config);
  const std::size_t n = config.num_nodes;
  const dist::Distribution& service = *config.service;
  const double es = service.moment(1);

  double mean_k = static_cast<double>(n);
  if (config.subset) {
    mean_k = config.k_mode == KMode::kFixed
                 ? static_cast<double>(config.k_fixed)
                 : 0.5 * static_cast<double>(config.k_lo + config.k_hi);
  }
  const double lambda =
      config.subset ? config.load * static_cast<double>(n) / (mean_k * es)
                    : config.load / es;
  const double mark_prob = mean_k / static_cast<double>(n);

  // The certificate exponent.  theta <= theta* keeps E[e^{theta inc}] <= 1
  // (h is convex with h(0) = 1), so Lundberg's inequality applies.
  const double theta =
      config.theta_safety * dist::lundberg_root(service, lambda, mark_prob);

  PerfectSampleResult result;
  result.lambda = lambda;
  result.mean_k = mean_k;
  result.theta = theta;
  result.responses.reserve(static_cast<std::size_t>(config.draws));

  static obs::Counter& draws_counter =
      obs::Registry::global().counter("perfect.draws");
  static obs::Counter& steps_counter =
      obs::Registry::global().counter("perfect.steps");
  static obs::Histogram& depth_hist =
      obs::Registry::global().histogram("perfect.depth");

  const util::Rng master(config.seed);
  // Per-draw scratch, reused across draws.
  std::vector<double> prefix(n);  // s_i: accumulated service mass
  std::vector<double> peak(n);    // M_i: running max of prefix - gap_sum
  std::vector<std::size_t> perm(n);
  std::vector<double> sojourns;
  sojourns.reserve(n);

  const double mean_gap = 1.0 / lambda;
  std::uint64_t total_steps = 0;
  std::uint64_t deepest = 0;

  for (std::uint64_t d = 0; d < config.draws; ++d) {
    util::Rng rng = master.split(d);
    std::fill(prefix.begin(), prefix.end(), 0.0);
    std::fill(peak.begin(), peak.end(), 0.0);
    if (config.subset) std::iota(perm.begin(), perm.end(), std::size_t{0});
    // Invariant: node i's reversed-walk prefix is prefix[i] - gap_sum and
    // its running max is peak[i] (>= 0, the empty prefix).  peak[i] only
    // moves when node i receives a service increment, so it is updated at
    // marks and read everywhere else.
    double gap_sum = 0.0;
    std::uint64_t steps = 0;
    for (;;) {
      for (std::uint64_t c = 0; c < config.check_interval; ++c) {
        gap_sum += rng.exponential(mean_gap);
        ++steps;
        if (!config.subset) {
          for (std::size_t i = 0; i < n; ++i) {
            prefix[i] += service.sample(rng);
            peak[i] = std::max(peak[i], prefix[i] - gap_sum);
          }
        } else {
          const int k =
              config.k_mode == KMode::kFixed
                  ? config.k_fixed
                  : static_cast<int>(rng.uniform_int(
                        static_cast<std::int64_t>(config.k_lo),
                        static_cast<std::int64_t>(config.k_hi)));
          for (int j = 0; j < k; ++j) {
            const std::size_t pick =
                static_cast<std::size_t>(j) +
                static_cast<std::size_t>(
                    rng.uniform_int(static_cast<std::uint64_t>(n - j)));
            std::swap(perm[static_cast<std::size_t>(j)], perm[pick]);
            const std::size_t node = perm[static_cast<std::size_t>(j)];
            prefix[node] += service.sample(rng);
            peak[node] = std::max(peak[node], prefix[node] - gap_sum);
          }
        }
      }
      // Certified stopping rule: P(any peak still grows) <= sum of
      // e^{-theta gap_i} over the per-node Lundberg bounds.
      double failure = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        failure += std::exp(-theta * (peak[i] - (prefix[i] - gap_sum)));
        if (failure > config.epsilon) break;
      }
      if (failure <= config.epsilon) break;
      if (steps >= config.max_steps) {
        throw std::runtime_error(
            "perfect sampler: coupling certificate did not coalesce within " +
            std::to_string(config.max_steps) +
            " reversed steps (load too close to 1?)");
      }
    }
    total_steps += steps;
    deepest = std::max(deepest, steps);
    depth_hist.record(static_cast<double>(steps));

    // The tagged request observes the stationary workloads (PASTA) and
    // adds fresh service draws on its chosen nodes.
    sojourns.clear();
    int join = config.early_k;
    if (!config.subset) {
      if (join == 0) join = static_cast<int>(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = peak[i] + service.sample(rng);
        result.task_stats.add(t);
        sojourns.push_back(t);
      }
    } else {
      const int k = config.k_mode == KMode::kFixed
                        ? config.k_fixed
                        : static_cast<int>(rng.uniform_int(
                              static_cast<std::int64_t>(config.k_lo),
                              static_cast<std::int64_t>(config.k_hi)));
      if (join == 0) join = k;
      for (int j = 0; j < k; ++j) {
        const std::size_t pick =
            static_cast<std::size_t>(j) +
            static_cast<std::size_t>(
                rng.uniform_int(static_cast<std::uint64_t>(n - j)));
        std::swap(perm[static_cast<std::size_t>(j)], perm[pick]);
        const std::size_t node = perm[static_cast<std::size_t>(j)];
        const double t = peak[node] + service.sample(rng);
        result.task_stats.add(t);
        sojourns.push_back(t);
      }
    }
    result.total_tasks += sojourns.size();
    auto nth = sojourns.begin() + (join - 1);
    std::nth_element(sojourns.begin(), nth, sojourns.end());
    result.responses.push_back(*nth);
  }

  draws_counter.add(config.draws);
  steps_counter.add(total_steps);
  result.mean_depth =
      static_cast<double>(total_steps) / static_cast<double>(config.draws);
  result.max_depth = deepest;
  return result;
}

}  // namespace forktail::fjsim
