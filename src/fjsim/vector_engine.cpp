// Runtime ISA dispatch for the vector replay engine.
//
// The implementation is compiled three times (vector_engine_generic /
// _avx2 / _avx512 .cpp); this TU picks one level per process from CPUID the
// first time the engine runs.  All levels are bit-identical (element-wise
// kernels, -ffp-contract=off), so the choice only affects throughput --
// which is exactly what lets the FORKTAIL_SIMD override ("generic", "avx2",
// "avx512") serve as a cross-ISA identity test hook rather than a
// correctness knob.  An override naming an unavailable or unknown level
// falls back to auto-detection.
#include "fjsim/vector_engine.hpp"

#include <cstdlib>
#include <cstring>

namespace forktail::fjsim {

namespace ve_generic {
HomogeneousResult run_homogeneous(const HomogeneousConfig& config);
HeterogeneousResult run_heterogeneous(const HeterogeneousConfig& config);
SubsetResult run_subset(const SubsetConfig& config);
PipelineResult run_pipeline(const PipelineConfig& config);
}  // namespace ve_generic

#if FORKTAIL_VE_X86
namespace ve_avx2 {
HomogeneousResult run_homogeneous(const HomogeneousConfig& config);
HeterogeneousResult run_heterogeneous(const HeterogeneousConfig& config);
SubsetResult run_subset(const SubsetConfig& config);
PipelineResult run_pipeline(const PipelineConfig& config);
}  // namespace ve_avx2
namespace ve_avx512 {
HomogeneousResult run_homogeneous(const HomogeneousConfig& config);
HeterogeneousResult run_heterogeneous(const HeterogeneousConfig& config);
SubsetResult run_subset(const SubsetConfig& config);
PipelineResult run_pipeline(const PipelineConfig& config);
}  // namespace ve_avx512
#endif

namespace {

struct Level {
  const char* name;
  HomogeneousResult (*homogeneous)(const HomogeneousConfig&);
  HeterogeneousResult (*heterogeneous)(const HeterogeneousConfig&);
  SubsetResult (*subset)(const SubsetConfig&);
  PipelineResult (*pipeline)(const PipelineConfig&);
};

constexpr Level kGeneric{"generic", &ve_generic::run_homogeneous,
                         &ve_generic::run_heterogeneous,
                         &ve_generic::run_subset, &ve_generic::run_pipeline};
#if FORKTAIL_VE_X86
constexpr Level kAvx2{"avx2", &ve_avx2::run_homogeneous,
                      &ve_avx2::run_heterogeneous, &ve_avx2::run_subset,
                      &ve_avx2::run_pipeline};
constexpr Level kAvx512{"avx512", &ve_avx512::run_homogeneous,
                        &ve_avx512::run_heterogeneous, &ve_avx512::run_subset,
                        &ve_avx512::run_pipeline};
#endif

Level pick_level() {
#if FORKTAIL_VE_X86
  const bool has_avx2 = __builtin_cpu_supports("avx2") &&
                        __builtin_cpu_supports("fma") &&
                        __builtin_cpu_supports("bmi2");
  const bool has_avx512 = has_avx2 && __builtin_cpu_supports("avx512f") &&
                          __builtin_cpu_supports("avx512dq") &&
                          __builtin_cpu_supports("avx512bw") &&
                          __builtin_cpu_supports("avx512vl") &&
                          __builtin_cpu_supports("avx512cd");
  if (const char* force = std::getenv("FORKTAIL_SIMD")) {
    if (std::strcmp(force, "generic") == 0) return kGeneric;
    if (std::strcmp(force, "avx2") == 0 && has_avx2) return kAvx2;
    if (std::strcmp(force, "avx512") == 0 && has_avx512) return kAvx512;
    // Unknown or unsupported override: fall through to auto-detection.
  }
  if (has_avx512) return kAvx512;
  if (has_avx2) return kAvx2;
#else
  if (const char* force = std::getenv("FORKTAIL_SIMD")) {
    (void)force;  // only "generic" exists off x86
  }
#endif
  return kGeneric;
}

const Level& active_level() {
  // Resolved once per process (thread-safe static init); FORKTAIL_SIMD is
  // read at that moment only.
  static const Level level = pick_level();
  return level;
}

}  // namespace

HomogeneousResult run_homogeneous_vector(const HomogeneousConfig& config) {
  return active_level().homogeneous(config);
}

HeterogeneousResult run_heterogeneous_vector(const HeterogeneousConfig& config) {
  return active_level().heterogeneous(config);
}

SubsetResult run_subset_vector(const SubsetConfig& config) {
  return active_level().subset(config);
}

PipelineResult run_pipeline_vector(const PipelineConfig& config) {
  return active_level().pipeline(config);
}

const char* vector_dispatch_level() { return active_level().name; }

}  // namespace forktail::fjsim
