// Vector engine, x86-64-v4 level (AVX-512 F/DQ/BW/VL/CD on top of v3).
// Same single-implementation scheme as the avx2 TU: baseline -march for the
// TU, per-function target attributes for the hot loops, -ffp-contract=off
// for cross-level bit identity.
#include "fjsim/vector_engine.hpp"

#if FORKTAIL_VE_X86

#define FORKTAIL_VE_NS ve_avx512
#define FORKTAIL_VE_TARGET                                                  \
  __attribute__((target(                                                    \
      "avx2,fma,bmi2,avx512f,avx512dq,avx512bw,avx512vl,avx512cd")))
#include "fjsim/vector_engine_impl.hpp"

#endif  // FORKTAIL_VE_X86
