// Shared telemetry handles for the fjsim replay engines.
//
// Every metric here is recorded at run or block granularity -- never per
// task -- so the replay hot loops are byte-for-byte the code they were
// before instrumentation and the batched/scalar bit-identity contract is
// untouched.  Catalog in docs/observability.md.
#pragma once

#include "obs/metrics.hpp"

namespace forktail::fjsim {

struct ReplayMetrics {
  /// Simulation runs completed (any simulator).
  obs::Counter& runs = obs::Registry::global().counter("fjsim.runs");
  /// Tasks replayed inside the measured window / discarded as warm-up.
  obs::Counter& tasks_measured =
      obs::Registry::global().counter("fjsim.tasks.measured");
  obs::Counter& tasks_warmup =
      obs::Registry::global().counter("fjsim.tasks.warmup");
  /// Arrival tiles processed by the batched paths (0 on scalar runs).
  obs::Counter& tiles = obs::Registry::global().counter("fjsim.tiles");
  /// Wall-clock of one full simulator run / of one worker's node block.
  obs::Histogram& run_seconds =
      obs::Registry::global().histogram("fjsim.run_seconds");
  obs::Histogram& block_seconds =
      obs::Registry::global().histogram("fjsim.block_seconds");

  static ReplayMetrics& get() {
    static ReplayMetrics metrics;
    return metrics;
  }
};

}  // namespace forktail::fjsim
