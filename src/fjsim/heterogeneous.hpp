// Fast simulator for inhomogeneous clusters: k = N fork-join where every
// node has its OWN service-time distribution (heterogeneous hardware,
// uneven background load -- the conditions Section 3 of the paper gives
// for the fine-grained inhomogeneous expression, Eq. 4/5).
//
// Same node-major Lindley replay as the homogeneous runner, but with
// per-node distributions and per-node black-box statistics in the result,
// which is exactly what the inhomogeneous predictor consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/distribution.hpp"
#include "fjsim/config.hpp"
#include "fjsim/node.hpp"
#include "stats/welford.hpp"

namespace forktail::fjsim {

struct HeterogeneousConfig {
  /// One service distribution per fork node (size = N).
  std::vector<dist::DistPtr> services;
  /// Request arrival rate.  Unlike the homogeneous config this is given
  /// directly (a single "load" is ill-defined across unequal nodes); use
  /// `lambda_for_max_load` to target the bottleneck utilization.
  double lambda = 1.0;
  std::uint64_t num_requests = 10000;  ///< measured (post warm-up)
  double warmup_fraction = 0.25;
  std::uint64_t seed = 1;
  /// Upper bound on worker parallelism for the node replay; 0 = pool width,
  /// 1 = inline on the calling thread (safe inside a pool task).  Results
  /// are bit-identical for every value (see HomogeneousConfig).
  std::size_t max_parallelism = 0;
  /// Service-demand block size: 0 = default, 1 = scalar reference path
  /// (see HomogeneousConfig::batch).  Bit-identical for every value.
  std::size_t batch = 0;
  /// Replay implementation (see fjsim/config.hpp::Engine).
  Engine engine = Engine::kLegacy;
};

struct HeterogeneousResult {
  std::vector<double> responses;          ///< measured request responses
  std::vector<stats::Welford> node_stats; ///< per-node task responses
  double lambda = 0.0;
  double max_utilization = 0.0;           ///< bottleneck rho
};

HeterogeneousResult run_heterogeneous(const HeterogeneousConfig& config);

/// Arrival rate at which the SLOWEST node reaches `rho` utilization
/// (every node sees the full request stream when k = N).
double lambda_for_max_load(const std::vector<dist::DistPtr>& services, double rho);

}  // namespace forktail::fjsim
