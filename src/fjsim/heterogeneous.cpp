#include "fjsim/heterogeneous.hpp"

#include <algorithm>
#include <stdexcept>

#include "fjsim/replay.hpp"
#include "fjsim/telemetry.hpp"
#include "fjsim/vector_engine.hpp"
#include "util/thread_pool.hpp"

namespace forktail::fjsim {

double lambda_for_max_load(const std::vector<dist::DistPtr>& services,
                           double rho) {
  if (services.empty()) {
    throw std::invalid_argument("lambda_for_max_load: no services");
  }
  if (!(rho > 0.0 && rho < 1.0)) {
    throw std::invalid_argument("lambda_for_max_load: rho must be in (0,1)");
  }
  double slowest = 0.0;
  for (const auto& s : services) {
    if (!s) throw std::invalid_argument("lambda_for_max_load: null service");
    slowest = std::max(slowest, s->mean());
  }
  return rho / slowest;
}

HeterogeneousResult run_heterogeneous(const HeterogeneousConfig& config) {
  if (config.engine == Engine::kVector) {
    return run_heterogeneous_vector(config);
  }
  const std::size_t n = config.services.size();
  if (n == 0) throw std::invalid_argument("run_heterogeneous: no nodes");
  if (!(config.lambda > 0.0)) {
    throw std::invalid_argument("run_heterogeneous: lambda <= 0");
  }
  double max_rho = 0.0;
  for (const auto& s : config.services) {
    if (!s) throw std::invalid_argument("run_heterogeneous: null service");
    max_rho = std::max(max_rho, config.lambda * s->mean());
  }
  if (max_rho >= 1.0) {
    throw std::invalid_argument(
        "run_heterogeneous: bottleneck node unstable (rho >= 1)");
  }

  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);

  util::Rng master(config.seed);
  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total = warmup + config.num_requests;

  std::vector<double> arrivals(total);
  {
    util::Rng arrival_rng = master.split(0);
    double t = 0.0;
    for (auto& a : arrivals) {
      t += arrival_rng.exponential(1.0 / config.lambda);
      a = t;
    }
  }

  // Per-node stats plus exact per-request maxima make the replay
  // bit-identical for any block count and batch size (see run_homogeneous).
  const std::size_t parallelism =
      config.max_parallelism > 0
          ? config.max_parallelism
          : std::max<std::size_t>(1, util::global_pool().size());
  const std::size_t num_blocks = std::min<std::size_t>(n, parallelism);
  const std::size_t batch = resolve_batch(config.batch);
  MaxArena arena(num_blocks, total);
  HeterogeneousResult result;
  result.lambda = config.lambda;
  result.max_utilization = max_rho;
  result.node_stats.resize(n);

  const auto replay_block = [&](std::size_t b) {
    std::span<double> row = arena.row(b);
    const std::size_t lo = n * b / num_blocks;
    const std::size_t hi = n * (b + 1) / num_blocks;
    // Block-granular telemetry only (see run_homogeneous).
    const obs::ScopedSpan block_span(ReplayMetrics::get().block_seconds);
    ReplayMetrics::get().tasks_warmup.add(warmup * (hi - lo));
    ReplayMetrics::get().tasks_measured.add((total - warmup) * (hi - lo));
    if (batch <= 1) {  // scalar reference path
      for (std::size_t node_id = lo; node_id < hi; ++node_id) {
        FastNode node(config.services[node_id].get(), 1, Policy::kSingle,
                      master.split(100 + node_id));
        auto& welford = result.node_stats[node_id];  // block-owned: no race
        auto on_done = [&](std::uint64_t id, double arrival, double completion) {
          if (id >= warmup) welford.add(completion - arrival);
          if (completion > row[id]) row[id] = completion;
        };
        for (std::uint64_t j = 0; j < total; ++j) {
          node.submit_task(arrivals[j], j, on_done);
        }
        node.flush(on_done);
      }
      return;
    }
    // Batched tiled replay (see run_homogeneous): tiles outer, nodes inner.
    std::vector<LindleyState> states;
    states.reserve(hi - lo);
    for (std::size_t node_id = lo; node_id < hi; ++node_id) {
      states.emplace_back(config.services[node_id].get(), 1,
                          master.split(100 + node_id));
    }
    std::uint64_t tiles = 0;
    std::vector<double> demands(batch);
    for (std::uint64_t t0 = 0; t0 < total; t0 += batch, ++tiles) {
      const std::size_t len =
          static_cast<std::size_t>(std::min<std::uint64_t>(batch, total - t0));
      const std::span<const double> tile(arrivals.data() + t0, len);
      const std::span<double> block(demands.data(), len);
      for (std::size_t node_id = lo; node_id < hi; ++node_id) {
        stats::Welford& welford = result.node_stats[node_id];
        states[node_id - lo].replay_tile(
            tile, t0, block,
            [&](std::uint64_t id, double arrival, double completion) {
              if (id >= warmup) welford.add(completion - arrival);
              if (completion > row[id]) row[id] = completion;
            });
      }
    }
    ReplayMetrics::get().tiles.add(tiles);
  };
  if (num_blocks == 1) {
    replay_block(0);
  } else {
    util::parallel_for(util::global_pool(), 0, num_blocks, replay_block);
  }

  result.responses.reserve(config.num_requests);
  const std::span<const double> merged = arena.merged(num_blocks);
  for (std::uint64_t j = warmup; j < total; ++j) {
    result.responses.push_back(merged[j] - arrivals[j]);
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

}  // namespace forktail::fjsim
