#include "fjsim/homogeneous.hpp"

#include <algorithm>
#include <stdexcept>

#include "fjsim/redundant_node.hpp"
#include "fjsim/vector_engine.hpp"
#include "fjsim/replay.hpp"
#include "fjsim/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace forktail::fjsim {

namespace {

/// Scalar reference replay: one virtual sample per task through the node's
/// submit path.  Kept verbatim as the baseline the batched path must match
/// bit-for-bit (and as the only path for the event-driven redundant node).
template <typename Node>
std::uint64_t replay_node(Node& node, const std::vector<double>& arrivals,
                          std::uint64_t warmup, std::span<double> local_max,
                          stats::Welford& local_stats) {
  auto on_done = [&](std::uint64_t id, double arrival, double completion) {
    if (id >= warmup) local_stats.add(completion - arrival);
    if (completion > local_max[id]) local_max[id] = completion;
  };
  for (std::uint64_t j = 0; j < arrivals.size(); ++j) {
    node.submit_task(arrivals[j], j, on_done);
  }
  node.flush(on_done);
  return node.redundant_issues();
}

}  // namespace

HomogeneousResult run_homogeneous(const HomogeneousConfig& config) {
  if (config.engine == Engine::kVector) return run_homogeneous_vector(config);
  validate(config);  // throws a field-typed ConfigError (fjsim/config.hpp)

  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);

  util::Rng master(config.seed);
  const double lambda =
      config.load * static_cast<double>(config.replicas) / config.service->mean();

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total = warmup + config.num_requests;
  const std::size_t batch = resolve_batch(config.batch);

  // Shared arrival epochs: the correlation structure of the fork-join
  // system lives entirely in this sequence.
  std::vector<double> arrivals(total);
  {
    util::Rng arrival_rng = master.split(0);
    double t = 0.0;
    for (auto& a : arrivals) {
      t += arrival_rng.exponential(1.0 / lambda);
      a = t;
    }
  }

  // Node-major replay, parallel across node blocks; each worker keeps one
  // row of a flat completion-max arena, while moment accumulators are kept
  // PER NODE and merged in node order afterwards.  Per-request maxima are
  // exact under any grouping and the node-order Welford merge fixes the
  // floating-point reduction order, so the result is bit-identical for any
  // block count / pool width / schedule / batch size.
  const std::size_t parallelism =
      config.max_parallelism > 0
          ? config.max_parallelism
          : std::max<std::size_t>(1, util::global_pool().size());
  const std::size_t num_blocks =
      std::min<std::size_t>(config.num_nodes, parallelism);
  MaxArena arena(num_blocks, total);
  std::vector<stats::Welford> node_stats(config.num_nodes);
  std::vector<std::uint64_t> node_redundant(config.num_nodes, 0);

  const auto replay_block = [&](std::size_t b) {
    const std::size_t lo = config.num_nodes * b / num_blocks;
    const std::size_t hi = config.num_nodes * (b + 1) / num_blocks;
    // Block-granular telemetry only: counters are bumped once per block
    // after the replay loops finish, so the per-task code is unchanged.
    const obs::ScopedSpan block_span(ReplayMetrics::get().block_seconds);
    const std::size_t block_nodes = hi - lo;
    ReplayMetrics::get().tasks_warmup.add(warmup * block_nodes);
    ReplayMetrics::get().tasks_measured.add((total - warmup) * block_nodes);
    std::span<double> row = arena.row(b);
    if (config.policy == Policy::kRedundant) {
      // Event-driven path: batching happens inside the node's demand
      // buffer; the replay loop itself stays scalar.
      for (std::size_t n = lo; n < hi; ++n) {
        RedundantNode node(config.service.get(), config.replicas,
                           config.redundant_delay, master.split(100 + n), batch);
        node_redundant[n] =
            replay_node(node, arrivals, warmup, row, node_stats[n]);
      }
      return;
    }
    if (batch <= 1) {  // scalar reference path
      for (std::size_t n = lo; n < hi; ++n) {
        FastNode node(config.service.get(), config.replicas, config.policy,
                      master.split(100 + n));
        node_redundant[n] =
            replay_node(node, arrivals, warmup, row, node_stats[n]);
      }
      return;
    }
    // Batched tiled replay: request tiles outer, block's nodes inner, so
    // the arrival tile and the row segment stay cache-hot while every node
    // replays them.  Per-node Welford order is unchanged (each node still
    // sees its completions in request order) and row updates are exact
    // maxima, so this is bit-identical to the scalar path above.
    std::vector<LindleyState> states;
    states.reserve(hi - lo);
    for (std::size_t n = lo; n < hi; ++n) {
      states.emplace_back(config.service.get(), config.replicas,
                          master.split(100 + n));
    }
    // All nodes share the same service distribution and replica count, so
    // pair eligibility is uniform across the block.
    const bool paired =
        states.size() >= 2 && states[0].fused_pairable(states[1]);
    std::vector<double> demands(batch);
    // Per-tile replay over the block's nodes, specialized on where the
    // tile sits relative to the warm-up boundary:
    //  * kWarmup   -- every task is discarded: advance the Lindley/RNG
    //    state with an empty callback (no Welford, no row write; nothing
    //    downstream reads the row below `warmup`, so outputs are
    //    unchanged).
    //  * kMeasured -- every task counts: no per-task warm-up compare.
    //  * kStraddle -- the single tile containing the boundary keeps the
    //    per-task check.
    // Work on local Welford copies: row[id] stores are double writes that
    // could alias the accumulators' fields if they lived in node_stats,
    // forcing a reload per task on the serial mean/m2 chain.  The copies
    // keep the accumulators in registers for the whole tile; the
    // write-back preserves exact per-node request order, so this is still
    // bit-identical.  Nodes go through the tile two at a time so their
    // independent latency chains overlap, and the pair folds into the row
    // with one max access (see LindleyState::replay_tile_pair).
    enum class TileMode { kWarmup, kStraddle, kMeasured };
    const auto replay_tiles = [&](auto mode_tag, std::uint64_t t0,
                                  std::size_t len) {
      constexpr TileMode kMode = decltype(mode_tag)::value;
      const std::span<const double> tile(arrivals.data() + t0, len);
      const std::span<double> block(demands.data(), len);
      std::size_t n = lo;
      for (; paired && n + 1 < hi; n += 2) {
        if constexpr (kMode == TileMode::kWarmup) {
          states[n - lo].replay_tile_pair(
              states[n - lo + 1], tile, t0,
              [](std::uint64_t, double, double, double) {});
        } else {
          stats::Welford ns0 = node_stats[n];
          stats::Welford ns1 = node_stats[n + 1];
          states[n - lo].replay_tile_pair(
              states[n - lo + 1], tile, t0,
              [&](std::uint64_t id, double arrival, double c0, double c1) {
                if (kMode == TileMode::kMeasured || id >= warmup) {
                  ns0.add(c0 - arrival);
                  ns1.add(c1 - arrival);
                  // Unconditional max: `if (m > row[id])` is an
                  // unpredictable branch (a new global max gets rarer as
                  // pairs accumulate); maxsd + store is branchless and
                  // writes the same bits.
                  row[id] = std::max(row[id], std::max(c0, c1));
                }
              });
          node_stats[n] = ns0;
          node_stats[n + 1] = ns1;
        }
      }
      for (; n < hi; ++n) {
        if constexpr (kMode == TileMode::kWarmup) {
          states[n - lo].replay_tile(tile, t0, block,
                                     [](std::uint64_t, double, double) {});
        } else {
          stats::Welford ns = node_stats[n];
          states[n - lo].replay_tile(
              tile, t0, block,
              [&](std::uint64_t id, double arrival, double completion) {
                if (kMode == TileMode::kMeasured || id >= warmup) {
                  ns.add(completion - arrival);
                  row[id] = std::max(row[id], completion);
                }
              });
          node_stats[n] = ns;
        }
      }
    };
    std::uint64_t tiles = 0;
    for (std::uint64_t t0 = 0; t0 < total; t0 += batch, ++tiles) {
      const std::size_t len =
          static_cast<std::size_t>(std::min<std::uint64_t>(batch, total - t0));
      if (t0 + len <= warmup) {
        replay_tiles(
            std::integral_constant<TileMode, TileMode::kWarmup>{}, t0, len);
      } else if (t0 >= warmup) {
        replay_tiles(
            std::integral_constant<TileMode, TileMode::kMeasured>{}, t0, len);
      } else {
        replay_tiles(
            std::integral_constant<TileMode, TileMode::kStraddle>{}, t0, len);
      }
    }
    ReplayMetrics::get().tiles.add(tiles);
  };
  if (num_blocks == 1) {
    replay_block(0);
  } else {
    util::parallel_for(util::global_pool(), 0, num_blocks, replay_block);
  }

  HomogeneousResult result;
  result.lambda = lambda;
  result.total_tasks = total * config.num_nodes;
  result.responses.reserve(config.num_requests);
  const std::span<const double> merged = arena.merged(num_blocks);
  for (std::uint64_t j = warmup; j < total; ++j) {
    result.responses.push_back(merged[j] - arrivals[j]);
  }
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    result.task_stats.merge(node_stats[n]);
    result.redundant_issues += node_redundant[n];
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

}  // namespace forktail::fjsim
