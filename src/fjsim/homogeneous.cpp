#include "fjsim/homogeneous.hpp"

#include <algorithm>
#include <stdexcept>

#include "fjsim/redundant_node.hpp"
#include "util/thread_pool.hpp"

namespace forktail::fjsim {

namespace {

/// Replay the shared arrival sequence through one fork node (of whichever
/// node type the policy requires), accumulating the per-request completion
/// max and the post-warm-up task moments.
template <typename Node>
std::uint64_t replay_node(Node& node, const std::vector<double>& arrivals,
                          std::uint64_t warmup, std::vector<double>& local_max,
                          stats::Welford& local_stats) {
  auto on_done = [&](std::uint64_t id, double arrival, double completion) {
    if (id >= warmup) local_stats.add(completion - arrival);
    if (completion > local_max[id]) local_max[id] = completion;
  };
  for (std::uint64_t j = 0; j < arrivals.size(); ++j) {
    node.submit_task(arrivals[j], j, on_done);
  }
  node.flush(on_done);
  return node.redundant_issues();
}

}  // namespace

HomogeneousResult run_homogeneous(const HomogeneousConfig& config) {
  if (config.num_nodes == 0) {
    throw std::invalid_argument("run_homogeneous: num_nodes == 0");
  }
  if (!config.service) throw std::invalid_argument("run_homogeneous: null service");
  if (!(config.load > 0.0 && config.load < 1.0)) {
    throw std::invalid_argument("run_homogeneous: load must be in (0,1)");
  }
  if (config.policy == Policy::kSingle && config.replicas != 1) {
    throw std::invalid_argument("run_homogeneous: kSingle requires 1 replica");
  }

  util::Rng master(config.seed);
  const double lambda =
      config.load * static_cast<double>(config.replicas) / config.service->mean();

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total = warmup + config.num_requests;

  // Shared arrival epochs: the correlation structure of the fork-join
  // system lives entirely in this sequence.
  std::vector<double> arrivals(total);
  {
    util::Rng arrival_rng = master.split(0);
    double t = 0.0;
    for (auto& a : arrivals) {
      t += arrival_rng.exponential(1.0 / lambda);
      a = t;
    }
  }

  // Node-major replay, parallel across node blocks; each worker keeps a
  // local per-request completion max, while moment accumulators are kept
  // PER NODE and merged in node order afterwards.  Per-request maxima are
  // exact under any grouping and the node-order Welford merge fixes the
  // floating-point reduction order, so the result is bit-identical for any
  // block count / pool width / schedule.
  const std::size_t parallelism =
      config.max_parallelism > 0
          ? config.max_parallelism
          : std::max<std::size_t>(1, util::global_pool().size());
  const std::size_t num_blocks =
      std::min<std::size_t>(config.num_nodes, parallelism);
  std::vector<std::vector<double>> block_max(
      num_blocks, std::vector<double>(total, 0.0));
  std::vector<stats::Welford> node_stats(config.num_nodes);
  std::vector<std::uint64_t> node_redundant(config.num_nodes, 0);

  const auto replay_block = [&](std::size_t b) {
    const std::size_t lo = config.num_nodes * b / num_blocks;
    const std::size_t hi = config.num_nodes * (b + 1) / num_blocks;
    for (std::size_t n = lo; n < hi; ++n) {
      if (config.policy == Policy::kRedundant) {
        RedundantNode node(config.service.get(), config.replicas,
                           config.redundant_delay, master.split(100 + n));
        node_redundant[n] =
            replay_node(node, arrivals, warmup, block_max[b], node_stats[n]);
      } else {
        FastNode node(config.service.get(), config.replicas, config.policy,
                      master.split(100 + n));
        node_redundant[n] =
            replay_node(node, arrivals, warmup, block_max[b], node_stats[n]);
      }
    }
  };
  if (num_blocks == 1) {
    replay_block(0);
  } else {
    util::parallel_for(util::global_pool(), 0, num_blocks, replay_block);
  }

  HomogeneousResult result;
  result.lambda = lambda;
  result.total_tasks = total * config.num_nodes;
  result.responses.reserve(config.num_requests);
  for (std::uint64_t j = warmup; j < total; ++j) {
    double m = 0.0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      m = std::max(m, block_max[b][j]);
    }
    result.responses.push_back(m - arrivals[j]);
  }
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    result.task_stats.merge(node_stats[n]);
    result.redundant_issues += node_redundant[n];
  }
  return result;
}

}  // namespace forktail::fjsim
