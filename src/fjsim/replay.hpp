// Batched Lindley replay kernel shared by the node-major fast simulators.
//
// The scalar replay loops draw one service demand per task through a
// virtual Distribution::sample() call; the opaque call boundary also stops
// the compiler from overlapping the sampler's log/pow dependency chain with
// the Lindley recursion and the caller's Welford update, so the three
// serial chains run back to back.  LindleyState fixes both costs:
//
//  * For the common closed-form samplers (exponential, Erlang, ...) the
//    concrete type is classified once at construction and the tile loop
//    dispatches to a fused kernel that calls the final class's inline
//    sample() directly -- sampling, the Lindley recursion, and the
//    completion callback all live in one loop body, so the CPU pipelines
//    their dependency chains instead of serializing them.
//  * Everything else falls back to pulling demands in blocks via
//    Distribution::sample_n(), which still amortizes the virtual dispatch
//    over the whole tile.
//
// Either way the per-request state (arrival tile, demand block,
// completion-max row segment) stays cache-resident while every node of a
// block replays it.
//
// Determinism contract: for a given node RNG the delivered demand sequence
// and every floating-point operation match the scalar FastNode path
// exactly, so batched results are bit-identical to the scalar reference
// (test_replay_batched.cpp asserts this for every simulator).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dist/basic.hpp"
#include "dist/distribution.hpp"
#include "dist/heavy.hpp"
#include "util/rng.hpp"

namespace forktail::fjsim {

/// Default service-demand block size for the batched replay paths.  Any
/// value yields bit-identical results; 1024 doubles (8 KiB) amortizes the
/// virtual dispatch ~1000x while the block comfortably fits in L1.
inline constexpr std::size_t kDefaultReplayBatch = 1024;

/// Config knob semantics: 0 = use the default batch, 1 = scalar reference
/// path (one virtual sample per task), anything else = explicit block size.
inline std::size_t resolve_batch(std::size_t batch) {
  return batch == 0 ? kDefaultReplayBatch : batch;
}

/// One fork node's Lindley state for tiled replay: the per-replica
/// next-free times plus the node's private service-demand stream.
class LindleyState {
 public:
  LindleyState(const dist::Distribution* service, int replicas, util::Rng rng)
      : service_(service),
        kind_(classify(service)),
        rng_(rng),
        next_free_(static_cast<std::size_t>(replicas), 0.0) {}

  /// Replay one tile of the shared arrival sequence through this node.
  /// `demands` is caller-provided scratch of the tile's length (reused
  /// across nodes/tiles to avoid per-call allocation; only the generic
  /// fallback touches it); `done(id, arrival, completion)` fires per task
  /// with `id = base + i`, exactly as the scalar path's completion callback
  /// does.
  ///
  /// Each fused kernel draws the i-th demand with the same inline sample()
  /// body and the same RNG stream position as both the scalar path and the
  /// sample_n block fill, so every path is bit-identical.
  template <typename OnComplete>
  void replay_tile(std::span<const double> arrivals, std::uint64_t base,
                   std::span<double> demands, OnComplete&& done) {
    switch (kind_) {
      case Kind::kExponential:
        return fused_tile<dist::Exponential>(arrivals, base, done);
      case Kind::kErlang:
        return fused_tile<dist::Erlang>(arrivals, base, done);
      case Kind::kHyperExp2:
        return fused_tile<dist::HyperExp2>(arrivals, base, done);
      case Kind::kWeibull:
        return fused_tile<dist::Weibull>(arrivals, base, done);
      case Kind::kTruncPareto:
        return fused_tile<dist::TruncatedPareto>(arrivals, base, done);
      case Kind::kLogNormal:
        return fused_tile<dist::LogNormal>(arrivals, base, done);
      case Kind::kDeterministic:
        return fused_tile<dist::Deterministic>(arrivals, base, done);
      case Kind::kUniform:
        return fused_tile<dist::UniformReal>(arrivals, base, done);
      case Kind::kGeneric:
        break;
    }
    generic_tile(arrivals, base, demands, done);
  }

  /// True when `this` and `other` can replay a tile through the fused pair
  /// kernel: same concrete sampler kind (with a fused kernel) and both
  /// single-server.  Uniform across a block of identically-configured
  /// nodes, so callers check it once, not per tile.
  bool fused_pairable(const LindleyState& other) const {
    return kind_ != Kind::kGeneric && kind_ == other.kind_ &&
           next_free_.size() == 1 && other.next_free_.size() == 1;
  }

  /// Replay the same tile through TWO nodes with their per-task work
  /// interleaved in one loop body.  Each node's sampler, Lindley recursion,
  /// and accumulator chain is latency-bound and strictly serial on its own,
  /// but the two nodes are independent, so interleaving lets the CPU
  /// overlap their divide/log chains.  `done(id, arrival, c0, c1)` receives
  /// both completions at once so the caller can fold them into shared
  /// structures (e.g. the completion-max row) with one access.
  ///
  /// Bit-identity: node A's operation sequence (RNG draws, recursion,
  /// Welford order) is exactly what replay_tile would do, ditto node B;
  /// only their interleaving in time changes.  The one shared structure is
  /// the completion-max row, and max is exact and order-independent.
  /// Requires fused_pairable(other).
  template <typename OnComplete>
  void replay_tile_pair(LindleyState& other, std::span<const double> arrivals,
                        std::uint64_t base, OnComplete&& done) {
    switch (kind_) {
      case Kind::kExponential:
        return fused_pair<dist::Exponential>(other, arrivals, base, done);
      case Kind::kErlang:
        return fused_pair<dist::Erlang>(other, arrivals, base, done);
      case Kind::kHyperExp2:
        return fused_pair<dist::HyperExp2>(other, arrivals, base, done);
      case Kind::kWeibull:
        return fused_pair<dist::Weibull>(other, arrivals, base, done);
      case Kind::kTruncPareto:
        return fused_pair<dist::TruncatedPareto>(other, arrivals, base, done);
      case Kind::kLogNormal:
        return fused_pair<dist::LogNormal>(other, arrivals, base, done);
      case Kind::kDeterministic:
        return fused_pair<dist::Deterministic>(other, arrivals, base, done);
      case Kind::kUniform:
        return fused_pair<dist::UniformReal>(other, arrivals, base, done);
      case Kind::kGeneric:
        break;  // excluded by fused_pairable()
    }
  }

 private:
  /// Concrete sampler types with a header-inline sample() that the fused
  /// kernels can devirtualize; everything else replays via sample_n blocks.
  enum class Kind : std::uint8_t {
    kExponential,
    kErlang,
    kHyperExp2,
    kWeibull,
    kTruncPareto,
    kLogNormal,
    kDeterministic,
    kUniform,
    kGeneric,
  };

  static Kind classify(const dist::Distribution* d) {
    if (dynamic_cast<const dist::Exponential*>(d)) return Kind::kExponential;
    if (dynamic_cast<const dist::Erlang*>(d)) return Kind::kErlang;
    if (dynamic_cast<const dist::HyperExp2*>(d)) return Kind::kHyperExp2;
    if (dynamic_cast<const dist::Weibull*>(d)) return Kind::kWeibull;
    if (dynamic_cast<const dist::TruncatedPareto*>(d)) return Kind::kTruncPareto;
    if (dynamic_cast<const dist::LogNormal*>(d)) return Kind::kLogNormal;
    if (dynamic_cast<const dist::Deterministic*>(d)) return Kind::kDeterministic;
    if (dynamic_cast<const dist::UniformReal*>(d)) return Kind::kUniform;
    return Kind::kGeneric;
  }

  /// Sample + Lindley + callback in one loop body.  The qualified
  /// D::sample call is non-virtual and inlines, which is what lets the CPU
  /// overlap the sampler's log/pow chain with the recursion and the
  /// caller's accumulator update.
  template <typename D, typename OnComplete>
  void fused_tile(std::span<const double> arrivals, std::uint64_t base,
                  OnComplete&& done) {
    // Local copy for the same aliasing reason as in fused_pair.
    const D d(*static_cast<const D*>(service_));
    const std::size_t len = arrivals.size();
    if (next_free_.size() == 1) {
      // Single-server fast path: the recursion's only loop-carried state is
      // one next-free time, kept in a register.
      double nf = next_free_[0];
      for (std::size_t i = 0; i < len; ++i) {
        const double start = std::max(arrivals[i], nf);
        nf = start + d.D::sample(rng_);
        done(base + i, arrivals[i], nf);
      }
      next_free_[0] = nf;
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        const double start = std::max(arrivals[i], next_free_[rr_]);
        const double completion = start + d.D::sample(rng_);
        next_free_[rr_] = completion;
        rr_ = rr_ + 1 == next_free_.size() ? 0 : rr_ + 1;
        done(base + i, arrivals[i], completion);
      }
    }
  }

  /// Two independent single-server nodes, one loop body (see
  /// replay_tile_pair).  Both next-free times live in registers; the two
  /// RNG streams and the callers' two accumulators are independent, so
  /// their latency chains pipeline.
  template <typename D, typename OnComplete>
  void fused_pair(LindleyState& other, std::span<const double> arrivals,
                  std::uint64_t base, OnComplete&& done) {
    // Copy the sampler parameters to locals: accessed through service_,
    // their double fields could alias the caller's double stores (row
    // updates), forcing a reload every iteration.  Locals are provably
    // unaliased, so the parameters stay in registers.
    const D d0(*static_cast<const D*>(service_));
    const D d1(*static_cast<const D*>(other.service_));
    const std::size_t len = arrivals.size();
    double nf0 = next_free_[0];
    double nf1 = other.next_free_[0];
    for (std::size_t i = 0; i < len; ++i) {
      const double a = arrivals[i];
      nf0 = std::max(a, nf0) + d0.D::sample(rng_);
      nf1 = std::max(a, nf1) + d1.D::sample(other.rng_);
      done(base + i, a, nf0, nf1);
    }
    next_free_[0] = nf0;
    other.next_free_[0] = nf1;
  }

  /// Fallback for samplers without a fused kernel: fill the demand block
  /// through one virtual sample_n call, then run the recursion over it.
  template <typename OnComplete>
  void generic_tile(std::span<const double> arrivals, std::uint64_t base,
                    std::span<double> demands, OnComplete&& done) {
    service_->sample_n(rng_, demands);
    const std::size_t len = arrivals.size();
    if (next_free_.size() == 1) {
      double nf = next_free_[0];
      for (std::size_t i = 0; i < len; ++i) {
        const double start = std::max(arrivals[i], nf);
        nf = start + demands[i];
        done(base + i, arrivals[i], nf);
      }
      next_free_[0] = nf;
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        const double start = std::max(arrivals[i], next_free_[rr_]);
        const double completion = start + demands[i];
        next_free_[rr_] = completion;
        rr_ = rr_ + 1 == next_free_.size() ? 0 : rr_ + 1;
        done(base + i, arrivals[i], completion);
      }
    }
  }

  const dist::Distribution* service_;
  Kind kind_;
  util::Rng rng_;
  std::vector<double> next_free_;
  std::size_t rr_ = 0;  // round-robin cursor (replicas > 1)
};

/// Flat completion-max arena: one `total`-sized row per worker block
/// instead of a vector-of-vectors, merged row-major (sequential access,
/// vectorizable) into row 0.  Max-merge is exact and order-independent, so
/// the merged row is identical for any block count.
class MaxArena {
 public:
  MaxArena(std::size_t num_rows, std::size_t row_len)
      : row_len_(row_len), data_(num_rows * row_len, 0.0) {}

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * row_len_, row_len_};
  }

  /// Merge all rows into row 0 and return it.
  std::span<const double> merged(std::size_t num_rows) {
    double* acc = data_.data();
    for (std::size_t r = 1; r < num_rows; ++r) {
      const double* src = data_.data() + r * row_len_;
      for (std::size_t j = 0; j < row_len_; ++j) {
        acc[j] = std::max(acc[j], src[j]);
      }
    }
    return {acc, row_len_};
  }

 private:
  std::size_t row_len_;
  std::vector<double> data_;
};

/// Per-request k-th-smallest completion tracker for early-return-at-k
/// (k-of-n fork-join): each request keeps a bounded max-heap of its k
/// smallest task completions, so the k-th order statistic is O(log k) per
/// insertion with flat storage.  Insertion order does not matter, and +inf
/// completions (lost tasks) only surface when fewer than k tasks finish.
class OrderStatArena {
 public:
  OrderStatArena(std::size_t num_requests, int k)
      : k_(static_cast<std::size_t>(k)),
        counts_(num_requests, 0),
        heaps_(num_requests * k_) {}

  void insert(std::uint64_t id, double completion) {
    double* heap = heaps_.data() + id * k_;
    std::size_t& count = counts_[id];
    if (count < k_) {
      heap[count++] = completion;
      std::push_heap(heap, heap + count);
    } else if (completion < heap[0]) {
      std::pop_heap(heap, heap + k_);
      heap[k_ - 1] = completion;
      std::push_heap(heap, heap + k_);
    }
  }

  /// k-th smallest completion inserted for `id`; +inf until k insertions
  /// have happened (the request cannot return early yet).
  double kth(std::uint64_t id) const {
    return counts_[id] >= k_ ? heaps_[id * k_]
                             : std::numeric_limits<double>::infinity();
  }

 private:
  std::size_t k_;
  std::vector<std::size_t> counts_;
  std::vector<double> heaps_;
};

}  // namespace forktail::fjsim
