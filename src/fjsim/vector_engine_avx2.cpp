// Vector engine, x86-64-v3 level (AVX2 + FMA + BMI2).  The TU itself
// builds at the baseline -march; only the engine's hot functions carry the
// target attribute, so no shared inline symbol (std::vector internals,
// Welford methods, ...) is ever emitted with AVX encodings that linker
// COMDAT merging could route into a baseline code path on an older CPU.
// FMA is available to the target functions but never used: the whole TU is
// compiled with -ffp-contract=off, keeping results bit-identical to the
// generic level.
#include "fjsim/vector_engine.hpp"

#if FORKTAIL_VE_X86

#define FORKTAIL_VE_NS ve_avx2
#define FORKTAIL_VE_TARGET __attribute__((target("avx2,fma,bmi2")))
#include "fjsim/vector_engine_impl.hpp"

#endif  // FORKTAIL_VE_X86
