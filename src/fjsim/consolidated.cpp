#include "fjsim/consolidated.hpp"

#include <algorithm>
#include <stdexcept>

#include "fjsim/telemetry.hpp"

namespace forktail::fjsim {

ConsolidatedResult run_consolidated(const ConsolidatedConfig& config) {
  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);
  validate(config);  // throws a field-typed ConfigError (fjsim/config.hpp)

  util::Rng master(config.seed);
  util::Rng arrival_rng = master.split(0);
  util::Rng pick_rng = master.split(1);
  util::Rng job_rng = master.split(2);
  util::Rng service_rng = master.split(3);

  const double lambda = config.load * static_cast<double>(config.num_nodes) *
                        static_cast<double>(config.replicas) /
                        config.mean_work_per_job;

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_jobs));
  const std::uint64_t total = warmup + config.num_jobs;

  std::vector<FastNode> nodes;
  nodes.reserve(config.num_nodes);
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    nodes.emplace_back(nullptr, config.replicas, config.policy,
                       master.split(100 + n));
  }

  std::vector<double> arrivals(total);
  std::vector<double> completion_max(total, 0.0);
  std::vector<std::uint8_t> is_target(total, 0);
  std::vector<std::uint32_t> job_tasks(total, 0);

  std::vector<std::uint32_t> perm(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    perm[i] = static_cast<std::uint32_t>(i);
  }

  ConsolidatedResult result;
  result.lambda = lambda;

  auto on_done = [&](std::uint64_t id, double arrival, double completion) {
    if (id >= warmup) {
      const double response = completion - arrival;
      if (is_target[id]) {
        result.target_task_stats.add(response);
      } else {
        result.background_task_stats.add(response);
      }
    }
    if (completion > completion_max[id]) completion_max[id] = completion;
  };

  // Per-task times follow Hawk [15]: Normal(m, (2m)^2) truncated below.
  auto sample_task_time = [&](double mean) {
    double x;
    do {
      x = service_rng.normal(mean, 2.0 * mean);
    } while (x < config.service_floor);
    return x;
  };

  double t = 0.0;
  for (std::uint64_t j = 0; j < total; ++j) {
    t += arrival_rng.exponential(1.0 / lambda);
    arrivals[j] = t;
    const JobSpec job = config.generator(job_rng);
    if (job.tasks < 1 ||
        static_cast<std::size_t>(job.tasks) > config.num_nodes) {
      throw std::invalid_argument("run_consolidated: job task count out of range");
    }
    is_target[j] = job.target ? 1 : 0;
    job_tasks[j] = job.tasks;
    const auto k = static_cast<std::size_t>(job.tasks);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t pick =
          i + static_cast<std::size_t>(pick_rng.uniform_int(config.num_nodes - i));
      std::swap(perm[i], perm[pick]);
      nodes[perm[i]].submit_task_explicit(t, sample_task_time(job.mean_task_time),
                                          j, on_done);
    }
    result.total_tasks += k;
  }
  for (auto& node : nodes) node.flush(on_done);

  for (std::uint64_t j = warmup; j < total; ++j) {
    if (!is_target[j]) continue;
    result.target_responses.push_back(completion_max[j] - arrivals[j]);
    result.target_ks.push_back(static_cast<int>(job_tasks[j]));
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

}  // namespace forktail::fjsim
