// Vector engine, baseline ISA level.  Available on every target; the hot
// functions carry no target attribute, so they compile at the build's
// default -march (with -ffp-contract=off from this file's compile options,
// which is what makes the level bit-identical to avx2/avx512).
#include "fjsim/vector_engine.hpp"

#define FORKTAIL_VE_NS ve_generic
#define FORKTAIL_VE_TARGET
#include "fjsim/vector_engine_impl.hpp"
