// Trace-driven consolidated-workload simulator (Case 3, Section 4.3).
//
// A single cluster of N fork nodes (3 replica servers each, round-robin)
// shared by a diverse background workload (Facebook-2010-like trace jobs)
// and a statistically-uniform target application whose tail latency is
// being predicted.  Jobs arrive Poisson; each job forks `tasks` tasks to
// that many randomly chosen distinct nodes; per-task service times are
// Normal(m, (2m)^2) truncated below, following Hawk [15].
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fjsim/config.hpp"
#include "fjsim/node.hpp"
#include "stats/welford.hpp"

namespace forktail::fjsim {

/// One job drawn from the workload generator.
struct JobSpec {
  bool target = false;
  std::uint32_t tasks = 1;
  double mean_task_time = 1.0;  ///< per-job mean m; tasks ~ TruncNormal(m, 2m)
};

/// Produces the job stream (trace playback or synthesis).
using JobGenerator = std::function<JobSpec(util::Rng&)>;

/// Node-group knobs (replicas / policy / redundant_delay) come from the
/// shared NodeGroupConfig base; the consolidated cluster defaults to the
/// paper's three round-robin replica servers per node.  The redundant-issue
/// policy is rejected by validate(): jobs carry explicit per-task demands,
/// which the hedging node cannot replay.
struct ConsolidatedConfig : NodeGroupConfig {
  ConsolidatedConfig() {
    replicas = 3;
    policy = Policy::kRoundRobin;
  }

  std::size_t num_nodes = 100;
  double load = 0.8;  ///< per-server utilization target
  JobGenerator generator;
  /// E[tasks * E[task time]] per job, used to derive the job arrival rate:
  /// lambda = load * N * replicas / mean_work_per_job.
  double mean_work_per_job = 1.0;
  std::uint64_t num_jobs = 100000;  ///< measured jobs
  double warmup_fraction = 0.2;
  std::uint64_t seed = 1;
  double service_floor = 0.05;  ///< truncation floor for task times
};

struct ConsolidatedResult {
  std::vector<double> target_responses;  ///< measured target-job responses
  std::vector<int> target_ks;            ///< task count of each measured target job
  stats::Welford target_task_stats;      ///< pooled target task responses
  stats::Welford background_task_stats;  ///< pooled background task responses
  double lambda = 0.0;
  std::uint64_t total_tasks = 0;
};

ConsolidatedResult run_consolidated(const ConsolidatedConfig& config);

}  // namespace forktail::fjsim
