#include "fjsim/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fjsim/replay.hpp"
#include "fjsim/telemetry.hpp"
#include "fjsim/vector_engine.hpp"

namespace forktail::fjsim {

PipelineResult run_pipeline(const PipelineConfig& config) {
  if (config.engine == Engine::kVector) return run_pipeline_vector(config);
  const obs::ScopedSpan run_span(ReplayMetrics::get().run_seconds);
  if (config.stages.empty()) {
    throw std::invalid_argument("run_pipeline: no stages");
  }
  double slowest_mean = 0.0;
  for (const auto& stage : config.stages) {
    if (stage.num_nodes == 0 || !stage.service) {
      throw std::invalid_argument("run_pipeline: invalid stage");
    }
    slowest_mean = std::max(slowest_mean, stage.service->mean());
  }
  if (!(config.load > 0.0 && config.load < 1.0)) {
    throw std::invalid_argument("run_pipeline: load must be in (0,1)");
  }

  util::Rng master(config.seed);
  const double lambda = config.load / slowest_mean;

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total = warmup + config.num_requests;

  // Initial (stage-0) arrivals: Poisson, already time-ordered.
  std::vector<double> origin(total);
  {
    util::Rng arrival_rng = master.split(0);
    double t = 0.0;
    for (auto& a : origin) {
      t += arrival_rng.exponential(1.0 / lambda);
      a = t;
    }
  }

  PipelineResult result;
  result.lambda = lambda;
  result.stage_task_stats.resize(config.stages.size());
  result.stage_latency_stats.resize(config.stages.size());

  // `order[i]` is the request id of the i-th arrival at the current stage;
  // `arrivals[i]` its arrival time there (non-decreasing in i).
  std::vector<std::uint32_t> order(total);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> arrivals = origin;
  std::vector<double> completion(total);

  for (std::size_t s = 0; s < config.stages.size(); ++s) {
    const PipelineStageConfig& stage = config.stages[s];
    auto& task_stats = result.stage_task_stats[s];
    auto& latency_stats = result.stage_latency_stats[s];

    // Node-major replay over this stage's nodes against the (sorted)
    // arrival sequence; completions land per arrival index.  Unlike the
    // homogeneous runner the per-task Welford is SHARED across the stage's
    // nodes, so the batched path must keep the node-outer loop (tiling only
    // the per-node demand draws) to preserve the accumulation order.
    std::fill(completion.begin(), completion.end(), 0.0);
    const std::size_t batch = resolve_batch(config.batch);
    for (std::size_t n = 0; n < stage.num_nodes; ++n) {
      auto on_done = [&](std::uint64_t idx, double arrival, double done) {
        if (order[idx] >= warmup) task_stats.add(done - arrival);
        if (done > completion[idx]) completion[idx] = done;
      };
      if (batch <= 1) {  // scalar reference path
        FastNode node(stage.service.get(), 1, Policy::kSingle,
                      master.split(1000 * (s + 1) + n));
        for (std::uint64_t i = 0; i < total; ++i) {
          node.submit_task(arrivals[i], i, on_done);
        }
        node.flush(on_done);
        continue;
      }
      LindleyState state(stage.service.get(), 1,
                         master.split(1000 * (s + 1) + n));
      std::vector<double> demands(batch);
      for (std::uint64_t t0 = 0; t0 < total; t0 += batch) {
        const std::size_t len = static_cast<std::size_t>(
            std::min<std::uint64_t>(batch, total - t0));
        state.replay_tile({arrivals.data() + t0, len}, t0,
                          {demands.data(), len}, on_done);
      }
    }
    for (std::uint64_t i = 0; i < total; ++i) {
      if (order[i] >= warmup) {
        latency_stats.add(completion[i] - arrivals[i]);
      }
    }

    // The next stage sees requests in completion-time order.
    std::vector<std::uint32_t> idx(total);
    std::iota(idx.begin(), idx.end(), 0u);
    std::sort(idx.begin(), idx.end(), [&](std::uint32_t a, std::uint32_t b) {
      return completion[a] < completion[b];
    });
    std::vector<std::uint32_t> next_order(total);
    std::vector<double> next_arrivals(total);
    for (std::uint64_t i = 0; i < total; ++i) {
      next_order[i] = order[idx[i]];
      next_arrivals[i] = completion[idx[i]];
    }
    order = std::move(next_order);
    arrivals = std::move(next_arrivals);
  }

  // End-to-end latency: final completion time minus the original arrival.
  result.responses.reserve(config.num_requests);
  std::vector<double> final_completion(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    final_completion[order[i]] = arrivals[i];
  }
  for (std::uint64_t req = warmup; req < total; ++req) {
    result.responses.push_back(final_completion[req] - origin[req]);
  }
  ReplayMetrics::get().runs.add(1);
  return result;
}

}  // namespace forktail::fjsim
