// Closed-loop tail-latency-SLO-guaranteed job scheduling (Section 6 of the
// paper, developed into a working system -- the paper's stated future
// work).
//
// The loop couples the three ForkTail ingredients end to end on a
// simulated cluster:
//   1. every fork node measures its task response-time mean/variance over
//      a sliding window (distributed measurement, Fig. 14);
//   2. nodes report to the central NodeStatsRegistry on a fixed interval;
//   3. each arriving request is admitted only if the AdmissionController
//      finds k fork nodes whose predicted tail (Eq. 5) meets the SLO; the
//      tasks are then dispatched to exactly those nodes.
//
// The key observable: the violation rate among ADMITTED requests stays
// near the SLO's tail mass (1 - p/100) even when the offered load exceeds
// what the SLO can support, because excess work is rejected up front --
// the "guarantee by design" the paper contrasts with reactive approaches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/forktail.hpp"
#include "dist/distribution.hpp"
#include "sim/cluster_stats.hpp"

namespace forktail::sched {

struct ClosedLoopConfig {
  std::size_t num_nodes = 64;
  dist::DistPtr service;       ///< per-task service time distribution
  double lambda = 1.0;         ///< offered request arrival rate
  std::size_t tasks_per_request = 16;  ///< k
  core::TailSlo slo{99.0, 0.0};
  double window_seconds = 20.0;    ///< per-node measurement window
  double report_interval = 1.0;    ///< registry refresh period
  std::size_t min_window_samples = 50;
  std::uint64_t num_requests = 50000;  ///< offered requests (incl. warm-up)
  double warmup_fraction = 0.2;  ///< initial fraction admitted unconditionally
                                 ///< and excluded from the statistics
  std::uint64_t seed = 1;
  bool admission_enabled = true;  ///< false = admit everything (baseline)
  /// Keep the per-request response vector (the historical result shape).
  /// Cluster-scale runs (>= 10M requests) set this false and read the
  /// response histogram instead; every other output is unchanged.
  bool record_responses = true;
  /// Shard count for the per-node task-stats registry (sim::ClusterStats);
  /// 0 picks one shard per 64 nodes.  Every output is bit-identical for
  /// every value -- pinned by the determinism suite.
  std::size_t stats_shards = 0;
};

struct ClosedLoopResult {
  std::uint64_t offered = 0;    ///< measured (post warm-up) requests
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::vector<double> admitted_responses;
  std::uint64_t violations = 0;  ///< admitted responses exceeding the SLO
  double violation_rate = 0.0;   ///< violations / admitted
  double admit_rate = 0.0;       ///< admitted / offered
  double mean_predicted_latency = 0.0;  ///< average Eq. 5 value at admission
  /// Admitted (measured) responses pooled into the fixed log2-linear grid:
  /// tail percentiles without keeping every sample.
  sim::LatencyHistogram response_histogram;
  /// Deterministic roll-up of the sharded per-node task-time registry
  /// (measured tasks only): exact per-node moments, node-order pooled
  /// merge, pooled task-time histogram.
  sim::ClusterSummary node_tasks;
};

ClosedLoopResult run_closed_loop(const ClosedLoopConfig& config);

}  // namespace forktail::sched
