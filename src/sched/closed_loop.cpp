#include "sched/closed_loop.hpp"

#include <algorithm>
#include <stdexcept>

#include "fjsim/node.hpp"
#include "sim/cluster_stats.hpp"
#include "util/rng.hpp"

namespace forktail::sched {

ClosedLoopResult run_closed_loop(const ClosedLoopConfig& config) {
  if (config.num_nodes == 0) {
    throw std::invalid_argument("run_closed_loop: no nodes");
  }
  if (!config.service) throw std::invalid_argument("run_closed_loop: null service");
  if (!(config.lambda > 0.0)) {
    throw std::invalid_argument("run_closed_loop: lambda <= 0");
  }
  if (config.tasks_per_request == 0 ||
      config.tasks_per_request > config.num_nodes) {
    throw std::invalid_argument("run_closed_loop: bad tasks_per_request");
  }
  if (!(config.slo.latency > 0.0)) {
    throw std::invalid_argument("run_closed_loop: SLO latency must be set");
  }

  util::Rng master(config.seed);
  util::Rng arrival_rng = master.split(0);
  util::Rng pick_rng = master.split(1);

  std::vector<fjsim::FastNode> nodes;
  nodes.reserve(config.num_nodes);
  for (std::size_t n = 0; n < config.num_nodes; ++n) {
    nodes.emplace_back(config.service.get(), 1, fjsim::Policy::kSingle,
                       master.split(100 + n));
  }

  core::OnlineTailPredictor monitors(config.num_nodes, config.window_seconds,
                                     config.min_window_samples);
  core::NodeStatsRegistry registry(config.num_nodes,
                                   /*staleness_limit=*/4.0 * config.report_interval);
  const core::AdmissionController controller(registry);

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction * static_cast<double>(config.num_requests));

  ClosedLoopResult result;
  double predicted_acc = 0.0;

  // Sharded per-node task-time registry (measured tasks): feeds the
  // node_tasks summary without touching any pre-existing output.
  sim::ClusterStats cluster(config.num_nodes, config.stats_shards);

  // Scratch permutation for random placement (bootstrap / baseline).
  std::vector<std::size_t> fallback(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) fallback[i] = i;

  // Per-request scratch, hoisted out of the loop: at cluster scale
  // (1k nodes, 10M+ requests) per-request vector churn dominated the
  // admission path.
  std::vector<std::size_t> candidate;
  candidate.reserve(config.tasks_per_request);
  std::vector<core::TaskStats> candidate_stats;
  candidate_stats.reserve(config.tasks_per_request);
  std::vector<std::size_t> chosen;
  chosen.reserve(config.num_nodes);

  double t = 0.0;
  double next_report = config.report_interval;
  const double mean_interarrival = 1.0 / config.lambda;

  for (std::uint64_t j = 0; j < config.num_requests; ++j) {
    t += arrival_rng.exponential(mean_interarrival);

    // Periodic distributed reporting (Fig. 14): each node pushes its
    // current windowed moments to the central registry.
    while (t >= next_report) {
      for (std::size_t n = 0; n < config.num_nodes; ++n) {
        // Evict stale samples first: a node the scheduler routed around
        // must not keep reporting its last congested window forever.
        monitors.advance(n, next_report);
        if (const auto s = monitors.node_stats(n)) {
          registry.report(n, next_report, *s);
        }
      }
      next_report += config.report_interval;
    }

    const bool measured = j >= warmup;
    chosen.clear();
    bool admitted = true;
    if (config.admission_enabled && measured) {
      // Stage 1: RANDOM placement checked against the SLO (Eq. 5 on the
      // sampled subset).  Random-first placement is essential: always
      // routing to the currently-best k nodes herds the whole offered load
      // onto them between registry refreshes and saturates them.
      candidate.clear();
      for (std::size_t i = 0; i < config.tasks_per_request; ++i) {
        const std::size_t pick =
            i + static_cast<std::size_t>(
                    pick_rng.uniform_int(config.num_nodes - i));
        std::swap(fallback[i], fallback[pick]);
        candidate.push_back(fallback[i]);
      }
      candidate_stats.clear();
      bool have_stats = true;
      for (std::size_t n : candidate) {
        if (const auto s = registry.fresh_stats(n, t)) {
          candidate_stats.push_back(*s);
        } else {
          have_stats = false;
          break;
        }
      }
      if (!have_stats) {
        // Bootstrap: statistics not primed yet; admit blindly on the
        // random subset so the measurement loop can start.
        chosen = candidate;
      } else {
        const double predicted = core::inhomogeneous_quantile(
            candidate_stats, config.slo.percentile);
        if (predicted <= config.slo.latency) {
          chosen = candidate;
          predicted_acc += predicted;
        } else {
          // Stage 2: the random subset cannot meet the SLO -- ask the
          // controller for the best-k selection ("which k Fork nodes
          // should be used such that the tail-latency SLO can be met").
          const auto decision =
              controller.admit(config.tasks_per_request, config.slo, t);
          if (decision.admitted) {
            chosen = decision.chosen_nodes;
            predicted_acc += decision.predicted_latency;
          } else {
            admitted = false;  // even the best subset violates: reject
          }
        }
      }
    }

    if (measured) {
      ++result.offered;
      if (!admitted) {
        ++result.rejected;
        continue;
      }
      ++result.admitted;
    }

    if (chosen.empty()) {
      // Uniform random placement when the controller did not pick nodes
      // (bootstrap or admission disabled): k distinct nodes, round-robin
      // rotated to avoid hammering a fixed prefix.
      chosen.reserve(config.tasks_per_request);
      for (std::size_t i = 0; i < config.tasks_per_request; ++i) {
        const std::size_t pick =
            i + static_cast<std::size_t>(
                    pick_rng.uniform_int(config.num_nodes - i));
        std::swap(fallback[i], fallback[pick]);
        chosen.push_back(fallback[i]);
      }
    }

    double completion_max = 0.0;
    for (std::size_t node_id : chosen) {
      nodes[node_id].submit_task(
          t, j, [&](std::uint64_t, double arrival, double completion) {
            completion_max = std::max(completion_max, completion);
            monitors.record(node_id, completion, completion - arrival);
            if (measured) cluster.record(node_id, completion - arrival);
          });
    }
    if (measured) {
      const double response = completion_max - t;
      if (config.record_responses) {
        result.admitted_responses.push_back(response);
      }
      result.response_histogram.record(response);
      if (response > config.slo.latency) ++result.violations;
    }
  }

  if (result.admitted > 0) {
    result.violation_rate = static_cast<double>(result.violations) /
                            static_cast<double>(result.admitted);
    result.mean_predicted_latency =
        predicted_acc / static_cast<double>(result.admitted);
  }
  if (result.offered > 0) {
    result.admit_rate = static_cast<double>(result.admitted) /
                        static_cast<double>(result.offered);
  }
  result.node_tasks = cluster.summary();
  return result;
}

}  // namespace forktail::sched
