// Service-time distribution interface.
//
// Every distribution used by the simulators and the white-box analysis
// provides: sampling, raw moments E[S^k] for k = 1..3 (Eq. 11 of the
// paper needs the third moment), a CDF, and a Capabilities descriptor.
//
// The capability model replaces the old convention where every moment was
// assumed finite and transform availability was probed with dynamic_cast
// lists scattered across consumers.  A Distribution now *declares* what it
// can do -- which raw moments are finite, whether the tail is light,
// subexponential, or regularly varying (and with what index), whether the
// MGF/LST converge, and its support -- and consumers query instead of
// assuming: the GE fit degrades with stated reasons when moment(3) is
// infinite, the linear bounds pick their exact/PK/Chernoff tier from the
// flags, and the perfect sampler refuses non-MGF services with a typed
// error naming the tail class.
#pragma once

#include <climits>
#include <cmath>
#include <complex>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace forktail::dist {

/// Coarse tail classification, ordered by heaviness.
enum class TailClass {
  kLight,             ///< exponential-or-lighter decay; MGF converges near 0
  kSubexponential,    ///< heavier than exponential, all moments may still
                      ///< be finite (Weibull shape < 1, LogNormal)
  kRegularlyVarying,  ///< P(S > x) ~ tail_scale * x^-tail_index (Pareto)
};

inline const char* tail_class_name(TailClass t) {
  switch (t) {
    case TailClass::kLight:
      return "light";
    case TailClass::kSubexponential:
      return "subexponential";
    case TailClass::kRegularlyVarying:
      return "regularly-varying";
  }
  return "unknown";
}

/// What a distribution can actually deliver.  The default-constructed
/// value is the conservative claim -- subexponential tail, no transforms,
/// all moments finite -- matching what the pre-capability code assumed for
/// unknown families (mgf_available fell back to false; moments were
/// trusted).
struct Capabilities {
  TailClass tail = TailClass::kSubexponential;

  /// Regular-variation index alpha in P(S > x) ~ tail_scale * x^-alpha.
  /// +infinity unless tail == kRegularlyVarying.
  double tail_index = std::numeric_limits<double>::infinity();

  /// The constant c in P(S > x) ~ c * x^-tail_index (meaningful only for
  /// regularly varying tails; e.g. scale^alpha for a pure Pareto).
  double tail_scale = 0.0;

  /// Largest k with E[S^k] < infinity.  INT_MAX = all moments finite.
  int finite_moments = INT_MAX;

  bool has_mgf = false;  ///< E[e^{theta S}] finite on a right-neighbourhood
                         ///< of 0 (equivalently: a Lundberg root exists)
  bool has_lst = false;  ///< complex Laplace-Stieltjes transform available
  bool memoryless = false;  ///< exactly the exponential family

  double support_lo = 0.0;
  double support_hi = std::numeric_limits<double>::infinity();

  bool moment_finite(int k) const { return k <= finite_moments; }
  bool bounded_support() const { return std::isfinite(support_hi); }
};

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draw one variate.
  virtual double sample(util::Rng& rng) const = 0;

  /// Draw `out.size()` variates into `out`.
  ///
  /// Contract: the written values MUST be bit-identical to `out.size()`
  /// successive `sample()` calls on an equal-state `rng` (the replay
  /// simulators rely on this to batch service demands without perturbing
  /// any stream).  The base implementation loops `sample()`; concrete
  /// distributions override with a devirtualized tight loop so one virtual
  /// dispatch is amortized over the whole block.
  virtual void sample_n(util::Rng& rng, std::span<double> out) const {
    for (double& x : out) x = sample(rng);
  }

  /// Raw moment E[S^k], k in 1..3.  Computed analytically; +infinity when
  /// the moment diverges (capabilities().moment_finite(k) == false).
  virtual double moment(int k) const = 0;

  /// P(S <= x).
  virtual double cdf(double x) const = 0;

  virtual std::string name() const = 0;

  /// What this distribution can deliver.  The base default is the
  /// conservative claim (see Capabilities); every concrete family in
  /// src/dist overrides with its exact profile.
  virtual Capabilities capabilities() const { return Capabilities{}; }

  double mean() const { return moment(1); }

  double variance() const {
    const double m = moment(1);
    return moment(2) - m * m;
  }

  /// Squared coefficient of variation C_S^2 = V[S]/E[S]^2.
  double scv() const {
    const double m = moment(1);
    return variance() / (m * m);
  }

  /// Coefficient of variation.  NaN when catastrophic cancellation drives
  /// the computed variance negative -- the old behaviour silently returned
  /// 0, which downstream moment-matching mistook for a deterministic
  /// service.
  double cv() const { return std::sqrt(scv()); }

  /// E[e^{theta S}] at real theta >= 0.  Implemented by every family with
  /// capabilities().has_mgf; returns +infinity at and beyond the
  /// convergence abscissa.  Callers should go through dist::mgf()
  /// (transforms.hpp), which adds the capability gate and the theta = 0
  /// shortcut.
  virtual double mgf(double /*theta*/) const {
    throw std::logic_error("MGF not available for " + name());
  }

  /// Laplace-Stieltjes transform E[e^{-sS}] at complex s.  Only families
  /// declaring capabilities().has_lst implement this; others throw.
  bool has_lst() const { return capabilities().has_lst; }
  virtual std::complex<double> lst(std::complex<double> /*s*/) const {
    throw std::logic_error("LST not available for " + name());
  }

 protected:
  static void check_moment_order(int k) {
    if (k < 1 || k > 3) {
      throw std::out_of_range("moment order must be in 1..3");
    }
  }
};

/// Uniform (mean, cv) validation for the from_mean_cv constructor family:
/// every parameterisation by mean and coefficient of variation rejects
/// non-finite or non-positive values the same way (a CV of 0 is a
/// Deterministic, not a degenerate member of a continuous family).
inline void require_mean_cv(const char* family, double mean, double cv) {
  if (!(std::isfinite(mean) && mean > 0.0)) {
    throw std::invalid_argument(std::string(family) +
                                ": mean must be finite and > 0");
  }
  if (!(std::isfinite(cv) && cv > 0.0)) {
    throw std::invalid_argument(std::string(family) +
                                ": cv must be finite and > 0");
  }
}

using DistPtr = std::shared_ptr<const Distribution>;

}  // namespace forktail::dist
