// Service-time distribution interface.
//
// Every distribution used by the simulators and the white-box analysis
// provides: sampling, analytic raw moments E[S^k] for k = 1..3 (Eq. 11 of
// the paper needs the third moment), a CDF, and -- for the phase-type
// family used by the EAT baseline -- the Laplace-Stieltjes transform.
#pragma once

#include <cmath>
#include <complex>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace forktail::dist {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draw one variate.
  virtual double sample(util::Rng& rng) const = 0;

  /// Draw `out.size()` variates into `out`.
  ///
  /// Contract: the written values MUST be bit-identical to `out.size()`
  /// successive `sample()` calls on an equal-state `rng` (the replay
  /// simulators rely on this to batch service demands without perturbing
  /// any stream).  The base implementation loops `sample()`; concrete
  /// distributions override with a devirtualized tight loop so one virtual
  /// dispatch is amortized over the whole block.
  virtual void sample_n(util::Rng& rng, std::span<double> out) const {
    for (double& x : out) x = sample(rng);
  }

  /// Raw moment E[S^k], k in 1..3, computed analytically.
  virtual double moment(int k) const = 0;

  /// P(S <= x).
  virtual double cdf(double x) const = 0;

  virtual std::string name() const = 0;

  double mean() const { return moment(1); }

  double variance() const {
    const double m = moment(1);
    return moment(2) - m * m;
  }

  /// Squared coefficient of variation C_S^2 = V[S]/E[S]^2.
  double scv() const {
    const double m = moment(1);
    return variance() / (m * m);
  }

  double cv() const {
    const double s = scv();
    return s > 0.0 ? std::sqrt(s) : 0.0;
  }

  /// Laplace-Stieltjes transform E[e^{-sS}] at complex s.  Only the
  /// phase-type family (exponential, Erlang, hyperexponential,
  /// deterministic) implements this; others throw.
  virtual bool has_lst() const { return false; }
  virtual std::complex<double> lst(std::complex<double> /*s*/) const {
    throw std::logic_error("LST not available for " + name());
  }

 protected:
  static void check_moment_order(int k) {
    if (k < 1 || k > 3) {
      throw std::out_of_range("moment order must be in 1..3");
    }
  }
};

using DistPtr = std::shared_ptr<const Distribution>;

}  // namespace forktail::dist
