// Real exponential-moment transforms of the service-time roster: the
// moment generating function E[e^{theta S}] and the Lundberg (adjustment)
// root of the associated M/G/1 reversed random walk.
//
// Two consumers need real-argument transforms that the complex LST of
// dist::Distribution does not expose safely:
//
//   * the perfect sampler (fjsim/perfect_sampler.hpp) certifies its
//     coupling-from-the-past stopping rule with the Lundberg tail bound
//     P(sup of the reversed walk beyond the horizon > g) <= e^{-theta* g},
//     which requires the positive root of E[e^{theta (S - A)}] = 1;
//   * the linear-transformation bounds (baselines/linear_bounds.hpp) build
//     their certified upper quantile from a Chernoff bound on the
//     Pollaczek-Khinchine transform evaluated at real negative arguments.
//
// Availability is a capability, not a type list: a family declares
// capabilities().has_mgf and implements the Distribution::mgf member
// (closed forms for the phase-type roster, the exact mixture-of-uniforms
// form for Empirical tables, Gauss-Legendre quadrature over the bounded
// support of TruncatedPareto).  Heavy-tailed families without an MGF
// (Weibull with shape < 1, LogNormal, Pareto) declare has_mgf == false and
// their consumers refuse with a typed error instead of silently producing
// an uncertified number.
#pragma once

#include <functional>

#include "dist/distribution.hpp"

namespace forktail::dist {

/// True when mgf() below can evaluate E[e^{theta S}] for this distribution
/// (equivalently: the service tail is light enough for a Lundberg root).
/// Exactly capabilities().has_mgf.
bool mgf_available(const Distribution& d);

/// E[e^{theta S}] for theta >= 0.  Returns +infinity at and beyond the
/// convergence abscissa (phase-type poles); never throws for theta >= 0
/// when mgf_available(d).  Throws std::invalid_argument otherwise.
double mgf(const Distribution& d, double theta);

/// Largest theta in [0, theta*] such that E[e^{theta (B S - A)}] <= 1,
/// where A ~ Exp(1/lambda) is an interarrival time, S the service draw and
/// B an independent Bernoulli(mark_prob) thinning mark (mark_prob = 1 for
/// the homogeneous walk; E[k]/N for the subset walk).  This is the
/// adjustment coefficient of the reversed Loynes walk: for every g >= 0,
/// P(sup over the unseen past > g) <= e^{-theta g} (Lundberg's
/// inequality).  Requires a stable walk (mark_prob * lambda * E[S] < 1)
/// and mgf_available(d); throws std::invalid_argument otherwise.
double lundberg_root(const Distribution& d, double lambda, double mark_prob);

/// MGF of a uniform on [a, b] (a <= b): e^{theta a} expm1(theta (b-a)) /
/// (theta (b-a)), with the exact limit at theta (b-a) -> 0.  Stable for
/// the narrow segments an Empirical quantile table produces.  Shared by
/// the UniformReal and Empirical mgf members.
double uniform_segment_mgf(double theta, double a, double b);

/// Integrate f over [lo, hi] with `panels` composite 32-point
/// Gauss-Legendre panels (nodes computed once by Newton iteration on the
/// Legendre recurrence).  Used by bounded-support mgf members
/// (TruncatedPareto) and the capability property tests' numerical moment
/// integration.
double integrate_gl32(const std::function<double(double)>& f, double lo,
                      double hi, int panels);

}  // namespace forktail::dist
