// Gamma service-time distribution.
//
// Fills the gap between the phase-type roster and the heavy-tailed one: it
// covers any CV (shape = 1/CV^2), has closed-form moments, a numerically
// solid CDF (regularized incomplete gamma), and -- unlike Weibull -- an
// analytic Laplace-Stieltjes transform (1 + theta s)^{-k}, so the EAT
// baseline can consume it even for non-integer shapes where no finite
// phase-type representation exists.
#pragma once

#include "dist/distribution.hpp"

namespace forktail::dist {

class Gamma final : public Distribution {
 public:
  /// shape k > 0, scale theta > 0; mean = k*theta, variance = k*theta^2.
  Gamma(double shape, double scale);

  /// shape = 1/cv^2, scale = mean*cv^2.
  static Gamma from_mean_cv(double mean, double cv);

  double sample(util::Rng& rng) const override;
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "Gamma"; }
  Capabilities capabilities() const override;
  double mgf(double theta) const override;
  std::complex<double> lst(std::complex<double> s) const override;

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Regularized lower incomplete gamma P(a, x) -- exposed for tests.
double regularized_gamma_p(double a, double x);

}  // namespace forktail::dist
