// Heavy-tailed (and trace-modelling) service-time distributions: Weibull,
// truncated Pareto, lognormal, lower-truncated normal, untruncated Pareto,
// and the Pareto-lognormal mixture.
//
// Parameterisations follow Section 4.1 of the paper exactly; the
// `from_mean_cv` constructors re-derive the paper's published shape/scale
// values from (mean, CV) so tests can assert agreement.  The untruncated
// Pareto and the mixture are the regularly-varying regime (arXiv
// 2105.13738, 2211.02313): raw moments E[S^k] diverge for k >= alpha, so
// their capabilities() report a finite-moment cutoff and the tail index,
// and consumers (GE fit, linear bounds, perfect sampler) degrade or refuse
// instead of computing garbage.
#pragma once

#include <cmath>

#include "dist/distribution.hpp"

namespace forktail::dist {

/// Weibull: F(x) = 1 - exp[-(x/scale)^shape].
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);

  /// Solve shape from CV (CV^2 = Gamma(1+2/k)/Gamma(1+1/k)^2 - 1, monotone
  /// decreasing in k), then scale from the mean.
  static Weibull from_mean_cv(double mean, double cv);

  // Defined in the header so the replay fast path can inline it
  // (see fjsim::LindleyState).
  double sample(util::Rng& rng) const override {
    return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
  }
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "Weibull"; }
  Capabilities capabilities() const override;

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Truncated Pareto on [L, H]:
/// F(x) = (1 - (L/x)^alpha) / (1 - (L/H)^alpha).
class TruncatedPareto final : public Distribution {
 public:
  TruncatedPareto(double alpha, double lower, double upper);

  /// Solve (alpha, L) from (mean, CV) at a fixed upper bound H -- the
  /// calibration the paper uses (mean 4.22 ms, CV 1.2, H = 276.6 ms gives
  /// alpha = 2.0119, L = 2.14 ms).
  static TruncatedPareto from_mean_cv_upper(double mean, double cv, double upper);

  double sample(util::Rng& rng) const override {
    // Inverse transform: x = L / (1 - u * trunc_mass)^{1/alpha}.
    const double u = rng.uniform();
    return lower_ / std::pow(1.0 - u * trunc_mass_, 1.0 / alpha_);
  }
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "TruncPareto"; }
  Capabilities capabilities() const override;
  double mgf(double theta) const override;

  double alpha() const noexcept { return alpha_; }
  double lower() const noexcept { return lower_; }
  double upper() const noexcept { return upper_; }
  double trunc_mass() const noexcept { return trunc_mass_; }

 private:
  double alpha_;
  double lower_;
  double upper_;
  double trunc_mass_;  // 1 - (L/H)^alpha
};

/// Lognormal parameterised by the underlying normal (mu, sigma).
class LogNormal final : public Distribution {
 public:
  LogNormal(double mu, double sigma);

  static LogNormal from_mean_cv(double mean, double cv);

  double sample(util::Rng& rng) const override {
    return std::exp(mu_ + sigma_ * rng.normal());
  }
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "LogNormal"; }
  Capabilities capabilities() const override;

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Normal(mu, sigma^2) truncated below at `lower` (>= 0).  Used for
/// per-task service times in the Facebook-like trace, where the paper draws
/// Normal(m, (2m)^2) -- which would otherwise produce negative times.
class TruncatedNormal final : public Distribution {
 public:
  TruncatedNormal(double mu, double sigma, double lower);

  double sample(util::Rng& rng) const override;
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "TruncNormal"; }
  Capabilities capabilities() const override;

 private:
  double mu_;
  double sigma_;
  double lower_;
  double alpha0_;       // (lower - mu) / sigma
  double tail_mass_;    // 1 - Phi(alpha0)
  double hazard_;       // phi(alpha0) / tail_mass_
  double moments_[3];   // precomputed E[X^k]
};

/// Untruncated Pareto: P(S > x) = (scale/x)^alpha for x >= scale.
/// Regularly varying with index alpha; E[S^k] = +infinity for k >= alpha,
/// no MGF, no Lundberg root.  This is the regime where the paper's GE
/// moment matching breaks and the EVT predictor takes over.
class Pareto final : public Distribution {
 public:
  Pareto(double alpha, double scale);

  /// Calibrate the scale from a target mean at a given tail index:
  /// E[S] = alpha scale / (alpha - 1), so scale = mean (alpha - 1) / alpha.
  /// Requires alpha > 1 (otherwise the mean itself diverges and no
  /// load-based calibration exists).
  static Pareto from_mean_tail(double mean, double alpha);

  // Defined in the header so the replay fast path can inline it.
  double sample(util::Rng& rng) const override {
    // Inverse transform: x = scale / (1 - u)^{1/alpha}.
    const double u = rng.uniform();
    return scale_ / std::pow(1.0 - u, 1.0 / alpha_);
  }
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "Pareto"; }
  Capabilities capabilities() const override;

  double alpha() const noexcept { return alpha_; }
  double scale() const noexcept { return scale_; }

 private:
  double alpha_;
  double scale_;
};

/// Mixture of a lognormal body and an untruncated Pareto tail: with
/// probability body_weight draw from the lognormal, else from the Pareto.
/// Models the common datacenter profile of a well-behaved bulk with a
/// power-law stragglers tail; regularly varying with the Pareto's index
/// and tail constant (1 - body_weight) scale^alpha.
class ParetoLogNormalMixture final : public Distribution {
 public:
  ParetoLogNormalMixture(double body_weight, const LogNormal& body,
                         const Pareto& tail);

  /// Calibrate both components to the same target mean (so the overall
  /// mean is exactly `mean` for any body_weight): the body is
  /// LogNormal::from_mean_cv(mean, body_cv), the tail
  /// Pareto::from_mean_tail(mean, alpha).
  static ParetoLogNormalMixture from_mean_tail(double mean, double alpha,
                                               double body_weight = 0.9,
                                               double body_cv = 0.8);

  double sample(util::Rng& rng) const override {
    return rng.bernoulli(body_weight_) ? body_.sample(rng) : tail_.sample(rng);
  }
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "HeavyMixture"; }
  Capabilities capabilities() const override;

  double body_weight() const noexcept { return body_weight_; }
  const LogNormal& body() const noexcept { return body_; }
  const Pareto& tail() const noexcept { return tail_; }

 private:
  double body_weight_;
  LogNormal body_;
  Pareto tail_;
};

/// Standard normal CDF (shared helper).
double normal_cdf(double z);
/// Standard normal pdf.
double normal_pdf(double z);
/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-13).
double normal_quantile(double p);

}  // namespace forktail::dist
