#include "dist/heavy.hpp"

#include <climits>
#include <cmath>
#include <limits>

#include "dist/transforms.hpp"
#include "stats/roots.hpp"
#include "stats/special_functions.hpp"

namespace forktail::dist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double normal_cdf(double z) { return stats::normal_cdf(z); }

double normal_pdf(double z) { return stats::normal_pdf(z); }

double normal_quantile(double p) { return stats::normal_quantile(p); }

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0 && scale > 0.0)) {
    throw std::invalid_argument("Weibull: shape and scale must be > 0");
  }
}

Weibull Weibull::from_mean_cv(double mean, double cv) {
  require_mean_cv("Weibull", mean, cv);
  const double target = cv * cv;
  auto cv2_of_shape = [](double k) {
    const double g1 = std::lgamma(1.0 + 1.0 / k);
    const double g2 = std::lgamma(1.0 + 2.0 / k);
    return std::exp(g2 - 2.0 * g1) - 1.0;
  };
  // CV^2 is strictly decreasing in shape; bracket and solve.
  double lo = 0.05;  // CV^2(0.05) is astronomically large
  double hi = 50.0;  // CV^2(50) ~ 0.0006
  const double shape = stats::brent(
      [&](double k) { return cv2_of_shape(k) - target; }, lo, hi,
      {.x_tolerance = 1e-12, .f_tolerance = 0.0, .max_iterations = 200});
  const double scale = mean / std::exp(std::lgamma(1.0 + 1.0 / shape));
  return Weibull(shape, scale);
}

void Weibull::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = Weibull::sample(rng);  // devirtualized tight loop
}

double Weibull::moment(int k) const {
  check_moment_order(k);
  return std::pow(scale_, k) * std::exp(std::lgamma(1.0 + static_cast<double>(k) / shape_));
}

double Weibull::cdf(double x) const {
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

Capabilities Weibull::capabilities() const {
  Capabilities caps;
  // All moments are finite for every shape, but below shape 1 the tail is
  // stretched-exponential (subexponential class): the MGF diverges for
  // every theta > 0 and no Lundberg root exists.  At shape >= 1 the tail
  // is exponential-or-lighter; no closed-form MGF member is provided, so
  // has_mgf stays false either way (matching the historical roster).
  caps.tail = shape_ >= 1.0 ? TailClass::kLight : TailClass::kSubexponential;
  return caps;
}

// ------------------------------------------------------------ TruncatedPareto

TruncatedPareto::TruncatedPareto(double alpha, double lower, double upper)
    : alpha_(alpha), lower_(lower), upper_(upper) {
  if (!(alpha > 0.0) || !(lower > 0.0) || !(upper > lower)) {
    throw std::invalid_argument("TruncatedPareto: invalid parameters");
  }
  trunc_mass_ = 1.0 - std::pow(lower_ / upper_, alpha_);
}

void TruncatedPareto::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = TruncatedPareto::sample(rng);
}

double TruncatedPareto::moment(int k) const {
  check_moment_order(k);
  const double kk = static_cast<double>(k);
  const double la = std::pow(lower_, alpha_);
  if (std::fabs(kk - alpha_) < 1e-9) {
    // E[X^k] = alpha L^alpha ln(H/L) / trunc_mass at k == alpha.
    return alpha_ * la * std::log(upper_ / lower_) / trunc_mass_;
  }
  return alpha_ * la *
         (std::pow(upper_, kk - alpha_) - std::pow(lower_, kk - alpha_)) /
         ((kk - alpha_) * trunc_mass_);
}

double TruncatedPareto::cdf(double x) const {
  if (x <= lower_) return 0.0;
  if (x >= upper_) return 1.0;
  return (1.0 - std::pow(lower_ / x, alpha_)) / trunc_mass_;
}

Capabilities TruncatedPareto::capabilities() const {
  Capabilities caps;
  // Bounded support: every exponential moment is finite regardless of how
  // heavy the body looks.
  caps.tail = TailClass::kLight;
  caps.has_mgf = true;
  caps.support_lo = lower_;
  caps.support_hi = upper_;
  return caps;
}

double TruncatedPareto::mgf(double theta) const {
  // Bounded support [L, H]: the integrand e^{theta x} f(x) is smooth and
  // positive, so a composite Gauss-Legendre rule converges geometrically.
  // 64 panels keep the relative error below 1e-12 for theta H up to ~700
  // (past which e^{theta H} overflows anyway).
  const double scale = alpha_ * std::pow(lower_, alpha_) / trunc_mass_;
  const double value = integrate_gl32(
      [&](double x) {
        return std::exp(theta * x) * scale * std::pow(x, -alpha_ - 1.0);
      },
      lower_, upper_, 64);
  return std::isfinite(value) ? value : kInf;
}

TruncatedPareto TruncatedPareto::from_mean_cv_upper(double mean, double cv,
                                                    double upper) {
  require_mean_cv("TruncatedPareto", mean, cv);
  if (!(upper > mean)) {
    throw std::invalid_argument("TruncatedPareto: upper must exceed the mean");
  }
  const double target_m2 = mean * mean * (1.0 + cv * cv);
  // For fixed alpha, the mean is strictly increasing in L; solve L from the
  // mean, then match the second moment via an outer search on alpha.
  auto lower_for_alpha = [&](double alpha) {
    auto mean_of = [&](double lower) {
      TruncatedPareto d(alpha, lower, upper);
      return d.moment(1) - mean;
    };
    // mean(L -> 0+) -> small; mean(L -> upper) -> upper > mean.
    return stats::brent(mean_of, upper * 1e-9, upper * (1.0 - 1e-9),
                        {.x_tolerance = 1e-13 * upper, .f_tolerance = 0.0,
                         .max_iterations = 300});
  };
  auto m2_err = [&](double alpha) {
    const double lower = lower_for_alpha(alpha);
    TruncatedPareto d(alpha, lower, upper);
    return d.moment(2) - target_m2;
  };
  // Larger alpha => thinner tail => smaller second moment at fixed mean.
  const double alpha = stats::brent(m2_err, 1.05, 20.0,
                                    {.x_tolerance = 1e-10, .f_tolerance = 0.0,
                                     .max_iterations = 300});
  return TruncatedPareto(alpha, lower_for_alpha(alpha), upper);
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("LogNormal: sigma must be > 0");
}

LogNormal LogNormal::from_mean_cv(double mean, double cv) {
  require_mean_cv("LogNormal", mean, cv);
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormal(mu, std::sqrt(sigma2));
}

void LogNormal::sample_n(util::Rng& rng, std::span<double> out) const {
  // rng.normal()'s Box-Muller cache lives in the Rng, so the loop consumes
  // the underlying uniform stream exactly as successive sample() calls do.
  for (double& x : out) x = LogNormal::sample(rng);
}

double LogNormal::moment(int k) const {
  check_moment_order(k);
  const double kk = static_cast<double>(k);
  return std::exp(kk * mu_ + 0.5 * kk * kk * sigma_ * sigma_);
}

double LogNormal::cdf(double x) const {
  return x <= 0.0 ? 0.0 : normal_cdf((std::log(x) - mu_) / sigma_);
}

Capabilities LogNormal::capabilities() const {
  Capabilities caps;
  // All moments finite (E[S^k] = e^{k mu + k^2 sigma^2 / 2}), but the tail
  // is subexponential: the MGF diverges for every theta > 0.
  caps.tail = TailClass::kSubexponential;
  return caps;
}

// ------------------------------------------------------------ TruncatedNormal

TruncatedNormal::TruncatedNormal(double mu, double sigma, double lower)
    : mu_(mu), sigma_(sigma), lower_(lower) {
  if (!(sigma > 0.0)) throw std::invalid_argument("TruncatedNormal: sigma <= 0");
  if (lower < 0.0) throw std::invalid_argument("TruncatedNormal: lower < 0");
  alpha0_ = (lower_ - mu_) / sigma_;
  tail_mass_ = 1.0 - normal_cdf(alpha0_);
  if (tail_mass_ < 1e-12) {
    throw std::invalid_argument("TruncatedNormal: negligible mass above lower");
  }
  hazard_ = normal_pdf(alpha0_) / tail_mass_;
  // Recurrence m_k = mu m_{k-1} + (k-1) sigma^2 m_{k-2} + sigma lower^{k-1} hazard.
  double m_prev2 = 1.0;                      // m_0
  double m_prev1 = mu_ + sigma_ * hazard_;   // m_1
  moments_[0] = m_prev1;
  for (int k = 2; k <= 3; ++k) {
    const double mk = mu_ * m_prev1 +
                      static_cast<double>(k - 1) * sigma_ * sigma_ * m_prev2 +
                      sigma_ * std::pow(lower_, k - 1) * hazard_;
    moments_[k - 1] = mk;
    m_prev2 = m_prev1;
    m_prev1 = mk;
  }
}

double TruncatedNormal::sample(util::Rng& rng) const {
  // Rejection from the untruncated normal; efficient when the retained mass
  // is large (our traces use lower ~ 0 and mu > 0).  Falls back to
  // inverse-CDF when the acceptance probability is small.
  if (tail_mass_ > 0.25) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double x = rng.normal(mu_, sigma_);
      if (x >= lower_) return x;
    }
  }
  const double u = rng.uniform();
  const double p = normal_cdf(alpha0_) + u * tail_mass_;
  const double clamped = std::min(p, 1.0 - 1e-16);
  return mu_ + sigma_ * normal_quantile(clamped);
}

void TruncatedNormal::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = TruncatedNormal::sample(rng);
}

double TruncatedNormal::moment(int k) const {
  check_moment_order(k);
  return moments_[k - 1];
}

double TruncatedNormal::cdf(double x) const {
  if (x <= lower_) return 0.0;
  return (normal_cdf((x - mu_) / sigma_) - normal_cdf(alpha0_)) / tail_mass_;
}

Capabilities TruncatedNormal::capabilities() const {
  Capabilities caps;
  // Gaussian tail: lighter than exponential, all exponential moments
  // finite -- but no mgf member is provided (no consumer needs it), so
  // has_mgf stays false.
  caps.tail = TailClass::kLight;
  caps.support_lo = lower_;
  return caps;
}

// --------------------------------------------------------------------- Pareto

Pareto::Pareto(double alpha, double scale) : alpha_(alpha), scale_(scale) {
  if (!(alpha > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("Pareto: alpha and scale must be > 0");
  }
}

Pareto Pareto::from_mean_tail(double mean, double alpha) {
  if (!(std::isfinite(mean) && mean > 0.0)) {
    throw std::invalid_argument("Pareto: mean must be finite and > 0");
  }
  if (!(std::isfinite(alpha) && alpha > 1.0)) {
    throw std::invalid_argument(
        "Pareto: tail index must be > 1 (the mean diverges otherwise, so no "
        "mean-based calibration exists)");
  }
  return Pareto(alpha, mean * (alpha - 1.0) / alpha);
}

void Pareto::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = Pareto::sample(rng);  // devirtualized tight loop
}

double Pareto::moment(int k) const {
  check_moment_order(k);
  const double kk = static_cast<double>(k);
  if (alpha_ <= kk) return kInf;
  return alpha_ * std::pow(scale_, kk) / (alpha_ - kk);
}

double Pareto::cdf(double x) const {
  return x <= scale_ ? 0.0 : 1.0 - std::pow(scale_ / x, alpha_);
}

Capabilities Pareto::capabilities() const {
  Capabilities caps;
  caps.tail = TailClass::kRegularlyVarying;
  caps.tail_index = alpha_;
  caps.tail_scale = std::pow(scale_, alpha_);  // P(S > x) = scale^alpha x^-alpha
  // E[S^k] < infinity iff k < alpha: the largest finite order is
  // ceil(alpha) - 1 (alpha = 2.5 -> 2; integer alpha = 2 -> 1).
  caps.finite_moments =
      std::max(0, static_cast<int>(std::ceil(alpha_)) - 1);
  caps.support_lo = scale_;
  return caps;
}

// ------------------------------------------------------ ParetoLogNormalMixture

ParetoLogNormalMixture::ParetoLogNormalMixture(double body_weight,
                                               const LogNormal& body,
                                               const Pareto& tail)
    : body_weight_(body_weight), body_(body), tail_(tail) {
  if (!(body_weight >= 0.0 && body_weight < 1.0)) {
    throw std::invalid_argument(
        "ParetoLogNormalMixture: body_weight must be in [0, 1) (weight 1 "
        "leaves no Pareto tail -- use LogNormal directly)");
  }
}

ParetoLogNormalMixture ParetoLogNormalMixture::from_mean_tail(
    double mean, double alpha, double body_weight, double body_cv) {
  return ParetoLogNormalMixture(body_weight,
                                LogNormal::from_mean_cv(mean, body_cv),
                                Pareto::from_mean_tail(mean, alpha));
}

void ParetoLogNormalMixture::sample_n(util::Rng& rng,
                                      std::span<double> out) const {
  // The branch draw interleaves with the component draws, so the generic
  // loop IS the bitwise-contract implementation (and the vec sampler's
  // kGeneric lane reproduces it per lane).
  for (double& x : out) x = ParetoLogNormalMixture::sample(rng);
}

double ParetoLogNormalMixture::moment(int k) const {
  check_moment_order(k);
  // A diverging tail moment propagates: w * finite + (1 - w) * inf = inf.
  return body_weight_ * body_.moment(k) +
         (1.0 - body_weight_) * tail_.moment(k);
}

double ParetoLogNormalMixture::cdf(double x) const {
  return body_weight_ * body_.cdf(x) + (1.0 - body_weight_) * tail_.cdf(x);
}

Capabilities ParetoLogNormalMixture::capabilities() const {
  const Capabilities tail_caps = tail_.capabilities();
  Capabilities caps;
  caps.tail = TailClass::kRegularlyVarying;
  caps.tail_index = tail_caps.tail_index;
  // P(S > x) ~ (1 - w) P(tail > x): the lognormal body is lighter than any
  // power law, so only the Pareto branch survives in the tail constant.
  caps.tail_scale = (1.0 - body_weight_) * tail_caps.tail_scale;
  caps.finite_moments = tail_caps.finite_moments;
  return caps;
}

}  // namespace forktail::dist
