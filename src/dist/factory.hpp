// Construction of the paper's named service-time distributions.
//
// Section 4 of the paper evaluates a fixed roster of service-time
// distributions, all normalised to the same mean (4.22 ms):
//   - "Exponential"            (CV = 1)
//   - "Erlang-2"               (CV^2 = 0.5)
//   - "HyperExp2"              (CV^2 = 2, balanced means)
//   - "Weibull"                (CV = 1.5; shape 0.6848, scale 3.2630)
//   - "TruncPareto"            (CV = 1.2, H = 276.6 ms; alpha 2.0119, L 2.14)
//   - "Empirical"              (synthesized Google-leaf table)
// plus the regularly-varying extensions used by the EVT study:
//   - "Pareto"                 (untruncated; tail index configurable)
//   - "HeavyMixture"           (lognormal body + untruncated Pareto tail)
#pragma once

#include <vector>

#include "dist/distribution.hpp"

namespace forktail::dist {

/// The common mean service time used across the paper's experiments (ms).
inline constexpr double kPaperMeanServiceMs = 4.22;

/// Tail index used for "Pareto"/"HeavyMixture" when none is given: heavy
/// enough that E[S^3] diverges (the GE fit must degrade) while E[S^2]
/// stays finite, matching the regime arXiv 2105.13738 analyses.
inline constexpr double kDefaultTailIndex = 2.2;

/// Build one of the named distributions above at the paper's mean.
/// Throws std::invalid_argument for unknown names.
DistPtr make_named(const std::string& name);

/// Build a named distribution rescaled to an explicit mean (same shape /
/// CV as the paper's roster).  `mean <= 0` selects the paper's default
/// mean.  Throws std::invalid_argument for unknown names and for
/// "Empirical", whose synthesized table has no free mean parameter.
DistPtr make_named(const std::string& name, double mean);

/// As above, with an explicit regular-variation tail index for "Pareto" /
/// "HeavyMixture" (`tail_index <= 0` selects kDefaultTailIndex).  Throws
/// std::invalid_argument when a tail index is given for any other family.
DistPtr make_named(const std::string& name, double mean, double tail_index);

/// All names accepted by make_named.
std::vector<std::string> named_distributions();

/// True when `name` is one of the regularly-varying families that accept
/// the tail-index parameter of the three-argument make_named overload.
bool takes_tail_index(const std::string& name);

}  // namespace forktail::dist
