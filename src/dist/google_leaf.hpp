// Synthesized stand-in for the Google search leaf-node service-time
// distribution the paper takes from BigHouse [27].
//
// The original measurement is not redistributable; the paper only publishes
// its summary statistics: mean 4.22 ms, CV 1.12, maximum 276.6 ms, and uses
// 10 ms (~ its 95th percentile) as the redundant-issue threshold.  We
// synthesize a distribution with exactly those properties: a lognormal body
// (sigma = 0.65) mixed with ~1% truncated-Pareto tail reaching the same
// 276.6 ms maximum; the mixture weight and body mean are solved numerically
// so the mean and CV match, then the whole table is rescaled so the mean is
// exact.  The resulting p95 lands at ~10 ms, matching the paper's threshold
// remark, which is the property the redundancy experiments depend on.
#pragma once

#include "dist/empirical.hpp"

namespace forktail::dist {

inline constexpr double kGoogleLeafMeanMs = 4.22;
inline constexpr double kGoogleLeafCv = 1.12;
inline constexpr double kGoogleLeafMaxMs = 276.6;

/// The synthesized empirical distribution (values in milliseconds).
/// Constructed once; thread-safe.
const Empirical& google_leaf();

/// Shared-pointer form for APIs taking DistPtr.
DistPtr google_leaf_ptr();

}  // namespace forktail::dist
