#include "dist/google_leaf.hpp"

#include <cmath>
#include <vector>

#include "dist/heavy.hpp"
#include "stats/roots.hpp"

namespace forktail::dist {

namespace {

// Fixed shape choices (see header): lognormal body spread and the tail
// segment.  Only the mixture weight and the body mean are solved.
constexpr double kBodySigma = 0.65;
constexpr double kTailAlpha = 1.2;
constexpr double kTailLower = 8.0;

Empirical build_google_leaf() {
  const TruncatedPareto tail(kTailAlpha, kTailLower, kGoogleLeafMaxMs);
  const double tail_m1 = tail.moment(1);
  const double tail_m2 = tail.moment(2);
  const double target_mean = kGoogleLeafMeanMs;
  const double target_m2 =
      target_mean * target_mean * (1.0 + kGoogleLeafCv * kGoogleLeafCv);
  const double w = std::exp(kBodySigma * kBodySigma);  // E[B^2] = m_b^2 * w

  // Body mean implied by the overall-mean constraint at tail weight p.
  auto body_mean = [&](double p) {
    return (target_mean - p * tail_m1) / (1.0 - p);
  };
  // Second-moment residual as a function of tail weight.
  auto m2_err = [&](double p) {
    const double mb = body_mean(p);
    return (1.0 - p) * mb * mb * w + p * tail_m2 - target_m2;
  };
  const double p = stats::brent(m2_err, 1e-5, 0.04,
                                {.x_tolerance = 1e-14, .f_tolerance = 0.0,
                                 .max_iterations = 200});
  const double mb = body_mean(p);
  const double mu = std::log(mb) - 0.5 * kBodySigma * kBodySigma;

  auto mixture_cdf = [&](double x) {
    const double body =
        x <= 0.0 ? 0.0 : normal_cdf((std::log(x) - mu) / kBodySigma);
    return (1.0 - p) * body + p * tail.cdf(x);
  };

  // Probability knots: dense body plus geometrically refined tail.
  std::vector<double> probs;
  const std::size_t body_knots = 384;
  for (std::size_t i = 0; i < body_knots; ++i) {
    probs.push_back(0.95 * static_cast<double>(i) / static_cast<double>(body_knots));
  }
  const std::size_t tail_knots = 127;
  for (std::size_t i = 0; i < tail_knots; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(tail_knots);
    probs.push_back(1.0 - 0.05 * std::pow(1e-5 / 0.05, f));
  }
  probs.push_back(1.0);

  std::vector<double> values;
  values.reserve(probs.size());
  for (double u : probs) {
    if (u <= 0.0) {
      values.push_back(0.0);
    } else if (u >= 1.0) {
      values.push_back(kGoogleLeafMaxMs);
    } else {
      values.push_back(stats::brent(
          [&](double x) { return mixture_cdf(x) - u; }, 1e-6, kGoogleLeafMaxMs,
          {.x_tolerance = 1e-10, .f_tolerance = 0.0, .max_iterations = 300}));
    }
  }
  Empirical table(std::move(probs), std::move(values), "Empirical");
  // The discretization shifts the mean by a fraction of a percent; rescale
  // so the published mean is exact (CV is scale-invariant).
  return table.scaled(target_mean / table.mean());
}

}  // namespace

const Empirical& google_leaf() {
  static const Empirical instance = build_google_leaf();
  return instance;
}

DistPtr google_leaf_ptr() {
  return std::make_shared<Empirical>(google_leaf());
}

}  // namespace forktail::dist
