// Batched inverse-CDF sampling for the vector replay engine: 8 SIMD lanes,
// one service-time stream per lane, filled in staged block passes that GCC
// auto-vectorizes at whatever -march the including translation unit uses.
//
// Stream contract: lane `l` owns the xoshiro256++ stream seeded with the
// exact `util::Rng::split_seed` value the legacy scalar engine would use
// for the same node, so the *raw u64 streams* are identical between the two
// engines.  What differs is the transform applied to the stream:
//
//   * kUniform / kDeterministic / kEmpirical / kGeneric lanes reproduce the
//     scalar `sample()` values bit for bit (same arithmetic, same draw
//     count per sample).
//   * kExponential / kErlang / kHyperExp2 / kWeibull / kTruncPareto use the
//     polynomial log/exp kernels in util/vec_math.hpp instead of libm
//     (last-ulp differences), and replace `uniform_pos()`'s rejection loop
//     with a branch-free clamp at 2^-53.
//   * kLogNormal switches from Box-Muller (scalar) to the inverse-CDF
//     (Acklam central polynomial, |err| ~1e-9 quantile units; tails
//     delegate to stats::normal_quantile, |err| < 1e-13).
//   * kErlang consumes its per-sample stage draws stage-major within a
//     block (stage 0 for every row, then stage 1, ...) instead of
//     sample-major.
//
// Every deviation is a documented golden change (docs/performance.md); the
// statistical-equivalence tests in tests/test_replay_vector.cpp pin the
// resulting distributions against the scalar engines.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dist/distribution.hpp"
#include "util/rng.hpp"
#include "util/vec_math.hpp"
#include "util/vec_rng.hpp"

namespace forktail::dist {

class Empirical;

enum class VecKind : std::uint8_t {
  kDeterministic,
  kUniform,
  kExponential,
  kErlang,
  kHyperExp2,
  kWeibull,
  kTruncPareto,
  kPareto,  // untruncated: the kTruncPareto kernel with trunc_mass = 1
  kLogNormal,
  kEmpirical,
  kGeneric,  // per-lane scalar Rng + virtual sample_n (Gamma, TruncNormal, ...)
};

/// Vector classification of a distribution.  Erlang lanes can only share a
/// fill pass when their stage counts match, so the stage count is part of
/// the grouping key.
struct VecClass {
  VecKind kind;
  int stages;  // Erlang stage count; 0 otherwise

  friend bool operator==(const VecClass&, const VecClass&) = default;
};

VecClass classify_vec(const Distribution& d);

/// O(1)-expected quantile lookup over an Empirical's knots: a bucket table
/// maps u to a starting knot, then a short forward scan lands on the same
/// segment `Empirical::quantile`'s upper_bound would find.  The
/// interpolation arithmetic is copied verbatim so results are bit-identical
/// to the scalar path.
class EmpiricalGrid {
 public:
  explicit EmpiricalGrid(const Empirical& e);

  FORKTAIL_VEC_INLINE double quantile(double u) const noexcept {
    if (u <= 0.0) return values_.front();
    const auto b = static_cast<std::size_t>(u * static_cast<double>(buckets_));
    std::size_t lo = start_[b < buckets_ ? b : buckets_ - 1];
    while (probs_[lo + 1] <= u) ++lo;
    const std::size_t hi = lo + 1;
    const double frac = (u - probs_[lo]) / (probs_[hi] - probs_[lo]);
    return values_[lo] + frac * (values_[hi] - values_[lo]);
  }

 private:
  std::vector<double> probs_;
  std::vector<double> values_;
  std::vector<std::uint32_t> start_;
  std::size_t buckets_;
};

/// 8 lanes of batched sampling over one distribution kind.  Lanes may carry
/// different parameters (heterogeneous nodes) but must share the same
/// VecClass.  Lanes at index >= active() produce demand 0.0 and consume no
/// stream.
class LaneSampler {
 public:
  struct Lane {
    const Distribution* dist;
    std::uint64_t seed;  // util::Rng stream seed for this lane
  };

  /// `lanes.size()` in 1..kVecLanes.
  explicit LaneSampler(std::span<const Lane> lanes);

  VecClass vec_class() const noexcept { return cls_; }
  std::size_t active() const noexcept { return active_; }

  /// Append `rows` samples per lane into `out` (row-major [rows][8]:
  /// out[i*8 + l] is lane l's i-th sample of this call).  Lanes advance in
  /// lockstep; successive calls continue the streams.
  FORKTAIL_VEC_INLINE void fill(double* out, std::size_t rows) {
    if (rows == 0) return;
    const std::size_t n = rows * util::kVecLanes;
    switch (cls_.kind) {
      case VecKind::kDeterministic:
        fill_deterministic(out, rows);
        break;
      case VecKind::kUniform:
        fill_uniform(out, rows, n);
        break;
      case VecKind::kExponential:
        fill_exponential(out, rows, n);
        break;
      case VecKind::kErlang:
        fill_erlang(out, rows, n);
        break;
      case VecKind::kHyperExp2:
        fill_hyperexp2(out, rows, n);
        break;
      case VecKind::kWeibull:
        fill_weibull(out, rows, n);
        break;
      case VecKind::kTruncPareto:
      case VecKind::kPareto:
        fill_truncpareto(out, rows, n);
        break;
      case VecKind::kLogNormal:
        fill_lognormal(out, rows, n);
        break;
      case VecKind::kEmpirical:
        fill_empirical(out, rows, n);
        break;
      case VecKind::kGeneric:
        fill_generic(out, rows);
        break;
    }
    if (active_ < util::kVecLanes && cls_.kind != VecKind::kGeneric) {
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t l = active_; l < util::kVecLanes; ++l) {
          out[i * util::kVecLanes + l] = 0.0;
        }
      }
    }
  }

 private:
  static constexpr std::size_t kL = util::kVecLanes;

  FORKTAIL_VEC_INLINE void reserve(std::size_t n, std::size_t raw_n) {
    if (raw_.size() < raw_n) raw_.resize(raw_n);
    if (tmp_.size() < n) tmp_.resize(n);
  }

  FORKTAIL_VEC_INLINE void fill_deterministic(double* __restrict out, std::size_t rows) {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) out[i * kL + l] = p0_[l];
    }
  }

  FORKTAIL_VEC_INLINE void fill_uniform(double* __restrict out, std::size_t rows, std::size_t n) {
    reserve(0, n);
    xo_.fill(raw_.data(), rows);
    // lo + range*u: identical arithmetic to Rng::uniform(lo, hi).
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) {
        const std::size_t q = i * kL + l;
        out[q] = p0_[l] + p1_[l] * util::bits_to_unit(raw_[q]);
      }
    }
  }

  FORKTAIL_VEC_INLINE void fill_exponential(double* __restrict out, std::size_t rows,
                        std::size_t n) {
    reserve(0, n);
    xo_.fill(raw_.data(), rows);
    util::unit_pos_block(raw_.data(), out, n);
    util::log_block_inplace(out, n);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) out[i * kL + l] *= p0_[l];  // -mean
    }
  }

  FORKTAIL_VEC_INLINE void fill_erlang(double* __restrict out, std::size_t rows, std::size_t n) {
    reserve(0, n);
    xo_.fill(raw_.data(), rows);
    util::unit_pos_block(raw_.data(), out, n);
    for (int s = 1; s < cls_.stages; ++s) {
      xo_.fill(raw_.data(), rows);
      // Fused convert-clamp-multiply (no staging buffer round trip); the
      // arithmetic is exactly unit_pos_block's.
      const std::uint64_t* __restrict raw = raw_.data();
      for (std::size_t q = 0; q < n; ++q) {
        const double u = util::bits_to_unit(raw[q]);
        out[q] *= u < 0x1.0p-53 ? 0x1.0p-53 : u;
      }
    }
    util::log_block_inplace(out, n);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) {
        out[i * kL + l] *= p0_[l];  // -1/stage_rate
      }
    }
  }

  FORKTAIL_VEC_INLINE void fill_hyperexp2(double* __restrict out, std::size_t rows,
                      std::size_t n) {
    // Two draws per sample, consumed (branch, exp) per row to match the
    // scalar per-lane draw order: raw rows alternate u1, u2.  Parameters
    // and buffer pointers are hoisted into restrict-qualified locals --
    // stores through the member vector otherwise force the vectorizer to
    // assume they may alias the parameter arrays.
    reserve(n, 2 * n);
    xo_.fill(raw_.data(), 2 * rows);
    const std::uint64_t* __restrict raw = raw_.data();
    double* __restrict sel = tmp_.data();
    double p0[kL], p1[kL], p2[kL];
    for (std::size_t l = 0; l < kL; ++l) {
      p0[l] = p0_[l];
      p1[l] = p1_[l];
      p2[l] = p2_[l];
    }
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) {
        const double u1 = util::bits_to_unit(raw[(2 * i) * kL + l]);
        sel[i * kL + l] = u1 < p0[l] ? p1[l] : p2[l];  // -1/rate branch
        const double u2 = util::bits_to_unit(raw[(2 * i + 1) * kL + l]);
        out[i * kL + l] = u2 < 0x1.0p-53 ? 0x1.0p-53 : u2;
      }
    }
    util::log_block_inplace(out, n);
    for (std::size_t q = 0; q < n; ++q) out[q] *= sel[q];
  }

  FORKTAIL_VEC_INLINE void fill_weibull(double* __restrict out, std::size_t rows, std::size_t n) {
    reserve(0, n);
    xo_.fill(raw_.data(), rows);
    util::unit_pos_block(raw_.data(), out, n);
    util::log_block_inplace(out, n);  // log u, strictly negative
    // x = -log u; the quantile is scale * x^(1/shape).  When 1/shape is a
    // small integer shared by every lane (detected at construction) the
    // power is a repeated multiply -- exact to rounding, and ~2x cheaper
    // than the general exp((1/shape) * log x) path below.  Both paths are
    // within the vectorized-math golden band (docs/performance.md).
    if (weibull_ipow_ != 0) {
      const int m = weibull_ipow_;
      if (m == 2) {
        for (std::size_t q = 0; q < n; ++q) out[q] = out[q] * out[q];
      } else if (m == 3) {
        for (std::size_t q = 0; q < n; ++q) {
          const double x = -out[q];
          out[q] = x * x * x;
        }
      } else {
        for (std::size_t q = 0; q < n; ++q) {
          const double x2 = out[q] * out[q];
          out[q] = x2 * x2;
        }
      }
    } else {
      for (std::size_t q = 0; q < n; ++q) out[q] = util::vec_log(-out[q]);
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t l = 0; l < kL; ++l) out[i * kL + l] *= p0_[l];  // 1/shape
      }
      util::exp_block_inplace(out, n);
    }
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) out[i * kL + l] *= p1_[l];  // scale
    }
  }

  FORKTAIL_VEC_INLINE void fill_truncpareto(double* __restrict out, std::size_t rows,
                        std::size_t n) {
    reserve(0, n);
    xo_.fill(raw_.data(), rows);
    // x = L * exp(-log(1 - u*mass)/alpha); u unclamped, matching the scalar
    // path's plain uniform().
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) {
        const std::size_t q = i * kL + l;
        out[q] = 1.0 - util::bits_to_unit(raw_[q]) * p0_[l];  // trunc_mass
      }
    }
    util::log_block_inplace(out, n);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) out[i * kL + l] *= p1_[l];  // -1/alpha
    }
    util::exp_block_inplace(out, n);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) out[i * kL + l] *= p2_[l];  // lower
    }
  }

  FORKTAIL_VEC_INLINE void fill_lognormal(double* __restrict out, std::size_t rows,
                      std::size_t n) {
    reserve(n, n);
    xo_.fill(raw_.data(), rows);
    util::unit_pos_block(raw_.data(), tmp_.data(), n);
    // Acklam central rational, evaluated branch-free for every element;
    // the ~4.9% of draws outside [plow, 1-plow] are then overwritten by the
    // scalar tail path.  Junk values from the unconditional evaluation in
    // tail territory are discarded by that overwrite.
    for (std::size_t q = 0; q < n; ++q) {
      const double t = tmp_[q] - 0.5;
      const double r = t * t;
      const double num =
          (((((-3.969683028665376e+01 * r + 2.209460984245205e+02) * r +
              -2.759285104469687e+02) *
                 r +
             1.383577518672690e+02) *
                r +
            -3.066479806614716e+01) *
               r +
           2.506628277459239e+00) *
          t;
      const double den =
          ((((-5.447609879822406e+01 * r + 1.615858368580409e+02) * r +
             -1.556989798598866e+02) *
                r +
            6.680131188771972e+01) *
               r +
           -1.328068155288572e+01) *
              r +
          1.0;
      out[q] = num / den;
    }
    constexpr double kPLow = 0.02425;
    for (std::size_t q = 0; q < n; ++q) {
      if (tmp_[q] < kPLow || tmp_[q] > 1.0 - kPLow) {
        out[q] = tail_normal_quantile(tmp_[q]);
      }
    }
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < kL; ++l) {
        const std::size_t q = i * kL + l;
        out[q] = p0_[l] + p1_[l] * out[q];  // mu + sigma*z
      }
    }
    util::exp_block_inplace(out, n);
  }

  FORKTAIL_VEC_INLINE void fill_empirical(double* __restrict out, std::size_t rows,
                      std::size_t n) {
    reserve(0, n);
    xo_.fill(raw_.data(), rows);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t l = 0; l < active_; ++l) {
        const std::size_t q = i * kL + l;
        out[q] = grids_[l]->quantile(util::bits_to_unit(raw_[q]));
      }
    }
  }

  FORKTAIL_VEC_INLINE void fill_generic(double* __restrict out, std::size_t rows) {
    if (col_.size() < rows) col_.resize(rows);
    for (std::size_t l = 0; l < kL; ++l) {
      if (l < active_) {
        dists_[l]->sample_n(rngs_[l], std::span<double>(col_.data(), rows));
        for (std::size_t i = 0; i < rows; ++i) out[i * kL + l] = col_[i];
      } else {
        for (std::size_t i = 0; i < rows; ++i) out[i * kL + l] = 0.0;
      }
    }
  }

  // Defined in vec_sampler.cpp (delegates to stats::normal_quantile) so this
  // header does not pull the special-functions dependency into every TU.
  static double tail_normal_quantile(double u);

  VecClass cls_{VecKind::kGeneric, 0};
  std::size_t active_ = 0;
  int weibull_ipow_ = 0;  // nonzero: all lanes share this integer 1/shape
  util::XoshiroBlock xo_;
  std::array<double, kL> p0_{}, p1_{}, p2_{};
  std::array<const Distribution*, kL> dists_{};
  std::vector<std::shared_ptr<const EmpiricalGrid>> grids_;
  std::vector<util::Rng> rngs_;
  std::vector<std::uint64_t> raw_;
  std::vector<double> tmp_;
  std::vector<double> col_;
};

}  // namespace forktail::dist
