// Pull-based prefetch buffer over Distribution::sample_n.
//
// Nodes that consume service demands one at a time at unpredictable points
// (request-major subset replay, the event-driven redundant-issue node)
// cannot batch at the replay-loop level; this adapter gives them the same
// amortized-dispatch win by refilling a block of demands at once.  The
// delivered sequence is exactly the sequence `dist->sample(rng)` would
// produce, because refills draw from the same stream in the same order --
// only the *timing* of the draws changes, and nothing else observes `rng`.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/distribution.hpp"

namespace forktail::dist {

class BufferedSampler {
 public:
  /// `capacity` <= 1 disables buffering (every `next()` is one virtual
  /// `sample()` call -- the scalar reference path).  `dist` may be null
  /// only if `next()` is never called.
  BufferedSampler(const Distribution* dist, util::Rng rng,
                  std::size_t capacity = 1)
      : dist_(dist), rng_(rng), capacity_(capacity == 0 ? 1 : capacity) {}

  double next() {
    if (capacity_ == 1) return dist_->sample(rng_);
    if (pos_ == buffer_.size()) {
      buffer_.resize(capacity_);
      dist_->sample_n(rng_, buffer_);
      pos_ = 0;
    }
    return buffer_[pos_++];
  }

 private:
  const Distribution* dist_;
  util::Rng rng_;
  std::size_t capacity_;
  std::vector<double> buffer_;
  std::size_t pos_ = 0;
};

}  // namespace forktail::dist
