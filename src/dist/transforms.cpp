#include "dist/transforms.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace forktail::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// 32-point Gauss-Legendre nodes/weights on [-1, 1], computed once by
/// Newton iteration on the Legendre recurrence (no table to transcribe).
struct GaussLegendre32 {
  double node[32];
  double weight[32];

  GaussLegendre32() {
    constexpr int n = 32;
    for (int i = 0; i < (n + 1) / 2; ++i) {
      // Chebyshev-like initial guess.
      double x = std::cos(3.14159265358979323846 * (i + 0.75) / (n + 0.5));
      double pp = 0.0;
      for (int iter = 0; iter < 100; ++iter) {
        double p0 = 1.0, p1 = 0.0;
        for (int j = 0; j < n; ++j) {
          const double p2 = p1;
          p1 = p0;
          p0 = ((2.0 * j + 1.0) * x * p1 - j * p2) / (j + 1.0);
        }
        pp = n * (x * p0 - p1) / (x * x - 1.0);
        const double dx = p0 / pp;
        x -= dx;
        if (std::fabs(dx) < 1e-15) break;
      }
      node[i] = -x;
      node[n - 1 - i] = x;
      weight[i] = 2.0 / ((1.0 - x * x) * pp * pp);
      weight[n - 1 - i] = weight[i];
    }
  }
};

const GaussLegendre32& gl32() {
  static const GaussLegendre32 table;
  return table;
}

}  // namespace

double uniform_segment_mgf(double theta, double a, double b) {
  const double width = b - a;
  const double tw = theta * width;
  if (std::fabs(tw) < 1e-12) {
    return std::exp(theta * 0.5 * (a + b));
  }
  return std::exp(theta * a) * std::expm1(tw) / tw;
}

double integrate_gl32(const std::function<double(double)>& f, double lo,
                      double hi, int panels) {
  const GaussLegendre32& gl = gl32();
  double total = 0.0;
  const double step = (hi - lo) / panels;
  for (int p = 0; p < panels; ++p) {
    const double a = lo + p * step;
    const double mid = a + 0.5 * step;
    const double half = 0.5 * step;
    double acc = 0.0;
    for (int i = 0; i < 32; ++i) {
      acc += gl.weight[i] * f(mid + half * gl.node[i]);
    }
    total += acc * half;
  }
  return total;
}

bool mgf_available(const Distribution& d) {
  return d.capabilities().has_mgf;
}

double mgf(const Distribution& d, double theta) {
  if (!(theta >= 0.0)) {
    throw std::invalid_argument("mgf: theta must be >= 0");
  }
  if (theta == 0.0) return 1.0;
  if (!d.capabilities().has_mgf) {
    throw std::invalid_argument("mgf: no exponential moments for " + d.name() +
                                " (" +
                                tail_class_name(d.capabilities().tail) +
                                " tail; no MGF capability)");
  }
  return d.mgf(theta);
}

double lundberg_root(const Distribution& d, double lambda, double mark_prob) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("lundberg_root: lambda must be > 0");
  }
  if (!(mark_prob > 0.0 && mark_prob <= 1.0)) {
    throw std::invalid_argument("lundberg_root: mark_prob must be in (0, 1]");
  }
  if (!d.capabilities().has_mgf) {
    throw std::invalid_argument(
        "lundberg_root: no exponential moments for " + d.name() + " (" +
        tail_class_name(d.capabilities().tail) +
        " tail; no coupling certificate exists)");
  }
  const double drift = mark_prob * lambda * d.moment(1);
  if (!(drift < 1.0)) {
    throw std::invalid_argument(
        "lundberg_root: walk is unstable (mark_prob * lambda * E[S] >= 1)");
  }
  // h(theta) = E[e^{theta (B S - A)}]
  //          = ((1 - q) + q MGF_S(theta)) * lambda / (lambda + theta).
  // h(0) = 1, h'(0) < 0 under stability, and h is convex, so the positive
  // root is unique.  Bracket by doubling, then bisect; the returned lower
  // end satisfies h <= 1, which is all the Lundberg inequality needs.
  const auto h = [&](double theta) {
    const double m = mgf(d, theta);
    if (!std::isfinite(m)) return kInf;
    return ((1.0 - mark_prob) + mark_prob * m) * lambda / (lambda + theta);
  };
  double lo = 0.0;
  double hi = 1.0 / (d.moment(1) + 1.0 / lambda);  // natural rate scale
  for (int i = 0; i < 200 && h(hi) < 1.0; ++i) {
    lo = hi;
    hi *= 2.0;
  }
  if (!(h(hi) >= 1.0)) {
    throw std::invalid_argument("lundberg_root: failed to bracket the root");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (h(mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (!(lo > 0.0)) {
    throw std::invalid_argument(
        "lundberg_root: degenerate root (load too close to 1)");
  }
  return lo;
}

}  // namespace forktail::dist
