#include "dist/transforms.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "dist/basic.hpp"
#include "dist/empirical.hpp"
#include "dist/gamma.hpp"
#include "dist/heavy.hpp"

namespace forktail::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// MGF of a uniform on [a, b] (a <= b): e^{theta a} expm1(theta (b-a)) /
/// (theta (b-a)), with the exact limit at theta (b-a) -> 0.  Stable for
/// the narrow segments an Empirical quantile table produces.
double uniform_segment_mgf(double theta, double a, double b) {
  const double width = b - a;
  const double tw = theta * width;
  if (std::fabs(tw) < 1e-12) {
    return std::exp(theta * 0.5 * (a + b));
  }
  return std::exp(theta * a) * std::expm1(tw) / tw;
}

/// 32-point Gauss-Legendre nodes/weights on [-1, 1], computed once by
/// Newton iteration on the Legendre recurrence (no table to transcribe).
struct GaussLegendre32 {
  double node[32];
  double weight[32];

  GaussLegendre32() {
    constexpr int n = 32;
    for (int i = 0; i < (n + 1) / 2; ++i) {
      // Chebyshev-like initial guess.
      double x = std::cos(3.14159265358979323846 * (i + 0.75) / (n + 0.5));
      double pp = 0.0;
      for (int iter = 0; iter < 100; ++iter) {
        double p0 = 1.0, p1 = 0.0;
        for (int j = 0; j < n; ++j) {
          const double p2 = p1;
          p1 = p0;
          p0 = ((2.0 * j + 1.0) * x * p1 - j * p2) / (j + 1.0);
        }
        pp = n * (x * p0 - p1) / (x * x - 1.0);
        const double dx = p0 / pp;
        x -= dx;
        if (std::fabs(dx) < 1e-15) break;
      }
      node[i] = -x;
      node[n - 1 - i] = x;
      weight[i] = 2.0 / ((1.0 - x * x) * pp * pp);
      weight[n - 1 - i] = weight[i];
    }
  }
};

const GaussLegendre32& gl32() {
  static const GaussLegendre32 table;
  return table;
}

/// Integrate f over [lo, hi] with `panels` composite 32-point panels.
template <typename F>
double gauss_legendre(F&& f, double lo, double hi, int panels) {
  const GaussLegendre32& gl = gl32();
  double total = 0.0;
  const double step = (hi - lo) / panels;
  for (int p = 0; p < panels; ++p) {
    const double a = lo + p * step;
    const double mid = a + 0.5 * step;
    const double half = 0.5 * step;
    double acc = 0.0;
    for (int i = 0; i < 32; ++i) {
      acc += gl.weight[i] * f(mid + half * gl.node[i]);
    }
    total += acc * half;
  }
  return total;
}

double trunc_pareto_mgf(const TruncatedPareto& d, double theta) {
  // Bounded support [L, H]: the integrand e^{theta x} f(x) is smooth and
  // positive, so a composite Gauss-Legendre rule converges geometrically.
  // 64 panels keep the relative error below 1e-12 for theta H up to ~700
  // (past which e^{theta H} overflows anyway).
  const double scale = d.alpha() * std::pow(d.lower(), d.alpha()) / d.trunc_mass();
  const double value = gauss_legendre(
      [&](double x) {
        return std::exp(theta * x) * scale * std::pow(x, -d.alpha() - 1.0);
      },
      d.lower(), d.upper(), 64);
  return std::isfinite(value) ? value : kInf;
}

double empirical_mgf(const Empirical& d, double theta) {
  // Inverse-transform sampling over a piecewise-linear quantile table is a
  // mixture of uniforms over the knot segments: the MGF is the exact
  // probability-weighted sum of segment MGFs.
  const std::span<const double> probs = d.knot_probs();
  const std::span<const double> values = d.knot_values();
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < probs.size(); ++i) {
    const double mass = probs[i + 1] - probs[i];
    if (mass <= 0.0) continue;
    total += mass * uniform_segment_mgf(theta, values[i], values[i + 1]);
  }
  return std::isfinite(total) ? total : kInf;
}

}  // namespace

bool mgf_available(const Distribution& d) {
  if (dynamic_cast<const Exponential*>(&d) != nullptr) return true;
  if (dynamic_cast<const Erlang*>(&d) != nullptr) return true;
  if (dynamic_cast<const HyperExp2*>(&d) != nullptr) return true;
  if (dynamic_cast<const Deterministic*>(&d) != nullptr) return true;
  if (dynamic_cast<const UniformReal*>(&d) != nullptr) return true;
  if (dynamic_cast<const Gamma*>(&d) != nullptr) return true;
  if (dynamic_cast<const TruncatedPareto*>(&d) != nullptr) return true;
  if (dynamic_cast<const Empirical*>(&d) != nullptr) return true;
  // Weibull with shape < 1 (the paper's CV = 1.5 calibration), LogNormal,
  // and anything unknown: no finite exponential moments, no Lundberg root.
  return false;
}

double mgf(const Distribution& d, double theta) {
  if (!(theta >= 0.0)) {
    throw std::invalid_argument("mgf: theta must be >= 0");
  }
  if (theta == 0.0) return 1.0;
  if (const auto* e = dynamic_cast<const Exponential*>(&d)) {
    const double rate = 1.0 / e->moment(1);
    return theta < rate ? rate / (rate - theta) : kInf;
  }
  if (const auto* e = dynamic_cast<const Erlang*>(&d)) {
    if (theta >= e->stage_rate()) return kInf;
    return std::pow(e->stage_rate() / (e->stage_rate() - theta),
                    static_cast<double>(e->stages()));
  }
  if (const auto* h = dynamic_cast<const HyperExp2*>(&d)) {
    if (theta >= h->rate1() || theta >= h->rate2()) return kInf;
    return h->p1() * h->rate1() / (h->rate1() - theta) +
           (1.0 - h->p1()) * h->rate2() / (h->rate2() - theta);
  }
  if (const auto* c = dynamic_cast<const Deterministic*>(&d)) {
    const double value = std::exp(theta * c->value());
    return std::isfinite(value) ? value : kInf;
  }
  if (const auto* u = dynamic_cast<const UniformReal*>(&d)) {
    const double value = uniform_segment_mgf(theta, u->lo(), u->hi());
    return std::isfinite(value) ? value : kInf;
  }
  if (const auto* g = dynamic_cast<const Gamma*>(&d)) {
    if (theta >= 1.0 / g->scale()) return kInf;
    return std::pow(1.0 - g->scale() * theta, -g->shape());
  }
  if (const auto* t = dynamic_cast<const TruncatedPareto*>(&d)) {
    return trunc_pareto_mgf(*t, theta);
  }
  if (const auto* e = dynamic_cast<const Empirical*>(&d)) {
    return empirical_mgf(*e, theta);
  }
  throw std::invalid_argument("mgf: no exponential moments for " + d.name() +
                              " (heavy-tailed or unsupported family)");
}

double lundberg_root(const Distribution& d, double lambda, double mark_prob) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("lundberg_root: lambda must be > 0");
  }
  if (!(mark_prob > 0.0 && mark_prob <= 1.0)) {
    throw std::invalid_argument("lundberg_root: mark_prob must be in (0, 1]");
  }
  if (!mgf_available(d)) {
    throw std::invalid_argument(
        "lundberg_root: no exponential moments for " + d.name() +
        " (heavy-tailed service; no coupling certificate exists)");
  }
  const double drift = mark_prob * lambda * d.moment(1);
  if (!(drift < 1.0)) {
    throw std::invalid_argument(
        "lundberg_root: walk is unstable (mark_prob * lambda * E[S] >= 1)");
  }
  // h(theta) = E[e^{theta (B S - A)}]
  //          = ((1 - q) + q MGF_S(theta)) * lambda / (lambda + theta).
  // h(0) = 1, h'(0) < 0 under stability, and h is convex, so the positive
  // root is unique.  Bracket by doubling, then bisect; the returned lower
  // end satisfies h <= 1, which is all the Lundberg inequality needs.
  const auto h = [&](double theta) {
    const double m = mgf(d, theta);
    if (!std::isfinite(m)) return kInf;
    return ((1.0 - mark_prob) + mark_prob * m) * lambda / (lambda + theta);
  };
  double lo = 0.0;
  double hi = 1.0 / (d.moment(1) + 1.0 / lambda);  // natural rate scale
  for (int i = 0; i < 200 && h(hi) < 1.0; ++i) {
    lo = hi;
    hi *= 2.0;
  }
  if (!(h(hi) >= 1.0)) {
    throw std::invalid_argument("lundberg_root: failed to bracket the root");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (h(mid) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (!(lo > 0.0)) {
    throw std::invalid_argument(
        "lundberg_root: degenerate root (load too close to 1)");
  }
  return lo;
}

}  // namespace forktail::dist
