#include "dist/gamma.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace forktail::dist {

namespace {

/// Series expansion of P(a, x), valid and fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1
/// (modified Lentz).
double gamma_q_cf(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0)) throw std::invalid_argument("regularized_gamma_p: a <= 0");
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0 && scale > 0.0)) {
    throw std::invalid_argument("Gamma: shape and scale must be > 0");
  }
}

Gamma Gamma::from_mean_cv(double mean, double cv) {
  require_mean_cv("Gamma", mean, cv);
  const double shape = 1.0 / (cv * cv);
  return Gamma(shape, mean / shape);
}

double Gamma::sample(util::Rng& rng) const {
  // Marsaglia-Tsang squeeze for shape >= 1; the shape < 1 case uses the
  // boosting identity Gamma(k) = Gamma(k+1) * U^{1/k}.
  double k = shape_;
  double boost = 1.0;
  if (k < 1.0) {
    boost = std::pow(rng.uniform_pos(), 1.0 / k);
    k += 1.0;
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform_pos();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return scale_ * boost * d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return scale_ * boost * d * v;
    }
  }
}

void Gamma::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = Gamma::sample(rng);  // devirtualized tight loop
}

double Gamma::moment(int k) const {
  check_moment_order(k);
  double m = 1.0;
  for (int i = 0; i < k; ++i) {
    m *= scale_ * (shape_ + static_cast<double>(i));
  }
  return m;
}

double Gamma::cdf(double x) const {
  return x <= 0.0 ? 0.0 : regularized_gamma_p(shape_, x / scale_);
}

Capabilities Gamma::capabilities() const {
  Capabilities caps;
  caps.tail = TailClass::kLight;
  caps.has_mgf = true;
  caps.has_lst = true;
  return caps;
}

double Gamma::mgf(double theta) const {
  if (theta >= 1.0 / scale_) return std::numeric_limits<double>::infinity();
  return std::pow(1.0 - scale_ * theta, -shape_);
}

std::complex<double> Gamma::lst(std::complex<double> s) const {
  // E[e^{-sX}] = (1 + theta s)^{-k}, principal branch.
  return std::pow(1.0 + scale_ * s, -shape_);
}

}  // namespace forktail::dist
