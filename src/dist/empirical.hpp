// Tabulated empirical distribution: piecewise-linear quantile function over
// (probability, value) knots.
//
// Sampling by inverse transform with linear interpolation makes the
// distribution a mixture of uniforms over the knot segments, so all raw
// moments have closed forms -- which the white-box M/G/1 analysis needs.
#pragma once

#include <span>
#include <vector>

#include "dist/distribution.hpp"

namespace forktail::dist {

class Empirical final : public Distribution {
 public:
  /// `probs` strictly increasing from 0 to 1; `values` non-decreasing and
  /// non-negative; both the same length (>= 2).
  Empirical(std::vector<double> probs, std::vector<double> values,
            std::string label = "Empirical");

  /// Build from raw samples: knots at `knots` evenly-spaced quantiles plus
  /// extra resolution in the top 5% of the distribution (tails matter here).
  static Empirical from_samples(std::span<const double> samples,
                                std::size_t knots = 257,
                                std::string label = "Empirical");

  double sample(util::Rng& rng) const override;
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return label_; }
  Capabilities capabilities() const override;
  double mgf(double theta) const override;

  double quantile(double u) const;
  double min() const { return values_.front(); }
  double max() const { return values_.back(); }
  std::size_t num_knots() const noexcept { return probs_.size(); }

  /// Knot arrays (read-only).  The batched sampler builds an O(1) bucket
  /// lookup table over these instead of binary-searching per draw.
  std::span<const double> knot_probs() const noexcept { return probs_; }
  std::span<const double> knot_values() const noexcept { return values_; }

  /// Return a copy with all values multiplied by `factor` (moment
  /// calibration helper).
  Empirical scaled(double factor) const;

 private:
  std::vector<double> probs_;
  std::vector<double> values_;
  std::string label_;
  double moments_[3] = {0, 0, 0};

  void compute_moments();
};

}  // namespace forktail::dist
