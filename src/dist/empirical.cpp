#include "dist/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dist/transforms.hpp"
#include "util/kahan.hpp"

namespace forktail::dist {

Empirical::Empirical(std::vector<double> probs, std::vector<double> values,
                     std::string label)
    : probs_(std::move(probs)), values_(std::move(values)), label_(std::move(label)) {
  if (probs_.size() != values_.size() || probs_.size() < 2) {
    throw std::invalid_argument("Empirical: need matching knot arrays, >= 2 knots");
  }
  if (probs_.front() != 0.0 || probs_.back() != 1.0) {
    throw std::invalid_argument("Empirical: probs must span [0, 1]");
  }
  for (std::size_t i = 1; i < probs_.size(); ++i) {
    if (!(probs_[i] > probs_[i - 1])) {
      throw std::invalid_argument("Empirical: probs must be strictly increasing");
    }
    if (values_[i] < values_[i - 1]) {
      throw std::invalid_argument("Empirical: values must be non-decreasing");
    }
  }
  if (values_.front() < 0.0) {
    throw std::invalid_argument("Empirical: negative values");
  }
  compute_moments();
}

Empirical Empirical::from_samples(std::span<const double> samples,
                                  std::size_t knots, std::string label) {
  if (samples.size() < 16 || knots < 8) {
    throw std::invalid_argument("Empirical::from_samples: too few samples/knots");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  // 3/4 of the knots uniform over [0, 0.95], 1/4 geometric into the tail.
  std::vector<double> probs;
  probs.reserve(knots);
  const std::size_t body = knots * 3 / 4;
  for (std::size_t i = 0; i < body; ++i) {
    probs.push_back(0.95 * static_cast<double>(i) / static_cast<double>(body));
  }
  const std::size_t tail = knots - body - 1;
  // Residual mass from 0.05 down to ~1/n, geometrically.
  const double min_res =
      std::max(1.0 / static_cast<double>(sorted.size()), 1e-6);
  for (std::size_t i = 0; i < tail; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(tail);
    probs.push_back(1.0 - 0.05 * std::pow(min_res / 0.05, f));
  }
  probs.push_back(1.0);
  std::vector<double> values;
  values.reserve(probs.size());
  const double n1 = static_cast<double>(sorted.size() - 1);
  for (double p : probs) {
    const double h = p * n1;
    const auto lo = static_cast<std::size_t>(h);
    if (lo + 1 >= sorted.size()) {
      values.push_back(sorted.back());
    } else {
      const double frac = h - static_cast<double>(lo);
      values.push_back(sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]));
    }
  }
  return Empirical(std::move(probs), std::move(values), std::move(label));
}

void Empirical::compute_moments() {
  // Piecewise-linear quantile => mixture of uniforms over segments:
  // E[X^k] = sum_i w_i * (v_{i+1}^{k+1} - v_i^{k+1}) / ((k+1)(v_{i+1} - v_i)).
  for (int k = 1; k <= 3; ++k) {
    util::KahanSum acc;
    for (std::size_t i = 0; i + 1 < probs_.size(); ++i) {
      const double w = probs_[i + 1] - probs_[i];
      const double a = values_[i];
      const double b = values_[i + 1];
      double seg;
      if (b - a < 1e-300) {
        seg = std::pow(a, k);
      } else {
        seg = (std::pow(b, k + 1) - std::pow(a, k + 1)) /
              (static_cast<double>(k + 1) * (b - a));
      }
      acc.add(w * seg);
    }
    moments_[k - 1] = acc.value();
  }
}

double Empirical::quantile(double u) const {
  if (u <= 0.0) return values_.front();
  if (u >= 1.0) return values_.back();
  const auto it = std::upper_bound(probs_.begin(), probs_.end(), u);
  const auto hi = static_cast<std::size_t>(it - probs_.begin());
  const std::size_t lo = hi - 1;
  const double frac = (u - probs_[lo]) / (probs_[hi] - probs_[lo]);
  return values_[lo] + frac * (values_[hi] - values_[lo]);
}

double Empirical::sample(util::Rng& rng) const { return quantile(rng.uniform()); }

void Empirical::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = quantile(rng.uniform());
}

double Empirical::moment(int k) const {
  check_moment_order(k);
  return moments_[k - 1];
}

double Empirical::cdf(double x) const {
  if (x <= values_.front()) return 0.0;
  if (x >= values_.back()) return 1.0;
  // Find the segment containing x.  Values may repeat (flat segments);
  // upper_bound gives the right-most matching knot.
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  const auto hi = static_cast<std::size_t>(it - values_.begin());
  const std::size_t lo = hi - 1;
  const double a = values_[lo];
  const double b = values_[hi];
  if (b - a < 1e-300) return probs_[hi];
  const double frac = (x - a) / (b - a);
  return probs_[lo] + frac * (probs_[hi] - probs_[lo]);
}

Capabilities Empirical::capabilities() const {
  Capabilities caps;
  caps.tail = TailClass::kLight;
  caps.has_mgf = true;
  caps.support_lo = values_.front();
  caps.support_hi = values_.back();
  return caps;
}

double Empirical::mgf(double theta) const {
  // Inverse-transform sampling over a piecewise-linear quantile table is a
  // mixture of uniforms over the knot segments: the MGF is the exact
  // probability-weighted sum of segment MGFs.
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < probs_.size(); ++i) {
    const double mass = probs_[i + 1] - probs_[i];
    if (mass <= 0.0) continue;
    total += mass * uniform_segment_mgf(theta, values_[i], values_[i + 1]);
  }
  return std::isfinite(total) ? total
                              : std::numeric_limits<double>::infinity();
}

Empirical Empirical::scaled(double factor) const {
  if (!(factor > 0.0)) throw std::invalid_argument("Empirical::scaled: factor <= 0");
  std::vector<double> values = values_;
  for (double& v : values) v *= factor;
  return Empirical(probs_, std::move(values), label_);
}

}  // namespace forktail::dist
