#include "dist/factory.hpp"

#include "dist/basic.hpp"
#include "dist/google_leaf.hpp"
#include "dist/heavy.hpp"

namespace forktail::dist {

DistPtr make_named(const std::string& name) {
  return make_named(name, kPaperMeanServiceMs);
}

DistPtr make_named(const std::string& name, double mean) {
  const double m = mean > 0.0 ? mean : kPaperMeanServiceMs;
  if (name == "Empirical" && m != kPaperMeanServiceMs) {
    throw std::invalid_argument(
        "Empirical distribution has a fixed mean (synthesized Google-leaf "
        "table); omit the mean override");
  }
  if (name == "Exponential") return std::make_shared<Exponential>(m);
  if (name == "Erlang-2") return std::make_shared<Erlang>(2, m);
  if (name == "HyperExp2") {
    return std::make_shared<HyperExp2>(HyperExp2::from_mean_scv(m, 2.0));
  }
  if (name == "Weibull") {
    return std::make_shared<Weibull>(Weibull::from_mean_cv(m, 1.5));
  }
  if (name == "TruncPareto") {
    // The truncation point scales with the mean so a rescaled TruncPareto
    // keeps the paper's shape (CV 1.2, H/E[S] ratio) rather than colliding
    // with a fixed upper bound at large means.
    const double upper = kGoogleLeafMaxMs * (m / kPaperMeanServiceMs);
    return std::make_shared<TruncatedPareto>(
        TruncatedPareto::from_mean_cv_upper(m, 1.2, upper));
  }
  if (name == "Empirical") return google_leaf_ptr();
  throw std::invalid_argument("unknown distribution name: " + name);
}

std::vector<std::string> named_distributions() {
  return {"Exponential", "Erlang-2",    "HyperExp2",
          "Weibull",     "TruncPareto", "Empirical"};
}

}  // namespace forktail::dist
