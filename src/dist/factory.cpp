#include "dist/factory.hpp"

#include "dist/basic.hpp"
#include "dist/google_leaf.hpp"
#include "dist/heavy.hpp"

namespace forktail::dist {

DistPtr make_named(const std::string& name) {
  const double m = kPaperMeanServiceMs;
  if (name == "Exponential") return std::make_shared<Exponential>(m);
  if (name == "Erlang-2") return std::make_shared<Erlang>(2, m);
  if (name == "HyperExp2") {
    return std::make_shared<HyperExp2>(HyperExp2::from_mean_scv(m, 2.0));
  }
  if (name == "Weibull") {
    return std::make_shared<Weibull>(Weibull::from_mean_cv(m, 1.5));
  }
  if (name == "TruncPareto") {
    return std::make_shared<TruncatedPareto>(
        TruncatedPareto::from_mean_cv_upper(m, 1.2, kGoogleLeafMaxMs));
  }
  if (name == "Empirical") return google_leaf_ptr();
  throw std::invalid_argument("unknown distribution name: " + name);
}

std::vector<std::string> named_distributions() {
  return {"Exponential", "Erlang-2",    "HyperExp2",
          "Weibull",     "TruncPareto", "Empirical"};
}

}  // namespace forktail::dist
