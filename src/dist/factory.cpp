#include "dist/factory.hpp"

#include "dist/basic.hpp"
#include "dist/google_leaf.hpp"
#include "dist/heavy.hpp"

namespace forktail::dist {

DistPtr make_named(const std::string& name) {
  return make_named(name, kPaperMeanServiceMs);
}

DistPtr make_named(const std::string& name, double mean) {
  return make_named(name, mean, 0.0);
}

DistPtr make_named(const std::string& name, double mean, double tail_index) {
  const double m = mean > 0.0 ? mean : kPaperMeanServiceMs;
  if (name == "Empirical" && m != kPaperMeanServiceMs) {
    throw std::invalid_argument(
        "Empirical distribution has a fixed mean (synthesized Google-leaf "
        "table); omit the mean override");
  }
  if (tail_index > 0.0 && !takes_tail_index(name)) {
    throw std::invalid_argument(
        "tail index only parameterises the regularly-varying families "
        "(Pareto, HeavyMixture), not " + name);
  }
  const double alpha = tail_index > 0.0 ? tail_index : kDefaultTailIndex;
  if (name == "Exponential") return std::make_shared<Exponential>(m);
  if (name == "Erlang-2") return std::make_shared<Erlang>(2, m);
  if (name == "HyperExp2") {
    return std::make_shared<HyperExp2>(HyperExp2::from_mean_scv(m, 2.0));
  }
  if (name == "Weibull") {
    return std::make_shared<Weibull>(Weibull::from_mean_cv(m, 1.5));
  }
  if (name == "TruncPareto") {
    // The truncation point scales with the mean so a rescaled TruncPareto
    // keeps the paper's shape (CV 1.2, H/E[S] ratio) rather than colliding
    // with a fixed upper bound at large means.
    const double upper = kGoogleLeafMaxMs * (m / kPaperMeanServiceMs);
    return std::make_shared<TruncatedPareto>(
        TruncatedPareto::from_mean_cv_upper(m, 1.2, upper));
  }
  if (name == "Empirical") return google_leaf_ptr();
  if (name == "Pareto") {
    return std::make_shared<Pareto>(Pareto::from_mean_tail(m, alpha));
  }
  if (name == "HeavyMixture") {
    return std::make_shared<ParetoLogNormalMixture>(
        ParetoLogNormalMixture::from_mean_tail(m, alpha));
  }
  throw std::invalid_argument("unknown distribution name: " + name);
}

std::vector<std::string> named_distributions() {
  return {"Exponential", "Erlang-2",    "HyperExp2", "Weibull",
          "TruncPareto", "Empirical",   "Pareto",    "HeavyMixture"};
}

bool takes_tail_index(const std::string& name) {
  return name == "Pareto" || name == "HeavyMixture";
}

}  // namespace forktail::dist
