// Light-tailed / phase-type service-time distributions: exponential,
// Erlang-k, 2-phase hyperexponential, deterministic, uniform.
#pragma once

#include <cmath>

#include "dist/distribution.hpp"

namespace forktail::dist {

/// Exponential with the given mean.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);

  double sample(util::Rng& rng) const override { return rng.exponential(mean_); }
  void sample_n(util::Rng& rng, std::span<double> out) const override {
    for (double& x : out) x = rng.exponential(mean_);
  }
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "Exponential"; }
  Capabilities capabilities() const override;
  double mgf(double theta) const override;
  std::complex<double> lst(std::complex<double> s) const override;

 private:
  double mean_;
};

/// Erlang with `stages` phases and the given overall mean; CV^2 = 1/stages.
class Erlang final : public Distribution {
 public:
  Erlang(int stages, double mean);

  // Defined in the header so the replay fast path can inline it
  // (see fjsim::LindleyState).
  double sample(util::Rng& rng) const override {
    // Product-of-uniforms trick: sum of k exponentials.
    double prod = 1.0;
    for (int i = 0; i < stages_; ++i) prod *= rng.uniform_pos();
    return -std::log(prod) / stage_rate_;
  }
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override;
  Capabilities capabilities() const override;
  double mgf(double theta) const override;
  std::complex<double> lst(std::complex<double> s) const override;

  int stages() const noexcept { return stages_; }
  double stage_rate() const noexcept { return stage_rate_; }

 private:
  int stages_;
  double stage_rate_;  // per-stage rate = stages / mean
};

/// Two-phase hyperexponential: with probability p1 draw Exp(1/rate1), else
/// Exp(1/rate2).  CV^2 >= 1.
class HyperExp2 final : public Distribution {
 public:
  HyperExp2(double p1, double rate1, double rate2);

  /// Balanced-means construction from a target mean and SCV (>= 1): the
  /// standard two-moment fit with p1*mu2 = p2*mu1 branch loads balanced.
  static HyperExp2 from_mean_scv(double mean, double scv);

  double sample(util::Rng& rng) const override {
    const double rate = rng.bernoulli(p1_) ? rate1_ : rate2_;
    return rng.exponential(1.0 / rate);
  }
  void sample_n(util::Rng& rng, std::span<double> out) const override;
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "HyperExp2"; }
  Capabilities capabilities() const override;
  double mgf(double theta) const override;
  std::complex<double> lst(std::complex<double> s) const override;

  double p1() const noexcept { return p1_; }
  double rate1() const noexcept { return rate1_; }
  double rate2() const noexcept { return rate2_; }

 private:
  double p1_;
  double rate1_;
  double rate2_;
};

/// Degenerate distribution: always `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);

  double sample(util::Rng&) const override { return value_; }
  void sample_n(util::Rng&, std::span<double> out) const override {
    for (double& x : out) x = value_;
  }
  double moment(int k) const override;
  double cdf(double x) const override { return x >= value_ ? 1.0 : 0.0; }
  std::string name() const override { return "Deterministic"; }
  Capabilities capabilities() const override;
  double mgf(double theta) const override;
  std::complex<double> lst(std::complex<double> s) const override;

  double value() const noexcept { return value_; }

 private:
  double value_;
};

/// Uniform on [lo, hi].
class UniformReal final : public Distribution {
 public:
  UniformReal(double lo, double hi);

  double sample(util::Rng& rng) const override { return rng.uniform(lo_, hi_); }
  void sample_n(util::Rng& rng, std::span<double> out) const override {
    for (double& x : out) x = rng.uniform(lo_, hi_);
  }
  double moment(int k) const override;
  double cdf(double x) const override;
  std::string name() const override { return "Uniform"; }
  Capabilities capabilities() const override;
  double mgf(double theta) const override;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

 private:
  double lo_;
  double hi_;
};

}  // namespace forktail::dist
