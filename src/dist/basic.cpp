#include "dist/basic.hpp"

#include <cmath>
#include <limits>

#include "dist/transforms.hpp"

namespace forktail::dist {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double factorial(int n) {
  double f = 1.0;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}

/// Shared profile of the phase-type roster: light tail, all moments
/// finite, both transforms available, support [0, inf).
Capabilities phase_type_caps() {
  Capabilities caps;
  caps.tail = TailClass::kLight;
  caps.has_mgf = true;
  caps.has_lst = true;
  return caps;
}
}  // namespace

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double mean) : mean_(mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("Exponential: mean must be > 0");
}

double Exponential::moment(int k) const {
  check_moment_order(k);
  return factorial(k) * std::pow(mean_, k);
}

double Exponential::cdf(double x) const {
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mean_);
}

Capabilities Exponential::capabilities() const {
  Capabilities caps = phase_type_caps();
  caps.memoryless = true;
  return caps;
}

double Exponential::mgf(double theta) const {
  const double rate = 1.0 / mean_;
  return theta < rate ? rate / (rate - theta) : kInf;
}

std::complex<double> Exponential::lst(std::complex<double> s) const {
  const double rate = 1.0 / mean_;
  return rate / (rate + s);
}

// --------------------------------------------------------------------- Erlang

Erlang::Erlang(int stages, double mean)
    : stages_(stages), stage_rate_(static_cast<double>(stages) / mean) {
  if (stages < 1) throw std::invalid_argument("Erlang: stages must be >= 1");
  if (!(mean > 0.0)) throw std::invalid_argument("Erlang: mean must be > 0");
}

void Erlang::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = Erlang::sample(rng);  // devirtualized tight loop
}

double Erlang::moment(int k) const {
  check_moment_order(k);
  // E[X^k] = (n+k-1)! / ((n-1)! * rate^k)
  double num = 1.0;
  for (int i = stages_; i < stages_ + k; ++i) num *= i;
  return num / std::pow(stage_rate_, k);
}

double Erlang::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  // 1 - e^{-rx} * sum_{j<n} (rx)^j / j!
  const double rx = stage_rate_ * x;
  double term = 1.0;
  double sum = 1.0;
  for (int j = 1; j < stages_; ++j) {
    term *= rx / j;
    sum += term;
  }
  return 1.0 - std::exp(-rx) * sum;
}

std::string Erlang::name() const { return "Erlang-" + std::to_string(stages_); }

Capabilities Erlang::capabilities() const { return phase_type_caps(); }

double Erlang::mgf(double theta) const {
  if (theta >= stage_rate_) return kInf;
  return std::pow(stage_rate_ / (stage_rate_ - theta),
                  static_cast<double>(stages_));
}

std::complex<double> Erlang::lst(std::complex<double> s) const {
  std::complex<double> base = stage_rate_ / (stage_rate_ + s);
  std::complex<double> out = 1.0;
  for (int i = 0; i < stages_; ++i) out *= base;
  return out;
}

// ------------------------------------------------------------------ HyperExp2

HyperExp2::HyperExp2(double p1, double rate1, double rate2)
    : p1_(p1), rate1_(rate1), rate2_(rate2) {
  if (!(p1 >= 0.0 && p1 <= 1.0)) throw std::invalid_argument("HyperExp2: bad p1");
  if (!(rate1 > 0.0 && rate2 > 0.0)) {
    throw std::invalid_argument("HyperExp2: rates must be > 0");
  }
}

HyperExp2 HyperExp2::from_mean_scv(double mean, double scv) {
  if (!(mean > 0.0)) throw std::invalid_argument("HyperExp2: mean must be > 0");
  if (!(scv >= 1.0)) {
    throw std::invalid_argument("HyperExp2: requires SCV >= 1");
  }
  // Balanced-means two-moment fit (Tijms): p1 = (1 + sqrt((c2-1)/(c2+1)))/2,
  // mu1 = 2 p1 / mean, mu2 = 2 (1-p1) / mean.
  const double p1 = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double mu1 = 2.0 * p1 / mean;
  const double mu2 = 2.0 * (1.0 - p1) / mean;
  return HyperExp2(p1, mu1, mu2);
}

void HyperExp2::sample_n(util::Rng& rng, std::span<double> out) const {
  for (double& x : out) x = HyperExp2::sample(rng);
}

double HyperExp2::moment(int k) const {
  check_moment_order(k);
  const double f = factorial(k);
  return p1_ * f / std::pow(rate1_, k) + (1.0 - p1_) * f / std::pow(rate2_, k);
}

double HyperExp2::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return p1_ * (1.0 - std::exp(-rate1_ * x)) +
         (1.0 - p1_) * (1.0 - std::exp(-rate2_ * x));
}

Capabilities HyperExp2::capabilities() const { return phase_type_caps(); }

double HyperExp2::mgf(double theta) const {
  if (theta >= rate1_ || theta >= rate2_) return kInf;
  return p1_ * rate1_ / (rate1_ - theta) +
         (1.0 - p1_) * rate2_ / (rate2_ - theta);
}

std::complex<double> HyperExp2::lst(std::complex<double> s) const {
  return p1_ * (rate1_ / (rate1_ + s)) + (1.0 - p1_) * (rate2_ / (rate2_ + s));
}

// -------------------------------------------------------------- Deterministic

Deterministic::Deterministic(double value) : value_(value) {
  if (!(value >= 0.0)) throw std::invalid_argument("Deterministic: value < 0");
}

double Deterministic::moment(int k) const {
  check_moment_order(k);
  return std::pow(value_, k);
}

Capabilities Deterministic::capabilities() const {
  Capabilities caps = phase_type_caps();
  caps.support_lo = value_;
  caps.support_hi = value_;
  return caps;
}

double Deterministic::mgf(double theta) const {
  const double value = std::exp(theta * value_);
  return std::isfinite(value) ? value : kInf;
}

std::complex<double> Deterministic::lst(std::complex<double> s) const {
  return std::exp(-s * value_);
}

// ---------------------------------------------------------------- UniformReal

UniformReal::UniformReal(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || lo < 0.0) throw std::invalid_argument("Uniform: bad range");
}

double UniformReal::moment(int k) const {
  check_moment_order(k);
  const double kk = static_cast<double>(k);
  return (std::pow(hi_, kk + 1.0) - std::pow(lo_, kk + 1.0)) /
         ((kk + 1.0) * (hi_ - lo_));
}

double UniformReal::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

Capabilities UniformReal::capabilities() const {
  Capabilities caps;
  caps.tail = TailClass::kLight;
  caps.has_mgf = true;
  caps.support_lo = lo_;
  caps.support_hi = hi_;
  return caps;
}

double UniformReal::mgf(double theta) const {
  const double value = uniform_segment_mgf(theta, lo_, hi_);
  return std::isfinite(value) ? value : kInf;
}

}  // namespace forktail::dist
