#include "dist/vec_sampler.hpp"

#include <stdexcept>

#include "dist/basic.hpp"
#include "dist/empirical.hpp"
#include "dist/heavy.hpp"
#include "stats/special_functions.hpp"

namespace forktail::dist {

VecClass classify_vec(const Distribution& d) {
  if (const auto* e = dynamic_cast<const Erlang*>(&d)) {
    return {VecKind::kErlang, e->stages()};
  }
  if (dynamic_cast<const Exponential*>(&d)) return {VecKind::kExponential, 0};
  if (dynamic_cast<const HyperExp2*>(&d)) return {VecKind::kHyperExp2, 0};
  if (dynamic_cast<const Weibull*>(&d)) return {VecKind::kWeibull, 0};
  if (dynamic_cast<const TruncatedPareto*>(&d)) {
    return {VecKind::kTruncPareto, 0};
  }
  if (dynamic_cast<const Pareto*>(&d)) return {VecKind::kPareto, 0};
  if (dynamic_cast<const LogNormal*>(&d)) return {VecKind::kLogNormal, 0};
  if (dynamic_cast<const Deterministic*>(&d)) {
    return {VecKind::kDeterministic, 0};
  }
  if (dynamic_cast<const UniformReal*>(&d)) return {VecKind::kUniform, 0};
  if (dynamic_cast<const Empirical*>(&d)) return {VecKind::kEmpirical, 0};
  return {VecKind::kGeneric, 0};
}

EmpiricalGrid::EmpiricalGrid(const Empirical& e)
    : probs_(e.knot_probs().begin(), e.knot_probs().end()),
      values_(e.knot_values().begin(), e.knot_values().end()) {
  // ~4 buckets per knot keeps the expected forward scan below one step.
  buckets_ = probs_.size() * 4;
  if (buckets_ < 64) buckets_ = 64;
  start_.resize(buckets_);
  std::size_t k = 0;
  for (std::size_t b = 0; b < buckets_; ++b) {
    const double edge =
        static_cast<double>(b) / static_cast<double>(buckets_);
    while (k + 1 < probs_.size() && probs_[k + 1] <= edge) ++k;
    start_[b] = static_cast<std::uint32_t>(k);
  }
}

LaneSampler::LaneSampler(std::span<const Lane> lanes) {
  if (lanes.empty() || lanes.size() > kL) {
    throw std::invalid_argument("LaneSampler: need 1..8 lanes");
  }
  active_ = lanes.size();
  cls_ = classify_vec(*lanes[0].dist);
  for (std::size_t l = 0; l < active_; ++l) {
    const Distribution& d = *lanes[l].dist;
    if (!(classify_vec(d) == cls_)) {
      throw std::invalid_argument("LaneSampler: lanes must share a VecClass");
    }
    dists_[l] = &d;
    xo_.seed_lane(l, lanes[l].seed);
    switch (cls_.kind) {
      case VecKind::kDeterministic:
        p0_[l] = static_cast<const Deterministic&>(d).value();
        break;
      case VecKind::kUniform: {
        const auto& u = static_cast<const UniformReal&>(d);
        p0_[l] = u.lo();
        p1_[l] = u.hi() - u.lo();
        break;
      }
      case VecKind::kExponential:
        p0_[l] = -d.mean();
        break;
      case VecKind::kErlang:
        p0_[l] = -1.0 / static_cast<const Erlang&>(d).stage_rate();
        break;
      case VecKind::kHyperExp2: {
        const auto& h = static_cast<const HyperExp2&>(d);
        p0_[l] = h.p1();
        p1_[l] = -1.0 / h.rate1();
        p2_[l] = -1.0 / h.rate2();
        break;
      }
      case VecKind::kWeibull: {
        const auto& w = static_cast<const Weibull&>(d);
        p0_[l] = 1.0 / w.shape();
        p1_[l] = w.scale();
        break;
      }
      case VecKind::kTruncPareto: {
        const auto& t = static_cast<const TruncatedPareto&>(d);
        p0_[l] = t.trunc_mass();
        p1_[l] = -1.0 / t.alpha();
        p2_[l] = t.lower();
        break;
      }
      case VecKind::kPareto: {
        // Same kernel as kTruncPareto with the full tail mass: the scalar
        // quantile scale / (1 - u)^{1/alpha} is exactly the truncated form
        // at trunc_mass = 1.
        const auto& p = static_cast<const Pareto&>(d);
        p0_[l] = 1.0;
        p1_[l] = -1.0 / p.alpha();
        p2_[l] = p.scale();
        break;
      }
      case VecKind::kLogNormal: {
        const auto& ln = static_cast<const LogNormal&>(d);
        p0_[l] = ln.mu();
        p1_[l] = ln.sigma();
        break;
      }
      case VecKind::kEmpirical:
        if (grids_.empty()) grids_.resize(kL);
        grids_[l] = std::make_shared<EmpiricalGrid>(
            static_cast<const Empirical&>(d));
        break;
      case VecKind::kGeneric:
        if (rngs_.empty()) rngs_.reserve(kL);
        break;
    }
  }
  if (cls_.kind == VecKind::kGeneric) {
    for (std::size_t l = 0; l < active_; ++l) {
      rngs_.emplace_back(lanes[l].seed);
    }
  }
  if (cls_.kind == VecKind::kWeibull) {
    // When every lane shares a small exact-integer 1/shape (shape 1/2,
    // 1/3, 1/4 -- the paper's heavy-tail calibrations), x^(1/shape) is a
    // repeated multiply and fill_weibull skips its second log/exp round
    // trip entirely.
    const double m = p0_[0];
    bool uniform_m = (m == 2.0 || m == 3.0 || m == 4.0);
    for (std::size_t l = 1; l < active_ && uniform_m; ++l) {
      uniform_m = (p0_[l] == m);
    }
    if (uniform_m) weibull_ipow_ = static_cast<int>(m);
  }
}

double LaneSampler::tail_normal_quantile(double u) {
  return stats::normal_quantile(u);
}

}  // namespace forktail::dist
