#include "cloud/spark_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace forktail::cloud {

namespace {
// Table 1 slopes: load% per unit arrival rate, matching the paper exactly
// (48.33% at lambda = 3 for 32 workers => 16.11; 50.04% => 16.68 for 64).
constexpr double kMeanScan32 = 0.16110;
constexpr double kMeanScan64 = 0.16680;
}  // namespace

double table1_load_percent(double lambda, std::size_t num_workers) {
  const double scan = num_workers >= 64 ? kMeanScan64 : kMeanScan32;
  return 100.0 * lambda * scan;
}

CloudResult run_cloud_case_study(const CloudConfig& config) {
  if (config.num_workers == 0) {
    throw std::invalid_argument("run_cloud_case_study: no workers");
  }
  if (!(config.lambda > 0.0)) {
    throw std::invalid_argument("run_cloud_case_study: lambda <= 0");
  }
  util::Rng master(config.seed);
  util::Rng arrival_rng = master.split(0);
  util::Rng layout_rng = master.split(1);

  const std::size_t n = config.num_workers;
  // Worker scan-time means: the slowest worker sits at base_mean_max; the
  // rest spread below it (instance variability in the cloud).
  std::vector<double> base_mean(n);
  std::vector<double> susceptibility(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_mean[i] = config.base_mean_max *
                   (1.0 - config.base_spread * layout_rng.uniform());
    // Locality-miss susceptibility: skewed across workers (some hold hot
    // replicas and rarely miss; some almost always fetch remotely under
    // pressure).
    susceptibility[i] = 0.2 + 1.6 * layout_rng.uniform();
  }
  base_mean[0] = config.base_mean_max;  // pin the maximum for Table 1

  const double rho_est = config.lambda * config.base_mean_max;
  const double ramp = std::max(
      0.0, (rho_est - config.locality_ramp_start) /
               (1.0 - config.locality_ramp_start));
  const double miss_base = config.locality_coeff * ramp * ramp;

  const auto warmup = static_cast<std::uint64_t>(
      config.warmup_fraction / (1.0 - config.warmup_fraction) *
      static_cast<double>(config.num_requests));
  const std::uint64_t total = warmup + config.num_requests;

  std::vector<double> arrivals(total);
  {
    double t = 0.0;
    for (auto& a : arrivals) {
      t += arrival_rng.exponential(1.0 / config.lambda);
      a = t;
    }
  }

  CloudResult result;
  result.worker_task_stats.resize(n);
  result.worker_service_stats.resize(n);
  result.estimated_load = rho_est;
  std::vector<double> completion_max(total, 0.0);

  // Lognormal multiplier with unit mean and the configured CV.
  const double sigma2 = std::log(1.0 + config.service_cv * config.service_cv);
  const double lg_mu = -0.5 * sigma2;
  const double lg_sigma = std::sqrt(sigma2);

  for (std::size_t w = 0; w < n; ++w) {
    util::Rng rng = master.split(100 + w);
    const double p_miss = std::min(0.95, miss_base * susceptibility[w]);
    double next_free = 0.0;
    for (std::uint64_t j = 0; j < total; ++j) {
      double service = base_mean[w] * std::exp(lg_mu + lg_sigma * rng.normal());
      if (rng.bernoulli(p_miss)) {
        service += rng.exponential(config.fetch_mean);
      }
      const double start = std::max(arrivals[j], next_free);
      next_free = start + service;
      if (j >= warmup) {
        result.worker_task_stats[w].add(next_free - arrivals[j]);
        result.worker_service_stats[w].add(service);
        result.pooled_task_stats.add(next_free - arrivals[j]);
      }
      if (next_free > completion_max[j]) completion_max[j] = next_free;
    }
  }

  result.responses.reserve(config.num_requests);
  for (std::uint64_t j = warmup; j < total; ++j) {
    result.responses.push_back(completion_max[j] - arrivals[j]);
  }
  return result;
}

}  // namespace forktail::cloud
