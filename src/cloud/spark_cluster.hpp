// Spark-like cluster model for the Amazon EC2 case study (Section 4.1,
// Figs. 8-9, Table 1).
//
// The paper runs a grep-style keyword count over N HDFS shards: every
// request forks one task per worker; the driver keeps a central virtual
// FIFO queue per worker, so the task response time = central queueing +
// dispatch + scan time.  The crucial measured effect is *load-dependent
// inhomogeneity*: each block has 3 replicas, and as load grows more tasks
// are placed on workers that do not hold the block, paying a remote-fetch
// penalty -- unevenly across workers.  We model exactly that mechanism:
//
//   service_i = base_i * LogNormal(1, cv)          (scan of a 128 MB shard)
//             + Bernoulli(p_i(rho)) * Exp(fetch)   (remote block fetch)
//   p_i(rho)  = susceptibility_i * ramp(rho)       (locality misses ramp up
//                                                   with load, worker-skewed)
//
// base_i is calibrated so the maximum per-worker mean scan time equals the
// value implied by the paper's Table 1 (161.1 ms for 32 workers, 166.8 ms
// for 64), making our load estimates reproduce that table exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::cloud {

struct CloudConfig {
  std::size_t num_workers = 32;
  double lambda = 3.0;           ///< request (keyword) arrival rate per second
  /// Maximum per-worker mean scan time in seconds; Table 1's load estimate
  /// is lambda * this value.
  double base_mean_max = 0.1611;
  double base_spread = 0.20;     ///< relative spread of worker scan means
  double service_cv = 0.50;      ///< scan time CV (lognormal)
  double fetch_mean = 0.06;      ///< mean remote-fetch penalty (seconds)
  double locality_ramp_start = 0.45;  ///< load where locality misses begin
  double locality_coeff = 0.12;  ///< miss probability scale at full ramp
  std::uint64_t num_requests = 20000;  ///< measured requests
  double warmup_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct CloudResult {
  std::vector<double> responses;           ///< measured request responses (s)
  std::vector<stats::Welford> worker_task_stats;  ///< response times per worker
  std::vector<stats::Welford> worker_service_stats;  ///< service times per worker
  stats::Welford pooled_task_stats;
  double estimated_load = 0.0;  ///< lambda * base_mean_max (Table 1's method)
};

/// Simulate the cluster (Lindley replay per worker over shared arrivals).
CloudResult run_cloud_case_study(const CloudConfig& config);

/// The paper's Table 1: estimated load (percent) for an arrival rate.
double table1_load_percent(double lambda, std::size_t num_workers);

}  // namespace forktail::cloud
