#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace forktail::core {

NodeStatsRegistry::NodeStatsRegistry(std::size_t num_nodes, double staleness_limit)
    : entries_(num_nodes), staleness_limit_(staleness_limit) {
  if (num_nodes == 0) {
    throw std::invalid_argument("NodeStatsRegistry: need at least one node");
  }
  if (!(staleness_limit > 0.0)) {
    throw std::invalid_argument("NodeStatsRegistry: staleness limit must be > 0");
  }
}

void NodeStatsRegistry::report(std::size_t node, double now, const TaskStats& stats) {
  if (!(stats.mean > 0.0 && stats.variance > 0.0)) {
    throw std::invalid_argument("NodeStatsRegistry: stats must be positive");
  }
  Entry& e = entries_.at(node);
  e.stats = stats;
  e.reported_at = now;
  e.valid = true;
}

std::optional<TaskStats> NodeStatsRegistry::fresh_stats(std::size_t node,
                                                        double now) const {
  const Entry& e = entries_.at(node);
  if (!e.valid || now - e.reported_at > staleness_limit_) return std::nullopt;
  return e.stats;
}

std::size_t NodeStatsRegistry::fresh_count(double now) const {
  std::size_t c = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (fresh_stats(i, now)) ++c;
  }
  return c;
}

AdmissionController::AdmissionController(const NodeStatsRegistry& registry)
    : registry_(registry) {}

AdmissionDecision AdmissionController::admit(std::size_t k, const TailSlo& slo,
                                             double now) const {
  if (k == 0 || k > registry_.num_nodes()) {
    throw std::invalid_argument("AdmissionController: bad k");
  }
  struct Candidate {
    std::size_t node;
    double score;
    TaskStats stats;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(registry_.num_nodes());
  const double level = std::pow(slo.percentile / 100.0,
                                1.0 / static_cast<double>(k));
  for (std::size_t i = 0; i < registry_.num_nodes(); ++i) {
    const auto s = registry_.fresh_stats(i, now);
    if (!s) continue;
    const GenExp ge = GenExp::fit_moments(s->mean, s->variance);
    candidates.push_back({i, ge.quantile(level), *s});
  }
  AdmissionDecision decision;
  if (candidates.size() < k) return decision;  // not enough fresh nodes
  std::nth_element(candidates.begin(),
                   candidates.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score < b.score;
                   });
  std::vector<TaskStats> chosen_stats;
  chosen_stats.reserve(k);
  std::vector<std::size_t> chosen_nodes;
  chosen_nodes.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    chosen_nodes.push_back(candidates[i].node);
    chosen_stats.push_back(candidates[i].stats);
  }
  decision.predicted_latency = inhomogeneous_quantile(chosen_stats, slo.percentile);
  if (decision.predicted_latency <= slo.latency) {
    decision.admitted = true;
    decision.chosen_nodes = std::move(chosen_nodes);
  }
  return decision;
}

}  // namespace forktail::core
