// Extreme-value correction for the fork-join maximum under heavy tails.
//
// ForkTail's Eq. 13 treats the request response as the max of k iid GE
// variables -- a Gumbel-domain model.  When the service time is regularly
// varying with index alpha (capabilities().tail == kRegularlyVarying), the
// M/G/1 sojourn is regularly varying with index alpha - 1 (one order
// heavier: a single huge job delays the whole busy period), the max of k
// sojourns lives in the FRECHET domain of attraction, and the GE fit
// underestimates the far tail by an amount that grows with k and the
// percentile.  Schol/Vlasiou/Zwart (arXiv 2211.02313) make the extreme-
// value limit of the fork-join maximum precise; the correction used here
// is the first-order Pakes asymptote of the sojourn tail
//
//   P(T > x) ~ lambda c x^{1-alpha} / ((1 - rho)(alpha - 1)) + c x^{-alpha}
//
// (P(S > x) ~ c x^{-alpha}), inverted at the per-task level 1 - q^{1/k}.
// The reported prediction is the max of the GE body quantile and the EVT
// tail quantile: in the body region (small k, low percentile) the GE fit
// is sharper and the asymptote undershoots; past the breakdown boundary
// the asymptote takes over.  Light- and subexponential-tailed services
// take the Gumbel branch, which IS the plain GE prediction -- so the EVT
// predictor degrades gracefully to ForkTail where ForkTail is right.
#pragma once

#include "core/predictor.hpp"
#include "dist/distribution.hpp"

namespace forktail::core {

struct EvtPrediction {
  double value = 0.0;       ///< predicted percentile (ms)
  bool frechet = false;     ///< true when the heavy-tail branch fired
  double tail_index = 0.0;  ///< service alpha used (0 on the Gumbel branch)
};

/// Percentile `p` (in (0, 100)) of the max of `k` iid task responses,
/// selecting the Gumbel or Frechet branch from the service's declared tail
/// capability.  `stats` are the measured black-box task moments (used for
/// the GE body), `node_lambda` the per-node task arrival rate, and
/// `service` the white-box service distribution whose capabilities pick
/// the branch and provide (alpha, c).
EvtPrediction evt_max_quantile(const TaskStats& stats, double k, double p,
                               double node_lambda,
                               const dist::Distribution& service);

}  // namespace forktail::core
