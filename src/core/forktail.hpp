// Umbrella header: the public API of the ForkTail library.
//
// Quick start:
//
//   #include "core/forktail.hpp"
//
//   // Black-box prediction: measure the mean and variance of task response
//   // times at your fork nodes, then
//   forktail::core::TaskStats stats{/*mean=*/42.0, /*variance=*/1764.0};
//   double p99 = forktail::core::homogeneous_quantile(stats, /*k=*/100, 99.0);
//
// See README.md for the full tour.
#pragma once

#include "core/genexp.hpp"        // the GE response-time model (Eqs. 1-3)
#include "core/online.hpp"        // sliding-window online prediction
#include "core/pipeline.hpp"      // multi-stage workflow composition
#include "core/predictor.hpp"     // Eqs. 4-9 and 13-14 predictors
#include "core/provisioning.hpp"  // Section 6: SLO -> task budget
#include "core/scheduler.hpp"     // Section 6: admission control
#include "core/sensitivity.hpp"   // measurement-error propagation
