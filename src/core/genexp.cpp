#include "core/genexp.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "stats/roots.hpp"
#include "stats/special_functions.hpp"

namespace forktail::core {

namespace {
// Moment-fit telemetry (docs/observability.md): how often the fit runs,
// how many Brent iterations the ratio inversion needs, and how often a
// degenerate measurement clamps to the alpha boundary instead of solving.
struct FitMetrics {
  obs::Counter& calls = obs::Registry::global().counter("genexp.fit_calls");
  obs::Counter& clamped =
      obs::Registry::global().counter("genexp.fit_clamped");
  obs::Counter& unconverged =
      obs::Registry::global().counter("genexp.fit_unconverged");
  obs::Histogram& iterations =
      obs::Registry::global().histogram("genexp.fit_iterations");
  static FitMetrics& get() {
    static FitMetrics m;
    return m;
  }
};
}  // namespace

GenExp::GenExp(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  if (!(alpha > 0.0 && beta > 0.0)) {
    throw std::invalid_argument("GenExp: alpha and beta must be > 0");
  }
}

GenExp GenExp::fit_moments(double mean, double variance) {
  // Explicit finiteness check: +infinity passes `> 0`, and an infinite
  // variance (regularly-varying service with tail index <= 2) would
  // silently clamp to the heavy boundary and return a garbage fit.
  // Callers with heavy-tailed services should consult
  // dist::Capabilities::moment_finite and degrade (see
  // whitebox_mg1_task_model) instead of reaching this throw.
  if (!(std::isfinite(mean) && mean > 0.0 &&
        std::isfinite(variance) && variance > 0.0)) {
    throw std::invalid_argument(
        "GenExp::fit_moments: mean and variance must be finite and > 0 "
        "(infinite moments mean the service tail is too heavy for a GE "
        "moment fit)");
  }
  const double target_ratio = mean * mean / variance;  // increasing in alpha
  auto ratio_at = [](double log_alpha) {
    const double a = std::exp(log_alpha);
    const double um = stats::ge_unit_mean(a);
    const double uv = stats::ge_unit_variance(a);
    return um * um / uv;
  };
  // alpha in [e^-30, e^30] covers CVs from ~4% to astronomically heavy;
  // degenerate measurements beyond either end (e.g. near-deterministic
  // windows during a load transient) clamp to the boundary fit rather
  // than failing.
  constexpr double kLogAlphaLo = -30.0;
  constexpr double kLogAlphaHi = 30.0;
  FitMetrics::get().calls.add(1);
  double log_alpha;
  if (target_ratio <= ratio_at(kLogAlphaLo)) {
    log_alpha = kLogAlphaLo;
    FitMetrics::get().clamped.add(1);
  } else if (target_ratio >= ratio_at(kLogAlphaHi)) {
    log_alpha = kLogAlphaHi;
    FitMetrics::get().clamped.add(1);
  } else {
    const stats::RootResult solve = stats::brent_traced(
        [&](double la) { return ratio_at(la) - target_ratio; }, kLogAlphaLo,
        kLogAlphaHi,
        {.x_tolerance = 1e-13, .f_tolerance = 0.0, .max_iterations = 300});
    log_alpha = solve.root;
    FitMetrics::get().iterations.record(static_cast<double>(solve.iterations));
    if (!solve.converged) FitMetrics::get().unconverged.add(1);
  }
  const double alpha = std::exp(log_alpha);
  const double beta = mean / stats::ge_unit_mean(alpha);
  return GenExp(alpha, beta);
}

double GenExp::mean() const { return beta_ * stats::ge_unit_mean(alpha_); }

double GenExp::variance() const {
  return beta_ * beta_ * stats::ge_unit_variance(alpha_);
}

double GenExp::cdf(double x) const { return max_cdf(x, 1.0); }

double GenExp::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double e = std::exp(-x / beta_);
  // alpha/beta * e^{-x/beta} * (1 - e^{-x/beta})^{alpha-1}
  return alpha_ / beta_ * e * std::exp((alpha_ - 1.0) * std::log1p(-e));
}

double GenExp::quantile(double q) const { return max_quantile(q, 1.0); }

double GenExp::max_quantile(double q, double k) const {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("GenExp: quantile level must be in (0,1)");
  }
  if (!(k > 0.0)) throw std::invalid_argument("GenExp: k must be > 0");
  // x = -beta ln(1 - q^{1/(k alpha)}) = -beta ln(1 - e^y).  Two precision
  // regimes: when e^y is close to 1 (large k alpha), 1 - e^y needs expm1;
  // when e^y is tiny (deep lower tail), ln(1 - e^y) needs log1p -- using
  // the wrong primitive loses all relative precision on the other side.
  const double y = std::log(q) / (k * alpha_);  // <= 0
  if (y > -0.6931471805599453) {                // e^y > 1/2: expm1 regime
    return -beta_ * std::log(-std::expm1(y));
  }
  return -beta_ * std::log1p(-std::exp(y));     // e^y <= 1/2: log1p regime
}

double GenExp::max_cdf(double x, double k) const {
  if (x <= 0.0) return 0.0;
  // (1 - e^{-x/beta})^{k alpha} = exp(k alpha ln(1 - e^{-z})), z = x/beta.
  // Mirror of max_quantile's two regimes: small z needs expm1 for the
  // difference, large z needs log1p for the logarithm near 1.
  const double z = x / beta_;
  double log_one_minus;
  if (z < 0.6931471805599453) {  // e^{-z} > 1/2: expm1 regime
    const double one_minus = -std::expm1(-z);
    if (one_minus <= 0.0) return 0.0;
    log_one_minus = std::log(one_minus);
  } else {  // e^{-z} <= 1/2: log1p regime
    log_one_minus = std::log1p(-std::exp(-z));
  }
  return std::exp(k * alpha_ * log_one_minus);
}

double GenExp::sample(util::Rng& rng) const { return quantile(rng.uniform_pos()); }

std::string GenExp::to_string() const {
  std::ostringstream os;
  os << "GenExp(alpha=" << alpha_ << ", beta=" << beta_ << ")";
  return os.str();
}

}  // namespace forktail::core
