// Multi-stage fork-join workflow prediction.
//
// The paper's introduction motivates ForkTail with request workflows
// "underlaid by various Fork-Join structures" -- e.g. web search runs a
// retrieval fan-out, then a ranking fan-out, then assembly.  A single
// ForkTail instance models one stage; this module composes stages.
//
// The composition is natural in the GE algebra:
//   * within a stage, the max of k iid GE(alpha, beta) tasks is EXACTLY
//     GE(k*alpha, beta) (the CDFs multiply), so each stage's latency is a
//     GE variable with closed-form mean/variance (Eqs. 2-3 at shape
//     k*alpha);
//   * across stages, latencies add; treating stages as independent, the
//     total's mean and variance are the sums, and the total is re-fitted
//     as a GE by moment matching -- the same two-moment philosophy the
//     paper applies per node, lifted one level.
//
// The independence-across-stages assumption parallels Eq. 4's assumption
// across nodes, and is validated the same way (against simulation, at
// high load) in tests/test_pipeline.cpp and bench/pipeline_validation.
#pragma once

#include <string>
#include <vector>

#include "core/genexp.hpp"
#include "core/predictor.hpp"

namespace forktail::core {

/// One fork-join stage of a workflow: black-box task statistics plus the
/// fan-out.
struct StageSpec {
  std::string name;     ///< label for reporting ("retrieval", "ranking", ...)
  TaskStats tasks{};    ///< measured per-task response moments at this stage
  double fanout = 1.0;  ///< k: tasks forked per request at this stage
};

/// Closed-form summary of one stage's latency (the max over its tasks).
struct StageLatency {
  std::string name;
  GenExp model;      ///< GE(k*alpha, beta): the exact stage-latency law
  double mean = 0.0;
  double variance = 0.0;
};

class PipelinePredictor {
 public:
  explicit PipelinePredictor(std::vector<StageSpec> stages);

  std::size_t num_stages() const noexcept { return stages_.size(); }

  /// Per-stage latency laws (exact under the per-stage model).
  const std::vector<StageLatency>& stage_latencies() const noexcept {
    return stage_latencies_;
  }

  /// Mean / variance of the end-to-end workflow latency (sums of stages).
  double total_mean() const noexcept { return total_mean_; }
  double total_variance() const noexcept { return total_variance_; }

  /// p-th percentile of the end-to-end latency via the moment-matched GE
  /// of the stage sum.  p in (0, 100).
  double quantile(double p) const;

  /// End-to-end CDF of the moment-matched total.
  double cdf(double x) const;

  /// Which stage dominates the tail: index of the stage with the largest
  /// p-th percentile contribution.
  std::size_t bottleneck_stage(double p = 99.0) const;

  /// Fraction of the total mean latency contributed by each stage.
  std::vector<double> mean_breakdown() const;

 private:
  std::vector<StageSpec> stages_;
  std::vector<StageLatency> stage_latencies_;
  double total_mean_ = 0.0;
  double total_variance_ = 0.0;
  GenExp total_model_{1.0, 1.0};
};

}  // namespace forktail::core
