// Online tail-latency prediction from streaming task-response samples.
//
// Implements the measurement loop Section 3 describes: every fork node
// keeps a moving window (e.g. 20 s) of task response times; the predictor
// re-fits the GE model from the windowed mean/variance and answers quantile
// queries in microseconds -- the paper's contrast with the ~33-minute
// direct-measurement alternative.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "stats/windowed.hpp"

namespace forktail::core {

class OnlineTailPredictor {
 public:
  /// `num_nodes` fork nodes, each with a sliding time window of
  /// `window_seconds`; predictions require at least `min_samples` samples
  /// in every participating node's window.
  OnlineTailPredictor(std::size_t num_nodes, double window_seconds,
                      std::size_t min_samples = 30);

  std::size_t num_nodes() const noexcept { return windows_.size(); }

  /// Record a completed task at `node`: response time `response` observed
  /// at wall-clock time `now` (seconds, non-decreasing per node).
  void record(std::size_t node, double now, double response);

  /// Evict samples older than the window without recording (call before
  /// reading stats from a node that may have gone idle -- otherwise its
  /// window freezes with its last, possibly congested, samples).
  void advance(std::size_t node, double now);

  /// Per-node current statistics; nullopt when the window is under-filled.
  std::optional<TaskStats> node_stats(std::size_t node) const;

  /// Homogeneous prediction pooling all nodes (coarse-grained,
  /// per-service view; Eq. 6).  k defaults to the node count.
  std::optional<double> predict_homogeneous(double p, double k = 0.0) const;

  /// Inhomogeneous prediction over all nodes (Eq. 4): per-node fits.
  std::optional<double> predict_inhomogeneous(double p) const;

  /// Inhomogeneous prediction for a request touching `nodes` (Eq. 5): the
  /// fine-grained per-request expression.
  std::optional<double> predict_subset(std::span<const std::size_t> nodes,
                                       double p) const;

  /// Mixture prediction over pooled stats (Eq. 9).
  std::optional<double> predict_mixture(const TaskCountMixture& mixture,
                                        double p) const;

 private:
  std::vector<stats::WindowedMoments> windows_;
  std::size_t min_samples_;
};

}  // namespace forktail::core
