// Online tail-latency prediction from streaming task-response samples.
//
// Implements the measurement loop Section 3 describes: every fork node
// keeps a moving window (e.g. 20 s) of task response times; the predictor
// re-fits the GE model from the windowed mean/variance and answers quantile
// queries in microseconds -- the paper's contrast with the ~33-minute
// direct-measurement alternative.
//
// Clock discipline: sample timestamps come from the agents that measured
// them, and real agent clocks jump backwards (NTP steps, VM migrations,
// agent restarts).  A backwards timestamp fed straight into the window
// would corrupt eviction, so record() clamps small backwards jumps (up to
// `skew_tolerance` seconds) onto the node's high-water mark and rejects
// larger ones with a typed outcome -- it never throws on bad clocks and
// never lets them corrupt the window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "stats/windowed.hpp"

namespace forktail::core {

/// What record() did with a sample (see class comment on clock discipline).
enum class RecordOutcome : std::uint8_t {
  kAccepted,  ///< timestamp was monotone; recorded as given
  kClamped,   ///< small backwards jump; recorded at the node's high-water mark
  kRejected,  ///< backwards jump beyond the skew tolerance; dropped
};

class OnlineTailPredictor {
 public:
  /// `num_nodes` fork nodes, each with a sliding time window of
  /// `window_seconds`; predictions require at least `min_samples` samples
  /// in every participating node's window.  `skew_tolerance` is the largest
  /// backwards clock jump (seconds) record() absorbs by clamping; beyond it
  /// the sample is rejected (0 = only exactly-equal timestamps tolerated).
  OnlineTailPredictor(std::size_t num_nodes, double window_seconds,
                      std::size_t min_samples = 30,
                      double skew_tolerance = 0.0);

  std::size_t num_nodes() const noexcept { return windows_.size(); }
  std::size_t min_samples() const noexcept { return min_samples_; }

  /// Record a completed task at `node`: response time `response` observed
  /// at wall-clock time `now` (seconds).  Backwards `now` values are
  /// clamped within the skew tolerance and rejected beyond it -- see
  /// RecordOutcome; the window is never corrupted and nothing throws for
  /// bad clocks (out-of-range `node` still throws std::out_of_range).
  RecordOutcome record(std::size_t node, double now, double response);

  /// Evict samples older than the window without recording (call before
  /// reading stats from a node that may have gone idle -- otherwise its
  /// window freezes with its last, possibly congested, samples).  Advances
  /// the node's high-water mark, so it also bounds future backwards jumps.
  void advance(std::size_t node, double now);

  /// The node's timestamp high-water mark (latest record/advance time);
  /// nullopt before the first sample.  Liveness sweeps use this to evict
  /// in the agent's own time base.
  std::optional<double> last_timestamp(std::size_t node) const;

  /// Per-node current statistics; nullopt when the window is under-filled.
  std::optional<TaskStats> node_stats(std::size_t node) const;

  /// Service-level moments pooled over the *filled* windows only -- the
  /// shard-friendly accessor: callers merge PooledStats across shards and
  /// decide for themselves whether `filled_nodes < total_nodes` means
  /// "degrade" (serve) or "decline" (the strict predict_* methods below).
  struct PooledStats {
    double count = 0.0;     ///< samples across the filled windows
    double mean = 0.0;
    double variance = 0.0;
    std::size_t filled_nodes = 0;  ///< windows meeting min_samples
    std::size_t total_nodes = 0;
  };
  PooledStats pooled_stats() const;

  /// Homogeneous prediction pooling all nodes (coarse-grained,
  /// per-service view; Eq. 6).  k defaults to the node count.
  std::optional<double> predict_homogeneous(double p, double k = 0.0) const;

  /// Inhomogeneous prediction over all nodes (Eq. 4): per-node fits.
  std::optional<double> predict_inhomogeneous(double p) const;

  /// Inhomogeneous prediction for a request touching `nodes` (Eq. 5): the
  /// fine-grained per-request expression.
  std::optional<double> predict_subset(std::span<const std::size_t> nodes,
                                       double p) const;

  /// Mixture prediction over pooled stats (Eq. 9).
  std::optional<double> predict_mixture(const TaskCountMixture& mixture,
                                        double p) const;

 private:
  std::vector<stats::WindowedMoments> windows_;
  /// Per-node timestamp high-water mark; NaN = no sample yet.
  std::vector<double> last_now_;
  std::size_t min_samples_;
  double skew_tolerance_;
};

}  // namespace forktail::core
