// ForkTail tail-latency predictors (Section 3 of the paper).
//
// Inputs are always black-box per-node statistics: the mean and variance of
// task response times.  Three request models are provided:
//   - homogeneous, k tasks (Eq. 6/13)
//   - inhomogeneous, one (mean, variance) pair per touched node (Eq. 4/5)
//   - random task count K with P(K = k_i) = P_i (Eqs. 7-9, 14)
// plus the white-box M/G/1 pipeline of Section 3.1 (Eqs. 10-11 feeding the
// same moment fit).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/genexp.hpp"
#include "dist/distribution.hpp"

namespace forktail::core {

/// Black-box measurement of one fork node (Fig. 2 of the paper).
struct TaskStats {
  double mean = 0.0;
  double variance = 0.0;
};

/// One component of a task-count mixture: requests spawn `tasks` tasks with
/// probability `probability`.
struct TaskCountGroup {
  double tasks = 0.0;
  double probability = 0.0;
};

/// Discrete distribution of the per-request task count K.
class TaskCountMixture {
 public:
  explicit TaskCountMixture(std::vector<TaskCountGroup> groups);

  /// Fixed task count (degenerate mixture).
  static TaskCountMixture fixed(double k);

  /// K uniform on the integers [a, b] (Scenario 2 of Section 4.2).  The
  /// mixture stores the exact per-integer weights when b - a is small and a
  /// binned approximation otherwise (bins of equal width; exactness is not
  /// required because F depends smoothly on k).
  static TaskCountMixture uniform_int(int a, int b, int max_groups = 256);

  std::span<const TaskCountGroup> groups() const noexcept { return groups_; }
  double mean_tasks() const noexcept;

 private:
  std::vector<TaskCountGroup> groups_;
};

/// Homogeneous tail latency (Eq. 13): all k tasks see iid GE response times
/// fitted from `stats`.  `p` is a percentile in (0, 100).
double homogeneous_quantile(const TaskStats& stats, double k, double p);

/// Homogeneous request response-time CDF (Eq. 6).
double homogeneous_cdf(const TaskStats& stats, double k, double x);

/// Inhomogeneous tail latency (Eqs. 4-5): one measured (mean, variance) per
/// fork node the request touches.
double inhomogeneous_quantile(std::span<const TaskStats> nodes, double p);

/// Inhomogeneous request response-time CDF (Eq. 4).
double inhomogeneous_cdf(std::span<const TaskStats> nodes, double x);

/// Mixture-of-task-counts tail latency (Eqs. 8-9 / 14): homogeneous nodes,
/// random K.
double mixture_quantile(const TaskStats& stats, const TaskCountMixture& mixture,
                        double p);

/// Mixture request response-time CDF (Eq. 8).
double mixture_cdf(const TaskStats& stats, const TaskCountMixture& mixture,
                   double x);

/// White-box pipeline (Section 3.1): task moments from the M/G/1 formulas
/// (Eqs. 10-11), then the homogeneous predictor.
double whitebox_mg1_quantile(double lambda, const dist::Distribution& service,
                             double k, double p);

/// White-box task model with capability-aware degradation.  The full
/// Takacs variance formula (Eq. 11) consumes E[S^3]; when the service
/// declares that moment infinite the model falls back to the exact
/// Pollaczek-Khinchine mean plus an exponential-sojourn variance surrogate
/// (variance = mean^2), and records why.  A service without a finite
/// E[S^2] has no finite sojourn mean at all and throws
/// std::invalid_argument.
struct WhiteboxTaskModel {
  TaskStats stats;
  bool degraded = false;                ///< surrogate variance in use
  std::vector<std::string> reasons;     ///< human-readable degradations
};
WhiteboxTaskModel whitebox_mg1_task_model(double lambda,
                                          const dist::Distribution& service);

/// White-box task stats alone (useful for Table 2-style reporting).
/// Degrades exactly as whitebox_mg1_task_model.
TaskStats whitebox_mg1_task_stats(double lambda, const dist::Distribution& service);

/// Redundancy-d tail latency: the request is forked to d nodes and
/// completes at the FIRST task completion, so the response is the MINIMUM
/// of d iid GE response times.  P(min <= x) = 1 - (1 - F(x))^d, so the
/// p-quantile of the minimum is the per-task quantile at level
/// 1 - (1 - q)^{1/d}.
double redundancy_quantile(const TaskStats& stats, double d, double p);

/// Reusable predictor object: fits the GE once, answers many quantile /
/// CDF queries.  This is the type the scheduler and provisioning layers
/// hold on to.
class ForkTailPredictor {
 public:
  /// Homogeneous: single fitted node model.
  explicit ForkTailPredictor(const TaskStats& stats);

  /// Inhomogeneous: one fitted model per touched node.
  explicit ForkTailPredictor(std::span<const TaskStats> nodes);

  /// Tail latency for k tasks (homogeneous) or for all stored nodes
  /// (inhomogeneous; k must equal the stored node count or be omitted).
  double quantile(double p, double k = 0.0) const;

  double cdf(double x, double k = 0.0) const;

  /// Tail latency under a task-count mixture (homogeneous only).
  double quantile(double p, const TaskCountMixture& mixture) const;

  bool homogeneous() const noexcept { return nodes_.size() == 1; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  const GenExp& node_model(std::size_t i = 0) const { return nodes_.at(i); }

 private:
  std::vector<GenExp> nodes_;
};

}  // namespace forktail::core
