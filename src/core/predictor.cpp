#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "queueing/mg1.hpp"
#include "stats/roots.hpp"

namespace forktail::core {

namespace {
void check_percentile(double p) {
  if (!(p > 0.0 && p < 100.0)) {
    throw std::invalid_argument("percentile must be in (0,100)");
  }
}

// Prediction-path telemetry (docs/observability.md): end-to-end latency of
// each quantile evaluation, CDF-inversion effort, and how often the
// analytic bracket collapses (hi <= lo) so the inversion is skipped -- a
// collapsed bracket usually means near-identical nodes where the bounds
// already agree to tolerance.
struct PredictMetrics {
  obs::Counter& calls = obs::Registry::global().counter("predict.calls");
  obs::Counter& bracket_collapsed =
      obs::Registry::global().counter("predict.bracket_collapsed");
  obs::Counter& inversion_unconverged =
      obs::Registry::global().counter("predict.inversion_unconverged");
  obs::Histogram& seconds =
      obs::Registry::global().histogram("predict.seconds");
  obs::Histogram& inversion_iterations =
      obs::Registry::global().histogram("predict.inversion_iterations");
  static PredictMetrics& get() {
    static PredictMetrics m;
    return m;
  }
};

double invert_traced(const std::function<double(double)>& f, double lo,
                     double hi, const stats::RootOptions& opts) {
  const stats::RootResult solve = stats::brent_traced(f, lo, hi, opts);
  PredictMetrics::get().inversion_iterations.record(
      static_cast<double>(solve.iterations));
  if (!solve.converged) PredictMetrics::get().inversion_unconverged.add(1);
  return solve.root;
}
}  // namespace

// ----------------------------------------------------------- TaskCountMixture

TaskCountMixture::TaskCountMixture(std::vector<TaskCountGroup> groups)
    : groups_(std::move(groups)) {
  if (groups_.empty()) throw std::invalid_argument("TaskCountMixture: empty");
  double total = 0.0;
  for (const auto& g : groups_) {
    if (!(g.tasks >= 1.0) || !(g.probability > 0.0)) {
      throw std::invalid_argument("TaskCountMixture: invalid group");
    }
    total += g.probability;
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("TaskCountMixture: probabilities must sum to 1");
  }
}

TaskCountMixture TaskCountMixture::fixed(double k) {
  return TaskCountMixture({{k, 1.0}});
}

TaskCountMixture TaskCountMixture::uniform_int(int a, int b, int max_groups) {
  if (a < 1 || b < a) throw std::invalid_argument("uniform_int: bad range");
  const int m = b - a + 1;
  std::vector<TaskCountGroup> groups;
  if (m <= max_groups) {
    groups.reserve(static_cast<std::size_t>(m));
    const double p = 1.0 / static_cast<double>(m);
    for (int k = a; k <= b; ++k) {
      groups.push_back({static_cast<double>(k), p});
    }
  } else {
    // Bin the range: each bin contributes its midpoint k with the bin's
    // probability mass.  F_X^{(k)} varies smoothly in k, so this keeps the
    // CDF error negligible while bounding evaluation cost.  The integer
    // range [a, b] is treated as the continuous interval [a-1/2, b+1/2] so
    // the binned mean equals the exact (a+b)/2.
    groups.reserve(static_cast<std::size_t>(max_groups));
    const double width = static_cast<double>(m) / max_groups;
    for (int i = 0; i < max_groups; ++i) {
      const double lo = static_cast<double>(a) - 0.5 + width * i;
      const double hi = lo + width;
      groups.push_back({0.5 * (lo + hi), width / static_cast<double>(m)});
    }
    // Normalise away rounding drift.
    double total = 0.0;
    for (auto& g : groups) total += g.probability;
    for (auto& g : groups) g.probability /= total;
  }
  return TaskCountMixture(std::move(groups));
}

double TaskCountMixture::mean_tasks() const noexcept {
  double m = 0.0;
  for (const auto& g : groups_) m += g.tasks * g.probability;
  return m;
}

// -------------------------------------------------------- free-function forms

double homogeneous_quantile(const TaskStats& stats, double k, double p) {
  check_percentile(p);
  PredictMetrics::get().calls.add(1);
  const obs::ScopedSpan span(PredictMetrics::get().seconds);
  return GenExp::fit_moments(stats.mean, stats.variance).max_quantile(p / 100.0, k);
}

double homogeneous_cdf(const TaskStats& stats, double k, double x) {
  return GenExp::fit_moments(stats.mean, stats.variance).max_cdf(x, k);
}

double inhomogeneous_quantile(std::span<const TaskStats> nodes, double p) {
  ForkTailPredictor predictor(nodes);
  return predictor.quantile(p);
}

double inhomogeneous_cdf(std::span<const TaskStats> nodes, double x) {
  ForkTailPredictor predictor(nodes);
  return predictor.cdf(x);
}

double mixture_quantile(const TaskStats& stats, const TaskCountMixture& mixture,
                        double p) {
  ForkTailPredictor predictor(stats);
  return predictor.quantile(p, mixture);
}

double mixture_cdf(const TaskStats& stats, const TaskCountMixture& mixture,
                   double x) {
  const GenExp ge = GenExp::fit_moments(stats.mean, stats.variance);
  double f = 0.0;
  for (const auto& g : mixture.groups()) {
    f += g.probability * ge.max_cdf(x, g.tasks);
  }
  return f;
}

WhiteboxTaskModel whitebox_mg1_task_model(double lambda,
                                          const dist::Distribution& service) {
  const dist::Capabilities caps = service.capabilities();
  if (!caps.moment_finite(2)) {
    throw std::invalid_argument(
        "whitebox_mg1_task_model: " + service.name() +
        " has an infinite second service moment (" +
        dist::tail_class_name(caps.tail) + " tail, index " +
        std::to_string(caps.tail_index) +
        "): the M/G/1 sojourn mean itself diverges, so no moment-based "
        "model exists -- use the EVT predictor or a measured baseline");
  }
  WhiteboxTaskModel model;
  if (!caps.moment_finite(3)) {
    // E[S^3] diverges, so Takacs' E[W^2] (Eq. 11) is unavailable.  The
    // Pollaczek-Khinchine mean only needs E[S^2] and stays exact; for the
    // variance, fall back to the exponential-sojourn surrogate
    // variance = mean^2 (the GE fit then reduces to an exponential fit of
    // the correct mean).
    const double es = service.moment(1);
    const double m2 = service.moment(2);
    const double rho = lambda * es;
    if (!(lambda > 0.0) || !(rho < 1.0)) {
      throw std::invalid_argument(
          "whitebox_mg1_task_model: need lambda > 0 and rho < 1");
    }
    const double mean = es + lambda * m2 / (2.0 * (1.0 - rho));
    model.stats = {mean, mean * mean};
    model.degraded = true;
    model.reasons.push_back(
        "E[S^3] is infinite for " + service.name() + " (" +
        dist::tail_class_name(caps.tail) + " tail, index " +
        std::to_string(caps.tail_index) +
        "): Takacs variance unavailable; using the exact PK mean with an "
        "exponential variance surrogate");
    obs::Registry::global().counter("predict.whitebox_degraded").add(1);
    return model;
  }
  const auto r = queueing::mg1_response(lambda, service);
  model.stats = {r.mean, r.variance};
  return model;
}

TaskStats whitebox_mg1_task_stats(double lambda, const dist::Distribution& service) {
  return whitebox_mg1_task_model(lambda, service).stats;
}

double redundancy_quantile(const TaskStats& stats, double d, double p) {
  check_percentile(p);
  if (!(d >= 1.0)) {
    throw std::invalid_argument("redundancy_quantile: d must be >= 1");
  }
  PredictMetrics::get().calls.add(1);
  const obs::ScopedSpan span(PredictMetrics::get().seconds);
  // Min-of-d: invert the per-task CDF at 1 - (1 - q)^{1/d}.  max_quantile
  // at k = 1 is exactly the per-task GE quantile.
  const double q = p / 100.0;
  const double level = -std::expm1(std::log1p(-q) / d);
  return GenExp::fit_moments(stats.mean, stats.variance)
      .max_quantile(level, 1.0);
}

double whitebox_mg1_quantile(double lambda, const dist::Distribution& service,
                             double k, double p) {
  return homogeneous_quantile(whitebox_mg1_task_stats(lambda, service), k, p);
}

// ---------------------------------------------------------- ForkTailPredictor

ForkTailPredictor::ForkTailPredictor(const TaskStats& stats) {
  nodes_.push_back(GenExp::fit_moments(stats.mean, stats.variance));
}

ForkTailPredictor::ForkTailPredictor(std::span<const TaskStats> nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("ForkTailPredictor: no nodes");
  }
  nodes_.reserve(nodes.size());
  for (const auto& n : nodes) {
    nodes_.push_back(GenExp::fit_moments(n.mean, n.variance));
  }
}

double ForkTailPredictor::cdf(double x, double k) const {
  if (nodes_.size() == 1) {
    const double kk = k > 0.0 ? k : 1.0;
    return nodes_[0].max_cdf(x, kk);
  }
  if (k > 0.0 && std::fabs(k - static_cast<double>(nodes_.size())) > 1e-12) {
    throw std::invalid_argument(
        "ForkTailPredictor: inhomogeneous model is defined over the stored nodes");
  }
  // Eq. 4: product of per-node CDFs, computed in log space for stability.
  double log_f = 0.0;
  for (const auto& ge : nodes_) {
    const double f = ge.max_cdf(x, 1.0);
    if (f <= 0.0) return 0.0;
    log_f += std::log(f);
  }
  return std::exp(log_f);
}

double ForkTailPredictor::quantile(double p, double k) const {
  check_percentile(p);
  PredictMetrics::get().calls.add(1);
  const obs::ScopedSpan span(PredictMetrics::get().seconds);
  const double q = p / 100.0;
  if (nodes_.size() == 1) {
    const double kk = k > 0.0 ? k : 1.0;
    return nodes_[0].max_quantile(q, kk);
  }
  if (k > 0.0 && std::fabs(k - static_cast<double>(nodes_.size())) > 1e-12) {
    throw std::invalid_argument(
        "ForkTailPredictor: inhomogeneous model is defined over the stored nodes");
  }
  // Bracket (Eq. 4 inversion): F(x) <= min_i F_i(x) gives the lower bound
  // max_i q_i(q); F(x) >= prod of q^{1/n} per-node levels gives the upper.
  const double n = static_cast<double>(nodes_.size());
  double lo = 0.0;
  double hi = 0.0;
  for (const auto& ge : nodes_) {
    lo = std::max(lo, ge.max_quantile(q, 1.0));
    hi = std::max(hi, ge.max_quantile(std::pow(q, 1.0 / n), 1.0));
  }
  if (hi <= lo) {
    PredictMetrics::get().bracket_collapsed.add(1);
    return lo;
  }
  const auto objective = [&](double x) { return cdf(x) - q; };
  // The bounds are analytic, so rounding can leave the objective an ulp on
  // the wrong side at either end (with identical nodes the upper bound IS
  // the root), which would read as "root not bracketed".  Nudge outward.
  if (objective(lo) >= 0.0) return lo;
  int widenings = 0;
  while (objective(hi) < 0.0) {
    if (++widenings > 64) return hi;  // objective flat at q: hi is the tail
    hi += hi - lo;
  }
  return invert_traced(objective, lo, hi,
                       {.x_tolerance = 1e-12 * hi, .f_tolerance = 0.0,
                        .max_iterations = 200});
}

double ForkTailPredictor::quantile(double p, const TaskCountMixture& mixture) const {
  check_percentile(p);
  if (nodes_.size() != 1) {
    throw std::invalid_argument(
        "ForkTailPredictor: mixture quantile requires the homogeneous model");
  }
  PredictMetrics::get().calls.add(1);
  const obs::ScopedSpan span(PredictMetrics::get().seconds);
  const double q = p / 100.0;
  const GenExp& ge = nodes_[0];
  double k_min = mixture.groups().front().tasks;
  double k_max = k_min;
  for (const auto& g : mixture.groups()) {
    k_min = std::min(k_min, g.tasks);
    k_max = std::max(k_max, g.tasks);
  }
  // F is decreasing in k, so Eq. 13 at k_min / k_max brackets the root.
  const double lo = ge.max_quantile(q, k_min);
  double hi = ge.max_quantile(q, k_max);
  if (hi <= lo) {
    PredictMetrics::get().bracket_collapsed.add(1);
    return lo;
  }
  auto f = [&](double x) {
    double acc = 0.0;
    for (const auto& g : mixture.groups()) {
      acc += g.probability * ge.max_cdf(x, g.tasks);
    }
    return acc - q;
  };
  // Same rounding guard as the inhomogeneous inversion: the analytic
  // bounds may sit an ulp past the root on either side.
  if (f(lo) >= 0.0) return lo;
  int widenings = 0;
  while (f(hi) < 0.0) {
    if (++widenings > 64) return hi;
    hi += hi - lo;
  }
  return invert_traced(f, lo, hi,
                       {.x_tolerance = 1e-12 * hi, .f_tolerance = 0.0,
                        .max_iterations = 200});
}

}  // namespace forktail::core
