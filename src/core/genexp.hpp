// The generalized exponential (GE) distribution of Gupta & Kundu [20],
// which ForkTail uses to approximate per-node task response times under
// heavy load (Eq. 1 of the paper):
//
//     F_T(x) = (1 - e^{-x/beta})^alpha ,  x > 0, alpha > 0, beta > 0
//
// with moments (Eqs. 2-3):
//     E[T] = beta [psi(alpha+1) - psi(1)]
//     V[T] = beta^2 [psi'(1) - psi'(alpha+1)]
//
// `fit_moments` is the black-box measurement interface: given a node's
// measured response-time mean and variance, recover (alpha, beta).
#pragma once

#include <string>

#include "util/rng.hpp"

namespace forktail::core {

class GenExp {
 public:
  GenExp(double alpha, double beta);

  /// Moment-match (alpha, beta) from a measured mean and variance.
  /// The moment ratio E^2/V = [psi(a+1)-psi(1)]^2 / [psi'(1)-psi'(a+1)] is
  /// strictly increasing in alpha, so the fit is unique; solved by Brent on
  /// log(alpha).  Requires mean > 0 and variance > 0.
  static GenExp fit_moments(double mean, double variance);

  double alpha() const noexcept { return alpha_; }
  double beta() const noexcept { return beta_; }

  double mean() const;
  double variance() const;

  double cdf(double x) const;
  double pdf(double x) const;

  /// Quantile of a single task: x = -beta ln(1 - q^{1/alpha}), q in (0,1).
  double quantile(double q) const;

  /// Quantile of the max of k iid GE variables (the homogeneous fork-join
  /// request, Eq. 13): x_p = -beta ln(1 - q^{1/(k alpha)}).
  double max_quantile(double q, double k) const;

  /// CDF of the max of k iid GE variables: (1 - e^{-x/beta})^{k alpha}.
  double max_cdf(double x, double k) const;

  double sample(util::Rng& rng) const;

  std::string to_string() const;

 private:
  double alpha_;
  double beta_;
};

}  // namespace forktail::core
