// Tail-latency-SLO-guaranteed job scheduling support (Section 6, Fig. 14).
//
// The hybrid centralized-and-distributed scheme: every server continuously
// measures the mean/variance of its task response times and periodically
// reports them to a central registry; on request arrival the scheduler
// selects k fork nodes and admits the request only if the predicted tail
// latency (Eq. 5) meets its SLO.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "core/provisioning.hpp"

namespace forktail::core {

/// Central store of per-node reported statistics.
class NodeStatsRegistry {
 public:
  explicit NodeStatsRegistry(std::size_t num_nodes, double staleness_limit = 60.0);

  std::size_t num_nodes() const noexcept { return entries_.size(); }

  /// A node reports its windowed (mean, variance) at time `now`.
  void report(std::size_t node, double now, const TaskStats& stats);

  /// Latest stats if reported and fresh at time `now`.
  std::optional<TaskStats> fresh_stats(std::size_t node, double now) const;

  /// Number of nodes with fresh reports.
  std::size_t fresh_count(double now) const;

 private:
  struct Entry {
    TaskStats stats{};
    double reported_at = -1.0;
    bool valid = false;
  };
  std::vector<Entry> entries_;
  double staleness_limit_;
};

/// Result of an admission decision.
struct AdmissionDecision {
  bool admitted = false;
  double predicted_latency = 0.0;       ///< Eq. 5 over the chosen nodes
  std::vector<std::size_t> chosen_nodes;///< empty when rejected
};

/// Fork-node selection + admission control.
class AdmissionController {
 public:
  explicit AdmissionController(const NodeStatsRegistry& registry);

  /// Choose the k fork nodes minimising the predicted tail latency for the
  /// request and admit it iff that latency meets the SLO.  Node scoring:
  /// each node's marginal GE quantile at level (p/100)^{1/k} -- the exact
  /// per-node contribution bound to Eq. 4 -- so the greedy choice of the k
  /// smallest scores minimises the product-CDF quantile.
  AdmissionDecision admit(std::size_t k, const TailSlo& slo, double now) const;

 private:
  const NodeStatsRegistry& registry_;
};

}  // namespace forktail::core
