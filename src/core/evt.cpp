#include "core/evt.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace forktail::core {

namespace {

/// Pakes first-order sojourn tail for an M/G/1 queue with regularly
/// varying service: P(T > x) ~ wait_coeff * x^{1-alpha} + c * x^{-alpha}.
struct SojournTail {
  double wait_coeff;  ///< lambda c / ((1 - rho)(alpha - 1))
  double c;           ///< service tail constant
  double alpha;

  double operator()(double x) const {
    return wait_coeff * std::pow(x, 1.0 - alpha) + c * std::pow(x, -alpha);
  }
};

/// Invert tail(x) = level for the strictly decreasing asymptote.  Seeded
/// from the dominant waiting-time term, then bracketed by doubling and
/// bisected to relative precision.
double invert_tail(const SojournTail& tail, double level) {
  double x0 = std::pow(tail.wait_coeff / level, 1.0 / (tail.alpha - 1.0));
  if (!(x0 > 0.0) || !std::isfinite(x0)) x0 = 1.0;
  double lo = x0;
  double hi = x0;
  for (int i = 0; i < 200 && tail(lo) < level; ++i) lo *= 0.5;
  for (int i = 0; i < 200 && tail(hi) >= level; ++i) hi *= 2.0;
  if (!(tail(lo) >= level && tail(hi) < level)) {
    throw std::runtime_error("evt_max_quantile: failed to bracket the tail");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (tail(mid) >= level) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

EvtPrediction evt_max_quantile(const TaskStats& stats, double k, double p,
                               double node_lambda,
                               const dist::Distribution& service) {
  if (!(p > 0.0 && p < 100.0)) {
    throw std::invalid_argument("evt_max_quantile: percentile must be in (0,100)");
  }
  if (!(k >= 1.0)) {
    throw std::invalid_argument("evt_max_quantile: k must be >= 1");
  }
  const dist::Capabilities caps = service.capabilities();
  const double q = p / 100.0;

  EvtPrediction out;
  const bool regularly_varying =
      caps.tail == dist::TailClass::kRegularlyVarying &&
      std::isfinite(caps.tail_index) && caps.tail_index > 1.0 &&
      caps.tail_scale > 0.0;
  const double rho =
      node_lambda > 0.0 ? node_lambda * service.moment(1) : 1.0;
  if (!regularly_varying || !(rho < 1.0)) {
    // Gumbel branch: the GE max quantile IS the light-tail extreme-value
    // model (its tail is exponential, and Eq. 13 solves the exact max-of-k
    // level), so no correction is applied.
    out.value = homogeneous_quantile(stats, k, p);
    return out;
  }

  // Frechet branch.  Per-task tail level for the max of k iid responses:
  // q^{1/k} per task, i.e. tail level 1 - q^{1/k} (expm1 keeps precision
  // for large k where the level is ~ -ln(q)/k).
  const double level = -std::expm1(std::log(q) / k);
  const SojournTail tail{
      node_lambda * caps.tail_scale /
          ((1.0 - rho) * (caps.tail_index - 1.0)),
      caps.tail_scale, caps.tail_index};
  const double x_evt = invert_tail(tail, level);

  // Splice: the asymptote is only valid deep in the tail; in the body
  // region the GE fit of the measured moments is sharper.  Taking the max
  // hands over exactly where the heavy tail starts to dominate.
  const double x_body = homogeneous_quantile(stats, k, p);
  out.value = std::max(x_body, x_evt);
  out.frechet = true;
  out.tail_index = caps.tail_index;
  obs::Registry::global().counter("predict.evt_frechet").add(1);
  return out;
}

}  // namespace forktail::core
