// Measurement-error propagation for ForkTail predictions.
//
// The model consumes a *sampled* mean and variance, so the predicted
// quantile is itself a random variable.  This module quantifies that:
//
//   - the partial derivatives of the predicted quantile w.r.t. the two
//     measured moments;
//   - the delta-method standard error of the prediction given n task
//     samples (using the fitted GE's own third/fourth central moments for
//     the sampling variance of the moment estimators);
//   - the sample count needed for a target relative precision -- the
//     quantitative version of the paper's "1000 samples collected in 20
//     seconds allow a reasonably accurate estimation" argument.
#pragma once

#include <cstdint>

#include "core/predictor.hpp"

namespace forktail::core {

/// Partial derivatives of the homogeneous p-th percentile (Eq. 13) with
/// respect to the measured task mean and variance.
struct QuantileSensitivity {
  double value = 0.0;        ///< x_p at the nominal (mean, variance)
  double d_mean = 0.0;       ///< dx_p / dE[T]
  double d_variance = 0.0;   ///< dx_p / dV[T]
};

QuantileSensitivity quantile_sensitivity(const TaskStats& stats, double k,
                                         double p);

/// Delta-method standard error of the predicted quantile when the task
/// moments are estimated from `samples` iid task response times.  The
/// estimator covariance uses the fitted GE's central moments:
///   Var(mean^)      = mu2 / n
///   Var(var^)       = (mu4 - mu2^2) / n
///   Cov(mean^,var^) = mu3 / n.
struct PredictionUncertainty {
  double value = 0.0;        ///< x_p
  double stderr_abs = 0.0;   ///< standard error of x_p
  double stderr_rel = 0.0;   ///< stderr_abs / value
};

PredictionUncertainty prediction_uncertainty(const TaskStats& stats, double k,
                                             double p, std::uint64_t samples);

/// Smallest sample count whose delta-method relative standard error is at
/// most `rel_precision` (e.g. 0.05 for +-5% at one sigma).
std::uint64_t samples_for_precision(const TaskStats& stats, double k, double p,
                                    double rel_precision);

/// Central moment of a GE distribution (order 2..4), by quadrature over
/// the quantile transform; exposed for tests.
double ge_central_moment(const GenExp& ge, int order);

}  // namespace forktail::core
