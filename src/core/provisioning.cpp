#include "core/provisioning.hpp"

#include <cmath>
#include <stdexcept>

namespace forktail::core {

TaskBudget derive_task_budget(const TailSlo& slo, const TaskCountMixture& mixture,
                              double scv_hint) {
  if (!(slo.latency > 0.0)) {
    throw std::invalid_argument("derive_task_budget: SLO latency must be > 0");
  }
  if (!(scv_hint > 0.0)) {
    throw std::invalid_argument("derive_task_budget: scv_hint must be > 0");
  }
  // The GE family is scale-invariant: fixing the task SCV fixes alpha, and
  // every quantile scales linearly in the task mean.  Evaluate the mixture
  // quantile at unit mean, then scale to hit the SLO with equality.
  const TaskStats unit{1.0, scv_hint};
  const double x_unit = mixture_quantile(unit, mixture, slo.percentile);
  const double scale = slo.latency / x_unit;
  return TaskBudget{scale, scale * scale * scv_hint};
}

TaskBudget derive_task_budget(const TailSlo& slo, double k, double scv_hint) {
  return derive_task_budget(slo, TaskCountMixture::fixed(k), scv_hint);
}

ProvisioningResult max_sustainable_lambda(const NodeProbe& probe,
                                          const TaskBudget& budget,
                                          double lambda_lo, double lambda_hi,
                                          double tolerance) {
  if (!(lambda_lo > 0.0 && lambda_hi > lambda_lo)) {
    throw std::invalid_argument("max_sustainable_lambda: bad lambda range");
  }
  auto within = [&](const TaskStats& s) {
    return s.mean <= budget.mean && s.variance <= budget.variance;
  };
  ProvisioningResult result;
  TaskStats lo_stats = probe(lambda_lo);
  if (!within(lo_stats)) {
    result.feasible = false;
    result.stats_at_max = lo_stats;
    return result;
  }
  result.feasible = true;
  double lo = lambda_lo;
  TaskStats best = lo_stats;
  double hi = lambda_hi;
  // If even lambda_hi fits, report it directly.
  TaskStats hi_stats = probe(lambda_hi);
  if (within(hi_stats)) {
    result.max_lambda = lambda_hi;
    result.stats_at_max = hi_stats;
    return result;
  }
  while (hi - lo > tolerance * lambda_hi) {
    const double mid = 0.5 * (lo + hi);
    const TaskStats s = probe(mid);
    if (within(s)) {
      lo = mid;
      best = s;
    } else {
      hi = mid;
    }
  }
  result.max_lambda = lo;
  result.stats_at_max = best;
  return result;
}

ProvisioningResult max_lambda_for_slo(const NodeProbe& probe, const TailSlo& slo,
                                      const TaskCountMixture& mixture,
                                      double lambda_lo, double lambda_hi,
                                      double tolerance) {
  if (!(lambda_lo > 0.0 && lambda_hi > lambda_lo)) {
    throw std::invalid_argument("max_lambda_for_slo: bad lambda range");
  }
  if (!(slo.latency > 0.0)) {
    throw std::invalid_argument("max_lambda_for_slo: SLO latency must be > 0");
  }
  auto within = [&](const TaskStats& s) {
    return mixture_quantile(s, mixture, slo.percentile) <= slo.latency;
  };
  ProvisioningResult result;
  TaskStats lo_stats = probe(lambda_lo);
  if (!within(lo_stats)) {
    result.feasible = false;
    result.stats_at_max = lo_stats;
    return result;
  }
  result.feasible = true;
  double lo = lambda_lo;
  TaskStats best = lo_stats;
  double hi = lambda_hi;
  TaskStats hi_stats = probe(lambda_hi);
  if (within(hi_stats)) {
    result.max_lambda = lambda_hi;
    result.stats_at_max = hi_stats;
    return result;
  }
  while (hi - lo > tolerance * lambda_hi) {
    const double mid = 0.5 * (lo + hi);
    const TaskStats s = probe(mid);
    if (within(s)) {
      lo = mid;
      best = s;
    } else {
      hi = mid;
    }
  }
  result.max_lambda = lo;
  result.stats_at_max = best;
  return result;
}

double equivalent_load(std::span<const double> loads,
                       std::span<const double> latencies, double latency) {
  if (loads.size() != latencies.size() || loads.size() < 2) {
    throw std::invalid_argument("equivalent_load: need matching curves, >= 2 points");
  }
  // The curve is increasing in load; clamp outside the sampled range.
  if (latency <= latencies.front()) return loads.front();
  if (latency >= latencies.back()) return loads.back();
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (latency <= latencies[i]) {
      const double f =
          (latency - latencies[i - 1]) / (latencies[i] - latencies[i - 1]);
      return loads[i - 1] + f * (loads[i] - loads[i - 1]);
    }
  }
  return loads.back();
}

}  // namespace forktail::core
