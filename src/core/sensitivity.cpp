#include "core/sensitivity.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace forktail::core {

namespace {

// 16-point Gauss-Legendre nodes/weights on [-1, 1].
constexpr std::array<double, 8> kGlNodes = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr std::array<double, 8> kGlWeights = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

/// Integrate f over [a, b] with 16-point Gauss-Legendre.
template <typename F>
double gl16(const F& f, double a, double b) {
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double acc = 0.0;
  for (std::size_t i = 0; i < kGlNodes.size(); ++i) {
    acc += kGlWeights[i] *
           (f(mid + half * kGlNodes[i]) + f(mid - half * kGlNodes[i]));
  }
  return acc * half;
}

}  // namespace

double ge_central_moment(const GenExp& ge, int order) {
  if (order < 2 || order > 4) {
    throw std::out_of_range("ge_central_moment: order must be 2..4");
  }
  const double alpha = ge.alpha();
  const double beta = ge.beta();
  const double mean = ge.mean();
  // E[(X - m)^r] = Int_0^inf (beta z - m)^r alpha e^{-z}(1-e^{-z})^{a-1} dz
  // in the unit-scale variable z = x / beta.  The density has a z^{a-1}
  // power singularity at 0; substituting z = w^{1/a} on the first segment
  // absorbs it exactly (the Jacobian cancels the singular factor), leaving
  // smooth integrands that 16-point Gauss-Legendre handles to ~1e-12.
  auto centred_power = [&](double z) {
    const double d = beta * z - mean;
    double p = d;
    for (int i = 1; i < order; ++i) p *= d;
    return p;
  };
  constexpr double kSplit = 0.5;  // z boundary between the two segments

  // Segment 1: z in (0, kSplit] via z = w^{1/alpha}.
  // f dz = e^{-z} (1-e^{-z})^{a-1} w^{1/a - 1} dw; combine the two
  // near-singular powers in log space.
  auto lower = [&](double w) {
    const double z = std::pow(w, 1.0 / alpha);
    const double one_minus = -std::expm1(-z);  // 1 - e^{-z}
    const double log_density = (alpha - 1.0) * std::log(one_minus) +
                               (1.0 / alpha - 1.0) * std::log(w) - z;
    return centred_power(z) * std::exp(log_density);
  };
  const double w_hi = std::pow(kSplit, alpha);
  double acc = 0.0;
  {
    double a = 0.0;
    for (double frac : {0.05, 0.15, 0.35, 0.65, 1.0}) {
      const double b = w_hi * frac;
      acc += gl16(lower, a, b);
      a = b;
    }
  }

  // Segment 2: z in [kSplit, 36] (residual mass beyond e^{-36} is far
  // below the quadrature error even against the 4th power).
  auto upper = [&](double z) {
    const double one_minus = -std::expm1(-z);
    return centred_power(z) * alpha * std::exp(-z) *
           std::exp((alpha - 1.0) * std::log(one_minus));
  };
  {
    double a = kSplit;
    for (double b : {0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0,
                     24.0, 36.0}) {
      acc += gl16(upper, a, b);
      a = b;
    }
  }
  return acc;
}

QuantileSensitivity quantile_sensitivity(const TaskStats& stats, double k,
                                         double p) {
  QuantileSensitivity s;
  s.value = homogeneous_quantile(stats, k, p);
  // Central differences with relative steps; the fit is smooth in both
  // moments so modest steps are fine.
  const double h_mean = 1e-5 * stats.mean;
  const double h_var = 1e-5 * stats.variance;
  s.d_mean = (homogeneous_quantile({stats.mean + h_mean, stats.variance}, k, p) -
              homogeneous_quantile({stats.mean - h_mean, stats.variance}, k, p)) /
             (2.0 * h_mean);
  s.d_variance =
      (homogeneous_quantile({stats.mean, stats.variance + h_var}, k, p) -
       homogeneous_quantile({stats.mean, stats.variance - h_var}, k, p)) /
      (2.0 * h_var);
  return s;
}

PredictionUncertainty prediction_uncertainty(const TaskStats& stats, double k,
                                             double p, std::uint64_t samples) {
  if (samples < 2) {
    throw std::invalid_argument("prediction_uncertainty: need >= 2 samples");
  }
  const GenExp ge = GenExp::fit_moments(stats.mean, stats.variance);
  const double mu2 = ge_central_moment(ge, 2);
  const double mu3 = ge_central_moment(ge, 3);
  const double mu4 = ge_central_moment(ge, 4);
  const double n = static_cast<double>(samples);

  const QuantileSensitivity s = quantile_sensitivity(stats, k, p);
  const double var_mean = mu2 / n;
  const double var_var = std::max(0.0, (mu4 - mu2 * mu2) / n);
  const double cov = mu3 / n;
  double variance = s.d_mean * s.d_mean * var_mean +
                    s.d_variance * s.d_variance * var_var +
                    2.0 * s.d_mean * s.d_variance * cov;
  variance = std::max(variance, 0.0);

  PredictionUncertainty u;
  u.value = s.value;
  u.stderr_abs = std::sqrt(variance);
  u.stderr_rel = u.stderr_abs / u.value;
  return u;
}

std::uint64_t samples_for_precision(const TaskStats& stats, double k, double p,
                                    double rel_precision) {
  if (!(rel_precision > 0.0)) {
    throw std::invalid_argument("samples_for_precision: precision must be > 0");
  }
  // stderr_rel scales as 1/sqrt(n): one evaluation at a reference n gives
  // the answer in closed form.
  constexpr std::uint64_t kReference = 1000;
  const PredictionUncertainty u =
      prediction_uncertainty(stats, k, p, kReference);
  const double ratio = u.stderr_rel / rel_precision;
  const double n = static_cast<double>(kReference) * ratio * ratio;
  return std::max<std::uint64_t>(2, static_cast<std::uint64_t>(std::ceil(n)));
}

}  // namespace forktail::core
