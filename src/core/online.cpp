#include "core/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace forktail::core {

namespace {
// Online-path telemetry: served vs declined predictions.  A declined
// prediction (underfilled) means some node window had fewer than
// min_samples samples or zero variance -- the measurement layer, not the
// model, is the bottleneck.
struct OnlineMetrics {
  obs::Counter& predictions =
      obs::Registry::global().counter("online.predictions");
  obs::Counter& underfilled =
      obs::Registry::global().counter("online.underfilled");
  // Clock-skew outcomes of record(): backwards timestamps absorbed by
  // clamping vs dropped as beyond the tolerance.  Either being nonzero
  // means some agent's clock is misbehaving.
  obs::Counter& clock_clamped =
      obs::Registry::global().counter("online.clock_clamped");
  obs::Counter& clock_rejected =
      obs::Registry::global().counter("online.clock_rejected");
  static OnlineMetrics& get() {
    static OnlineMetrics m;
    return m;
  }
};

std::optional<double> count_outcome(std::optional<double> value) {
  if (value) {
    OnlineMetrics::get().predictions.add(1);
  } else {
    OnlineMetrics::get().underfilled.add(1);
  }
  return value;
}
}  // namespace

OnlineTailPredictor::OnlineTailPredictor(std::size_t num_nodes,
                                         double window_seconds,
                                         std::size_t min_samples,
                                         double skew_tolerance)
    : min_samples_(min_samples), skew_tolerance_(skew_tolerance) {
  if (num_nodes == 0) {
    throw std::invalid_argument("OnlineTailPredictor: need at least one node");
  }
  if (!(skew_tolerance >= 0.0)) {
    throw std::invalid_argument(
        "OnlineTailPredictor: skew tolerance must be non-negative");
  }
  windows_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    windows_.emplace_back(window_seconds);
  }
  last_now_.assign(num_nodes, std::numeric_limits<double>::quiet_NaN());
}

RecordOutcome OnlineTailPredictor::record(std::size_t node, double now,
                                          double response) {
  auto& window = windows_.at(node);
  double& mark = last_now_[node];
  RecordOutcome outcome = RecordOutcome::kAccepted;
  if (std::isnan(now)) {
    // A NaN timestamp compares false with everything and would slip past
    // the monotonicity check into the window; treat it as an unbounded jump.
    OnlineMetrics::get().clock_rejected.add(1);
    return RecordOutcome::kRejected;
  }
  if (!std::isnan(mark) && now < mark) {
    if (mark - now <= skew_tolerance_) {
      now = mark;  // absorb the jump: record at the high-water mark
      outcome = RecordOutcome::kClamped;
      OnlineMetrics::get().clock_clamped.add(1);
    } else {
      OnlineMetrics::get().clock_rejected.add(1);
      return RecordOutcome::kRejected;
    }
  }
  window.add(now, response);
  mark = std::isnan(mark) ? now : std::max(mark, now);
  return outcome;
}

void OnlineTailPredictor::advance(std::size_t node, double now) {
  auto& window = windows_.at(node);
  if (std::isnan(now)) return;
  double& mark = last_now_[node];
  // Eviction with an older `now` is a harmless no-op, but the high-water
  // mark must still cover every advance so later record() calls see a
  // consistent clock.
  window.advance(now);
  mark = std::isnan(mark) ? now : std::max(mark, now);
}

std::optional<double> OnlineTailPredictor::last_timestamp(
    std::size_t node) const {
  const double mark = last_now_.at(node);
  if (std::isnan(mark)) return std::nullopt;
  return mark;
}

std::optional<TaskStats> OnlineTailPredictor::node_stats(std::size_t node) const {
  const auto& w = windows_.at(node);
  if (w.count() < min_samples_ || !(w.variance() > 0.0)) return std::nullopt;
  return TaskStats{w.mean(), w.variance()};
}

OnlineTailPredictor::PooledStats OnlineTailPredictor::pooled_stats() const {
  PooledStats pooled;
  pooled.total_nodes = windows_.size();
  // First pass: pooled mean over the filled windows only.
  double total_n = 0.0;
  double mean_acc = 0.0;
  for (const auto& w : windows_) {
    if (w.count() < min_samples_) continue;
    const double n = static_cast<double>(w.count());
    total_n += n;
    mean_acc += n * w.mean();
    ++pooled.filled_nodes;
  }
  if (pooled.filled_nodes == 0) return pooled;
  const double mean = mean_acc / total_n;
  double var_acc = 0.0;
  for (const auto& w : windows_) {
    if (w.count() < min_samples_) continue;
    const double n = static_cast<double>(w.count());
    const double d = w.mean() - mean;
    var_acc += n * (w.variance() + d * d);
  }
  pooled.count = total_n;
  pooled.mean = mean;
  pooled.variance = var_acc / total_n;
  return pooled;
}

std::optional<double> OnlineTailPredictor::predict_homogeneous(double p,
                                                               double k) const {
  return count_outcome([&]() -> std::optional<double> {
    // Pool all node windows into one service-level moment estimate.
    double total_n = 0.0;
    double mean_acc = 0.0;
    for (const auto& w : windows_) {
      if (w.count() < min_samples_) return std::nullopt;
      const double n = static_cast<double>(w.count());
      total_n += n;
      mean_acc += n * w.mean();
    }
    const double mean = mean_acc / total_n;
    double var_acc = 0.0;
    for (const auto& w : windows_) {
      const double n = static_cast<double>(w.count());
      const double d = w.mean() - mean;
      var_acc += n * (w.variance() + d * d);
    }
    const double variance = var_acc / total_n;
    if (!(variance > 0.0)) return std::nullopt;
    const double kk = k > 0.0 ? k : static_cast<double>(windows_.size());
    return homogeneous_quantile({mean, variance}, kk, p);
  }());
}

std::optional<double> OnlineTailPredictor::predict_inhomogeneous(double p) const {
  return count_outcome([&]() -> std::optional<double> {
    std::vector<TaskStats> stats;
    stats.reserve(windows_.size());
    for (std::size_t i = 0; i < windows_.size(); ++i) {
      const auto s = node_stats(i);
      if (!s) return std::nullopt;
      stats.push_back(*s);
    }
    return inhomogeneous_quantile(stats, p);
  }());
}

std::optional<double> OnlineTailPredictor::predict_subset(
    std::span<const std::size_t> nodes, double p) const {
  if (nodes.empty()) {
    throw std::invalid_argument("predict_subset: empty node set");
  }
  return count_outcome([&]() -> std::optional<double> {
    std::vector<TaskStats> stats;
    stats.reserve(nodes.size());
    for (std::size_t node : nodes) {
      const auto s = node_stats(node);
      if (!s) return std::nullopt;
      stats.push_back(*s);
    }
    return inhomogeneous_quantile(stats, p);
  }());
}

std::optional<double> OnlineTailPredictor::predict_mixture(
    const TaskCountMixture& mixture, double p) const {
  return count_outcome([&]() -> std::optional<double> {
    // Reuse the pooled homogeneous fit through the mixture formula.
    double total_n = 0.0;
    double mean_acc = 0.0;
    for (const auto& w : windows_) {
      if (w.count() < min_samples_) return std::nullopt;
      const double n = static_cast<double>(w.count());
      total_n += n;
      mean_acc += n * w.mean();
    }
    const double mean = mean_acc / total_n;
    double var_acc = 0.0;
    for (const auto& w : windows_) {
      const double n = static_cast<double>(w.count());
      const double d = w.mean() - mean;
      var_acc += n * (w.variance() + d * d);
    }
    const double variance = var_acc / total_n;
    if (!(variance > 0.0)) return std::nullopt;
    return mixture_quantile({mean, variance}, mixture, p);
  }());
}

}  // namespace forktail::core
