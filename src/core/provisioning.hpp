// Resource-provisioning support (Section 6 of the paper).
//
// Step (a): translate a tail-latency SLO into a platform-independent
// per-task performance budget -- the (mean, variance) pair of task response
// times that just meets the SLO through Eq. 9.
//
// Step (b): given a measurable fork-node prototype (anything that can
// report task stats at a given arrival rate), find the maximum sustainable
// task arrival rate whose measured stats stay within the budget.
#pragma once

#include <functional>

#include "core/predictor.hpp"

namespace forktail::core {

/// A tail-latency service level objective: the p-th percentile of request
/// response time must not exceed `latency`.
struct TailSlo {
  double percentile = 99.0;  ///< p, in (0, 100)
  double latency = 0.0;      ///< x_p bound, same unit as task times
};

/// Platform-independent task performance budget (Section 6, step (a)).
struct TaskBudget {
  double mean = 0.0;
  double variance = 0.0;

  TaskStats as_stats() const { return {mean, variance}; }
};

/// Derive the task budget for a service whose requests spawn K ~ mixture
/// tasks.  The single SLO constrains one degree of freedom; the second is
/// fixed by the task response-time squared-CV `scv_hint` (measure it on any
/// prototype, or use 1.0 -- the heavy-traffic exponential -- as the
/// conservative default).  The returned budget is the largest (mean,
/// variance) pair with V = scv_hint * E^2 satisfying the SLO with equality.
TaskBudget derive_task_budget(const TailSlo& slo, const TaskCountMixture& mixture,
                              double scv_hint = 1.0);

/// Fixed-k convenience.
TaskBudget derive_task_budget(const TailSlo& slo, double k, double scv_hint = 1.0);

/// A fork-node prototype: report measured task stats when driven at task
/// arrival rate lambda (step (b)'s "run tasks at increasing arrival rate").
using NodeProbe = std::function<TaskStats(double lambda)>;

struct ProvisioningResult {
  double max_lambda = 0.0;    ///< highest sustainable task arrival rate
  TaskStats stats_at_max{};   ///< measured stats at that rate
  bool feasible = false;      ///< false if even lambda_lo violates the budget
};

/// Binary-search the largest lambda in [lambda_lo, lambda_hi] whose probed
/// stats satisfy mean <= budget.mean and variance <= budget.variance.
/// Assumes stats grow with lambda (true for any work-conserving queue).
///
/// Caveat (and the reason max_lambda_for_slo exists): a budget derived
/// under an assumed SCV only guarantees the SLO along that shape.  If the
/// measured stats satisfy both moment bounds but with a much heavier CV,
/// the predicted quantile can still exceed the SLO.
ProvisioningResult max_sustainable_lambda(const NodeProbe& probe,
                                          const TaskBudget& budget,
                                          double lambda_lo, double lambda_hi,
                                          double tolerance = 1e-3);

/// Binary-search the largest lambda whose probed stats yield a PREDICTED
/// tail latency (Eq. 9 with the measured moments) within the SLO -- the
/// shape-robust version of step (b): no SCV assumption enters; the
/// measured mean AND variance both feed the check at every probe point.
ProvisioningResult max_lambda_for_slo(const NodeProbe& probe, const TailSlo& slo,
                                      const TaskCountMixture& mixture,
                                      double lambda_lo, double lambda_hi,
                                      double tolerance = 1e-3);

/// Sensitivity helper (Section 5): given a monotone simulated tail-vs-load
/// curve sampled at `loads` (percent) with values `latencies`, find the load
/// at which the curve reaches `latency` -- used to express a prediction
/// error as an equivalent over/under-provisioning margin.
double equivalent_load(std::span<const double> loads,
                       std::span<const double> latencies, double latency);

}  // namespace forktail::core
