#include "core/pipeline.hpp"

#include <stdexcept>

#include "stats/special_functions.hpp"

namespace forktail::core {

PipelinePredictor::PipelinePredictor(std::vector<StageSpec> stages)
    : stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw std::invalid_argument("PipelinePredictor: no stages");
  }
  stage_latencies_.reserve(stages_.size());
  for (const StageSpec& stage : stages_) {
    if (!(stage.fanout >= 1.0)) {
      throw std::invalid_argument("PipelinePredictor: fanout must be >= 1");
    }
    const GenExp task_model =
        GenExp::fit_moments(stage.tasks.mean, stage.tasks.variance);
    // Max of k iid GE(alpha, beta) is exactly GE(k alpha, beta).
    const GenExp stage_model(task_model.alpha() * stage.fanout,
                             task_model.beta());
    StageLatency lat{stage.name, stage_model, stage_model.mean(),
                     stage_model.variance()};
    total_mean_ += lat.mean;
    total_variance_ += lat.variance;
    stage_latencies_.push_back(std::move(lat));
  }
  total_model_ = GenExp::fit_moments(total_mean_, total_variance_);
}

double PipelinePredictor::quantile(double p) const {
  if (!(p > 0.0 && p < 100.0)) {
    throw std::invalid_argument("PipelinePredictor: p must be in (0,100)");
  }
  if (stage_latencies_.size() == 1) {
    // Single stage: the exact stage law, no re-fit needed.
    return stage_latencies_[0].model.quantile(p / 100.0);
  }
  return total_model_.quantile(p / 100.0);
}

double PipelinePredictor::cdf(double x) const {
  if (stage_latencies_.size() == 1) {
    return stage_latencies_[0].model.cdf(x);
  }
  return total_model_.cdf(x);
}

std::size_t PipelinePredictor::bottleneck_stage(double p) const {
  std::size_t worst = 0;
  double worst_q = -1.0;
  for (std::size_t i = 0; i < stage_latencies_.size(); ++i) {
    const double q = stage_latencies_[i].model.quantile(p / 100.0);
    if (q > worst_q) {
      worst_q = q;
      worst = i;
    }
  }
  return worst;
}

std::vector<double> PipelinePredictor::mean_breakdown() const {
  std::vector<double> fractions;
  fractions.reserve(stage_latencies_.size());
  for (const StageLatency& lat : stage_latencies_) {
    fractions.push_back(lat.mean / total_mean_);
  }
  return fractions;
}

}  // namespace forktail::core
