// Empirical CDF over a retained sample: evaluation, inversion, and moments.
// Backs the tabulated "empirical" service-time distribution and the
// measurement-vs-model comparisons in tests.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace forktail::stats {

class Ecdf {
 public:
  explicit Ecdf(std::span<const double> samples);

  std::size_t size() const noexcept { return sorted_.size(); }

  /// P(X <= x).
  double cdf(double x) const noexcept;

  /// Quantile with linear interpolation, q in [0, 1].
  double quantile(double q) const;

  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return variance_; }
  double min() const noexcept { return sorted_.front(); }
  double max() const noexcept { return sorted_.back(); }

  /// Kolmogorov-Smirnov distance to a model CDF (used by goodness-of-fit
  /// tests of the GE approximation).
  double ks_distance(const std::function<double(double)>& model_cdf) const;

  std::span<const double> sorted_samples() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

}  // namespace forktail::stats
