#include "stats/special_functions.hpp"

#include <cmath>
#include <stdexcept>

namespace forktail::stats {

namespace {
// Arguments are pushed above this threshold before applying the asymptotic
// series; 10 keeps the truncation error below 1e-14 with the terms used.
constexpr double kAsymptoticThreshold = 10.0;

void check_positive(double x, const char* fn) {
  if (!(x > 0.0)) {
    throw std::domain_error(std::string(fn) + " requires x > 0");
  }
}
}  // namespace

double digamma(double x) {
  check_positive(x, "digamma");
  double result = 0.0;
  while (x < kAsymptoticThreshold) {
    result -= 1.0 / x;  // psi(x) = psi(x+1) - 1/x
    x += 1.0;
  }
  // psi(x) ~ ln x - 1/(2x) - sum B_{2n}/(2n x^{2n})
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv;
  result -= inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return result;
}

double trigamma(double x) {
  check_positive(x, "trigamma");
  double result = 0.0;
  while (x < kAsymptoticThreshold) {
    result += 1.0 / (x * x);  // psi'(x) = psi'(x+1) + 1/x^2
    x += 1.0;
  }
  // psi'(x) ~ 1/x + 1/(2x^2) + sum B_{2n}/x^{2n+1}
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv + 0.5 * inv2;
  result += inv * inv2 *
            (1.0 / 6.0 -
             inv2 * (1.0 / 30.0 -
                     inv2 * (1.0 / 42.0 - inv2 * (1.0 / 30.0 - inv2 * (5.0 / 66.0)))));
  return result;
}

double tetragamma(double x) {
  check_positive(x, "tetragamma");
  double result = 0.0;
  while (x < kAsymptoticThreshold) {
    result -= 2.0 / (x * x * x);  // psi''(x) = psi''(x+1) - 2/x^3
    x += 1.0;
  }
  // psi''(x) ~ -1/x^2 - 1/x^3 - 1/(2x^4) + 1/(6x^6) - 1/(6x^8) + 3/(10x^10)
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += -inv2 - inv * inv2 - 0.5 * inv2 * inv2;
  result += inv2 * inv2 * inv2 * (1.0 / 6.0 - inv2 * (1.0 / 6.0 - inv2 * (3.0 / 10.0)));
  return result;
}

namespace {
constexpr double kNormSqrt2 = 1.41421356237309504880;
constexpr double kNormInvSqrt2Pi = 0.39894228040143267794;
}  // namespace

double normal_cdf(double z) { return 0.5 * std::erfc(-z / kNormSqrt2); }

double normal_pdf(double z) { return kNormInvSqrt2Pi * std::exp(-0.5 * z * z); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement.
  const double e = normal_cdf(x) - p;
  const double u = e / normal_pdf(x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

namespace {

/// Continued fraction for the incomplete beta (Lentz's method), valid and
/// fast for x < (a + 1) / (a + b + 2).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-15;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    // Even step.
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double regularized_incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::domain_error("regularized_incomplete_beta requires a, b > 0");
  }
  if (!(x >= 0.0 && x <= 1.0)) {
    throw std::domain_error("regularized_incomplete_beta requires x in [0, 1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the fraction on the side where it converges fast; the other side
  // follows from I_x(a, b) = 1 - I_{1-x}(b, a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double log_binomial(double n, double r) {
  if (!(n >= 0.0) || !(r >= 0.0) || r > n) {
    throw std::domain_error("log_binomial requires 0 <= r <= n");
  }
  return std::lgamma(n + 1.0) - std::lgamma(r + 1.0) - std::lgamma(n - r + 1.0);
}

double harmonic_number(double n) {
  if (!(n >= 0.0)) throw std::domain_error("harmonic_number requires n >= 0");
  if (n == 0.0) return 0.0;
  return digamma(n + 1.0) + kEulerGamma;
}

double ge_unit_mean(double alpha) {
  return digamma(alpha + 1.0) + kEulerGamma;  // psi(1) = -gamma
}

double ge_unit_variance(double alpha) {
  return kTrigammaAtOne - trigamma(alpha + 1.0);
}

}  // namespace forktail::stats
