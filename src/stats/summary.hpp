// Sample summaries with percentile estimates and bootstrap confidence
// intervals; the standard result object returned by simulation runs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace forktail::util {
class Rng;
}

namespace forktail::stats {

struct SampleSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  std::string to_string() const;
};

/// Summarise a sample (sorts a copy once for all percentiles).
SampleSummary summarize(std::span<const double> samples);

struct BootstrapCi {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile bootstrap CI for the p-th percentile of the sample.
/// `confidence` in (0,1), e.g. 0.95.
BootstrapCi bootstrap_percentile_ci(std::span<const double> samples, double p,
                                    double confidence, int resamples,
                                    util::Rng& rng);

/// Relative error in percent, as defined in Section 4 of the paper:
/// 100 * (predicted - measured) / measured.
double relative_error_pct(double predicted, double measured);

}  // namespace forktail::stats
