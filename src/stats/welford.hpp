// Streaming first/second moment estimation (Welford's algorithm) plus a
// third/fourth central moment extension used by distribution tests.
//
// This is the measurement primitive of the black-box model: each fork node
// only ever reports (count, mean, variance) of its task response times.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace forktail::stats {

class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    const double delta2 = x - mean_;
    m2_ += delta * delta2;
    // A NaN sample poisons mean/m2 through the arithmetic above; poison
    // min/max explicitly too (plain comparisons would silently drop it and
    // leave the extremes disagreeing with the moments).
    if (std::isnan(x) || x < min_ || n_ == 1) min_ = x;
    if (std::isnan(x) || x > max_ || n_ == 1) max_ = x;
  }

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void merge(const Welford& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    if (std::isnan(other.min_) || other.min_ < min_) min_ = other.min_;
    if (std::isnan(other.max_) || other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

  /// Population variance (divides by n); matches the moment definitions the
  /// model equations use.  Cancellation in `merge` can leave m2 a hair
  /// below zero for near-constant data; clamp so stddev() never goes NaN.
  double variance() const noexcept {
    if (n_ == 0) return 0.0;
    const double v = m2_ / static_cast<double>(n_);
    return v > 0.0 ? v : (v == v ? 0.0 : v);  // clamp negatives, keep NaN
  }

  /// Unbiased sample variance (divides by n-1).
  double sample_variance() const {
    if (n_ < 2) throw std::logic_error("sample_variance requires n >= 2");
    const double v = m2_ / static_cast<double>(n_ - 1);
    return v > 0.0 ? v : (v == v ? 0.0 : v);
  }

  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Squared coefficient of variation V/E^2.
  double scv() const noexcept {
    return mean_ != 0.0 ? variance() / (mean_ * mean_) : 0.0;
  }

  void reset() noexcept { *this = Welford{}; }

  /// Reconstitute an accumulator from externally maintained state.  The
  /// vector replay engine keeps (count, mean, m2, min, max) in SIMD lane
  /// arrays and folds the lanes back into Welford objects for the standard
  /// merge path; `from_parts(0, ...)` yields the default (empty) state so
  /// idle lanes merge as no-ops.
  static Welford from_parts(std::uint64_t n, double mean, double m2,
                            double min, double max) noexcept {
    Welford w;
    if (n == 0) return w;
    w.n_ = n;
    w.mean_ = mean;
    w.m2_ = m2;
    w.min_ = min;
    w.max_ = max;
    return w;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Raw-moment accumulator up to the 4th moment: needed by white-box M/G/1
/// analysis (Eq. 11 requires E[S^3]) and by distribution unit tests.
class RawMoments {
 public:
  void add(double x) noexcept {
    ++n_;
    double p = x;
    for (int k = 0; k < 4; ++k) {
      sums_[k] += p;
      p *= x;
    }
  }

  std::uint64_t count() const noexcept { return n_; }

  /// E[X^k] for k in 1..4.
  double moment(int k) const {
    if (k < 1 || k > 4) throw std::out_of_range("moment order must be 1..4");
    return n_ > 0 ? sums_[k - 1] / static_cast<double>(n_) : 0.0;
  }

  double mean() const { return moment(1); }
  double variance() const {
    const double m = mean();
    return moment(2) - m * m;
  }

 private:
  std::uint64_t n_ = 0;
  double sums_[4] = {0, 0, 0, 0};
};

}  // namespace forktail::stats
