// Batch-means confidence intervals for steady-state simulation output.
//
// Queueing simulations near saturation produce heavily autocorrelated
// sequences; the naive iid standard error understates the uncertainty of
// means and percentiles by an order of magnitude.  The classical remedy is
// the method of batch means: split the (post-warm-up) sequence into B
// contiguous batches, compute the statistic per batch, and treat the batch
// statistics as approximately independent draws -- valid once batches are
// several autocorrelation times long.
//
// Used by the benches to attach honest error bars to simulated p99s.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace forktail::stats {

struct BatchMeansCi {
  double point = 0.0;      ///< statistic over the full sample
  double lo = 0.0;         ///< lower confidence bound
  double hi = 0.0;         ///< upper confidence bound
  double batch_stddev = 0.0;  ///< stddev of the per-batch statistics
  std::size_t batches = 0;
};

/// Batch-means CI for an arbitrary statistic (e.g. a percentile).
/// `statistic` is evaluated on the whole sample and on each of `batches`
/// contiguous equal-length batches; the interval is
/// point +- t_{B-1, (1+conf)/2} * s_B / sqrt(B).
BatchMeansCi batch_means_ci(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t batches = 10, double confidence = 0.95);

/// Convenience: batch-means CI for the p-th percentile.
BatchMeansCi batch_means_percentile_ci(std::span<const double> samples,
                                       double percentile,
                                       std::size_t batches = 10,
                                       double confidence = 0.95);

/// Convenience: batch-means CI for the mean.
BatchMeansCi batch_means_mean_ci(std::span<const double> samples,
                                 std::size_t batches = 10,
                                 double confidence = 0.95);

/// Two-sided Student-t critical value (via the incomplete-beta-free
/// Cornish-Fisher style approximation; accurate to ~1e-3 for df >= 3,
/// adequate for CI construction).
double student_t_critical(std::size_t degrees_of_freedom, double confidence);

}  // namespace forktail::stats
