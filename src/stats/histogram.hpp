// Fixed-bin and log-spaced histograms for response time distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace forktail::stats {

/// Histogram over [lo, hi) with uniform or logarithmic bin spacing, plus
/// underflow/overflow counters.
class Histogram {
 public:
  enum class Spacing { kLinear, kLog };

  Histogram(double lo, double hi, std::size_t bins, Spacing spacing = Spacing::kLinear);

  void add(double x) noexcept;

  std::uint64_t total_count() const noexcept { return total_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::size_t num_bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lower(std::size_t i) const;
  double bin_upper(std::size_t i) const;

  /// Empirical complementary CDF P(X > x) evaluated at a bin edge.
  double ccdf_at_bin(std::size_t i) const;

  /// Approximate quantile from bin interpolation; p in [0,100].
  double quantile(double p) const;

  /// Plain-text sparkline-ish rendering for examples.
  std::string to_text(std::size_t max_width = 60) const;

 private:
  std::size_t bin_index(double x) const noexcept;

  double lo_;
  double hi_;
  Spacing spacing_;
  double log_lo_ = 0.0;
  double log_width_ = 0.0;
  double width_ = 0.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace forktail::stats
