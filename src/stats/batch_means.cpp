#include "stats/batch_means.hpp"

#include <cmath>
#include <stdexcept>

#include "dist/heavy.hpp"
#include "stats/percentile.hpp"
#include "stats/welford.hpp"

namespace forktail::stats {

double student_t_critical(std::size_t degrees_of_freedom, double confidence) {
  if (degrees_of_freedom == 0) {
    throw std::invalid_argument("student_t_critical: zero degrees of freedom");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("student_t_critical: bad confidence");
  }
  // Cornish-Fisher expansion of the t quantile around the normal quantile
  // (Abramowitz & Stegun 26.7.5); accurate to ~1e-3 for df >= 3.
  const double p = 0.5 * (1.0 + confidence);
  const double z = dist::normal_quantile(p);
  const double n = static_cast<double>(degrees_of_freedom);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  double t = z;
  t += (z3 + z) / (4.0 * n);
  t += (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n);
  t += (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n);
  return t;
}

BatchMeansCi batch_means_ci(
    std::span<const double> samples,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t batches, double confidence) {
  if (batches < 2) {
    throw std::invalid_argument("batch_means_ci: need at least 2 batches");
  }
  if (samples.size() < batches * 2) {
    throw std::invalid_argument("batch_means_ci: sample too small for batching");
  }
  BatchMeansCi ci;
  ci.batches = batches;
  ci.point = statistic(samples);
  const std::size_t batch_len = samples.size() / batches;
  Welford batch_stats;
  for (std::size_t b = 0; b < batches; ++b) {
    batch_stats.add(statistic(samples.subspan(b * batch_len, batch_len)));
  }
  ci.batch_stddev = std::sqrt(batch_stats.sample_variance());
  const double half = student_t_critical(batches - 1, confidence) *
                      ci.batch_stddev / std::sqrt(static_cast<double>(batches));
  ci.lo = ci.point - half;
  ci.hi = ci.point + half;
  return ci;
}

BatchMeansCi batch_means_percentile_ci(std::span<const double> samples,
                                       double percentile, std::size_t batches,
                                       double confidence) {
  return batch_means_ci(
      samples,
      [percentile](std::span<const double> s) {
        return stats::percentile(s, percentile);
      },
      batches, confidence);
}

BatchMeansCi batch_means_mean_ci(std::span<const double> samples,
                                 std::size_t batches, double confidence) {
  return batch_means_ci(
      samples,
      [](std::span<const double> s) {
        Welford w;
        for (double v : s) w.add(v);
        return w.mean();
      },
      batches, confidence);
}

}  // namespace forktail::stats
