// Scalar root finding: bracketing bisection and Brent's method.
//
// Used to invert the GE moment-ratio equation (fit alpha from mean and
// variance) and to invert mixture CDFs (Eqs. 4 and 8) for quantiles.
#pragma once

#include <functional>

namespace forktail::stats {

struct RootOptions {
  double x_tolerance = 1e-12;   ///< absolute tolerance on the root location
  double f_tolerance = 0.0;     ///< stop when |f| <= this (0 = off)
  int max_iterations = 200;
};

/// Outcome of a traced solve: the root plus how hard it was to find --
/// feeds the observability layer's moment-match iteration histograms.
struct RootResult {
  double root = 0.0;
  int iterations = 0;      ///< f evaluations beyond the two bracket probes
  bool converged = true;   ///< false when max_iterations ran out
};

/// Find a root of f in [lo, hi]; f(lo) and f(hi) must have opposite signs
/// (or one of them be zero).  Throws std::invalid_argument otherwise.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts = {});

/// Brent's method: bracketing with inverse quadratic interpolation;
/// superlinear convergence with bisection's robustness.
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts = {});

/// As `brent`, but also reports the iteration count and whether the
/// tolerance was met within the iteration budget.
RootResult brent_traced(const std::function<double(double)>& f, double lo,
                        double hi, const RootOptions& opts = {});

/// Expand [lo, hi] geometrically upward until f changes sign, then Brent.
/// Requires f(lo) and the eventual f(hi) to differ in sign; used for
/// quantile inversion where the upper bracket is unknown.
double brent_expand_upper(const std::function<double(double)>& f, double lo,
                          double hi_initial, const RootOptions& opts = {});

}  // namespace forktail::stats
