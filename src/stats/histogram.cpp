#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace forktail::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins, Spacing spacing)
    : lo_(lo), hi_(hi), spacing_(spacing), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: invalid range or bin count");
  }
  if (spacing == Spacing::kLog) {
    if (!(lo > 0.0)) {
      throw std::invalid_argument("Histogram: log spacing requires lo > 0");
    }
    log_lo_ = std::log(lo);
    log_width_ = (std::log(hi) - log_lo_) / static_cast<double>(bins);
  } else {
    width_ = (hi - lo) / static_cast<double>(bins);
  }
}

std::size_t Histogram::bin_index(double x) const noexcept {
  double idx;
  if (spacing_ == Spacing::kLog) {
    idx = (std::log(x) - log_lo_) / log_width_;
  } else {
    idx = (x - lo_) / width_;
  }
  return static_cast<std::size_t>(idx);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  std::size_t i = bin_index(x);
  if (i >= counts_.size()) i = counts_.size() - 1;  // edge rounding
  ++counts_[i];
}

double Histogram::bin_lower(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("bin index");
  if (spacing_ == Spacing::kLog) {
    return std::exp(log_lo_ + log_width_ * static_cast<double>(i));
  }
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_upper(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("bin index");
  if (spacing_ == Spacing::kLog) {
    return std::exp(log_lo_ + log_width_ * static_cast<double>(i + 1));
  }
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::ccdf_at_bin(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("bin index");
  if (total_ == 0) return 0.0;
  std::uint64_t above = overflow_;
  for (std::size_t j = i; j < counts_.size(); ++j) above += counts_[j];
  return static_cast<double>(above) / static_cast<double>(total_);
}

double Histogram::quantile(double p) const {
  if (total_ == 0) throw std::logic_error("Histogram: empty");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("p must be in [0,100]");
  const double target = p / 100.0 * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lower(i) + frac * (bin_upper(i) - bin_lower(i));
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_text(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%10.4g, %10.4g) ", bin_lower(i), bin_upper(i));
    os << buf << std::string(std::max<std::size_t>(bar, 1), '#') << ' '
       << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace forktail::stats
