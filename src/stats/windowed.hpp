// Sliding-window moment estimation.
//
// Section 3 of the paper: "Using the same example ... with only 20 seconds
// of measurement time, one can collect 1000 task samples ... With moving
// average for a given time window, e.g., 20 seconds, these means and
// variances and hence, the tail latency prediction, can be updated every
// tens of milliseconds."  This module provides exactly that primitive:
// count/mean/variance over the trailing time window, updatable per sample.
//
// Variance is computed on SHIFTED data: incremental sums are kept of
// (v - shift) and (v - shift)^2 where `shift` is pinned near the window
// mean at each resync.  The naive E[X^2] - E[X]^2 form cancels
// catastrophically when mean >> stddev (millisecond-scale responses with
// microsecond jitter silently clamp to zero variance, corrupting the GE
// moment fit downstream); shifting makes the subtraction operate on
// same-magnitude quantities.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>

namespace forktail::stats {

/// Moments over a sliding *time* window.  Samples are (timestamp, value)
/// with non-decreasing timestamps; samples older than `window` relative to
/// the most recent insertion (or an explicit advance) are evicted.
class WindowedMoments {
 public:
  explicit WindowedMoments(double window_seconds);

  void add(double timestamp, double value);

  /// Evict samples older than `now - window` without adding a sample.
  void advance(double now);

  std::uint64_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept;
  double variance() const noexcept;
  double window() const noexcept { return window_; }

 private:
  struct Sample {
    double t;
    double v;
  };

  void evict(double now);
  void maybe_resync();

  double window_;
  std::deque<Sample> samples_;
  // Incremental sums of the shifted values (v - shift_) and their squares;
  // re-synced periodically (and on every resync the shift is re-pinned to
  // the current window mean) to bound floating point drift from the
  // add/subtract pattern.
  double shift_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::uint64_t ops_since_resync_ = 0;
  void resync();
};

/// Moments over the trailing N samples (count window rather than time
/// window); used when the sampling rate rather than wall time is fixed.
class RollingMoments {
 public:
  explicit RollingMoments(std::size_t capacity);

  void add(double value);

  std::size_t count() const noexcept { return buffer_size_; }
  bool full() const noexcept { return buffer_size_ == capacity_; }
  double mean() const noexcept;
  double variance() const noexcept;

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  std::size_t buffer_size_ = 0;
  // Shifted-data sums, as in WindowedMoments.
  double shift_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::uint64_t ops_since_resync_ = 0;
  void resync();
};

}  // namespace forktail::stats
