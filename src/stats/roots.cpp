#include "stats/roots.hpp"

#include <cmath>
#include <stdexcept>

namespace forktail::stats {

namespace {
bool opposite_signs(double a, double b) {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}
}  // namespace

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (!opposite_signs(flo, fhi)) {
    throw std::invalid_argument("bisect: root not bracketed");
  }
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || hi - lo < opts.x_tolerance ||
        (opts.f_tolerance > 0.0 && std::fabs(fmid) <= opts.f_tolerance)) {
      return mid;
    }
    if (opposite_signs(flo, fmid)) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts) {
  return brent_traced(f, lo, hi, opts).root;
}

RootResult brent_traced(const std::function<double(double)>& f, double lo,
                        double hi, const RootOptions& opts) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return {a, 0, true};
  if (fb == 0.0) return {b, 0, true};
  if (!opposite_signs(fa, fb)) {
    throw std::invalid_argument("brent: root not bracketed");
  }
  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  bool mflag = true;
  double d = 0.0;

  for (int i = 0; i < opts.max_iterations; ++i) {
    if (fb == 0.0 || std::fabs(b - a) < opts.x_tolerance ||
        (opts.f_tolerance > 0.0 && std::fabs(fb) <= opts.f_tolerance)) {
      return {b, i, true};
    }
    double s;
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // secant
      s = b - fb * (b - a) / (fb - fa);
    }
    const double mid = 0.5 * (a + b);
    const bool cond1 = !((s > mid && s < b) || (s < mid && s > b));
    const bool cond2 = mflag && std::fabs(s - b) >= std::fabs(b - c) / 2.0;
    const bool cond3 = !mflag && std::fabs(s - b) >= std::fabs(c - d) / 2.0;
    const bool cond4 = mflag && std::fabs(b - c) < opts.x_tolerance;
    const bool cond5 = !mflag && std::fabs(c - d) < opts.x_tolerance;
    if (cond1 || cond2 || cond3 || cond4 || cond5) {
      s = mid;
      mflag = true;
    } else {
      mflag = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (opposite_signs(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return {b, opts.max_iterations, false};
}

double brent_expand_upper(const std::function<double(double)>& f, double lo,
                          double hi_initial, const RootOptions& opts) {
  double hi = hi_initial > lo ? hi_initial : lo * 2.0 + 1.0;
  const double flo = f(lo);
  double fhi = f(hi);
  int expansions = 0;
  while (!opposite_signs(flo, fhi)) {
    hi = lo + (hi - lo) * 2.0;
    fhi = f(hi);
    if (++expansions > 200) {
      throw std::runtime_error("brent_expand_upper: failed to bracket root");
    }
  }
  return brent(f, lo, hi, opts);
}

}  // namespace forktail::stats
