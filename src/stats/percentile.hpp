// Percentile estimation: exact order statistics on retained samples and the
// P-square streaming estimator for memory-constrained online tracking.
//
// Simulated "ground truth" tails use the exact estimator; the online
// scheduler example uses P-square.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace forktail::stats {

/// Exact percentile of a sample using linear interpolation between order
/// statistics (type-7 / the numpy default).  `p` in [0, 100].  Sorts a copy.
double percentile(std::span<const double> samples, double p);

/// As above but for several percentiles, sorting once.  Every `p` is
/// validated (and an empty `ps` rejected) before the O(n log n) sort.
std::vector<double> percentiles(std::span<const double> samples,
                                std::span<const double> ps);

/// In-place variant: partially sorts `samples` (cheaper for single use).
double percentile_inplace(std::span<double> samples, double p);

/// Multi-percentile selection without a full sort: one pass of partitioned
/// `nth_element` calls, processed in ascending-p order so each selection is
/// restricted to the still-unpartitioned suffix.  O(n + m log n) expected
/// vs O(n log n) for sorting, and bit-identical to `percentiles()` on the
/// same data.  Reorders `samples`; `out[i]` corresponds to `ps[i]` in the
/// caller's original order.
std::vector<double> percentiles_inplace(std::span<double> samples,
                                        std::span<const double> ps);

/// P-square (Jain & Chlamtac 1985) streaming quantile estimator: O(1) memory
/// per tracked quantile, no sample retention.
class P2Quantile {
 public:
  /// `p` in (0, 100).
  explicit P2Quantile(double p);

  void add(double x);

  /// Current estimate; requires at least 5 observations.
  double value() const;

  std::size_t count() const noexcept { return count_; }

 private:
  double p_;
  std::size_t count_ = 0;
  std::array<double, 5> q_{};   // marker heights
  std::array<double, 5> n_{};   // marker positions
  std::array<double, 5> np_{};  // desired positions
  std::array<double, 5> dn_{};  // desired position increments
  std::array<double, 5> initial_{};

  double parabolic(int i, double d) const;
  double linear(int i, double d) const;
};

}  // namespace forktail::stats
