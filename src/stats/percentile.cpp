#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace forktail::stats {

namespace {
double interpolate_sorted(std::span<const double> sorted, double p) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double h = (p / 100.0) * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

void check_args(std::size_t n, double p) {
  if (n == 0) throw std::invalid_argument("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("p must be in [0,100]");
}

// A NaN breaks the strict weak ordering sort/nth_element require, so a
// poisoned sample silently yields garbage order statistics.  One O(n) scan
// turns that into a loud error.
void check_no_nan(std::span<const double> samples) {
  for (double x : samples) {
    if (std::isnan(x)) {
      throw std::invalid_argument("percentile: NaN in sample");
    }
  }
}
}  // namespace

double percentile(std::span<const double> samples, double p) {
  check_args(samples.size(), p);
  check_no_nan(samples);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return interpolate_sorted(sorted, p);
}

std::vector<double> percentiles(std::span<const double> samples,
                                std::span<const double> ps) {
  // Validate the whole request -- including rejecting an empty `ps` --
  // before paying for the O(n log n) sort.
  if (ps.empty()) throw std::invalid_argument("percentiles: empty p list");
  for (double p : ps) check_args(samples.size(), p);
  check_no_nan(samples);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(interpolate_sorted(sorted, p));
  return out;
}

double percentile_inplace(std::span<double> samples, double p) {
  // Delegates to the multi-p selection path; even a single percentile needs
  // the second (degenerate) nth_element to locate the interpolation
  // neighbor -- the minimum of the upper partition [lo+1, n) -- which costs
  // one extra O(n - lo) scan on top of the O(n) expected selection.
  return percentiles_inplace(samples, std::span<const double>(&p, 1))[0];
}

std::vector<double> percentiles_inplace(std::span<double> samples,
                                        std::span<const double> ps) {
  if (ps.empty()) throw std::invalid_argument("percentiles: empty p list");
  const std::size_t n = samples.size();
  for (double p : ps) check_args(n, p);
  check_no_nan(samples);

  // Process the requested percentiles in ascending order: once the order
  // statistic at `lo` is placed, everything left of it is <= samples[lo],
  // so the next (larger) selection only has to touch the suffix [left, n).
  std::vector<std::size_t> idx(ps.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return ps[a] < ps[b]; });

  std::vector<double> out(ps.size());
  const auto begin = samples.begin();
  std::size_t left = 0;
  std::size_t cached_lo = n;  // no order statistic placed yet
  double vlo = 0.0;
  double vhi = 0.0;
  for (std::size_t i : idx) {
    if (n == 1) {
      out[i] = samples[0];
      continue;
    }
    const double h = (ps[i] / 100.0) * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(h);
    if (lo != cached_lo) {
      std::nth_element(begin + static_cast<std::ptrdiff_t>(left),
                       begin + static_cast<std::ptrdiff_t>(lo), samples.end());
      vlo = samples[lo];
      if (lo + 1 < n) {
        // Interpolation neighbor: the MINIMUM of the upper partition.  A
        // degenerate nth_element places it at lo+1 and leaves the suffix
        // partitioned for the next percentile.
        std::nth_element(begin + static_cast<std::ptrdiff_t>(lo) + 1,
                         begin + static_cast<std::ptrdiff_t>(lo) + 1,
                         samples.end());
        vhi = samples[lo + 1];
        left = lo + 1;
      } else {
        left = lo;
      }
      cached_lo = lo;
    }
    if (lo + 1 >= n) {
      out[i] = samples[n - 1];
      continue;
    }
    const double frac = h - static_cast<double>(lo);
    out[i] = vlo + frac * (vhi - vlo);
  }
  return out;
}

P2Quantile::P2Quantile(double p) : p_(p / 100.0) {
  if (!(p > 0.0 && p < 100.0)) {
    throw std::invalid_argument("P2Quantile requires 0 < p < 100");
  }
  dn_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const auto u = static_cast<std::size_t>(i);
  return q_[u] + d / (n_[u + 1] - n_[u - 1]) *
                     ((n_[u] - n_[u - 1] + d) * (q_[u + 1] - q_[u]) /
                          (n_[u + 1] - n_[u]) +
                      (n_[u + 1] - n_[u] - d) * (q_[u] - q_[u - 1]) /
                          (n_[u] - n_[u - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const auto u = static_cast<std::size_t>(i);
  const auto v = static_cast<std::size_t>(i + static_cast<int>(d));
  return q_[u] + d * (q_[v] - q_[u]) / (n_[v] - n_[u]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    initial_[count_++] = x;
    if (count_ == 5) {
      std::sort(initial_.begin(), initial_.end());
      q_ = initial_;
      n_ = {0, 1, 2, 3, 4};
      np_ = {0, 2 * p_, 4 * p_, 2 + 2 * p_, 4};
    }
    return;
  }
  ++count_;

  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x < q_[1]) {
    k = 0;
  } else if (x < q_[2]) {
    k = 1;
  } else if (x < q_[3]) {
    k = 2;
  } else if (x <= q_[4]) {
    k = 3;
  } else {
    q_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) n_[static_cast<std::size_t>(i)] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) np_[i] += dn_[i];

  for (int i = 1; i <= 3; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double d = np_[u] - n_[u];
    if ((d >= 1.0 && n_[u + 1] - n_[u] > 1.0) ||
        (d <= -1.0 && n_[u - 1] - n_[u] < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      double qp = parabolic(i, sign);
      if (!(q_[u - 1] < qp && qp < q_[u + 1])) qp = linear(i, sign);
      q_[u] = qp;
      n_[u] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) throw std::logic_error("P2Quantile: no samples");
  if (count_ < 5) {
    auto copy = initial_;
    std::sort(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(count_));
    const double h = p_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(h);
    if (lo + 1 >= count_) return copy[count_ - 1];
    return copy[lo] + (h - static_cast<double>(lo)) * (copy[lo + 1] - copy[lo]);
  }
  return q_[2];
}

}  // namespace forktail::stats
