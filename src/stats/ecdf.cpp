#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/kahan.hpp"

namespace forktail::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
  util::KahanSum s;
  for (double v : sorted_) s.add(v);
  mean_ = s.value() / static_cast<double>(sorted_.size());
  util::KahanSum s2;
  for (double v : sorted_) s2.add((v - mean_) * (v - mean_));
  variance_ = s2.value() / static_cast<double>(sorted_.size());
}

double Ecdf::cdf(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("q must be in [0,1]");
  const std::size_t n = sorted_.size();
  if (n == 1) return sorted_[0];
  const double h = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= n) return sorted_[n - 1];
  const double frac = h - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double Ecdf::ks_distance(const std::function<double(double)>& model_cdf) const {
  const double n = static_cast<double>(sorted_.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    const double m = model_cdf(sorted_[i]);
    const double upper = static_cast<double>(i + 1) / n - m;
    const double lower = m - static_cast<double>(i) / n;
    worst = std::max({worst, upper, lower});
  }
  return worst;
}

}  // namespace forktail::stats
