// Special functions required by the generalized exponential moment
// equations (Eqs. 2-3 of the paper): digamma psi(x), trigamma psi'(x), and
// the general polygamma recurrences they are built from.
//
// Implementation: upward recurrence to push the argument above a threshold,
// followed by the standard asymptotic (Bernoulli-number) series.  Accurate
// to ~1e-12 over the ranges the library uses (x > 0).
#pragma once

namespace forktail::stats {

/// Euler-Mascheroni constant; psi(1) = -gamma.
inline constexpr double kEulerGamma = 0.57721566490153286060651209;

/// pi^2/6 = psi'(1).
inline constexpr double kTrigammaAtOne = 1.64493406684822643647241516;

/// Digamma function psi(x) for x > 0.
double digamma(double x);

/// Trigamma function psi'(x) for x > 0.
double trigamma(double x);

/// Tetragamma function psi''(x) for x > 0 (used by sensitivity analysis of
/// the moment fit).
double tetragamma(double x);

/// Mean of the generalized exponential distribution with unit scale:
/// psi(alpha + 1) - psi(1).  (Eq. 2 with beta = 1.)
double ge_unit_mean(double alpha);

/// Variance of the generalized exponential distribution with unit scale:
/// psi'(1) - psi'(alpha + 1).  (Eq. 3 with beta = 1.)
double ge_unit_variance(double alpha);

/// Standard normal CDF.
double normal_cdf(double z);

/// Standard normal pdf.
double normal_pdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-13).  Requires p in (0, 1).
double normal_quantile(double p);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1]: the CDF of the Beta(a, b) distribution, and therefore the
/// CDF of the r-th order statistic of n iid draws evaluated through the
/// parent CDF -- P(X_(r:n) <= t) = I_{F(t)}(r, n - r + 1).  The certified
/// lower bound of the (n, k) fork-join bracket is built on this identity.
/// Lentz continued fraction with the standard symmetry split; accurate to
/// ~1e-12 over the integer-parameter ranges the bounds use.
double regularized_incomplete_beta(double a, double b, double x);

/// ln C(n, r) via lgamma -- the linear-transformation combination weights
/// (Wang et al., arXiv 1707.08860) need binomials far beyond 2^64.
double log_binomial(double n, double r);

/// Harmonic number H_n = sum_{i=1..n} 1/i (digamma shortcut for large n).
double harmonic_number(double n);

}  // namespace forktail::stats
