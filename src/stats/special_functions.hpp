// Special functions required by the generalized exponential moment
// equations (Eqs. 2-3 of the paper): digamma psi(x), trigamma psi'(x), and
// the general polygamma recurrences they are built from.
//
// Implementation: upward recurrence to push the argument above a threshold,
// followed by the standard asymptotic (Bernoulli-number) series.  Accurate
// to ~1e-12 over the ranges the library uses (x > 0).
#pragma once

namespace forktail::stats {

/// Euler-Mascheroni constant; psi(1) = -gamma.
inline constexpr double kEulerGamma = 0.57721566490153286060651209;

/// pi^2/6 = psi'(1).
inline constexpr double kTrigammaAtOne = 1.64493406684822643647241516;

/// Digamma function psi(x) for x > 0.
double digamma(double x);

/// Trigamma function psi'(x) for x > 0.
double trigamma(double x);

/// Tetragamma function psi''(x) for x > 0 (used by sensitivity analysis of
/// the moment fit).
double tetragamma(double x);

/// Mean of the generalized exponential distribution with unit scale:
/// psi(alpha + 1) - psi(1).  (Eq. 2 with beta = 1.)
double ge_unit_mean(double alpha);

/// Variance of the generalized exponential distribution with unit scale:
/// psi'(1) - psi'(alpha + 1).  (Eq. 3 with beta = 1.)
double ge_unit_variance(double alpha);

/// Standard normal CDF.
double normal_cdf(double z);

/// Standard normal pdf.
double normal_pdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; |error| < 1e-13).  Requires p in (0, 1).
double normal_quantile(double p);

}  // namespace forktail::stats
