#include "stats/windowed.hpp"

#include "util/kahan.hpp"

namespace forktail::stats {

namespace {
// Re-sum from scratch every this many incremental updates to bound drift.
constexpr std::uint64_t kResyncInterval = 1u << 16;
}  // namespace

WindowedMoments::WindowedMoments(double window_seconds) : window_(window_seconds) {
  if (!(window_seconds > 0.0)) {
    throw std::invalid_argument("window must be positive");
  }
}

void WindowedMoments::add(double timestamp, double value) {
  if (!samples_.empty() && timestamp < samples_.back().t) {
    throw std::invalid_argument("timestamps must be non-decreasing");
  }
  if (samples_.empty()) {
    // Pin the shift at the first value of a fresh window so the shifted
    // sums stay near zero whenever the data is tightly clustered.
    shift_ = value;
    sum_ = 0.0;
    sum_sq_ = 0.0;
  }
  samples_.push_back({timestamp, value});
  const double c = value - shift_;
  sum_ += c;
  sum_sq_ += c * c;
  evict(timestamp);
  ++ops_since_resync_;
  maybe_resync();
}

void WindowedMoments::advance(double now) {
  evict(now);
  // Eviction churn drifts the incremental sums exactly like insertion does;
  // an advance()-heavy idle node must hit the resync threshold too.
  maybe_resync();
}

void WindowedMoments::evict(double now) {
  const double cutoff = now - window_;
  while (!samples_.empty() && samples_.front().t < cutoff) {
    const double c = samples_.front().v - shift_;
    sum_ -= c;
    sum_sq_ -= c * c;
    samples_.pop_front();
    ++ops_since_resync_;
  }
  if (samples_.empty()) {
    sum_ = 0.0;
    sum_sq_ = 0.0;
  }
}

void WindowedMoments::maybe_resync() {
  if (ops_since_resync_ >= kResyncInterval) resync();
}

void WindowedMoments::resync() {
  // Re-pin the shift at the current window mean, then re-sum the shifted
  // values exactly (Kahan): the subsequent incremental updates start from
  // the best-conditioned representation possible.
  util::KahanSum raw;
  for (const auto& sample : samples_) raw.add(sample.v);
  shift_ = samples_.empty()
               ? 0.0
               : raw.value() / static_cast<double>(samples_.size());
  util::KahanSum s;
  util::KahanSum s2;
  for (const auto& sample : samples_) {
    const double c = sample.v - shift_;
    s.add(c);
    s2.add(c * c);
  }
  sum_ = s.value();
  sum_sq_ = s2.value();
  ops_since_resync_ = 0;
}

double WindowedMoments::mean() const noexcept {
  return samples_.empty()
             ? 0.0
             : shift_ + sum_ / static_cast<double>(samples_.size());
}

double WindowedMoments::variance() const noexcept {
  if (samples_.empty()) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double v = sum_sq_ / n - m * m;
  return v > 0.0 ? v : 0.0;
}

RollingMoments::RollingMoments(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("capacity must be positive");
}

void RollingMoments::add(double value) {
  if (window_.empty()) {
    shift_ = value;
    sum_ = 0.0;
    sum_sq_ = 0.0;
  }
  window_.push_back(value);
  const double c = value - shift_;
  sum_ += c;
  sum_sq_ += c * c;
  if (buffer_size_ == capacity_) {
    const double old = window_.front() - shift_;
    window_.pop_front();
    sum_ -= old;
    sum_sq_ -= old * old;
  } else {
    ++buffer_size_;
  }
  if (++ops_since_resync_ >= kResyncInterval) resync();
}

void RollingMoments::resync() {
  util::KahanSum raw;
  for (double v : window_) raw.add(v);
  shift_ =
      window_.empty() ? 0.0 : raw.value() / static_cast<double>(window_.size());
  util::KahanSum s;
  util::KahanSum s2;
  for (double v : window_) {
    const double c = v - shift_;
    s.add(c);
    s2.add(c * c);
  }
  sum_ = s.value();
  sum_sq_ = s2.value();
  ops_since_resync_ = 0;
}

double RollingMoments::mean() const noexcept {
  return buffer_size_ == 0 ? 0.0
                           : shift_ + sum_ / static_cast<double>(buffer_size_);
}

double RollingMoments::variance() const noexcept {
  if (buffer_size_ == 0) return 0.0;
  const double n = static_cast<double>(buffer_size_);
  const double m = sum_ / n;
  const double v = sum_sq_ / n - m * m;
  return v > 0.0 ? v : 0.0;
}

}  // namespace forktail::stats
