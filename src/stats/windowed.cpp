#include "stats/windowed.hpp"

#include "util/kahan.hpp"

namespace forktail::stats {

namespace {
// Re-sum from scratch every this many incremental updates to bound drift.
constexpr std::uint64_t kResyncInterval = 1u << 16;
}  // namespace

WindowedMoments::WindowedMoments(double window_seconds) : window_(window_seconds) {
  if (!(window_seconds > 0.0)) {
    throw std::invalid_argument("window must be positive");
  }
}

void WindowedMoments::add(double timestamp, double value) {
  if (!samples_.empty() && timestamp < samples_.back().t) {
    throw std::invalid_argument("timestamps must be non-decreasing");
  }
  samples_.push_back({timestamp, value});
  sum_ += value;
  sum_sq_ += value * value;
  evict(timestamp);
  if (++ops_since_resync_ >= kResyncInterval) resync();
}

void WindowedMoments::advance(double now) { evict(now); }

void WindowedMoments::evict(double now) {
  const double cutoff = now - window_;
  while (!samples_.empty() && samples_.front().t < cutoff) {
    const double v = samples_.front().v;
    sum_ -= v;
    sum_sq_ -= v * v;
    samples_.pop_front();
    ++ops_since_resync_;
  }
}

void WindowedMoments::resync() {
  util::KahanSum s;
  util::KahanSum s2;
  for (const auto& sample : samples_) {
    s.add(sample.v);
    s2.add(sample.v * sample.v);
  }
  sum_ = s.value();
  sum_sq_ = s2.value();
  ops_since_resync_ = 0;
}

double WindowedMoments::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double WindowedMoments::variance() const noexcept {
  if (samples_.empty()) return 0.0;
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double v = sum_sq_ / n - m * m;
  return v > 0.0 ? v : 0.0;
}

RollingMoments::RollingMoments(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("capacity must be positive");
}

void RollingMoments::add(double value) {
  window_.push_back(value);
  sum_ += value;
  sum_sq_ += value * value;
  if (buffer_size_ == capacity_) {
    const double old = window_.front();
    window_.pop_front();
    sum_ -= old;
    sum_sq_ -= old * old;
  } else {
    ++buffer_size_;
  }
  if (++ops_since_resync_ >= kResyncInterval) resync();
}

void RollingMoments::resync() {
  util::KahanSum s;
  util::KahanSum s2;
  for (double v : window_) {
    s.add(v);
    s2.add(v * v);
  }
  sum_ = s.value();
  sum_sq_ = s2.value();
  ops_since_resync_ = 0;
}

double RollingMoments::mean() const noexcept {
  return buffer_size_ == 0 ? 0.0 : sum_ / static_cast<double>(buffer_size_);
}

double RollingMoments::variance() const noexcept {
  if (buffer_size_ == 0) return 0.0;
  const double n = static_cast<double>(buffer_size_);
  const double m = sum_ / n;
  const double v = sum_sq_ / n - m * m;
  return v > 0.0 ? v : 0.0;
}

}  // namespace forktail::stats
