#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "stats/percentile.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace forktail::stats {

std::string SampleSummary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " var=" << variance
     << " p50=" << p50 << " p90=" << p90 << " p95=" << p95 << " p99=" << p99
     << " p99.9=" << p999 << " max=" << max;
  return os.str();
}

SampleSummary summarize(std::span<const double> samples) {
  if (samples.empty()) throw std::invalid_argument("summarize: empty sample");
  SampleSummary s;
  Welford w;
  for (double v : samples) w.add(v);
  s.count = w.count();
  s.mean = w.mean();
  s.variance = w.variance();
  s.min = w.min();
  s.max = w.max();
  const double ps[] = {50, 90, 95, 99, 99.9};
  const auto q = percentiles(samples, ps);
  s.p50 = q[0];
  s.p90 = q[1];
  s.p95 = q[2];
  s.p99 = q[3];
  s.p999 = q[4];
  return s;
}

BootstrapCi bootstrap_percentile_ci(std::span<const double> samples, double p,
                                    double confidence, int resamples,
                                    util::Rng& rng) {
  if (samples.empty()) throw std::invalid_argument("bootstrap: empty sample");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("confidence must be in (0,1)");
  }
  BootstrapCi ci;
  ci.point = percentile(samples, p);
  const std::size_t n = samples.size();
  std::vector<double> resample(n);
  std::vector<double> estimates;
  estimates.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = samples[rng.uniform_int(static_cast<std::uint64_t>(n))];
    }
    estimates.push_back(percentile_inplace(resample, p));
  }
  std::sort(estimates.begin(), estimates.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto idx = [&](double q) {
    const double h = q * static_cast<double>(estimates.size() - 1);
    return estimates[static_cast<std::size_t>(std::lround(h))];
  };
  ci.lo = idx(alpha);
  ci.hi = idx(1.0 - alpha);
  return ci;
}

double relative_error_pct(double predicted, double measured) {
  if (measured == 0.0) throw std::invalid_argument("relative error: measured == 0");
  return 100.0 * (predicted - measured) / measured;
}

}  // namespace forktail::stats
