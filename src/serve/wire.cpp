#include "serve/wire.hpp"

#include <cmath>
#include <cstring>

namespace forktail::serve {

namespace {

// Fixed-layout little-endian load/store.  memcpy keeps the accesses
// alignment-safe (datagram buffers are arbitrary byte offsets); the
// byte-by-byte composition keeps the format well-defined on any host
// endianness, not just the little-endian fleets it will actually run on.
template <typename T>
T load_le(const std::uint8_t* p) noexcept {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v = static_cast<T>(v | (static_cast<T>(p[i]) << (8 * i)));
  }
  return v;
}

template <typename T>
void store_le(std::uint8_t* p, T v) noexcept {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    p[i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

double load_f64(const std::uint8_t* p) noexcept {
  const std::uint64_t bits = load_le<std::uint64_t>(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void store_f64(std::uint8_t* p, double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  store_le<std::uint64_t>(p, bits);
}

bool valid_sample(double v) noexcept { return std::isfinite(v) && v >= 0.0; }

}  // namespace

const char* wire_error_name(WireError error) noexcept {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kBadCount: return "bad_count";
    case WireError::kChecksum: return "checksum";
    case WireError::kBadSample: return "bad_sample";
  }
  return "unknown";
}

std::uint32_t wire_checksum(const std::uint8_t* data,
                            std::size_t len) noexcept {
  // FNV-1a 32: cheap, order-sensitive, and strong enough to catch the
  // torn/bit-rotted datagrams it exists for (this is integrity, not
  // authentication).
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

std::size_t encode(const WireBatch& batch, std::uint8_t* out,
                   std::size_t cap) noexcept {
  if (batch.count == 0 || batch.count > kMaxSamplesPerDatagram) return 0;
  for (std::size_t i = 0; i < batch.count; ++i) {
    if (!valid_sample(batch.samples[i])) return 0;
  }
  const std::size_t need =
      kWireHeaderBytes + 8 * batch.count + kWireChecksumBytes;
  if (cap < need) return 0;
  store_le<std::uint32_t>(out + 0, kWireMagic);
  store_le<std::uint16_t>(out + 4, kWireVersion);
  store_le<std::uint16_t>(out + 6, batch.service);
  store_le<std::uint32_t>(out + 8, batch.node);
  store_le<std::uint64_t>(out + 12, batch.timestamp_ns);
  store_le<std::uint16_t>(out + 20, batch.count);
  store_le<std::uint16_t>(out + 22, 0);  // reserved
  for (std::size_t i = 0; i < batch.count; ++i) {
    store_f64(out + kWireHeaderBytes + 8 * i, batch.samples[i]);
  }
  const std::size_t body = kWireHeaderBytes + 8 * batch.count;
  store_le<std::uint32_t>(out + body, wire_checksum(out, body));
  return need;
}

std::vector<std::uint8_t> encode(const WireBatch& batch) {
  std::vector<std::uint8_t> out(kMaxDatagramBytes);
  const std::size_t n = encode(batch, out.data(), out.size());
  out.resize(n);
  return out;
}

WireError decode(const std::uint8_t* data, std::size_t len,
                 WireBatch& out) noexcept {
  if (len < kWireHeaderBytes) return WireError::kTruncated;
  if (load_le<std::uint32_t>(data + 0) != kWireMagic) {
    return WireError::kBadMagic;
  }
  if (load_le<std::uint16_t>(data + 4) != kWireVersion) {
    return WireError::kBadVersion;
  }
  if (load_le<std::uint16_t>(data + 22) != 0) return WireError::kBadVersion;
  const std::uint16_t count = load_le<std::uint16_t>(data + 20);
  if (count == 0 || count > kMaxSamplesPerDatagram) return WireError::kBadCount;
  const std::size_t body = kWireHeaderBytes + 8 * static_cast<std::size_t>(count);
  if (len != body + kWireChecksumBytes) return WireError::kTruncated;
  if (load_le<std::uint32_t>(data + body) != wire_checksum(data, body)) {
    return WireError::kChecksum;
  }
  out.service = load_le<std::uint16_t>(data + 6);
  out.node = load_le<std::uint32_t>(data + 8);
  out.timestamp_ns = load_le<std::uint64_t>(data + 12);
  out.count = count;
  for (std::size_t i = 0; i < count; ++i) {
    const double v = load_f64(data + kWireHeaderBytes + 8 * i);
    if (!valid_sample(v)) return WireError::kBadSample;
    out.samples[i] = v;
  }
  return WireError::kNone;
}

}  // namespace forktail::serve
