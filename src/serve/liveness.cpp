#include "serve/liveness.hpp"

#include <algorithm>
#include <stdexcept>

namespace forktail::serve {

LivenessTable::LivenessTable(std::size_t nodes) : entries_(nodes) {
  if (nodes == 0) {
    throw std::invalid_argument("LivenessTable: need at least one node");
  }
}

void LivenessTable::observe(std::size_t node, std::uint64_t agent_ns,
                            double now_s) {
  Entry& e = entries_.at(node);
  if (!e.seen) {
    e.seen = true;
    ++seen_count_;
  }
  if (e.stale) {
    e.stale = false;
    --stale_count_;
  }
  // Monotone per node: a reordered datagram must not move the liveness
  // horizon backwards.
  e.last_agent_ns = std::max(e.last_agent_ns, agent_ns);
  e.last_seen_s = std::max(e.last_seen_s, now_s);
}

std::vector<std::size_t> LivenessTable::sweep(double now_s, double timeout_s) {
  std::vector<std::size_t> newly_stale;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (!e.seen || e.stale) continue;
    if (now_s - e.last_seen_s > timeout_s) {
      e.stale = true;
      ++stale_count_;
      newly_stale.push_back(i);
    }
  }
  return newly_stale;
}

double LivenessTable::staleness_ms(double now_s) const {
  double worst = 0.0;
  for (const Entry& e : entries_) {
    if (!e.seen || e.stale) continue;
    worst = std::max(worst, (now_s - e.last_seen_s) * 1000.0);
  }
  return worst;
}

double LivenessTable::estimated_agent_now_s(std::size_t node,
                                            double now_s) const {
  const Entry& e = entries_.at(node);
  const double idle_s = std::max(0.0, now_s - e.last_seen_s);
  return static_cast<double>(e.last_agent_ns) * 1e-9 + idle_s;
}

}  // namespace forktail::serve
