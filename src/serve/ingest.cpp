#include "serve/ingest.hpp"

#include "obs/metrics.hpp"

namespace forktail::serve {

namespace {
struct IngestMetrics {
  obs::Counter& samples = obs::Registry::global().counter("serve.samples");
  obs::Counter& batches = obs::Registry::global().counter("serve.batches");
  obs::Counter& shed = obs::Registry::global().counter("serve.shed");
  obs::Counter& stale_ts =
      obs::Registry::global().counter("serve.wire.rejected.stale_timestamp");
  obs::Counter& clamped =
      obs::Registry::global().counter("serve.clock_clamped");
  obs::Counter& evicted =
      obs::Registry::global().counter("serve.agents.evicted");
  static IngestMetrics& get() {
    static IngestMetrics m;
    return m;
  }
};
}  // namespace

IngestShard::IngestShard(const ShardConfig& config)
    : ring_(config.ring_capacity),
      predictor_(config.local_nodes, config.window_seconds,
                 config.min_samples, config.skew_tolerance),
      liveness_(config.local_nodes) {}

std::size_t IngestShard::submit(std::uint32_t local, const WireBatch& batch) {
  WireBatch queued = batch;
  queued.node = local;
  const std::size_t shed = ring_.push_drop_oldest(queued);
  if (shed != 0) {
    batches_shed_.fetch_add(shed, std::memory_order_relaxed);
    IngestMetrics::get().shed.add(shed);
    // Steady-clock time is not available here (submit runs on the socket
    // reader's hot path); drain() stamps last_shed_s_ when it observes the
    // count moved.  Store a sentinel "shed happened" by bumping the atomic
    // count only -- the stamp below is done by the consumer.
  }
  return shed;
}

std::size_t IngestShard::drain(double now_s) {
  std::size_t drained = 0;
  WireBatch batch;
  while (ring_.try_pop(batch)) {
    ++drained;
    const double t_s = static_cast<double>(batch.timestamp_ns) * 1e-9;
    std::lock_guard<std::mutex> lock(mu_);
    // One timestamp per batch, so the first sample's outcome decides the
    // whole batch: a beyond-tolerance clock jump rejects all of it.
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < batch.count; ++i) {
      const auto outcome = predictor_.record(batch.node, t_s, batch.samples[i]);
      if (outcome == core::RecordOutcome::kRejected) {
        // Counted per datagram, like every other wire.rejected reason (the
        // batch shares one timestamp, so rejection always hits at i == 0).
        stale_rejected_.fetch_add(1, std::memory_order_relaxed);
        IngestMetrics::get().stale_ts.add(1);
        break;
      }
      if (outcome == core::RecordOutcome::kClamped) {
        IngestMetrics::get().clamped.add(1);
      }
      ++accepted;
    }
    if (accepted > 0) {
      samples_ingested_.fetch_add(accepted, std::memory_order_relaxed);
      IngestMetrics::get().samples.add(accepted);
      IngestMetrics::get().batches.add(1);
      liveness_.observe(batch.node, batch.timestamp_ns, now_s);
    }
  }
  // Stamp the shed time whenever this drain observes sheds it has not seen
  // before (sheds happen producer-side, so the consumer back-dates them to
  // the drain that noticed -- at most one drain interval late).
  const std::uint64_t shed_now = batches_shed_.load(std::memory_order_relaxed);
  if (shed_now != shed_seen_) {
    shed_seen_ = shed_now;
    last_shed_s_.store(now_s, std::memory_order_relaxed);
  }
  return drained;
}

void IngestShard::sweep(double now_s, double timeout_s) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto newly_stale = liveness_.sweep(now_s, timeout_s);
  for (const std::size_t node : newly_stale) {
    // Roll the dead agent's window forward in its own time base so its
    // congested last samples age out instead of freezing node_stats.
    predictor_.advance(node, liveness_.estimated_agent_now_s(node, now_s));
    IngestMetrics::get().evicted.add(1);
  }
  // Stale (but not yet revived) nodes keep aging: advance them every sweep
  // so the window actually empties once the timeout has passed.
  for (std::size_t node = 0; node < liveness_.nodes(); ++node) {
    if (liveness_.stale(node)) {
      predictor_.advance(node, liveness_.estimated_agent_now_s(node, now_s));
    }
  }
}

IngestShard::Snapshot IngestShard::snapshot(double now_s) const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.pooled = predictor_.pooled_stats();
    snap.seen_nodes = liveness_.seen_count();
    snap.live_nodes = liveness_.live_count();
    snap.stale_nodes = liveness_.stale_count();
    snap.staleness_ms = liveness_.staleness_ms(now_s);
  }
  snap.batches_shed = batches_shed_.load(std::memory_order_relaxed);
  snap.last_shed_s = last_shed_s_.load(std::memory_order_relaxed);
  snap.queue_depth = ring_.size();
  return snap;
}

}  // namespace forktail::serve
