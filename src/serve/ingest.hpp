// Ingest path of the serve daemon: bounded rings with explicit
// load-shedding, sharded online-predictor windows, and per-agent liveness.
//
// The robustness invariants this layer owns:
//
//   * The socket reader NEVER blocks on a slow consumer and NEVER grows an
//     unbounded queue.  Each shard has a bounded ring; when it is full the
//     producer drops the OLDEST queued batch (freshest data wins -- stale
//     samples were about to age out of the window anyway), counts it in
//     serve.shed, and the degradation surfaces in served predictions.
//   * A dead agent cannot freeze a prediction: the liveness sweep advances
//     idle nodes' windows (the advance()-on-idle-node footgun, fixed at the
//     call site) and marks them stale so predictions degrade with a stated
//     reason instead of serving a frozen congested window.
//   * Backwards agent clocks are absorbed or rejected by the skew-tolerant
//     core::OnlineTailPredictor::record; rejections are counted as
//     serve.wire.rejected.stale_timestamp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "core/online.hpp"
#include "serve/liveness.hpp"
#include "serve/wire.hpp"

namespace forktail::serve {

/// Bounded lock-free FIFO (Vyukov bounded-MPMC layout).  Used as an SPSC
/// ring between the socket reader and one shard worker, with one twist:
/// push_drop_oldest() makes the producer a second (discarding) consumer
/// when the ring is full, which the MPMC cell-sequence protocol supports
/// without locks or producer-side blocking.
template <typename T>
class BoundedQueue {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit BoundedQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy (exact when producer and consumer are quiet).
  std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool try_push(const T& value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = cell->value;
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking push that sheds on overflow: when the ring is full, pop
  /// and discard the OLDEST entries until the new one fits.  Returns the
  /// number shed (0 on a clean push).  Never blocks, never fails: the
  /// bounded-iteration fallback (pathological scheduling only) sheds the
  /// incoming value itself rather than spinning.
  std::size_t push_drop_oldest(const T& value) {
    std::size_t shed = 0;
    // Each failed try_push is followed by freeing one slot, so capacity+1
    // rounds always suffice unless the consumer races us; a couple of
    // extra rounds absorbs that.
    for (std::size_t round = 0; round < capacity() + 4; ++round) {
      if (try_push(value)) return shed;
      T discard;
      if (try_pop(discard)) ++shed;
    }
    return shed + 1;  // shed the incoming value (counted like any other)
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};  // next push position
  alignas(64) std::atomic<std::size_t> head_{0};  // next pop position
};

/// Per-shard ingest configuration (the serve scenario section, resolved).
struct ShardConfig {
  std::size_t local_nodes = 1;     ///< nodes mapped onto this shard
  double window_seconds = 20.0;    ///< sliding window per node
  std::size_t min_samples = 30;    ///< per-window fill threshold
  double skew_tolerance = 0.5;     ///< backwards-clock clamp bound, seconds
  std::size_t ring_capacity = 1024;  ///< bounded batches in flight
};

/// One ingest shard: bounded ring -> skew-tolerant predictor windows with
/// liveness tracking.  submit() is called by the single socket-reader
/// thread, drain()/sweep() by the shard's worker thread, snapshot() by
/// query threads; the predictor + liveness state is mutex-guarded, the
/// ring is lock-free.
class IngestShard {
 public:
  explicit IngestShard(const ShardConfig& config);

  /// Producer side (socket reader): queue one decoded batch for `local`
  /// (shard-local node index).  Returns the number of batches shed to make
  /// room (0 = clean).  Never blocks.
  std::size_t submit(std::uint32_t local, const WireBatch& batch);

  /// Consumer side (shard worker): drain everything currently queued into
  /// the predictor windows.  `now_s` is the receiver's steady-clock time.
  /// Returns the number of batches drained.
  std::size_t drain(double now_s);

  /// Liveness sweep: advance windows of nodes idle for > `timeout_s` (in
  /// the agent's own time base) so node_stats can never serve a frozen
  /// congested window; newly-idle nodes are marked stale and counted.
  void sweep(double now_s, double timeout_s);

  /// Cumulative counts (thread-safe, monotone).
  std::uint64_t samples_ingested() const noexcept {
    return samples_ingested_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches_shed() const noexcept {
    return batches_shed_.load(std::memory_order_relaxed);
  }
  /// Datagrams rejected whole for a beyond-tolerance backwards timestamp.
  std::uint64_t stale_rejected() const noexcept {
    return stale_rejected_.load(std::memory_order_relaxed);
  }

  /// Query-side state snapshot at receiver time `now_s`.
  struct Snapshot {
    core::OnlineTailPredictor::PooledStats pooled;
    std::size_t seen_nodes = 0;   ///< nodes that ever sent a sample
    std::size_t live_nodes = 0;   ///< seen and not stale
    std::size_t stale_nodes = 0;  ///< seen, currently idle past timeout
    double staleness_ms = 0.0;    ///< worst data age among live nodes
    std::uint64_t batches_shed = 0;
    double last_shed_s = -std::numeric_limits<double>::infinity();
    std::size_t queue_depth = 0;
  };
  Snapshot snapshot(double now_s) const;

 private:
  BoundedQueue<WireBatch> ring_;
  // `local` rides in WireBatch::node through the ring (the reader already
  // resolved the global id); kept explicit in submit()'s signature so the
  // mapping stays at one call site.
  mutable std::mutex mu_;
  core::OnlineTailPredictor predictor_;
  LivenessTable liveness_;
  std::atomic<std::uint64_t> samples_ingested_{0};
  std::atomic<std::uint64_t> batches_shed_{0};
  std::atomic<std::uint64_t> stale_rejected_{0};
  std::uint64_t shed_seen_ = 0;  ///< consumer-side; owned by drain()
  std::atomic<double> last_shed_s_{
      -std::numeric_limits<double>::infinity()};
};

}  // namespace forktail::serve
