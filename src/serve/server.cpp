#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/predictor.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/json.hpp"

namespace forktail::serve {

namespace {

/// Query-protocol limits: one framed request is a small JSON document.
constexpr std::size_t kMaxRequestBytes = 64 * 1024;
constexpr std::size_t kMaxHttpHeaderBytes = 8 * 1024;
constexpr std::size_t kMaxConnections = 128;
constexpr int kPollTimeoutMs = 100;

struct ServeMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& datagrams = reg.counter("serve.datagrams");
  obs::Counter& recv_errors = reg.counter("serve.recv_errors");
  obs::Counter& rejected_unknown_node =
      reg.counter("serve.wire.rejected.unknown_node");
  obs::Counter& rejected_unknown_service =
      reg.counter("serve.wire.rejected.unknown_service");
  obs::Counter& queries = reg.counter("serve.queries");
  obs::Counter& queries_degraded = reg.counter("serve.queries.degraded");
  obs::Counter& tcp_conns = reg.counter("serve.tcp.conns");
  obs::Counter& tcp_rejected_conns = reg.counter("serve.tcp.rejected_conns");
  obs::Counter& tcp_bad_frames = reg.counter("serve.tcp.bad_frames");
  obs::Counter& bad_requests = reg.counter("serve.bad_requests");
  obs::Counter& ingest_stalls = reg.counter("serve.ingest_stalls");
  obs::Gauge& stalled = reg.gauge("serve.ingest_stalled");
  obs::Gauge& queue_depth = reg.gauge("serve.queue_depth");
  obs::Gauge& rss_kib = reg.gauge("serve.rss_kib");
  obs::Gauge& peak_rss_kib = reg.gauge("serve.peak_rss_kib");
  obs::Gauge& agents_live = reg.gauge("serve.agents.live");
  obs::Gauge& agents_stale = reg.gauge("serve.agents.stale");
  obs::Gauge& staleness_gauge = reg.gauge("serve.staleness_ms");
  obs::Gauge& uptime = reg.gauge("serve.uptime_s");
  obs::Histogram& query_staleness =
      reg.histogram("serve.query.staleness_ms");
  obs::Counter* wire_rejected[kWireErrorCount] = {};

  ServeMetrics() {
    for (int i = 0; i < static_cast<int>(kWireErrorCount); ++i) {
      const auto err = static_cast<WireError>(i + 1);
      wire_rejected[i] = &reg.counter(std::string("serve.wire.rejected.") +
                                      wire_error_name(err));
    }
  }
  static ServeMetrics& get() {
    static ServeMetrics m;
    return m;
  }
  obs::Counter& wire(WireError err) {
    return *wire_rejected[static_cast<int>(err) - 1];
  }
};

/// VmRSS / VmHWM in KiB from /proc/self/status (0 when unreadable -- the
/// gauges then just stay at zero instead of the watchdog failing).
void read_rss_kib(long& rss, long& peak) {
  rss = 0;
  peak = 0;
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      rss = std::strtol(line.c_str() + 6, nullptr, 10);
    } else if (line.rfind("VmHWM:", 0) == 0) {
      peak = std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
}

/// EINTR-safe close.
void close_fd(int& fd) {
  if (fd >= 0) {
    while (::close(fd) < 0 && errno == EINTR) {
    }
    fd = -1;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

void append_frame(std::string& out, const std::string& body) {
  const auto len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>(len & 0xFF));
  out += body;
}

std::string error_json(const std::string& what) {
  util::Json j = util::Json::object();
  j.set("error", what);
  return j.dump(0);
}

/// One TCP client.  Mode is sniffed from the first four bytes: "GET " means
/// a plain HTTP scrape, anything else the length-prefixed JSON protocol.
struct Conn {
  int fd = -1;
  std::vector<std::uint8_t> in;
  std::string out;
  std::size_t out_off = 0;
  enum class Mode : std::uint8_t { kUnknown, kFramed, kHttp } mode = Mode::kUnknown;
  bool close_after_flush = false;
  bool closed = false;

  bool has_output() const { return out_off < out.size(); }
};

}  // namespace

Server::Server(const ServeConfig& config) : config_(config) {
  if (config_.nodes == 0) {
    throw std::invalid_argument("serve: nodes must be >= 1");
  }
  if (config_.window_seconds <= 0.0) {
    throw std::invalid_argument("serve: window_seconds must be > 0");
  }
  if (config_.liveness_timeout <= 0.0) {
    throw std::invalid_argument("serve: liveness_timeout must be > 0");
  }
  if (config_.shards == 0) config_.shards = 1;
  if (config_.shards > config_.nodes) config_.shards = config_.nodes;
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;

  // Contiguous node -> shard ranges: shard i owns base (+1 for the first
  // `rem` shards) nodes, so global node g maps to a shard and a local
  // index with plain arithmetic held in the two lookup tables.
  const std::size_t base = config_.nodes / config_.shards;
  const std::size_t rem = config_.nodes % config_.shards;
  shard_local_nodes_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    const std::size_t width = base + (s < rem ? 1 : 0);
    shard_local_nodes_.push_back(static_cast<std::uint32_t>(width));
    ShardConfig sc;
    sc.local_nodes = width;
    sc.window_seconds = config_.window_seconds;
    sc.min_samples = config_.min_samples;
    sc.skew_tolerance = config_.skew_tolerance;
    sc.ring_capacity = config_.ring_capacity;
    shards_.push_back(std::make_unique<IngestShard>(sc));
  }
  start_time_ = std::chrono::steady_clock::now();
  ServeMetrics::get();  // pre-register every serve metric at construction
}

Server::~Server() { stop(); }

double Server::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_time_)
      .count();
}

std::uint64_t Server::samples_ingested() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->samples_ingested();
  return total;
}

std::uint64_t Server::batches_shed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->batches_shed();
  return total;
}

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  stop_workers_.store(false, std::memory_order_release);

  // ---- UDP ingest socket: blocking with a receive timeout, so the reader
  // thread wakes to check the stop flag without spinning.
  udp_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (udp_fd_ < 0) {
    throw std::runtime_error(std::string("serve: udp socket: ") +
                             std::strerror(errno));
  }
  const int rcvbuf = 8 * 1024 * 1024;  // best effort; kernel may clamp
  ::setsockopt(udp_fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  timeval tv{};
  tv.tv_usec = 100 * 1000;
  ::setsockopt(udp_fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.udp_port);
  if (::bind(udp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    close_fd(udp_fd_);
    throw std::runtime_error("serve: udp bind port " +
                             std::to_string(config_.udp_port) + ": " + why);
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(udp_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  udp_port_ = ntohs(addr.sin_port);

  // ---- TCP query socket: non-blocking, poll()-driven.
  tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (tcp_fd_ < 0) {
    const std::string why = std::strerror(errno);
    close_fd(udp_fd_);
    throw std::runtime_error(std::string("serve: tcp socket: ") + why);
  }
  const int one = 1;
  ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in taddr{};
  taddr.sin_family = AF_INET;
  taddr.sin_addr.s_addr = htonl(INADDR_ANY);
  taddr.sin_port = htons(config_.tcp_port);
  if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&taddr), sizeof(taddr)) < 0 ||
      ::listen(tcp_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    close_fd(udp_fd_);
    close_fd(tcp_fd_);
    throw std::runtime_error("serve: tcp bind/listen port " +
                             std::to_string(config_.tcp_port) + ": " + why);
  }
  set_nonblocking(tcp_fd_);
  socklen_t tlen = sizeof(taddr);
  ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&taddr), &tlen);
  tcp_port_ = ntohs(taddr.sin_port);

  start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { reader_loop(); });
  workers_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
  query_ = std::thread([this] { query_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void Server::stop() {
  bool was_running = true;
  if (!running_.compare_exchange_strong(was_running, false)) return;

  // Drain order: silence the producer first, then let the workers flush
  // whatever is left in the rings, then take down the query/watchdog side.
  stop_.store(true, std::memory_order_release);
  if (reader_.joinable()) reader_.join();
  close_fd(udp_fd_);

  stop_workers_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  if (query_.joinable()) query_.join();
  if (watchdog_.joinable()) watchdog_.join();
  close_fd(tcp_fd_);
  refresh_gauges();
}

// ---------------------------------------------------------------- reader

void Server::reader_loop() {
  auto& metrics = ServeMetrics::get();
  std::vector<std::uint8_t> buf(kMaxDatagramBytes + 512);

  // Shard lookup tables (contiguous ranges, see constructor).
  std::vector<std::uint32_t> node_shard(config_.nodes);
  std::vector<std::uint32_t> node_local(config_.nodes);
  std::size_t next = 0;
  for (std::size_t s = 0; s < shard_local_nodes_.size(); ++s) {
    for (std::uint32_t l = 0; l < shard_local_nodes_[s]; ++l, ++next) {
      node_shard[next] = static_cast<std::uint32_t>(s);
      node_local[next] = l;
    }
  }

  while (!stop_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recvfrom(udp_fd_, buf.data(), buf.size(), 0, nullptr,
                                 nullptr);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // signal or receive-timeout tick; re-check stop flag
      }
      if (stop_.load(std::memory_order_acquire)) break;
      metrics.recv_errors.add(1);
      continue;
    }
    metrics.datagrams.add(1);
    WireBatch batch;
    const WireError err = decode(buf.data(), static_cast<std::size_t>(n), batch);
    if (err != WireError::kNone) {
      metrics.wire(err).add(1);
      continue;
    }
    if (batch.service != config_.service) {
      metrics.rejected_unknown_service.add(1);
      continue;
    }
    if (batch.node >= config_.nodes) {
      metrics.rejected_unknown_node.add(1);
      continue;
    }
    shards_[node_shard[batch.node]]->submit(node_local[batch.node], batch);
  }
}

// ---------------------------------------------------------------- workers

void Server::worker_loop(std::size_t shard) {
  IngestShard& s = *shards_[shard];
  double next_sweep = 0.0;
  for (;;) {
    const bool stopping = stop_workers_.load(std::memory_order_acquire);
    const double now = now_s();
    const std::size_t drained = s.drain(now);
    if (config_.drain_throttle_us > 0 && drained > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::uint64_t>(config_.drain_throttle_us) * drained));
    }
    if (now >= next_sweep) {
      s.sweep(now, config_.liveness_timeout);
      next_sweep = now + config_.sweep_interval;
    }
    if (drained == 0) {
      if (stopping) break;  // reader already joined: the ring is flushed
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }
}

// ------------------------------------------------------------- predictions

Server::Prediction Server::predict(double p, double k) const {
  auto& metrics = ServeMetrics::get();
  const double now = now_s();

  Prediction pred;
  pred.p = p;

  // Merge the per-shard pooled moments with the standard combine law.
  double count = 0.0, mean = 0.0, m2 = 0.0;
  std::uint64_t shed = 0;
  bool shed_recent = false;
  for (const auto& shard : shards_) {
    const auto snap = shard->snapshot(now);
    pred.filled_nodes += snap.pooled.filled_nodes;
    pred.seen_nodes += snap.seen_nodes;
    pred.live_nodes += snap.live_nodes;
    pred.stale_nodes += snap.stale_nodes;
    pred.staleness_ms = std::max(pred.staleness_ms, snap.staleness_ms);
    shed += snap.batches_shed;
    if (snap.last_shed_s >= now - config_.window_seconds) shed_recent = true;
    if (snap.pooled.count > 0.0) {
      const double c = snap.pooled.count;
      count += c;
      mean += c * snap.pooled.mean;
      m2 += c * (snap.pooled.variance +
                 snap.pooled.mean * snap.pooled.mean);
    }
  }
  if (count > 0.0) {
    mean /= count;
    m2 = m2 / count - mean * mean;
    if (m2 < 0.0) m2 = 0.0;  // combine-law rounding
  }

  if (!(p > 0.0 && p < 100.0)) {
    pred.served = false;
    pred.degraded = true;
    pred.reasons.push_back("invalid_percentile");
  } else if (pred.filled_nodes == 0) {
    pred.served = false;
    pred.degraded = true;
    pred.reasons.push_back("no_data");
  } else {
    double kk = k > 0.0 ? k : config_.default_k;
    if (kk <= 0.0) {
      kk = static_cast<double>(pred.live_nodes > 0 ? pred.live_nodes
                                                   : pred.filled_nodes);
    }
    pred.k = kk;
    if (m2 <= 0.0) {
      // Zero-variance window (every sample identical): the GE fit would be
      // degenerate, but the answer is exact -- serve the mean, say why.
      pred.quantile_ms = mean;
      pred.served = true;
      pred.reasons.push_back("zero_variance");
    } else {
      try {
        pred.quantile_ms =
            core::homogeneous_quantile({mean, m2}, kk, p);
        pred.served = true;
      } catch (const std::exception&) {
        pred.served = false;
        pred.reasons.push_back("fit_failed");
      }
    }
    if (pred.filled_nodes < pred.seen_nodes) {
      pred.reasons.push_back("underfilled_windows");
    }
    if (pred.stale_nodes > 0) pred.reasons.push_back("stale_agents");
    if (shed_recent) pred.reasons.push_back("recent_shed");
    (void)shed;
    pred.degraded = !pred.reasons.empty();
  }

  metrics.queries.add(1);
  if (pred.degraded) {
    metrics.queries_degraded.add(1);
    any_degraded_.store(true, std::memory_order_relaxed);
  }
  metrics.query_staleness.record(pred.staleness_ms);
  return pred;
}

void Server::refresh_gauges() const {
  auto& metrics = ServeMetrics::get();
  const double now = now_s();
  std::size_t depth = 0, live = 0, stale = 0;
  double staleness = 0.0;
  for (const auto& shard : shards_) {
    const auto snap = shard->snapshot(now);
    depth += snap.queue_depth;
    live += snap.live_nodes;
    stale += snap.stale_nodes;
    staleness = std::max(staleness, snap.staleness_ms);
  }
  metrics.queue_depth.set(static_cast<double>(depth));
  metrics.agents_live.set(static_cast<double>(live));
  metrics.agents_stale.set(static_cast<double>(stale));
  metrics.staleness_gauge.set(staleness);
  metrics.uptime.set(now);
  long rss = 0, peak = 0;
  read_rss_kib(rss, peak);
  if (rss > 0) metrics.rss_kib.set(static_cast<double>(rss));
  if (peak > 0) metrics.peak_rss_kib.set(static_cast<double>(peak));
}

std::string Server::scrape() const {
  refresh_gauges();
  return obs::RunReport::capture(obs::Registry::global(), "forktail serve",
                                 config_.scenario_name,
                                 any_degraded_.load(std::memory_order_relaxed))
      .to_prometheus();
}

// ---------------------------------------------------------------- watchdog

void Server::watchdog_loop() {
  auto& metrics = ServeMetrics::get();
  std::uint64_t last_samples = samples_ingested();
  double last_change_s = now_s();
  bool stalled = false;
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    refresh_gauges();
    const std::uint64_t cur = samples_ingested();
    const double now = now_s();
    if (cur != last_samples) {
      last_samples = cur;
      last_change_s = now;
      if (stalled) {
        stalled = false;
        metrics.stalled.set(0.0);
        std::fprintf(stderr, "forktail serve: ingest recovered after stall\n");
      }
    } else if (!stalled && cur > 0 &&
               now - last_change_s > config_.stall_threshold) {
      stalled = true;
      metrics.stalled.set(1.0);
      metrics.ingest_stalls.add(1);
      std::fprintf(stderr,
                   "forktail serve: ingest stalled (no samples for %.1f s)\n",
                   now - last_change_s);
    }
  }
}

// ------------------------------------------------------------- query plane

std::string Server::handle_request(const std::string& body) {
  auto& metrics = ServeMetrics::get();
  try {
    const util::Json req = util::Json::parse(body);
    if (!req.is_object() || !req.contains("op") ||
        !req.at("op").is_string()) {
      metrics.bad_requests.add(1);
      return error_json("request must be an object with a string \"op\"");
    }
    const std::string& op = req.at("op").as_string();
    if (op == "ping") {
      util::Json j = util::Json::object();
      j.set("ok", true);
      j.set("uptime_s", now_s());
      return j.dump(0);
    }
    if (op == "predict") {
      const double p = req.contains("p") ? req.at("p").as_number() : 99.0;
      const double k = req.contains("k") ? req.at("k").as_number() : 0.0;
      const Prediction pred = predict(p, k);
      util::Json j = util::Json::object();
      j.set("served", pred.served);
      if (pred.served) j.set("quantile_ms", pred.quantile_ms);
      j.set("p", pred.p);
      j.set("k", pred.k);
      j.set("staleness_ms", pred.staleness_ms);
      j.set("degraded", pred.degraded);
      util::Json reasons = util::Json::array();
      for (const auto& reason : pred.reasons) reasons.push_back(reason);
      j.set("reasons", std::move(reasons));
      j.set("filled_nodes", static_cast<std::uint64_t>(pred.filled_nodes));
      j.set("seen_nodes", static_cast<std::uint64_t>(pred.seen_nodes));
      j.set("live_nodes", static_cast<std::uint64_t>(pred.live_nodes));
      j.set("stale_nodes", static_cast<std::uint64_t>(pred.stale_nodes));
      j.set("ingested_samples", samples_ingested());
      j.set("shed_batches", batches_shed());
      return j.dump(0);
    }
    if (op == "report") {
      refresh_gauges();
      return obs::RunReport::capture(
                 obs::Registry::global(), "forktail serve",
                 config_.scenario_name,
                 any_degraded_.load(std::memory_order_relaxed))
          .to_json();
    }
    if (op == "stats") {
      const double now = now_s();
      util::Json shards = util::Json::array();
      for (const auto& shard : shards_) {
        const auto snap = shard->snapshot(now);
        util::Json s = util::Json::object();
        s.set("filled_nodes",
              static_cast<std::uint64_t>(snap.pooled.filled_nodes));
        s.set("seen_nodes", static_cast<std::uint64_t>(snap.seen_nodes));
        s.set("live_nodes", static_cast<std::uint64_t>(snap.live_nodes));
        s.set("stale_nodes", static_cast<std::uint64_t>(snap.stale_nodes));
        s.set("staleness_ms", snap.staleness_ms);
        s.set("samples", shard->samples_ingested());
        s.set("shed_batches", snap.batches_shed);
        s.set("stale_rejected", shard->stale_rejected());
        s.set("queue_depth", static_cast<std::uint64_t>(snap.queue_depth));
        shards.push_back(std::move(s));
      }
      util::Json j = util::Json::object();
      j.set("shards", std::move(shards));
      j.set("uptime_s", now);
      return j.dump(0);
    }
    metrics.bad_requests.add(1);
    return error_json("unknown op \"" + op + "\"");
  } catch (const std::exception& e) {
    // Parse errors and type mismatches inside a well-framed request are a
    // client bug, not a framing loss: answer with a typed error and keep
    // the connection (framing is still in sync).
    metrics.bad_requests.add(1);
    return error_json(e.what());
  }
}

namespace {

/// Drive one connection's input buffer as far as it goes.  Returns false
/// when the connection hit a framing-level error and must close (after the
/// error response flushes) -- the stated resync story: framing state is
/// per-connection, so the client reconnects to resynchronize.
bool process_input(Conn& conn, Server& server,
                   const std::function<std::string(const std::string&)>& handle) {
  auto& metrics = ServeMetrics::get();
  for (;;) {
    if (conn.mode == Conn::Mode::kUnknown) {
      if (conn.in.size() < 4) return true;
      conn.mode = std::memcmp(conn.in.data(), "GET ", 4) == 0
                      ? Conn::Mode::kHttp
                      : Conn::Mode::kFramed;
    }
    if (conn.mode == Conn::Mode::kHttp) {
      // Wait for the end of the request head, answer with the scrape, close.
      static const std::uint8_t kCrlf2[] = {'\r', '\n', '\r', '\n'};
      const auto it = std::search(conn.in.begin(), conn.in.end(),
                                  std::begin(kCrlf2), std::end(kCrlf2));
      if (it == conn.in.end()) {
        if (conn.in.size() > kMaxHttpHeaderBytes) {
          conn.close_after_flush = true;
          return false;
        }
        return true;
      }
      const std::string page = server.scrape();
      conn.out += "HTTP/1.1 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                  "Content-Length: " + std::to_string(page.size()) + "\r\n"
                  "Connection: close\r\n\r\n";
      conn.out += page;
      conn.in.clear();
      conn.close_after_flush = true;
      return true;
    }
    // Length-prefixed framing: 4-byte big-endian length, then the JSON body.
    if (conn.in.size() < 4) return true;
    const std::uint32_t len = (static_cast<std::uint32_t>(conn.in[0]) << 24) |
                              (static_cast<std::uint32_t>(conn.in[1]) << 16) |
                              (static_cast<std::uint32_t>(conn.in[2]) << 8) |
                              static_cast<std::uint32_t>(conn.in[3]);
    if (len == 0 || len > kMaxRequestBytes) {
      metrics.tcp_bad_frames.add(1);
      append_frame(conn.out, error_json("bad frame length " +
                                        std::to_string(len)));
      conn.close_after_flush = true;
      return false;
    }
    if (conn.in.size() < 4 + static_cast<std::size_t>(len)) return true;
    const std::string body(conn.in.begin() + 4, conn.in.begin() + 4 + len);
    conn.in.erase(conn.in.begin(), conn.in.begin() + 4 + len);
    append_frame(conn.out, handle(body));
  }
}

/// Flush as much buffered output as the socket accepts (partial writes keep
/// the remainder; EINTR retries; EAGAIN waits for the next POLLOUT).
void flush_output(Conn& conn) {
  while (conn.has_output()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn.closed = true;  // hard error or peer gone
    return;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) conn.closed = true;
  }
}

}  // namespace

void Server::query_loop() {
  auto& metrics = ServeMetrics::get();
  std::vector<Conn> conns;
  const auto handle = [this](const std::string& body) {
    return handle_request(body);
  };

  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back({tcp_fd_, POLLIN, 0});
    for (const Conn& conn : conns) {
      short events = POLLIN;
      if (conn.has_output()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Connections accepted below were not part of this poll; only the
    // first `polled` entries of conns have a matching fds[i + 1].
    const std::size_t polled = conns.size();

    // New connections (bounded; beyond the cap: accept, count, close).
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int cfd = ::accept(tcp_fd_, nullptr, nullptr);
        if (cfd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN or transient error: back to poll
        }
        if (conns.size() >= kMaxConnections) {
          metrics.tcp_rejected_conns.add(1);
          int tmp = cfd;
          close_fd(tmp);
          continue;
        }
        set_nonblocking(cfd);
        metrics.tcp_conns.add(1);
        Conn conn;
        conn.fd = cfd;
        conns.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < polled; ++i) {
      Conn& conn = conns[i];
      const short revents = fds[i + 1].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer gone; flush what we can and drop it.
        flush_output(conn);
        conn.closed = true;
      }
      if (!conn.closed && (revents & POLLIN)) {
        std::uint8_t chunk[4096];
        for (;;) {
          const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
          if (n > 0) {
            if (conn.in.size() + static_cast<std::size_t>(n) >
                kMaxRequestBytes + kMaxHttpHeaderBytes) {
              metrics.tcp_bad_frames.add(1);
              conn.closed = true;  // buffer bound: a client that never frames
              break;
            }
            conn.in.insert(conn.in.end(), chunk, chunk + n);
            continue;
          }
          if (n == 0) {
            conn.closed = conn.in.empty() && !conn.has_output();
            conn.close_after_flush = true;  // half-close: answer, then drop
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          conn.closed = true;
          break;
        }
        if (!conn.closed) {
          process_input(conn, *this, handle);
        }
      }
      if (!conn.closed) flush_output(conn);
    }

    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](Conn& conn) {
                                 if (conn.closed) {
                                   close_fd(conn.fd);
                                   return true;
                                 }
                                 return false;
                               }),
                conns.end());
  }

  for (Conn& conn : conns) close_fd(conn.fd);
}

}  // namespace forktail::serve
