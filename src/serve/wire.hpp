// forktail.wire.v1: the agent -> daemon datagram format.
//
// One UDP datagram carries one batch of task-response samples from one
// fork node.  The format is fixed-layout little-endian binary (agents are
// statically-linked C on the same byte order as the fleet; the fslatency
// exemplar's diskless-UDP shape):
//
//   offset  size  field
//   0       4     magic 0x464B5431 ("FKT1" read as LE u32 bytes '1TKF')
//   4       2     version (currently 1)
//   6       2     service id (which logical service the node belongs to)
//   8       4     node id
//   12      8     timestamp_ns -- the agent's MONOTONIC clock at batch
//                 close, nanoseconds; per-node non-decreasing modulo skew
//   20      2     sample count m, 1..kMaxSamplesPerDatagram
//   22      2     reserved, must be zero
//   24      8*m   samples: IEEE-754 f64 response times, milliseconds
//   24+8m   4     checksum: FNV-1a 32 over bytes [0, 24+8m)
//
// An always-on daemon is only as good as its worst input, so decode() is
// total: every way a datagram can be malformed maps to a typed WireError
// (counted as serve.wire.rejected.<reason> by the ingest layer), and an
// accepted batch is guaranteed well-formed -- in-range count, finite
// non-negative samples.  Nothing here throws and nothing reads past `len`.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace forktail::serve {

inline constexpr std::uint32_t kWireMagic = 0x464B5431;  // "FKT1"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 24;
inline constexpr std::size_t kWireChecksumBytes = 4;
/// Batch-size cap: 256 samples keeps the biggest datagram (2076 bytes)
/// comfortably inside one unfragmented UDP payload on loopback and typical
/// jumbo-less LANs while amortising the per-datagram syscall over enough
/// samples for million-per-second ingest.
inline constexpr std::size_t kMaxSamplesPerDatagram = 256;
inline constexpr std::size_t kMaxDatagramBytes =
    kWireHeaderBytes + 8 * kMaxSamplesPerDatagram + kWireChecksumBytes;

/// Why a datagram was rejected (serve.wire.rejected.<reason>).  The wire
/// layer can only see per-datagram problems; unknown-node and
/// stale-timestamp rejection happens in the ingest layer, which knows the
/// fleet and the per-node clock history.
enum class WireError : std::uint8_t {
  kNone = 0,
  kTruncated,   ///< shorter than the header, or length != 28 + 8 * count
  kBadMagic,    ///< first four bytes are not FKT1
  kBadVersion,  ///< unsupported version, or reserved field nonzero
  kBadCount,    ///< sample count 0 or > kMaxSamplesPerDatagram
  kChecksum,    ///< FNV-1a mismatch (bit rot, torn write, wrong framing)
  kBadSample,   ///< a sample is NaN, infinite, or negative
};

/// Stable lower-snake name for metrics / logs ("truncated", "bad_magic",
/// "bad_version", "bad_count", "checksum", "bad_sample"; kNone -> "none").
const char* wire_error_name(WireError error) noexcept;
inline constexpr std::size_t kWireErrorCount = 6;  ///< excluding kNone

/// One decoded (or to-be-encoded) batch.  `samples[0..count)` are valid.
struct WireBatch {
  std::uint16_t service = 0;
  std::uint32_t node = 0;
  std::uint64_t timestamp_ns = 0;
  std::uint16_t count = 0;
  std::array<double, kMaxSamplesPerDatagram> samples{};
};

/// FNV-1a 32-bit over `len` bytes.
std::uint32_t wire_checksum(const std::uint8_t* data, std::size_t len) noexcept;

/// Encode `batch` into `out` (capacity `cap`); returns the number of bytes
/// written, or 0 when the batch is invalid (count out of range, bad
/// samples) or the buffer too small.  An encode that returns nonzero is
/// guaranteed to decode() back to an equal batch.
std::size_t encode(const WireBatch& batch, std::uint8_t* out,
                   std::size_t cap) noexcept;
/// Convenience allocation-based encode; empty vector on invalid batch.
std::vector<std::uint8_t> encode(const WireBatch& batch);

/// Decode `len` bytes into `out`.  Returns kNone and fills `out` on
/// success; otherwise returns the (first) rejection reason and leaves
/// `out` unspecified.  Never reads past `data + len`, never throws.
WireError decode(const std::uint8_t* data, std::size_t len,
                 WireBatch& out) noexcept;

}  // namespace forktail::serve
