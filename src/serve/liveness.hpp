// Per-agent liveness tracking for the serve daemon.
//
// Each fork node is fed by one agent.  Agents die (crash, partition,
// kill -9) and their last samples -- often the congested ones that made
// them die -- would otherwise sit in the prediction window forever.  The
// liveness table watches per-node arrival times on the RECEIVER's steady
// clock and, past a timeout, reports the node stale so the owner can
// advance() its window in the agent's own time base and predictions can
// degrade with a stated reason instead of lying.
//
// Two clock domains, deliberately:
//   * agent time (timestamp_ns from the wire) orders samples within a
//     node's window;
//   * receiver steady time decides liveness and staleness, because a dead
//     agent by definition stops advancing its own clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace forktail::serve {

class LivenessTable {
 public:
  explicit LivenessTable(std::size_t nodes);

  std::size_t nodes() const noexcept { return entries_.size(); }

  /// A batch for `node`, stamped `agent_ns`, arrived at receiver steady
  /// time `now_s`.  Re-arrival of a stale node revives it.
  void observe(std::size_t node, std::uint64_t agent_ns, double now_s);

  /// Mark nodes idle for more than `timeout_s` stale.  Returns the node
  /// indices that JUST transitioned live -> stale this sweep (each exactly
  /// once per staleness episode), so the caller can advance their windows.
  std::vector<std::size_t> sweep(double now_s, double timeout_s);

  bool seen(std::size_t node) const { return entries_[node].seen; }
  bool stale(std::size_t node) const { return entries_[node].stale; }

  std::size_t seen_count() const noexcept { return seen_count_; }
  std::size_t stale_count() const noexcept { return stale_count_; }
  std::size_t live_count() const noexcept { return seen_count_ - stale_count_; }

  /// Worst data age (ms at receiver time `now_s`) among LIVE nodes; 0 when
  /// no node is live.  Stale nodes are excluded -- their absence is
  /// reported through the stale count / degradation reason, not by letting
  /// one dead agent pin staleness at infinity.
  double staleness_ms(double now_s) const;

  /// The agent-clock "now" estimate for `node`: its last reported
  /// timestamp plus the receiver-side idle time.  This is the eviction
  /// horizon for advancing a dead node's window (assumes comparable clock
  /// rates, which is all we need -- the window only has to roll forward).
  double estimated_agent_now_s(std::size_t node, double now_s) const;

  std::uint64_t last_agent_ns(std::size_t node) const {
    return entries_[node].last_agent_ns;
  }

 private:
  struct Entry {
    std::uint64_t last_agent_ns = 0;
    double last_seen_s = 0.0;  ///< receiver steady clock
    bool seen = false;
    bool stale = false;
  };
  std::vector<Entry> entries_;
  std::size_t seen_count_ = 0;
  std::size_t stale_count_ = 0;
};

}  // namespace forktail::serve
