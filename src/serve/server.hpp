// serve::Server -- the always-on prediction daemon.
//
// Thread model (all spawned by start(), joined by stop()):
//
//   reader    -- one blocking-with-timeout UDP socket loop; decodes
//                forktail.wire.v1 datagrams, counts every rejection with a
//                typed reason, and routes accepted batches to their shard's
//                bounded ring.  Never blocks on a slow consumer (the ring
//                sheds, it does not grow) and never crashes on bad input.
//   workers   -- one per shard; drain the ring into the skew-tolerant
//                predictor windows and run the periodic liveness sweep.
//   query     -- one poll() loop serving the TCP request protocol
//                (4-byte big-endian length + JSON request, same framing
//                back) and plain HTTP GET -> Prometheus text scrape on the
//                same port.  Partial reads/writes and EINTR are handled;
//                an unparseable frame gets a typed error response and the
//                connection is closed (the resync story: framing state is
//                per-connection, so reconnect == resync).
//   watchdog  -- samples RSS into gauges, mirrors queue depth / liveness
//                gauges, and self-reports ingest stalls (no accepted
//                datagram for stall_threshold seconds while previously
//                ingesting) via the serve.ingest_stalled gauge + one
//                stderr line per episode.
//
// Predictions never refuse while any window has data: they degrade with
// stated reasons (underfilled windows, shed data, stale agents) and carry
// staleness_ms, following the PR 5/PR 9 degradation idiom.  stop() drains
// cleanly: reader first, then a final ring flush, then workers and query.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/ingest.hpp"

namespace forktail::serve {

struct ServeConfig {
  std::uint16_t udp_port = 0;  ///< sample ingest; 0 = ephemeral
  std::uint16_t tcp_port = 0;  ///< query + scrape; 0 = ephemeral
  std::uint16_t service = 0;   ///< wire service id this daemon serves
  std::size_t nodes = 64;      ///< fleet width (valid node ids [0, nodes))
  std::size_t shards = 2;      ///< ingest shards (worker threads)
  double window_seconds = 20.0;
  std::size_t min_samples = 30;
  double skew_tolerance = 0.5;      ///< backwards-clock clamp bound, seconds
  std::size_t ring_capacity = 1024; ///< batches per shard ring (shed bound)
  double liveness_timeout = 60.0;   ///< idle seconds before an agent is stale
  double sweep_interval = 0.5;      ///< liveness sweep cadence, seconds
  double stall_threshold = 5.0;     ///< watchdog ingest-stall horizon, seconds
  double default_k = 0.0;           ///< fan-out for queries (0 = live nodes)
  /// Test/CI knob: microseconds the shard worker sleeps per drained batch,
  /// simulating a slow consumer so overload shedding can be exercised
  /// deterministically.  0 (the default) disables it.
  std::uint32_t drain_throttle_us = 0;
  std::string scenario_name;  ///< label stamped into RunReports
};

class Server {
 public:
  explicit Server(const ServeConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind both sockets and spawn the thread set.  Throws
  /// std::runtime_error when a socket cannot be bound.
  void start();

  /// Clean drain: stop the reader, flush every shard ring, stop workers,
  /// close query connections.  Idempotent; also run by the destructor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Actual bound ports (valid after start(); useful with port 0).
  std::uint16_t udp_port() const noexcept { return udp_port_; }
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  /// One served prediction (the TCP "predict" op returns exactly this).
  struct Prediction {
    bool served = false;       ///< false only when no window has any data
    double quantile_ms = 0.0;
    double p = 99.0;
    double k = 0.0;
    double staleness_ms = 0.0; ///< worst live-agent data age at query time
    bool degraded = false;
    std::vector<std::string> reasons;  ///< stated degradation reasons
    std::size_t filled_nodes = 0;
    std::size_t seen_nodes = 0;
    std::size_t live_nodes = 0;
    std::size_t stale_nodes = 0;
  };
  /// Thread-safe; usable in-process (tests) and from the query protocol.
  /// `k` <= 0 falls back to config.default_k, then to the live node count.
  Prediction predict(double p, double k = 0.0) const;

  /// Prometheus text exposition of the global registry (the HTTP scrape
  /// body), with the serve gauges refreshed first.
  std::string scrape() const;

  /// True once any prediction was served degraded (stamped into the final
  /// RunReport by the CLI).
  bool any_degraded() const noexcept {
    return any_degraded_.load(std::memory_order_relaxed);
  }

  /// Cumulative accepted samples across shards.
  std::uint64_t samples_ingested() const noexcept;
  std::uint64_t batches_shed() const noexcept;

  /// Seconds since start() on the receiver's steady clock.
  double now_s() const;

 private:
  void reader_loop();
  void worker_loop(std::size_t shard);
  void query_loop();
  void watchdog_loop();
  void refresh_gauges() const;
  std::string handle_request(const std::string& body);

  ServeConfig config_;
  std::vector<std::unique_ptr<IngestShard>> shards_;
  std::vector<std::uint32_t> shard_local_nodes_;  ///< per-shard width

  int udp_fd_ = -1;
  int tcp_fd_ = -1;
  std::uint16_t udp_port_ = 0;
  std::uint16_t tcp_port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stop_workers_{false};  ///< set after the reader joined
  std::atomic<bool> running_{false};
  mutable std::atomic<bool> any_degraded_{false};  ///< predict() is const
  std::thread reader_;
  std::vector<std::thread> workers_;
  std::thread query_;
  std::thread watchdog_;
  std::chrono::steady_clock::time_point start_time_{};
};

}  // namespace forktail::serve
