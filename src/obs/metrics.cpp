#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>

namespace forktail::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (const Bucket& b : buckets) {
    const double next = cum + static_cast<double>(b.count);
    if (next >= target) {
      if (!std::isfinite(b.hi)) return max;  // overflow bucket
      const double frac =
          b.count > 0 ? (target - cum) / static_cast<double>(b.count) : 0.0;
      const double x = b.lo + frac * (b.hi - b.lo);
      return std::clamp(x, min, max);
    }
    cum = next;
  }
  return max;
}

#if FORKTAIL_OBS_ENABLED

std::size_t Histogram::bucket_index(double v) noexcept {
  // Octave E (2^E <= v < 2^(E+1)) and a linear sub-bucket inside it, both
  // from frexp alone -- no log() on the recording path.
  if (!(v > 0.0)) return 0;  // <= 0 and NaN land in the underflow bucket
  int e;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  const int octave = e - 1;
  if (octave < kHistMinExp) return 0;
  if (octave >= kHistMaxExp) return kHistBuckets - 1;
  const auto sub = static_cast<std::size_t>((m - 0.5) * 2.0 *
                                            static_cast<double>(kHistSubBuckets));
  return static_cast<std::size_t>(octave - kHistMinExp) * kHistSubBuckets +
         std::min<std::size_t>(sub, kHistSubBuckets - 1) + 1;
}

double Histogram::bucket_upper_bound(std::size_t i) noexcept {
  if (i == 0) return std::ldexp(1.0, kHistMinExp);
  if (i >= kHistBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t j = i - 1;
  const int octave = kHistMinExp + static_cast<int>(j / kHistSubBuckets);
  const auto sub = static_cast<double>(j % kHistSubBuckets);
  return std::ldexp(1.0 + (sub + 1.0) / kHistSubBuckets, octave);
}

namespace {
double bucket_lower_bound(std::size_t i) noexcept {
  return i == 0 ? 0.0 : Histogram::bucket_upper_bound(i - 1);
}

void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

void Histogram::record(double v) noexcept {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c > 0) {
      s.buckets.push_back({bucket_lower_bound(i), bucket_upper_bound(i), c});
    }
  }
  return s;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Registry

// std::map keeps names sorted (stable snapshot/report order) and -- unlike
// unordered_map -- never invalidates references to mapped values, so the
// Counter&/Gauge&/Histogram& handed out stay valid as the maps grow.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return it->second;
  return impl_->counters[std::string(name)];
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return it->second;
  return impl_->gauges[std::string(name)];
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return it->second;
  return impl_->histograms[std::string(name)];
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard lock(impl_->mutex);
  Snapshot s;
  s.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) {
    s.counters.emplace_back(name, c.value());
  }
  s.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) {
    s.gauges.emplace_back(name, g.value());
  }
  s.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    s.histograms.emplace_back(name, h.snapshot());
  }
  return s;
}

void Registry::reset() {
  std::lock_guard lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
}

Registry& Registry::global() {
  // Leaked intentionally: instrumentation in other static objects
  // (e.g. the global thread pool's workers) may record during shutdown.
  static auto* registry = new Registry();
  return *registry;
}

#endif  // FORKTAIL_OBS_ENABLED

}  // namespace forktail::obs
