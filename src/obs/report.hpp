// RunReport: a serializable snapshot of a metrics Registry.
//
// Two output formats:
//   * JSON -- the stable, versioned schema downstream tooling parses
//     (schema id "forktail.run_report.v1"; see docs/observability.md and
//     tests/test_report_schema.cpp, which pins the key set).
//   * Prometheus text exposition -- counters as `forktail_<name> value`,
//     gauges likewise, histograms as `_bucket{le=...}` / `_sum` / `_count`
//     series, for scraping via a textfile collector.
//
// `write()` dispatches on the path extension: ".prom" emits the Prometheus
// dump, anything else the JSON document.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace forktail::obs {

/// Bump when the JSON document's structure changes; the schema regression
/// test pins the key set for the current version.
inline constexpr int kRunReportVersion = 1;

class RunReport {
 public:
  /// Snapshot `registry` now.  `tool` identifies the producing command
  /// (e.g. "forktail bench") in the emitted document; `scenario` optionally
  /// names the scenario the run executed (`forktail run` passes the spec's
  /// name).  An empty scenario is omitted from the document, so documents
  /// without one keep the exact v1 key set.  `degraded` marks runs whose
  /// predictions fell back on approximations (see docs/robustness.md);
  /// false is likewise omitted, preserving the v1 key set for clean runs.
  static RunReport capture(const Registry& registry, std::string tool,
                           std::string scenario = "", bool degraded = false);

  std::string to_json() const;
  std::string to_prometheus() const;

  /// Write to `path` (format by extension, see file comment).  Throws
  /// std::runtime_error when the file cannot be opened.
  void write(const std::string& path) const;

  const Registry::Snapshot& snapshot() const noexcept { return snapshot_; }
  const std::string& tool() const noexcept { return tool_; }
  const std::string& scenario() const noexcept { return scenario_; }
  bool degraded() const noexcept { return degraded_; }

 private:
  std::string tool_;
  std::string scenario_;
  bool degraded_ = false;
  Registry::Snapshot snapshot_;
};

}  // namespace forktail::obs
