// Runtime observability: a lock-cheap metrics registry.
//
// The paper's operating point is *online* prediction -- microsecond
// latencies trusted at the 99th percentile -- which means the runtime
// itself has to be measurable: where do events, samples, and time go
// inside a sweep or a replay?  This header provides the three classic
// primitives plus scoped wall-clock spans:
//
//   * Counter   -- monotonically increasing u64, relaxed atomic add.
//   * Gauge     -- last-written / maximum double, CAS-based.
//   * Histogram -- fixed log2-linear buckets over positive doubles with
//                  tail-quantile estimation (p50/p95/p99/...); every
//                  recording is a handful of relaxed atomics.
//   * ScopedSpan / SpanTimer -- RAII wall-clock duration into a Histogram.
//
// Instrumented call sites cache the metric reference once:
//
//   static obs::Counter& tasks = obs::Registry::global().counter("fjsim.tasks");
//   tasks.add(n);
//
// so the registry's mutex is only touched at first use per call site.
//
// Compile-out: configuring with -DFORKTAIL_OBS=OFF defines
// FORKTAIL_OBS_ENABLED=0 and swaps every class for a no-op stub with the
// identical API; instrumented code compiles unchanged and the optimizer
// deletes it.  Wrap any timing/clock reads in `if constexpr
// (obs::enabled())` so disabled builds also skip the clock calls.
//
// Determinism note: metrics observe, they never feed back into simulation
// state or RNG streams, so the bit-identity contracts (batched vs scalar
// replay, --threads invariance) are unaffected by construction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#ifndef FORKTAIL_OBS_ENABLED
#define FORKTAIL_OBS_ENABLED 1
#endif

namespace forktail::obs {

/// True when the library was built with instrumentation compiled in.
inline constexpr bool enabled() { return FORKTAIL_OBS_ENABLED != 0; }

/// Histogram bucket layout: log2-linear (HdrHistogram-style).  Values in
/// [2^kMinExp, 2^kMaxExp) land in one of kSubBuckets linear sub-buckets per
/// octave, bounding the per-bucket relative error at 2^(1/kSubBuckets)-1
/// (~9% with 8 sub-buckets); smaller / larger values fall into dedicated
/// underflow / overflow buckets.  The covered range 2^-30..2^30 spans
/// ~1 ns..~34 min when recording seconds, and 1..1e9 when recording counts.
inline constexpr int kHistMinExp = -30;
inline constexpr int kHistMaxExp = 30;
inline constexpr int kHistSubBuckets = 8;
inline constexpr std::size_t kHistBuckets =
    static_cast<std::size_t>(kHistMaxExp - kHistMinExp) * kHistSubBuckets + 2;

/// Point-in-time copy of one histogram (see Histogram::snapshot).
struct HistogramSnapshot {
  struct Bucket {
    double lo = 0.0;  ///< inclusive lower bound
    double hi = 0.0;  ///< exclusive upper bound (+inf for overflow)
    std::uint64_t count = 0;
  };
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact observed extrema (not bucket bounds)
  double max = 0.0;
  /// Non-empty buckets only, ascending.
  std::vector<Bucket> buckets;

  /// Quantile estimate from the bucket counts: locate the bucket holding
  /// the rank and interpolate linearly inside it.  `q` in [0, 1].
  double quantile(double q) const;
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

#if FORKTAIL_OBS_ENABLED

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if larger (high-water-mark semantics).
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void add(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  void record(double v) noexcept;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const;
  void reset() noexcept;

  /// Bucket index for a value (exposed for tests).
  static std::size_t bucket_index(double v) noexcept;
  /// Upper bound of bucket `i` (+inf for the overflow bucket).
  static double bucket_upper_bound(std::size_t i) noexcept;

 private:
  std::atomic<std::uint64_t> counts_[kHistBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Name -> metric directory.  Lookups take a mutex; returned references
/// stay valid for the registry's lifetime, so call sites cache them in
/// function-local statics and the hot path never sees the lock.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  /// Sorted-by-name copy of every registered metric's current value.
  Snapshot snapshot() const;

  /// Zero every metric (handles stay valid).  Test / multi-run support.
  void reset();

  /// The process-wide registry all built-in instrumentation records into.
  static Registry& global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

#else  // !FORKTAIL_OBS_ENABLED -- no-op stubs with the identical API

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(double) noexcept {}
  void set_max(double) noexcept {}
  void add(double) noexcept {}
  double value() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void record(double) noexcept {}
  std::uint64_t count() const noexcept { return 0; }
  HistogramSnapshot snapshot() const { return {}; }
  void reset() noexcept {}
  static std::size_t bucket_index(double) noexcept { return 0; }
  static double bucket_upper_bound(std::size_t) noexcept { return 0.0; }
};

class Registry {
 public:
  Counter& counter(std::string_view) {
    static Counter c;
    return c;
  }
  Gauge& gauge(std::string_view) {
    static Gauge g;
    return g;
  }
  Histogram& histogram(std::string_view) {
    static Histogram h;
    return h;
  }
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot snapshot() const { return {}; }
  void reset() {}
  static Registry& global() {
    static Registry r;
    return r;
  }
};

#endif  // FORKTAIL_OBS_ENABLED

/// RAII wall-clock span: records elapsed SECONDS into `hist` on destruction.
/// In disabled builds the clock is never read.
class ScopedSpan {
 public:
  explicit ScopedSpan(Histogram& hist) noexcept : hist_(&hist) {
    if constexpr (enabled()) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if constexpr (enabled()) {
      const auto end = std::chrono::steady_clock::now();
      hist_->record(std::chrono::duration<double>(end - start_).count());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace forktail::obs
