#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace forktail::obs {

namespace {

std::string json_num(double v) {
  // JSON has no Infinity/NaN literals; non-finite values (only the
  // overflow bucket's upper bound in practice) serialize as null.
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Minimal string escape for the tool / scenario labels (metric names are
/// identifier-like and need none).  obs sits below util in the layer order,
/// so it cannot use util::json_escape.
std::string json_str(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Metric names are dotted (e.g. "fjsim.tasks"); Prometheus wants
/// [a-zA-Z0-9_:] so dots and dashes become underscores.
std::string prom_name(const std::string& name) {
  std::string out = "forktail_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

RunReport RunReport::capture(const Registry& registry, std::string tool,
                             std::string scenario, bool degraded) {
  RunReport report;
  report.tool_ = std::move(tool);
  report.scenario_ = std::move(scenario);
  report.degraded_ = degraded;
  report.snapshot_ = registry.snapshot();
  return report;
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"forktail.run_report.v" << kRunReportVersion
     << "\",\n";
  os << "  \"version\": " << kRunReportVersion << ",\n";
  os << "  \"tool\": \"" << json_str(tool_) << "\",\n";
  if (!scenario_.empty()) {
    os << "  \"scenario\": \"" << json_str(scenario_) << "\",\n";
  }
  if (degraded_) {
    os << "  \"degraded\": true,\n";
  }
  os << "  \"observability_enabled\": " << (enabled() ? "true" : "false")
     << ",\n";
  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot_.counters.size(); ++i) {
    const auto& [name, value] = snapshot_.counters[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name << "\": " << value;
  }
  os << (snapshot_.counters.empty() ? "" : "\n  ") << "},\n";
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot_.gauges.size(); ++i) {
    const auto& [name, value] = snapshot_.gauges[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name
       << "\": " << json_num(value);
  }
  os << (snapshot_.gauges.empty() ? "" : "\n  ") << "},\n";
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot_.histograms.size(); ++i) {
    const auto& [name, h] = snapshot_.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << name << "\": {\n";
    os << "      \"count\": " << h.count << ",\n";
    os << "      \"sum\": " << json_num(h.sum) << ",\n";
    os << "      \"mean\": " << json_num(h.mean()) << ",\n";
    os << "      \"min\": " << json_num(h.min) << ",\n";
    os << "      \"max\": " << json_num(h.max) << ",\n";
    os << "      \"p50\": " << json_num(h.quantile(0.50)) << ",\n";
    os << "      \"p95\": " << json_num(h.quantile(0.95)) << ",\n";
    os << "      \"p99\": " << json_num(h.quantile(0.99)) << ",\n";
    os << "      \"p999\": " << json_num(h.quantile(0.999)) << ",\n";
    os << "      \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const auto& bucket = h.buckets[b];
      os << (b == 0 ? "" : ", ") << "[" << json_num(bucket.lo) << ", "
         << json_num(bucket.hi) << ", " << bucket.count << "]";
    }
    os << "]\n";
    os << "    }";
  }
  os << (snapshot_.histograms.empty() ? "" : "\n  ") << "}\n";
  os << "}\n";
  return os.str();
}

std::string RunReport::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot_.counters) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " counter\n";
    os << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot_.gauges) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " gauge\n";
    os << p << " " << json_num(value) << "\n";
  }
  for (const auto& [name, h] : snapshot_.histograms) {
    const std::string p = prom_name(name);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    for (const auto& bucket : h.buckets) {
      cum += bucket.count;
      os << p << "_bucket{le=\"";
      if (std::isfinite(bucket.hi)) {
        os << json_num(bucket.hi);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cum << "\n";
    }
    if (h.buckets.empty() || std::isfinite(h.buckets.back().hi)) {
      os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    }
    os << p << "_sum " << json_num(h.sum) << "\n";
    os << p << "_count " << h.count << "\n";
  }
  return os.str();
}

void RunReport::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("RunReport: cannot write " + path);
  const bool prom =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  os << (prom ? to_prometheus() : to_json());
}

}  // namespace forktail::obs
