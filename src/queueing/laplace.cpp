#include "queueing/laplace.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace forktail::queueing {

LaplaceInverter::LaplaceInverter(int terms, int euler_terms, double a)
    : terms_(terms), euler_terms_(euler_terms), a_(a) {
  if (terms < 10 || euler_terms < 4 || !(a > 0.0)) {
    throw std::invalid_argument("LaplaceInverter: invalid parameters");
  }
  // Binomial weights for Euler summation: C(m, k) / 2^m.
  binom_.resize(static_cast<std::size_t>(euler_terms_) + 1);
  double c = std::pow(2.0, -euler_terms_);
  binom_[0] = c;
  for (int k = 1; k <= euler_terms_; ++k) {
    c *= static_cast<double>(euler_terms_ - k + 1) / static_cast<double>(k);
    binom_[static_cast<std::size_t>(k)] = c;
  }
}

double LaplaceInverter::invert(
    const std::function<std::complex<double>(std::complex<double>)>& F,
    double t) const {
  if (!(t > 0.0)) throw std::invalid_argument("LaplaceInverter: t must be > 0");
  constexpr double kPi = 3.14159265358979323846;
  const double h = a_ / (2.0 * t);
  // Partial sums s_n for n = terms_ .. terms_ + euler_terms_.
  double sum = 0.5 * F(std::complex<double>(h, 0.0)).real();
  std::vector<double> partials;
  partials.reserve(static_cast<std::size_t>(euler_terms_) + 1);
  int sign = -1;
  for (int k = 1; k <= terms_ + euler_terms_; ++k) {
    const std::complex<double> s(h, static_cast<double>(k) * kPi / t);
    sum += static_cast<double>(sign) * F(s).real();
    sign = -sign;
    if (k >= terms_) partials.push_back(sum);
  }
  // Euler acceleration: weighted average of the trailing partial sums.
  double accelerated = 0.0;
  for (int k = 0; k <= euler_terms_; ++k) {
    accelerated += binom_[static_cast<std::size_t>(k)] *
                   partials[static_cast<std::size_t>(k)];
  }
  return std::exp(a_ / 2.0) / t * accelerated;
}

std::complex<double> pk_response_lst(std::complex<double> s, double lambda,
                                     const dist::Distribution& service) {
  const double rho = lambda * service.mean();
  if (!(rho < 1.0)) throw std::invalid_argument("pk_response_lst: unstable");
  const std::complex<double> s_lst = service.lst(s);
  return s_lst * (1.0 - rho) * s / (s - lambda * (1.0 - s_lst));
}

double mg1_response_cdf(double lambda, const dist::Distribution& service,
                        double x, const LaplaceInverter& inverter) {
  if (x <= 0.0) return 0.0;
  if (!service.has_lst()) {
    throw std::logic_error("mg1_response_cdf: service distribution lacks LST");
  }
  // CDF transform = T~(s) / s.
  const double value = inverter.invert(
      [&](std::complex<double> s) { return pk_response_lst(s, lambda, service) / s; },
      x);
  // Clamp inversion noise.
  if (value < 0.0) return 0.0;
  if (value > 1.0) return 1.0;
  return value;
}

}  // namespace forktail::queueing
