// M/M/1 exact results -- closed forms used as ground truth in unit tests
// and as the degenerate case of the white-box pipeline.
#pragma once

namespace forktail::queueing {

struct Mm1 {
  double lambda = 0.0;
  double mu = 0.0;

  Mm1(double lambda_, double mu_);

  double utilization() const { return lambda / mu; }
  double mean_wait() const;
  double mean_response() const;
  /// Response time of M/M/1 FCFS is Exp(mu - lambda): variance is the
  /// squared mean.
  double response_variance() const;
  /// P(T > x) = e^{-(mu-lambda)x}.
  double response_ccdf(double x) const;
  /// p-th percentile (p in [0,100)) of response time.
  double response_percentile(double p) const;
};

}  // namespace forktail::queueing
