// M/M/c queue: Erlang-C delay probability and response moments.  Used by
// the replicated-fork-node analysis and by provisioning examples comparing
// pooled vs partitioned server configurations.
#pragma once

namespace forktail::queueing {

struct Mmc {
  double lambda = 0.0;
  double mu = 0.0;  ///< per-server service rate
  int servers = 1;

  Mmc(double lambda_, double mu_, int servers_);

  double utilization() const {
    return lambda / (mu * static_cast<double>(servers));
  }

  /// Erlang-C: probability an arrival must wait.
  double prob_wait() const;

  double mean_wait() const;
  double mean_response() const;

  /// Variance of response time (waiting time is 0 w.p. 1-C, else
  /// Exp(c*mu - lambda); service Exp(mu) independent).
  double response_variance() const;
};

}  // namespace forktail::queueing
