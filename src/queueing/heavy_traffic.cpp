#include "queueing/heavy_traffic.hpp"

#include <cmath>
#include <stdexcept>

namespace forktail::queueing {

namespace {
double check_rho(const GG1Inputs& in) {
  if (!(in.lambda > 0.0 && in.mean_service > 0.0)) {
    throw std::invalid_argument("kingman: rates must be > 0");
  }
  const double rho = in.lambda * in.mean_service;
  if (!(rho < 1.0)) throw std::invalid_argument("kingman: unstable queue");
  return rho;
}
}  // namespace

double kingman_mean_wait(const GG1Inputs& in) {
  const double rho = check_rho(in);
  return rho / (1.0 - rho) * 0.5 * (in.scv_arrival + in.scv_service) *
         in.mean_service;
}

double kingman_wait_ccdf(const GG1Inputs& in, double x) {
  const double rho = check_rho(in);
  if (x <= 0.0) return rho;  // P(W > 0) ~ rho
  const double ew = kingman_mean_wait(in) / rho;  // conditional mean given W>0
  return rho * std::exp(-x / ew);
}

double kingman_wait_percentile(const GG1Inputs& in, double p) {
  const double rho = check_rho(in);
  if (!(p >= 0.0 && p < 100.0)) {
    throw std::invalid_argument("kingman: p must be in [0,100)");
  }
  const double q = 1.0 - p / 100.0;
  if (q >= rho) return 0.0;  // the percentile falls in the P(W=0) atom
  const double ew = kingman_mean_wait(in) / rho;
  return -ew * std::log(q / rho);
}

}  // namespace forktail::queueing
