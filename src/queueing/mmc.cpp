#include "queueing/mmc.hpp"

#include <cmath>
#include <stdexcept>

namespace forktail::queueing {

Mmc::Mmc(double lambda_, double mu_, int servers_)
    : lambda(lambda_), mu(mu_), servers(servers_) {
  if (!(lambda > 0.0 && mu > 0.0) || servers < 1) {
    throw std::invalid_argument("Mmc: invalid parameters");
  }
  if (!(utilization() < 1.0)) throw std::invalid_argument("Mmc: unstable");
}

double Mmc::prob_wait() const {
  const double a = lambda / mu;  // offered load in Erlangs
  const int c = servers;
  // Compute Erlang-C via the numerically stable iterative Erlang-B formula:
  // B(0) = 1; B(k) = a B(k-1) / (k + a B(k-1)); C = B(c) / (1 - rho (1 - B(c))).
  double b = 1.0;
  for (int k = 1; k <= c; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  const double rho = utilization();
  return b / (1.0 - rho * (1.0 - b));
}

double Mmc::mean_wait() const {
  const double c_mu = static_cast<double>(servers) * mu;
  return prob_wait() / (c_mu - lambda);
}

double Mmc::mean_response() const { return mean_wait() + 1.0 / mu; }

double Mmc::response_variance() const {
  // W = 0 with prob 1-Pw, else Exp(theta) with theta = c*mu - lambda.
  const double pw = prob_wait();
  const double theta = static_cast<double>(servers) * mu - lambda;
  const double ew = pw / theta;
  const double ew2 = 2.0 * pw / (theta * theta);
  const double var_wait = ew2 - ew * ew;
  const double var_service = 1.0 / (mu * mu);
  return var_wait + var_service;
}

}  // namespace forktail::queueing
