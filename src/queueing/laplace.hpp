// Numerical Laplace transform inversion (Abate-Whitt Euler algorithm) and
// the Pollaczek-Khinchine response-time transform of the M/G/1 queue.
//
// This is the machinery behind the EAT-style baseline: the *exact*
// single-node response-time CDF for any service distribution exposing an
// LST, recovered numerically.  The `terms` knob is the accuracy/runtime
// trade-off the paper discusses for EAT (its constant "C").
#pragma once

#include <complex>
#include <functional>

#include "dist/distribution.hpp"

namespace forktail::queueing {

/// Euler-summation Laplace inversion (Abate & Whitt 1995).
class LaplaceInverter {
 public:
  /// `terms` = number of series terms before Euler acceleration (>= 20);
  /// discretization error ~ e^{-a}.
  explicit LaplaceInverter(int terms = 40, int euler_terms = 12, double a = 18.4);

  /// Invert F(s) (the transform of f) at t > 0.
  double invert(const std::function<std::complex<double>(std::complex<double>)>& F,
                double t) const;

  int terms() const noexcept { return terms_; }

 private:
  int terms_;
  int euler_terms_;
  double a_;
  std::vector<double> binom_;  // Euler binomial weights (m choose k) / 2^m
};

/// Pollaczek-Khinchine transform of the stationary M/G/1 FCFS *response*
/// time: T~(s) = S~(s) (1-rho) s / (s - lambda (1 - S~(s))).
std::complex<double> pk_response_lst(std::complex<double> s, double lambda,
                                     const dist::Distribution& service);

/// Response-time CDF of an M/G/1 queue at x, via numerical inversion of
/// T~(s)/s.  Exact up to inversion error; requires service.has_lst().
double mg1_response_cdf(double lambda, const dist::Distribution& service,
                        double x, const LaplaceInverter& inverter);

}  // namespace forktail::queueing
