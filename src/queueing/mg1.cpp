#include "queueing/mg1.hpp"

#include <stdexcept>

namespace forktail::queueing {

Mg1Response mg1_response(double lambda, const ServiceMoments& s) {
  if (!(lambda > 0.0)) throw std::invalid_argument("mg1: lambda must be > 0");
  if (!(s.m1 > 0.0 && s.m2 > 0.0 && s.m3 >= 0.0)) {
    throw std::invalid_argument("mg1: invalid service moments");
  }
  Mg1Response r;
  r.utilization = lambda * s.m1;
  if (r.utilization >= 1.0) {
    throw std::invalid_argument("mg1: unstable queue (rho >= 1)");
  }
  const double one_minus_rho = 1.0 - r.utilization;
  // Pollaczek-Khinchine mean wait.
  r.mean_wait = lambda * s.m2 / (2.0 * one_minus_rho);
  // Takács recurrence, second moment: E[W^2] = 2 E[W]^2 + lambda E[S^3]/(3(1-rho)).
  r.wait_second_moment =
      2.0 * r.mean_wait * r.mean_wait + lambda * s.m3 / (3.0 * one_minus_rho);
  r.mean = r.mean_wait + s.m1;
  // V[T] = V[W] + V[S]; V[W] = E[W^2] - E[W]^2 = E[W]^2 + lambda E[S^3]/(3(1-rho)).
  const double var_wait = r.wait_second_moment - r.mean_wait * r.mean_wait;
  r.variance = var_wait + s.variance();
  return r;
}

Mg1Response mg1_response(double lambda, const dist::Distribution& service) {
  return mg1_response(lambda, ServiceMoments::of(service));
}

double lambda_for_load(double rho, double mean_service) {
  if (!(rho > 0.0 && rho < 1.0)) {
    throw std::invalid_argument("lambda_for_load: rho must be in (0,1)");
  }
  if (!(mean_service > 0.0)) {
    throw std::invalid_argument("lambda_for_load: mean_service must be > 0");
  }
  return rho / mean_service;
}

}  // namespace forktail::queueing
