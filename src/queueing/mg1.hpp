// M/G/1 FCFS queue analysis: Pollaczek-Khinchine / Takács moment formulas.
//
// These are Eqs. (10)-(11) of the paper: the white-box path of ForkTail
// computes the mean and variance of the task *response* time from the first
// three moments of the service time, then moment-matches the generalized
// exponential distribution.
#pragma once

#include "dist/distribution.hpp"

namespace forktail::queueing {

/// First three raw service-time moments.
struct ServiceMoments {
  double m1 = 0.0;  ///< E[S]
  double m2 = 0.0;  ///< E[S^2]
  double m3 = 0.0;  ///< E[S^3]

  static ServiceMoments of(const dist::Distribution& d) {
    return {d.moment(1), d.moment(2), d.moment(3)};
  }

  double variance() const { return m2 - m1 * m1; }
  double scv() const { return variance() / (m1 * m1); }
};

/// Response-time mean/variance of an M/G/1 FCFS queue.
struct Mg1Response {
  double utilization = 0.0;       ///< rho = lambda E[S]
  double mean_wait = 0.0;         ///< E[W]
  double wait_second_moment = 0.0;///< E[W^2] (Takács)
  double mean = 0.0;              ///< E[T] = E[W] + E[S]
  double variance = 0.0;          ///< V[T] = V[W] + V[S]
};

/// Analyse an M/G/1 queue at arrival rate `lambda`.  Requires rho < 1.
Mg1Response mg1_response(double lambda, const ServiceMoments& s);

/// Convenience overload taking a distribution.
Mg1Response mg1_response(double lambda, const dist::Distribution& service);

/// Arrival rate that produces the target utilization for the given mean
/// service time: lambda = rho / E[S].
double lambda_for_load(double rho, double mean_service);

}  // namespace forktail::queueing
