// Heavy-traffic approximations (Kingman; Köllerström for multi-server).
//
// The paper's modelling postulate rests on the heavy-traffic central limit
// theorem: under high load the waiting time of a G/G/m queue is
// approximately exponential.  This module provides that approximation both
// as a sanity baseline in tests and as the analytic motivation recorded in
// the docs.
#pragma once

namespace forktail::queueing {

struct GG1Inputs {
  double lambda = 0.0;  ///< arrival rate
  double mean_service = 0.0;
  double scv_arrival = 1.0;  ///< squared CV of inter-arrival times
  double scv_service = 1.0;  ///< squared CV of service times
};

/// Kingman's heavy-traffic mean waiting time:
/// E[W] ~ (rho / (1-rho)) * ((ca^2 + cs^2)/2) * E[S].
double kingman_mean_wait(const GG1Inputs& in);

/// Heavy-traffic exponential approximation of the waiting-time tail:
/// P(W > x) ~ rho * exp(-x / E[W_exp]) with E[W_exp] the Kingman mean.
double kingman_wait_ccdf(const GG1Inputs& in, double x);

/// p-th percentile (p in [0,100)) of the exponential heavy-traffic waiting
/// time approximation.
double kingman_wait_percentile(const GG1Inputs& in, double p);

}  // namespace forktail::queueing
