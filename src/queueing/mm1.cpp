#include "queueing/mm1.hpp"

#include <cmath>
#include <stdexcept>

namespace forktail::queueing {

Mm1::Mm1(double lambda_, double mu_) : lambda(lambda_), mu(mu_) {
  if (!(lambda > 0.0 && mu > 0.0)) {
    throw std::invalid_argument("Mm1: rates must be > 0");
  }
  if (!(lambda < mu)) throw std::invalid_argument("Mm1: unstable (lambda >= mu)");
}

double Mm1::mean_wait() const {
  const double rho = utilization();
  return rho / (mu - lambda);
}

double Mm1::mean_response() const { return 1.0 / (mu - lambda); }

double Mm1::response_variance() const {
  const double m = mean_response();
  return m * m;
}

double Mm1::response_ccdf(double x) const {
  return x <= 0.0 ? 1.0 : std::exp(-(mu - lambda) * x);
}

double Mm1::response_percentile(double p) const {
  if (!(p >= 0.0 && p < 100.0)) {
    throw std::invalid_argument("Mm1: p must be in [0,100)");
  }
  return -std::log(1.0 - p / 100.0) / (mu - lambda);
}

}  // namespace forktail::queueing
