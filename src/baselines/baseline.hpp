// Common interface over the prediction baselines: direct measurement,
// the exponential fit, EAT, and the certified linear-transformation
// bounds.
//
// Before this interface existed every bench sweep and the scenario
// predictor registry special-cased baseline dispatch: fig3 hand-built an
// EatPredictor, the ablation table hard-coded the "needs an LST" rule for
// its n/a cells, and the registry re-implemented each applicability gate.
// A Baseline is the normalised contract: it consumes one BaselineInput --
// the black-box measurements plus whatever white-box structure the
// scenario exposes -- decides applicability itself, and produces a point
// prediction and (optionally) a Bracket.
//
// A Bracket is a [lower, upper] interval around the true stationary
// percentile.  `certified` distinguishes provable bounds (the
// linear-transformation baseline: the interval contains the true value by
// theorem, up to documented numerical-inversion tolerances) from merely
// statistical intervals (the direct baseline's order-statistics CI, which
// holds only with confidence).
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/predictor.hpp"
#include "dist/distribution.hpp"

namespace forktail::baselines {

/// Interval around a predicted percentile.  For certified brackets the
/// true stationary value lies in [lower, upper] by construction.
struct Bracket {
  double lower = 0.0;
  double upper = 0.0;
  bool certified = false;

  // Membership up to the documented numerical-inversion tolerance: a
  // predictor that evaluates the same transform as the bound through a
  // different quadrature can land a few ulps past the edge, and that must
  // not read as "provably wrong".
  bool contains(double x) const {
    const double slack = 1e-9 * (std::abs(lower) + std::abs(upper));
    return x >= lower - slack && x <= upper + slack;
  }
  double width() const { return upper - lower; }
};

/// Everything any baseline consumes, normalised across topologies.  The
/// scenario layer adapts its Outcome into this shape; benches fill it
/// directly.
struct BaselineInput {
  // (n, k) fork-join structure: each request forks `fanout` tasks and
  // completes at the `join`-th task completion (join == fanout is the full
  // barrier).  For mixture fan-outs (K ~ U[k_lo, k_hi]) fanout/join carry
  // the mean and k_lo/k_hi the range.
  int fanout = 1;
  int join = 1;
  int k_lo = 0;  ///< 0 unless the fan-out is a uniform mixture
  int k_hi = 0;
  double mean_fanout = 1.0;        ///< E[K] (the homogeneous-model k)
  std::size_t cluster_nodes = 1;   ///< N >= fanout (subset thinning)

  double lambda = 0.0;  ///< request arrival rate (per cluster)
  double load = 0.0;    ///< nominal per-server utilization rho

  core::TaskStats task_stats;  ///< pooled black-box task moments
  dist::DistPtr service;       ///< white-box service (nullptr = black-box)
  std::span<const double> responses;  ///< measured responses (direct)

  /// True when each fork node is a single-server FIFO queue (replicas == 1,
  /// policy "single") -- the M/G/1 structure the white-box baselines need.
  bool single_server_fifo = false;
  /// True for the k = N homogeneous topology (EAT's calibration assumes it).
  bool homogeneous_topology = false;
  /// True when the outcome came from a clean (n, k) fork-join system: the
  /// homogeneous or subset engines with an inert fault plan.  Certified
  /// brackets are only claimed for these.
  bool nk_clean = false;

  /// Per-node task arrival rate implied by the thinning (lambda E[K] / N).
  double node_lambda() const {
    return cluster_nodes == 0
               ? 0.0
               : lambda * mean_fanout / static_cast<double>(cluster_nodes);
  }
};

/// One baseline model: applicability gate + point prediction + bracket.
class Baseline {
 public:
  virtual ~Baseline() = default;
  virtual std::string name() const = 0;
  virtual bool applicable(const BaselineInput& in) const = 0;
  /// Predicted p-th percentile (ms), p in (0, 100).
  virtual double predict(const BaselineInput& in, double percentile) const = 0;
  /// [lower, upper] around the p-th percentile.  Default: the degenerate
  /// uncertified point bracket.
  virtual Bracket bracket(const BaselineInput& in, double percentile) const {
    const double point = predict(in, percentile);
    return Bracket{point, point, false};
  }
};

/// Name -> baseline dispatch, mirroring the scenario PredictorRegistry.
class BaselineRegistry {
 public:
  /// Process-wide registry pre-populated with direct / expfit / eat /
  /// linear-bounds.
  static BaselineRegistry& global();

  void register_baseline(std::unique_ptr<Baseline> baseline);
  /// nullptr when unknown.
  const Baseline* find(const std::string& name) const;
  std::vector<std::string> names() const;
  std::vector<const Baseline*> applicable(const BaselineInput& in) const;

 private:
  std::vector<std::unique_ptr<Baseline>> baselines_;
};

}  // namespace forktail::baselines
