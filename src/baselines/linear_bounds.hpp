// Certified [lower, upper] brackets for (n, k) fork-join latency, after
// the linear-transformation approach of Wang, Li, Shen & Zhou
// (arXiv 1707.08860).
//
// The repository's fork-join engines all reduce to an (n, k) system: a
// request forks n = `fanout` tasks onto single-server FIFO queues fed by
// common Poisson arrivals (possibly thinned over a larger cluster, the
// subset topology) and completes at its k = `join`-th task completion.
// Two families of provable bounds are combined:
//
//   Quantiles (the brackets every report row carries).
//   * Upper: Boole/Markov on the exceedance count -- P(X_(k:n) > t)
//     <= n P(T > t) / (n - k + 1) under ANY dependence among the task
//     sojourns, where T is the single-node M/G/1 sojourn at the thinned
//     node arrival rate.  For the homogeneous engine (every request forks
//     to all n nodes) the sojourns are additionally associated
//     (Esary-Proschan: increasing functions of the independent family of
//     negated interarrivals and service draws), which tightens the k = n
//     corner to q_p <= F_T^{-1}(p^{1/n}); the subset engine's thinning
//     marks are negatively dependent across nodes, so only the
//     dependence-free bound is claimed there.  F_T is exact for
//     exponential service, recovered by Pollaczek-Khinchine inversion when
//     the service has an LST, and replaced by the optimized Chernoff bound
//     on the PK transform otherwise (any service with an MGF; see
//     dist/transforms.hpp).
//   * Lower: a task's sojourn dominates its own service draw pathwise, and
//     order statistics are monotone, so q_p >= the p-quantile of the
//     join-th order statistic of `fanout` iid service draws -- the
//     regularized incomplete beta applied through the service CDF.  At
//     join == fanout the single-sojourn bound F_T^{-1}(p) tightens it.
//
//   Means (the Wang et al. linear transformation, exercised by the oracle
//   suite).  E[X_(r:n)] = sum_{j=r}^{n} (-1)^{j-r} C(j-1, r-1) C(n, j)
//   E[M_j], where M_j is the max over a j-subset; substituting certified
//   bounds on E[M_j] sign-by-sign yields mean brackets.  The alternating
//   weights explode for r << n, so the transform is guarded by a
//   log-binomial cap and intersected with the always-valid order-statistic
//   fallback.
//
// Purging vs non-purging: every ingredient above is valid for both
// variants (purging only removes work, so the purging system is dominated
// pathwise by the non-purging one whose bounds we compute, and the
// service-draw lower bound needs nothing beyond the task's own service).
// The `purging` flag therefore documents which system a bracket claims to
// contain; the implemented certified interval coincides -- asserted by the
// oracle suite.
#pragma once

#include "baselines/baseline.hpp"

namespace forktail::baselines {

struct LinearBoundsConfig {
  /// Bracket the purging variant (tasks past the join are killed) instead
  /// of the repository's non-purging engines.  See the header comment.
  bool purging = false;
  /// Relative safety pad applied to quantile bounds recovered through
  /// numerical Laplace inversion (the inversion is exact only up to
  /// ~1e-8 absolute CDF error; the pad keeps the bracket conservative).
  double inversion_pad = 1e-4;
  /// Chernoff optimisation grid density over (0, theta*).
  int chernoff_grid = 128;
  /// Right-Riemann grid for the certified order-statistic mean integrals.
  int mean_grid = 8192;
};

class LinearBoundsBaseline final : public Baseline {
 public:
  explicit LinearBoundsBaseline(LinearBoundsConfig config = {});

  std::string name() const override { return "linear-bounds"; }
  bool applicable(const BaselineInput& in) const override;
  /// Point prediction = the certified upper bound (the SLO-safe edge of
  /// the bracket).
  double predict(const BaselineInput& in, double percentile) const override;
  /// Certified [lower, upper] containing the true stationary percentile.
  Bracket bracket(const BaselineInput& in, double percentile) const override;

  /// Certified bracket on the mean response E[X_(join:fanout)] via the
  /// Wang et al. linear transformation (intersected with the
  /// order-statistic fallback).
  Bracket mean_bracket(const BaselineInput& in) const;

  const LinearBoundsConfig& config() const noexcept { return config_; }

 private:
  LinearBoundsConfig config_;

  Bracket fixed_k_bracket(const BaselineInput& in, int fanout, int join,
                          double percentile) const;
  Bracket fixed_k_mean_bracket(const BaselineInput& in, int fanout,
                               int join) const;
};

}  // namespace forktail::baselines
