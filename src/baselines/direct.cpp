#include "baselines/direct.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace forktail::baselines {

std::uint64_t required_samples(double percentile, double expected_exceedances) {
  if (!(percentile > 0.0 && percentile < 100.0)) {
    throw std::invalid_argument("required_samples: percentile must be in (0,100)");
  }
  if (!(expected_exceedances > 0.0)) {
    throw std::invalid_argument("required_samples: exceedances must be > 0");
  }
  const double tail = 1.0 - percentile / 100.0;
  // Tolerate floating-point residue (e.g. 100/0.001 = 100000.0000000001)
  // before taking the ceiling.
  return static_cast<std::uint64_t>(std::ceil(expected_exceedances / tail - 1e-6));
}

double measurement_time_seconds(double percentile, double lambda,
                                double expected_exceedances) {
  if (!(lambda > 0.0)) {
    throw std::invalid_argument("measurement_time_seconds: lambda must be > 0");
  }
  return static_cast<double>(required_samples(percentile, expected_exceedances)) /
         lambda;
}

PercentileCi direct_percentile_ci(std::span<const double> samples,
                                  double percentile) {
  if (!(percentile > 0.0 && percentile < 100.0)) {
    throw std::invalid_argument("direct_percentile_ci: bad percentile");
  }
  PercentileCi ci;
  if (samples.empty()) return ci;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  const double q = percentile / 100.0;
  // Normal approximation to the binomial order-statistic interval:
  // rank ~ n q +- 1.96 sqrt(n q (1-q)).
  const double centre = n * q;
  const double half = 1.96 * std::sqrt(n * q * (1.0 - q));
  const auto clamp_index = [&](double r) {
    const auto i = static_cast<std::ptrdiff_t>(std::floor(r));
    return std::clamp<std::ptrdiff_t>(i, 0,
                                      static_cast<std::ptrdiff_t>(sorted.size()) - 1);
  };
  const auto lo_i = clamp_index(centre - half);
  const auto hi_i = clamp_index(centre + half);
  ci.point = sorted[static_cast<std::size_t>(clamp_index(centre))];
  ci.lo = sorted[static_cast<std::size_t>(lo_i)];
  ci.hi = sorted[static_cast<std::size_t>(hi_i)];
  // The interval is meaningful only if the upper rank stays inside the
  // sample (enough observations beyond the percentile).
  ci.valid = centre + half < n;
  return ci;
}

}  // namespace forktail::baselines
