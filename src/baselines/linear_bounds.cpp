#include "baselines/linear_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dist/basic.hpp"
#include "dist/transforms.hpp"
#include "queueing/laplace.hpp"
#include "stats/special_functions.hpp"

namespace forktail::baselines {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// How the single-node stationary M/G/1 sojourn distribution F_T is
/// evaluated.  Three tiers, most exact first:
///   kExact    -- exponential service: T ~ Exp(mu - lambda), closed form.
///   kLst      -- service with an LST: Pollaczek-Khinchine inversion
///                (queueing::mg1_response_cdf), bisected and padded.
///   kChernoff -- MGF only: the optimized Chernoff bound on the PK
///                transform gives certified tail upper bounds (hence
///                quantile uppers) but no lower-bound information.
struct SojournModel {
  enum class Kind { kExact, kLst, kChernoff } kind = Kind::kChernoff;
  double node_lambda = 0.0;
  double rho = 0.0;
  double exp_rate = 0.0;  ///< mu - lambda (kExact only)
  double pk_mean = 0.0;   ///< E[T] = E[S] + lambda E[S^2] / (2 (1 - rho))
  const dist::Distribution* service = nullptr;
  double pad = 0.0;  ///< relative inversion pad (kLst)
  // Chernoff grid over (0, theta*): log E[e^{theta T}] per theta.  Built
  // whenever the service has an MGF (also used for robust mean bounds in
  // the kLst tier).
  std::vector<double> thetas;
  std::vector<double> log_mgf_t;
};

/// Smallest t >= 0 with f(t) >= target, for nondecreasing f.  `hint` seeds
/// the doubling search for the upper end of the bisection bracket.
template <typename F>
double invert_nondecreasing(F&& f, double target, double hint) {
  double hi = std::max(hint, 1e-12);
  int guard = 0;
  while (f(hi) < target && guard++ < 200) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

/// Largest t with f(t) <= target (the left edge of the crossing), for
/// nondecreasing f; conservative for lower quantile bounds.
template <typename F>
double invert_nondecreasing_below(F&& f, double target, double hint) {
  double hi = std::max(hint, 1e-12);
  int guard = 0;
  while (f(hi) < target && guard++ < 200) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (f(mid) <= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool build_model(const BaselineInput& in, const LinearBoundsConfig& config,
                 SojournModel& model) {
  if (in.service == nullptr) return false;
  const dist::Distribution& service = *in.service;
  const double lambda = in.node_lambda();
  const double es = service.moment(1);
  if (!(lambda > 0.0) || !(es > 0.0)) return false;
  const double rho = lambda * es;
  if (!(rho < 1.0)) return false;

  // Tier selection is a pure capability query: memoryless (the exponential
  // family) admits the exact M/M/1 sojourn law, an LST admits numerical PK
  // inversion, an MGF admits the Chernoff bound.  Anything heavier has no
  // certified machinery at all -- and in that case E[S^2] may be infinite,
  // so the PK mean below must not be computed first.
  const dist::Capabilities caps = service.capabilities();
  if (!(caps.memoryless || caps.has_lst || caps.has_mgf)) {
    return false;
  }

  model.node_lambda = lambda;
  model.rho = rho;
  model.service = &service;
  model.pad = config.inversion_pad;
  model.pk_mean = es + lambda * service.moment(2) / (2.0 * (1.0 - rho));

  if (caps.memoryless) {
    model.kind = SojournModel::Kind::kExact;
    model.exp_rate = 1.0 / es - lambda;
  } else if (caps.has_lst) {
    model.kind = SojournModel::Kind::kLst;
  } else {
    model.kind = SojournModel::Kind::kChernoff;
  }

  // The Chernoff grid doubles as the robust mean-bound engine for the kLst
  // tier, so build it for every MGF-capable family.
  if (!caps.memoryless && caps.has_mgf) {
    const double theta_star = dist::lundberg_root(service, lambda, 1.0);
    const int grid = std::max(2, config.chernoff_grid);
    model.thetas.reserve(static_cast<std::size_t>(grid));
    model.log_mgf_t.reserve(static_cast<std::size_t>(grid));
    for (int i = 1; i <= grid; ++i) {
      const double theta = theta_star * static_cast<double>(i) /
                           static_cast<double>(grid + 1);
      const double ms = dist::mgf(service, theta);
      if (!std::isfinite(ms)) continue;
      // PK transform at a real negative argument:
      //   E[e^{theta T}] = MGF_S(theta) (1 - rho) theta
      //                    / (theta - lambda (MGF_S(theta) - 1)).
      const double denom = theta - lambda * (ms - 1.0);
      if (!(denom > 0.0)) continue;  // at/beyond the transform pole
      const double log_mgf =
          std::log(ms) + std::log1p(-rho) + std::log(theta) - std::log(denom);
      model.thetas.push_back(theta);
      model.log_mgf_t.push_back(log_mgf);
    }
    if (model.kind == SojournModel::Kind::kChernoff && model.thetas.empty()) {
      return false;
    }
  }
  return true;
}

double lst_cdf(const SojournModel& model, double t) {
  static thread_local queueing::LaplaceInverter inverter;
  if (t <= 0.0) return 0.0;
  return std::clamp(
      queueing::mg1_response_cdf(model.node_lambda, *model.service, t,
                                 inverter),
      0.0, 1.0);
}

/// Certified upper bound on F_T^{-1}(target): smallest t we can prove has
/// P(T > t) <= 1 - target.
double sojourn_upper_quantile(const SojournModel& model, double target) {
  target = std::clamp(target, 0.0, 1.0 - 1e-15);
  switch (model.kind) {
    case SojournModel::Kind::kExact:
      return -std::log1p(-target) / model.exp_rate;
    case SojournModel::Kind::kLst: {
      // Absolute slack absorbs the ~1e-8 inversion error; the relative pad
      // keeps the discretised bisection conservative.
      const double slack = std::min(1e-6, 0.125 * (1.0 - target));
      const double t = invert_nondecreasing(
          [&](double x) { return lst_cdf(model, x); }, target + slack,
          model.pk_mean);
      return t * (1.0 + model.pad);
    }
    case SojournModel::Kind::kChernoff: {
      const double log_tail = std::log1p(-target);  // ln(1 - target)
      double best = kInf;
      for (std::size_t i = 0; i < model.thetas.size(); ++i) {
        const double cand =
            std::max(0.0, (model.log_mgf_t[i] - log_tail) / model.thetas[i]);
        best = std::min(best, cand);
      }
      return best;
    }
  }
  return kInf;
}

/// Certified lower bound on F_T^{-1}(target): largest t we can prove has
/// F_T(t) <= target.  0 when the tier cannot upper-bound F (kChernoff).
double sojourn_lower_quantile(const SojournModel& model, double target) {
  if (!(target > 0.0)) return 0.0;
  target = std::min(target, 1.0 - 1e-15);
  switch (model.kind) {
    case SojournModel::Kind::kExact:
      return -std::log1p(-target) / model.exp_rate;
    case SojournModel::Kind::kLst: {
      const double slack = std::min(1e-6, 0.125 * target);
      const double t = invert_nondecreasing_below(
          [&](double x) { return lst_cdf(model, x); }, target - slack,
          model.pk_mean);
      return std::max(0.0, t * (1.0 - model.pad));
    }
    case SojournModel::Kind::kChernoff:
      return 0.0;
  }
  return 0.0;
}

/// Quantile of the k-th order statistic of n iid *service* draws: the
/// smallest t with I_{G(t)}(k, n-k+1) >= q.  Tasks' sojourns dominate
/// their own service draws pathwise, so this lower-bounds the true
/// response quantile under any dependence.
double service_order_stat_quantile(const dist::Distribution& service, int n,
                                   int k, double q) {
  // First invert the regularized incomplete beta on [0, 1]...
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    const double v = stats::regularized_incomplete_beta(
        static_cast<double>(k), static_cast<double>(n - k + 1), mid);
    if (v < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double u = lo;  // left edge: conservative for a lower bound
  if (!(u > 0.0)) return 0.0;
  // ...then pull it back through the (exact, analytic) service CDF.
  return invert_nondecreasing_below(
      [&](double t) { return service.cdf(t); }, u, service.moment(1));
}

/// Robust mean bound E[max of j dependent copies of T]
///   <= integral of min(1, j P(T > t)) dt,
/// evaluated per tier.  j may be fractional (the direct order-statistic
/// route uses j_eff = n / (n - k + 1)).
double robust_max_mean_upper(const SojournModel& model, double j) {
  if (!(j >= 1.0)) j = 1.0;
  const double log_j = std::log(j);
  switch (model.kind) {
    case SojournModel::Kind::kExact:
      // integral min(1, j e^{-r t}) dt = (1 + ln j) / r.
      return (1.0 + log_j) / model.exp_rate;
    case SojournModel::Kind::kLst:
    case SojournModel::Kind::kChernoff: {
      // Tail bounded by e^{logM - theta t}: the integral of
      // min(1, j e^{logM - theta t}) is (ln j + logM + 1)/theta when the
      // crossing point is positive, else j e^{logM}/theta.
      double best = kInf;
      for (std::size_t i = 0; i < model.thetas.size(); ++i) {
        const double log_level = log_j + model.log_mgf_t[i];
        const double theta = model.thetas[i];
        const double cand = log_level > 0.0 ? (log_level + 1.0) / theta
                                            : std::exp(log_level) / theta;
        best = std::min(best, cand);
      }
      return best;
    }
  }
  return kInf;
}

/// Certified lower bound on E[max of j iid service draws]: right-endpoint
/// Riemann sum of the (decreasing) integrand 1 - G(t)^j, truncated --
/// both choices under-estimate.
double service_max_mean_lower(const dist::Distribution& service, int j,
                              int grid) {
  double t_max = std::max(service.moment(1), 1e-12);
  int guard = 0;
  while (static_cast<double>(j) * (1.0 - service.cdf(t_max)) > 1e-9 &&
         guard++ < 200) {
    t_max *= 2.0;
  }
  const int cells = std::max(grid, 64);
  const double h = t_max / cells;
  double total = 0.0;
  for (int i = 1; i <= cells; ++i) {
    const double g = service.cdf(h * i);
    total += h * (1.0 - std::pow(g, static_cast<double>(j)));
  }
  return total;
}

/// Certified lower bound on E[k-th order statistic of n iid service
/// draws] by the same right-endpoint rule on 1 - I_{G(t)}(k, n-k+1).
double service_order_stat_mean_lower(const dist::Distribution& service, int n,
                                     int k, int grid) {
  double t_max = std::max(service.moment(1), 1e-12);
  int guard = 0;
  while (1.0 - stats::regularized_incomplete_beta(
                   static_cast<double>(k), static_cast<double>(n - k + 1),
                   service.cdf(t_max)) >
             1e-9 &&
         guard++ < 200) {
    t_max *= 2.0;
  }
  const int cells = std::max(grid, 64);
  const double h = t_max / cells;
  double total = 0.0;
  for (int i = 1; i <= cells; ++i) {
    const double g = service.cdf(h * i);
    total += h * (1.0 - stats::regularized_incomplete_beta(
                            static_cast<double>(k),
                            static_cast<double>(n - k + 1), g));
  }
  return total;
}

/// Natural-log cap on the Wang-transform weights: beyond e^30 the
/// alternating sum loses all precision in double and the transform bracket
/// is abandoned in favour of the direct order-statistic one.
constexpr double kTransformLogCap = 30.0;

bool is_uniform_mixture(const BaselineInput& in) {
  return in.k_lo > 0 && in.k_hi > in.k_lo;
}

}  // namespace

LinearBoundsBaseline::LinearBoundsBaseline(LinearBoundsConfig config)
    : config_(config) {}

bool LinearBoundsBaseline::applicable(const BaselineInput& in) const {
  if (!in.nk_clean || !in.single_server_fifo) return false;
  if (in.service == nullptr) return false;
  if (is_uniform_mixture(in)) {
    if (in.k_lo < 1) return false;
    // Early-join mixtures need the join index feasible at every fan-out.
    if (in.join != in.fanout && in.join > in.k_lo) return false;
  } else {
    if (in.fanout < 1 || in.join < 1 || in.join > in.fanout) return false;
  }
  SojournModel model;
  return build_model(in, config_, model);
}

double LinearBoundsBaseline::predict(const BaselineInput& in,
                                     double percentile) const {
  return bracket(in, percentile).upper;
}

Bracket LinearBoundsBaseline::bracket(const BaselineInput& in,
                                      double percentile) const {
  if (is_uniform_mixture(in)) {
    // Nested-subset coupling: with a full barrier the response is
    // stochastically increasing in the drawn fan-out, with a fixed early
    // join it is decreasing (the join-th smallest over more tasks).
    if (in.join == in.fanout) {
      const Bracket lo = fixed_k_bracket(in, in.k_lo, in.k_lo, percentile);
      const Bracket hi = fixed_k_bracket(in, in.k_hi, in.k_hi, percentile);
      return Bracket{lo.lower, hi.upper, lo.certified && hi.certified};
    }
    const Bracket lo = fixed_k_bracket(in, in.k_hi, in.join, percentile);
    const Bracket hi = fixed_k_bracket(in, in.k_lo, in.join, percentile);
    return Bracket{lo.lower, hi.upper, lo.certified && hi.certified};
  }
  return fixed_k_bracket(in, in.fanout, in.join, percentile);
}

Bracket LinearBoundsBaseline::fixed_k_bracket(const BaselineInput& in,
                                              int fanout, int join,
                                              double percentile) const {
  SojournModel model;
  if (!build_model(in, config_, model)) return Bracket{0.0, kInf, false};
  const double q = std::clamp(percentile / 100.0, 1e-12, 1.0 - 1e-12);
  const double n = static_cast<double>(fanout);
  const double k = static_cast<double>(join);

  // Upper: Boole/Markov on the exceedance count -- P(X_(k:n) > t)
  // <= n P(T > t) / (n - k + 1) under any dependence.
  const double markov_target = 1.0 - (1.0 - q) * (n - k + 1.0) / n;
  double upper = sojourn_upper_quantile(model, markov_target);
  // Tighter when provable: the homogeneous engine's task sojourns are
  // associated (increasing functions of the independent family
  // {-A_m} u {S_im}), so the max is dominated by the max of n iid copies.
  if (in.homogeneous_topology && in.fanout == fanout) {
    const double assoc_target = std::pow(q, 1.0 / n);
    upper = std::min(upper, sojourn_upper_quantile(model, assoc_target));
  }

  // Lower: service-draw order statistic (any dependence) and the
  // count-Markov marginal bound P(X_(k:n) <= t) <= n F(t) / k.
  double lower =
      service_order_stat_quantile(*model.service, fanout, join, q);
  lower = std::max(lower, sojourn_lower_quantile(model, q * k / n));
  lower = std::min(lower, upper);
  return Bracket{lower, upper, true};
}

Bracket LinearBoundsBaseline::mean_bracket(const BaselineInput& in) const {
  if (is_uniform_mixture(in)) {
    if (in.join == in.fanout) {
      const Bracket lo = fixed_k_mean_bracket(in, in.k_lo, in.k_lo);
      const Bracket hi = fixed_k_mean_bracket(in, in.k_hi, in.k_hi);
      return Bracket{lo.lower, hi.upper, lo.certified && hi.certified};
    }
    const Bracket lo = fixed_k_mean_bracket(in, in.k_hi, in.join);
    const Bracket hi = fixed_k_mean_bracket(in, in.k_lo, in.join);
    return Bracket{lo.lower, hi.upper, lo.certified && hi.certified};
  }
  return fixed_k_mean_bracket(in, in.fanout, in.join);
}

Bracket LinearBoundsBaseline::fixed_k_mean_bracket(const BaselineInput& in,
                                                   int fanout,
                                                   int join) const {
  SojournModel model;
  if (!build_model(in, config_, model)) return Bracket{0.0, kInf, false};
  const int n = fanout;
  const int k = join;
  const bool assoc =
      in.homogeneous_topology && in.fanout == fanout &&
      model.kind == SojournModel::Kind::kExact;

  // Certified bounds on E[M_j] (max over j of the request's tasks).
  const auto max_upper = [&](int j) {
    double u = robust_max_mean_upper(model, static_cast<double>(j));
    if (assoc) {
      // Associated family: E[max of j] <= E[max of j iid] = H_j / rate.
      u = std::min(u, stats::harmonic_number(static_cast<double>(j)) /
                          model.exp_rate);
    }
    return u;
  };
  const auto max_lower = [&](int j) {
    return std::max(model.pk_mean,
                    service_max_mean_lower(*model.service, j,
                                           config_.mean_grid));
  };

  // Direct order-statistic bracket, always valid.
  double lower = service_order_stat_mean_lower(*model.service, n, k,
                                               config_.mean_grid);
  if (k == n) lower = std::max(lower, model.pk_mean);
  if (model.kind == SojournModel::Kind::kExact && k < n) {
    // integral max(0, 1 - (n/k) F(t)) dt, closed form for Exp(rate):
    // [1 + (1 - n/k) (-ln(1 - k/n))] / rate.
    const double ratio = static_cast<double>(n) / static_cast<double>(k);
    const double f_lower =
        (1.0 + (1.0 - ratio) *
                   (-std::log1p(-static_cast<double>(k) / n))) /
        model.exp_rate;
    lower = std::max(lower, f_lower);
  }
  const double j_eff =
      static_cast<double>(n) / static_cast<double>(n - k + 1);
  double upper = robust_max_mean_upper(model, j_eff);
  if (assoc && k == n) upper = std::min(upper, max_upper(n));

  // Wang linear transformation: E[X_(k:n)] =
  //   sum_{j=k}^{n} (-1)^{j-k} C(j-1, k-1) C(n, j) E[M_j],
  // substituting U_j where the weight is positive and L_j where negative
  // (and vice versa for the transform lower bound).  Skipped when the
  // alternating weights exceed the precision cap.
  if (k < n) {
    double max_log = -kInf;
    for (int j = k; j <= n; ++j) {
      const double lw = stats::log_binomial(j - 1, k - 1) +
                        stats::log_binomial(n, j);
      max_log = std::max(max_log, lw);
    }
    if (max_log <= kTransformLogCap) {
      double t_upper = 0.0, t_lower = 0.0;
      bool ok = true;
      for (int j = k; j <= n; ++j) {
        const double c = std::exp(stats::log_binomial(j - 1, k - 1) +
                                  stats::log_binomial(n, j));
        const double uj = max_upper(j);
        const double lj = max_lower(j);
        if (!std::isfinite(uj)) {
          ok = false;
          break;
        }
        if ((j - k) % 2 == 0) {
          t_upper += c * uj;
          t_lower += c * lj;
        } else {
          t_upper -= c * lj;
          t_lower -= c * uj;
        }
      }
      if (ok) {
        upper = std::min(upper, t_upper);
        lower = std::max(lower, t_lower);
      }
    }
  } else {
    // k == n: the transform degenerates to E[M_n] itself.
    upper = std::min(upper, max_upper(n));
    lower = std::max(lower, max_lower(n));
  }

  lower = std::min(lower, upper);
  return Bracket{lower, upper, true};
}

}  // namespace forktail::baselines
