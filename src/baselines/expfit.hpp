// Plain-exponential response-time baseline -- the model of the authors'
// earlier HotCloud'16 paper [30] that the GE distribution replaces.
//
// The task response time is modelled Exp(1/E[T]), i.e. only the measured
// mean is used and the variance is discarded.  Comparing this against the
// GE fit quantifies the value of the second moment (the improvement the
// paper claims for ForkTail over [30]).
#pragma once

#include "core/predictor.hpp"

namespace forktail::baselines {

/// Request tail latency with exponential task model:
/// x_p = -E[T] ln(1 - (p/100)^{1/k}).
double exponential_fit_quantile(const core::TaskStats& stats, double k, double p);

/// Request response-time CDF under the exponential task model.
double exponential_fit_cdf(const core::TaskStats& stats, double k, double x);

}  // namespace forktail::baselines
