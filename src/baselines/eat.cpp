#include "baselines/eat.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dist/heavy.hpp"
#include "queueing/mg1.hpp"
#include "stats/roots.hpp"
#include "util/rng.hpp"

namespace forktail::baselines {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Spearman rank correlation of two equally long samples.
double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) {
      r[idx[i]] = static_cast<double>(i);
    }
    return r;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  const double mean = (static_cast<double>(n) - 1.0) / 2.0;
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = ra[i] - mean;
    const double y = rb[i] - mean;
    num += x * y;
    da += x * x;
    db += y * y;
  }
  return num / std::sqrt(da * db);
}
}  // namespace

EatPredictor::EatPredictor(double lambda, dist::DistPtr service,
                           std::size_t num_nodes, EatConfig config)
    : lambda_(lambda),
      service_(std::move(service)),
      num_nodes_(num_nodes),
      config_(config),
      inverter_(std::max(20, config.accuracy / 2), 12, 18.4) {
  if (!service_) throw std::invalid_argument("EatPredictor: null service");
  if (!service_->has_lst()) {
    throw std::invalid_argument(
        "EatPredictor: requires a phase-type service distribution (LST)");
  }
  if (num_nodes_ == 0) throw std::invalid_argument("EatPredictor: no nodes");
  if (config_.accuracy < 10) {
    throw std::invalid_argument("EatPredictor: accuracy must be >= 10");
  }
  quad_points_ = std::max(40, config_.accuracy);
  mean_response_ = queueing::mg1_response(lambda_, *service_).mean;
  calibrate_correlation();
}

void EatPredictor::calibrate_correlation() {
  // Two sibling M/G/1 queues fed by the same Poisson arrival epochs with
  // independent service draws -- the exactly-simulable two-node fork-join
  // that anchors the dependence correction.  Deterministic seed, so the
  // predictor is a pure function of its inputs.
  util::Rng rng(config_.calibration_seed);
  util::Rng s1 = rng.split(1);
  util::Rng s2 = rng.split(2);
  const std::uint64_t n = config_.calibration_samples;
  std::vector<double> r1(n);
  std::vector<double> r2(n);
  double t = 0.0;
  double free1 = 0.0;
  double free2 = 0.0;
  const double mean_ia = 1.0 / lambda_;
  for (std::uint64_t i = 0; i < n; ++i) {
    t += rng.exponential(mean_ia);
    const double d1 = std::max(t, free1) + service_->sample(s1);
    const double d2 = std::max(t, free2) + service_->sample(s2);
    free1 = d1;
    free2 = d2;
    r1[i] = d1 - t;
    r2[i] = d2 - t;
  }
  // Discard the transient fifth.
  const std::size_t cut = n / 5;
  r1.erase(r1.begin(), r1.begin() + static_cast<std::ptrdiff_t>(cut));
  r2.erase(r2.begin(), r2.begin() + static_cast<std::ptrdiff_t>(cut));
  const double rho_s = spearman(r1, r2);
  // Spearman -> Gaussian copula correlation.
  correlation_ = std::clamp(2.0 * std::sin(kPi * rho_s / 6.0), 0.0, 0.999);
}

double EatPredictor::marginal_cdf(double x) const {
  return queueing::mg1_response_cdf(lambda_, *service_, x, inverter_);
}

double EatPredictor::request_cdf(double x) const {
  const double f = marginal_cdf(x);
  if (f <= 0.0) return 0.0;
  if (f >= 1.0) return 1.0;
  if (num_nodes_ == 1) return f;
  const double r = correlation_;
  if (r <= 1e-6) {
    return std::exp(static_cast<double>(num_nodes_) * std::log(f));
  }
  // Exchangeable Gaussian copula: conditioned on the shared factor z,
  // the nodes are independent:
  //   P(max <= x) = Int phi(z) * Phi((q - sqrt(r) z)/sqrt(1-r))^N dz,
  // with q = Phi^{-1}(F(x)).
  const double q = dist::normal_quantile(std::clamp(f, 1e-15, 1.0 - 1e-15));
  const double sr = std::sqrt(r);
  const double s1r = std::sqrt(1.0 - r);
  const int m = quad_points_;
  const double zlo = -8.0;
  const double zhi = 8.0;
  const double dz = (zhi - zlo) / m;
  double acc = 0.0;
  for (int i = 0; i <= m; ++i) {
    const double z = zlo + dz * i;
    const double w = (i == 0 || i == m) ? 0.5 : 1.0;  // trapezoid
    const double cond = dist::normal_cdf((q - sr * z) / s1r);
    double term;
    if (cond <= 0.0) {
      term = 0.0;
    } else {
      term = std::exp(static_cast<double>(num_nodes_) * std::log(cond));
    }
    acc += w * dist::normal_pdf(z) * term;
  }
  return std::clamp(acc * dz, 0.0, 1.0);
}

double EatPredictor::quantile(double p) const {
  if (!(p > 0.0 && p < 100.0)) {
    throw std::invalid_argument("EatPredictor: p must be in (0,100)");
  }
  const double q = p / 100.0;
  // Bracket from the mean response upward; the request tail exceeds the
  // single-node mean for any q of interest.
  const double lo = 1e-9 * mean_response_;
  const double hi0 = mean_response_ * (4.0 + std::log(static_cast<double>(num_nodes_) + 1.0));
  return stats::brent_expand_upper(
      [&](double x) { return request_cdf(x) - q; }, lo, hi0,
      {.x_tolerance = 1e-9 * mean_response_, .f_tolerance = 0.0,
       .max_iterations = 300});
}

}  // namespace forktail::baselines
