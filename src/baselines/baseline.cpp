#include "baselines/baseline.hpp"

#include <utility>

#include "baselines/direct.hpp"
#include "baselines/eat.hpp"
#include "baselines/expfit.hpp"
#include "baselines/linear_bounds.hpp"
#include "stats/percentile.hpp"

namespace forktail::baselines {

namespace {

/// Direct measurement: the percentile of the measured responses, with the
/// distribution-free order-statistics CI as an (uncertified, ~95%
/// confidence) bracket.
class DirectBaseline final : public Baseline {
 public:
  std::string name() const override { return "direct"; }

  bool applicable(const BaselineInput& in) const override {
    return !in.responses.empty();
  }

  double predict(const BaselineInput& in, double percentile) const override {
    return stats::percentile(in.responses, percentile);
  }

  Bracket bracket(const BaselineInput& in, double percentile) const override {
    const PercentileCi ci = direct_percentile_ci(in.responses, percentile);
    if (!ci.valid) {
      return Bracket{ci.point, ci.point, false};
    }
    return Bracket{ci.lo, ci.hi, false};
  }
};

/// Plain-exponential fit (HotCloud'16): mean-only task model.
class ExpFitBaseline final : public Baseline {
 public:
  std::string name() const override { return "expfit"; }

  bool applicable(const BaselineInput& in) const override {
    return in.task_stats.mean > 0.0;
  }

  double predict(const BaselineInput& in, double percentile) const override {
    return exponential_fit_quantile(in.task_stats, in.mean_fanout, percentile);
  }
};

/// EAT (Qiu, Pérez & Harrison): exact M/PH/1 marginal + copula max.  Needs
/// the k = N homogeneous structure, single-server FIFO nodes, and a
/// service with an LST.
class EatBaseline final : public Baseline {
 public:
  std::string name() const override { return "eat"; }

  bool applicable(const BaselineInput& in) const override {
    return in.homogeneous_topology && in.single_server_fifo &&
           in.service != nullptr && in.service->has_lst();
  }

  double predict(const BaselineInput& in, double percentile) const override {
    return EatPredictor(in.lambda, in.service, in.cluster_nodes)
        .quantile(percentile);
  }
};

}  // namespace

BaselineRegistry& BaselineRegistry::global() {
  static BaselineRegistry* registry = [] {
    auto* r = new BaselineRegistry;
    r->register_baseline(std::make_unique<DirectBaseline>());
    r->register_baseline(std::make_unique<ExpFitBaseline>());
    r->register_baseline(std::make_unique<EatBaseline>());
    r->register_baseline(std::make_unique<LinearBoundsBaseline>());
    return r;
  }();
  return *registry;
}

void BaselineRegistry::register_baseline(std::unique_ptr<Baseline> baseline) {
  baselines_.push_back(std::move(baseline));
}

const Baseline* BaselineRegistry::find(const std::string& name) const {
  for (const auto& b : baselines_) {
    if (b->name() == name) return b.get();
  }
  return nullptr;
}

std::vector<std::string> BaselineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(baselines_.size());
  for (const auto& b : baselines_) out.push_back(b->name());
  return out;
}

std::vector<const Baseline*> BaselineRegistry::applicable(
    const BaselineInput& in) const {
  std::vector<const Baseline*> out;
  for (const auto& b : baselines_) {
    if (b->applicable(in)) out.push_back(b.get());
  }
  return out;
}

}  // namespace forktail::baselines
