// EAT-style baseline: "Efficient Approximation for response-time Tails"
// in homogeneous fork-join networks, after Qiu, Pérez & Harrison [33].
//
// The original EAT combines the exact per-node response-time distribution
// of a MAP/PH/1 queue with corrections derived from analytically solved
// one- and two-node systems, at a computational cost controlled by a
// constant C.  The authors' implementation is unavailable, so this is a
// structural reimplementation with the same three ingredients:
//
//   1. exact marginal: the M/PH/1 response-time CDF recovered by numerical
//      inversion (Abate-Whitt Euler) of the Pollaczek-Khinchine transform;
//   2. two-node correction: the pairwise response-time dependence of two
//      fork-join siblings, obtained from a deterministic two-node Lindley
//      computation (playing the role of EAT's exactly-solved 2-node system)
//      and expressed as a Gaussian-copula correlation via Spearman's rho;
//   3. N-node combination: P(max <= x) under the exchangeable Gaussian
//      copula, evaluated by one-dimensional quadrature.
//
// `accuracy` scales both the inversion terms and the quadrature density,
// reproducing EAT's accuracy-vs-runtime trade-off (seconds at high C
// versus ForkTail's < 5 ms).
#pragma once

#include <cstdint>

#include "dist/distribution.hpp"
#include "queueing/laplace.hpp"

namespace forktail::baselines {

struct EatConfig {
  int accuracy = 100;               ///< EAT's "C" knob
  std::uint64_t calibration_samples = 200000;  ///< two-node calibration length
  std::uint64_t calibration_seed = 98765;
};

class EatPredictor {
 public:
  /// Homogeneous fork-join of `num_nodes` M/G/1 nodes at task arrival rate
  /// `lambda`; the service distribution must expose an LST.
  EatPredictor(double lambda, dist::DistPtr service, std::size_t num_nodes,
               EatConfig config = {});

  /// Exact single-node response-time CDF (numerical inversion).
  double marginal_cdf(double x) const;

  /// Approximate request response-time CDF P(max over nodes <= x).
  double request_cdf(double x) const;

  /// p-th percentile of the request response time, p in (0, 100).
  double quantile(double p) const;

  /// Calibrated pairwise Gaussian-copula correlation.
  double copula_correlation() const noexcept { return correlation_; }

 private:
  double lambda_;
  dist::DistPtr service_;
  std::size_t num_nodes_;
  EatConfig config_;
  queueing::LaplaceInverter inverter_;
  double correlation_ = 0.0;
  int quad_points_ = 0;
  double mean_response_ = 0.0;

  void calibrate_correlation();
};

}  // namespace forktail::baselines
