#include "baselines/expfit.hpp"

#include <cmath>
#include <stdexcept>

namespace forktail::baselines {

double exponential_fit_quantile(const core::TaskStats& stats, double k, double p) {
  if (!(stats.mean > 0.0)) {
    throw std::invalid_argument("exponential_fit_quantile: mean must be > 0");
  }
  if (!(p > 0.0 && p < 100.0) || !(k > 0.0)) {
    throw std::invalid_argument("exponential_fit_quantile: bad k or p");
  }
  // Exponential is GE with alpha = 1, beta = mean.
  const double y = std::log(p / 100.0) / k;
  return -stats.mean * std::log(-std::expm1(y));
}

double exponential_fit_cdf(const core::TaskStats& stats, double k, double x) {
  if (x <= 0.0) return 0.0;
  return std::exp(k * std::log1p(-std::exp(-x / stats.mean)));
}

}  // namespace forktail::baselines
