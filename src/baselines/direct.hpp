// Direct tail-latency measurement: the alternative ForkTail argues against
// (Section 2's 33-minute example).  Provides the sample-size arithmetic and
// a distribution-free confidence interval for measured percentiles, used by
// the online-prediction example to contrast measurement cost.
#pragma once

#include <cstdint>
#include <span>

namespace forktail::baselines {

/// Samples needed so that the expected number of observations beyond the
/// p-th percentile is `expected_exceedances` (the paper uses 100 for the
/// 99.9th percentile => 100k samples).
std::uint64_t required_samples(double percentile, double expected_exceedances = 100.0);

/// Wall-clock measurement time at the given request rate.
double measurement_time_seconds(double percentile, double lambda,
                                double expected_exceedances = 100.0);

struct PercentileCi {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  bool valid = false;  ///< false when the sample is too small for the level
};

/// Distribution-free (order-statistics / binomial) two-sided CI for the
/// p-th percentile at ~95% confidence.  Demonstrates how wide direct
/// measurement remains at small sample counts.
PercentileCi direct_percentile_ci(std::span<const double> samples, double percentile);

}  // namespace forktail::baselines
