// Trace record types shared by the generator, the CSV reader/writer, and
// the consolidated simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace forktail::trace {

/// One job of a workload trace, in the format the paper describes for its
/// Facebook-derived trace file: "request arrival time, number of forked
/// tasks, mean task service time, and the service times of individual
/// forked tasks".
struct JobRecord {
  double arrival_time = 0.0;
  std::uint32_t num_tasks = 1;
  double mean_task_time = 0.0;
  std::vector<double> task_times;  ///< empty when times are drawn at replay
};

}  // namespace forktail::trace
