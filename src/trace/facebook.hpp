// Synthesis of a Facebook-2010-like workload (Section 4.3 of the paper).
//
// The paper generates its trace from published descriptions rather than raw
// data, and we do the same:
//   - job sizes (number of forked tasks) follow the nine-bin histogram
//     published with delay scheduling [43], uniform within each bin;
//   - each job gets a mean task service time spanning the wide range
//     reported for MapReduce workloads [13] (log-uniform across
//     [min_mean_ms, max_mean_ms]);
//   - individual task times are Normal(m, (2m)^2) truncated below, as in
//     Hawk [15].
// Target jobs (the application whose tail is predicted) are injected with a
// given probability and are statistically uniform: fixed task count and
// fixed mean task time.
#pragma once

#include <array>
#include <cstdint>

#include "fjsim/consolidated.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace forktail::trace {

/// One bin of the job-size histogram: tasks uniform on [lo, hi] with
/// probability `probability`.
struct JobSizeBin {
  std::uint32_t lo = 1;
  std::uint32_t hi = 1;
  double probability = 0.0;
};

/// The nine Facebook bins from the delay-scheduling paper [43].
const std::array<JobSizeBin, 9>& facebook_job_size_bins();

class FacebookWorkload {
 public:
  struct Params {
    double min_mean_ms = 1.0;     ///< per-job mean task time, log-uniform low
    double max_mean_ms = 1000.0;  ///< ... high
    double target_fraction = 0.1; ///< fraction of jobs that are target jobs
    std::uint32_t target_tasks = 100;   ///< fixed k of target jobs
    double target_mean_ms = 50.0;       ///< fixed mean task time of target jobs
    std::uint32_t max_tasks = 0;  ///< clamp background k (0 = no clamp)
  };

  explicit FacebookWorkload(Params params);

  /// Sample a background job size from the bins (clamped to max_tasks).
  std::uint32_t sample_background_tasks(util::Rng& rng) const;

  /// Sample a background per-job mean task time (log-uniform).
  double sample_background_mean(util::Rng& rng) const;

  /// One job (target with probability target_fraction).
  fjsim::JobSpec sample_job(util::Rng& rng) const;

  /// Adapter for the consolidated simulator.
  fjsim::JobGenerator generator() const;

  /// Monte-Carlo estimate of E[tasks * E[task time]] per job (the quantity
  /// the simulator needs to hit a load target), with the truncation floor
  /// applied.  Deterministic for a fixed seed.
  double estimate_mean_work(double service_floor, std::uint64_t samples = 200000,
                            std::uint64_t seed = 12345) const;

  /// Expected number of tasks of a background job (analytic, unclamped).
  double mean_background_tasks() const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

/// Materialise `count` jobs into records with explicit arrival times
/// (Poisson at `lambda`) and per-task times, reproducing the paper's trace
/// file format.  Used by the trace I/O round-trip tests and by examples.
std::vector<JobRecord> synthesize_trace(const FacebookWorkload& workload,
                                        std::uint64_t count, double lambda,
                                        double service_floor, std::uint64_t seed);

/// Adapt a recorded trace into a consolidated-simulator job generator:
/// jobs replay cyclically in record order (as background jobs, with their
/// recorded task count and mean task time; per-task times are re-drawn
/// from the Hawk model at replay, since the simulator drives its own
/// arrival process).  Task counts above `max_tasks` are clamped (0 = no
/// clamp).  The records are copied into the generator.
fjsim::JobGenerator make_replay_generator(std::vector<JobRecord> records,
                                          std::uint32_t max_tasks = 0);

/// E[tasks * task time] per job of a recorded trace -- exact when records
/// carry explicit task times, mean-based otherwise (with the truncation
/// inflation factor of the Hawk model applied).  Needed to calibrate the
/// consolidated simulator's load.
double trace_mean_work(const std::vector<JobRecord>& records,
                       double service_floor, std::uint32_t max_tasks = 0);

}  // namespace forktail::trace
