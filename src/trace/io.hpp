// CSV serialization of workload traces.
//
// Format (one job per line, matching the fields the paper lists):
//   arrival_time,num_tasks,mean_task_time,t1;t2;...;tk
// The per-task time list may be empty, in which case replay draws times
// from the job's mean.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace forktail::trace {

void write_trace(std::ostream& os, const std::vector<JobRecord>& records);
void write_trace_file(const std::string& path, const std::vector<JobRecord>& records);

std::vector<JobRecord> read_trace(std::istream& is);
std::vector<JobRecord> read_trace_file(const std::string& path);

}  // namespace forktail::trace
