// CSV serialization of workload traces.
//
// Format (one job per line, matching the fields the paper lists):
//   arrival_time,num_tasks,mean_task_time,t1;t2;...;tk
// The per-task time list may be empty, in which case replay draws times
// from the job's mean.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace forktail::trace {

/// Thrown on malformed trace input.  `line()` is the 1-based line number of
/// the offending record; the what() string already includes it.
class TraceError : public std::runtime_error {
 public:
  TraceError(std::size_t line, const std::string& why)
      : std::runtime_error("trace: line " + std::to_string(line) + ": " + why),
        line_(line) {}
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Outcome of a best-effort trace read: every record that parsed cleanly
/// before the first malformed line is kept, so a mid-file truncation (e.g.
/// a collector killed mid-write) degrades to "records so far + error"
/// instead of losing the whole file.
struct TraceReadResult {
  std::vector<JobRecord> records;
  bool complete = true;        ///< false when a malformed line stopped the read
  std::size_t error_line = 0;  ///< 1-based line of the first error (0 if none)
  std::string error;           ///< description of the first error (empty if none)
};

void write_trace(std::ostream& os, const std::vector<JobRecord>& records);
void write_trace_file(const std::string& path, const std::vector<JobRecord>& records);

/// Strict read: throws TraceError at the first malformed line.
std::vector<JobRecord> read_trace(std::istream& is);
std::vector<JobRecord> read_trace_file(const std::string& path);

/// Best-effort read: never throws on malformed *content* (file-open
/// failures in the _file variant still throw std::runtime_error).
TraceReadResult read_trace_partial(std::istream& is);
TraceReadResult read_trace_partial_file(const std::string& path);

}  // namespace forktail::trace
