#include "trace/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace forktail::trace {

void write_trace(std::ostream& os, const std::vector<JobRecord>& records) {
  os.precision(12);
  for (const auto& rec : records) {
    os << rec.arrival_time << ',' << rec.num_tasks << ',' << rec.mean_task_time
       << ',';
    for (std::size_t i = 0; i < rec.task_times.size(); ++i) {
      if (i) os << ';';
      os << rec.task_times[i];
    }
    os << '\n';
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<JobRecord>& records) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(os, records);
  if (!os) throw std::runtime_error("write_trace_file: write failed for " + path);
}

std::vector<JobRecord> read_trace(std::istream& is) {
  std::vector<JobRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    JobRecord rec;
    std::string field;
    auto next_field = [&](bool required) -> bool {
      if (!std::getline(ls, field, ',')) {
        if (required) {
          throw std::runtime_error("read_trace: malformed line " +
                                   std::to_string(line_no));
        }
        return false;
      }
      return true;
    };
    next_field(true);
    rec.arrival_time = std::stod(field);
    next_field(true);
    rec.num_tasks = static_cast<std::uint32_t>(std::stoul(field));
    next_field(true);
    rec.mean_task_time = std::stod(field);
    if (next_field(false) && !field.empty()) {
      std::istringstream ts(field);
      std::string item;
      while (std::getline(ts, item, ';')) {
        rec.task_times.push_back(std::stod(item));
      }
      if (rec.task_times.size() != rec.num_tasks) {
        throw std::runtime_error("read_trace: task-time count mismatch at line " +
                                 std::to_string(line_no));
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<JobRecord> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(is);
}

}  // namespace forktail::trace
