#include "trace/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace forktail::trace {

void write_trace(std::ostream& os, const std::vector<JobRecord>& records) {
  os.precision(12);
  for (const auto& rec : records) {
    os << rec.arrival_time << ',' << rec.num_tasks << ',' << rec.mean_task_time
       << ',';
    for (std::size_t i = 0; i < rec.task_times.size(); ++i) {
      if (i) os << ';';
      os << rec.task_times[i];
    }
    os << '\n';
  }
}

void write_trace_file(const std::string& path,
                      const std::vector<JobRecord>& records) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(os, records);
  if (!os) throw std::runtime_error("write_trace_file: write failed for " + path);
}

namespace {

/// Parse one numeric field in full: trailing garbage ("1.5abc"), empty
/// fields, and out-of-range values all raise TraceError with the line.
double parse_double_field(const std::string& field, std::size_t line_no,
                          const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(field, &used);
  } catch (const std::exception&) {
    throw TraceError(line_no, std::string("bad ") + what + ": '" + field + "'");
  }
  if (used != field.size()) {
    throw TraceError(line_no, std::string("bad ") + what + ": '" + field + "'");
  }
  return v;
}

std::uint32_t parse_count_field(const std::string& field, std::size_t line_no,
                                const char* what) {
  // stoul accepts a leading '-' (wrapping modulo 2^64); reject it here.
  if (field.empty() || field[0] == '-') {
    throw TraceError(line_no, std::string("bad ") + what + ": '" + field + "'");
  }
  std::size_t used = 0;
  unsigned long v = 0;
  try {
    v = std::stoul(field, &used);
  } catch (const std::exception&) {
    throw TraceError(line_no, std::string("bad ") + what + ": '" + field + "'");
  }
  if (used != field.size() || v > 0xFFFFFFFFul) {
    throw TraceError(line_no, std::string("bad ") + what + ": '" + field + "'");
  }
  return static_cast<std::uint32_t>(v);
}

/// Parse one CSV line into a record; throws TraceError on any defect.
JobRecord parse_record(const std::string& line, std::size_t line_no) {
  std::istringstream ls(line);
  JobRecord rec;
  std::string field;
  auto next_field = [&](bool required) -> bool {
    if (!std::getline(ls, field, ',')) {
      if (required) {
        throw TraceError(line_no,
                         "truncated record (want arrival,tasks,mean,times)");
      }
      return false;
    }
    return true;
  };
  next_field(true);
  rec.arrival_time = parse_double_field(field, line_no, "arrival_time");
  next_field(true);
  rec.num_tasks = parse_count_field(field, line_no, "num_tasks");
  next_field(true);
  rec.mean_task_time = parse_double_field(field, line_no, "mean_task_time");
  if (next_field(false) && !field.empty()) {
    std::istringstream ts(field);
    std::string item;
    while (std::getline(ts, item, ';')) {
      rec.task_times.push_back(parse_double_field(item, line_no, "task time"));
    }
    if (rec.task_times.size() != rec.num_tasks) {
      throw TraceError(line_no, "task-time count mismatch: " +
                                    std::to_string(rec.task_times.size()) +
                                    " times for " +
                                    std::to_string(rec.num_tasks) + " tasks");
    }
  }
  return rec;
}

}  // namespace

TraceReadResult read_trace_partial(std::istream& is) {
  TraceReadResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      result.records.push_back(parse_record(line, line_no));
    } catch (const TraceError& e) {
      result.complete = false;
      result.error_line = e.line();
      result.error = e.what();
      break;
    }
  }
  return result;
}

TraceReadResult read_trace_partial_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_trace_partial_file: cannot open " + path);
  return read_trace_partial(is);
}

std::vector<JobRecord> read_trace(std::istream& is) {
  std::vector<JobRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    records.push_back(parse_record(line, line_no));
  }
  return records;
}

std::vector<JobRecord> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(is);
}

}  // namespace forktail::trace
