#include "trace/facebook.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "dist/heavy.hpp"

namespace forktail::trace {

const std::array<JobSizeBin, 9>& facebook_job_size_bins() {
  // Job-size histogram at Facebook from the delay-scheduling study [43]:
  // most jobs are small, a heavy tail reaches thousands of map tasks.
  static const std::array<JobSizeBin, 9> bins = {{
      {1, 1, 0.38},
      {2, 2, 0.16},
      {3, 20, 0.14},
      {21, 60, 0.08},
      {61, 150, 0.06},
      {151, 300, 0.06},
      {301, 500, 0.04},
      {501, 1500, 0.04},
      {1501, 3000, 0.04},
  }};
  return bins;
}

FacebookWorkload::FacebookWorkload(Params params) : params_(params) {
  if (!(params_.min_mean_ms > 0.0 && params_.max_mean_ms >= params_.min_mean_ms)) {
    throw std::invalid_argument("FacebookWorkload: bad mean task time range");
  }
  if (!(params_.target_fraction >= 0.0 && params_.target_fraction <= 1.0)) {
    throw std::invalid_argument("FacebookWorkload: bad target fraction");
  }
  if (params_.target_tasks < 1) {
    throw std::invalid_argument("FacebookWorkload: target_tasks must be >= 1");
  }
  if (!(params_.target_mean_ms > 0.0)) {
    throw std::invalid_argument("FacebookWorkload: target mean must be > 0");
  }
}

std::uint32_t FacebookWorkload::sample_background_tasks(util::Rng& rng) const {
  const auto& bins = facebook_job_size_bins();
  double u = rng.uniform();
  for (const auto& bin : bins) {
    if (u < bin.probability) {
      auto k = static_cast<std::uint32_t>(
          rng.uniform_int(static_cast<std::int64_t>(bin.lo),
                          static_cast<std::int64_t>(bin.hi)));
      if (params_.max_tasks > 0 && k > params_.max_tasks) k = params_.max_tasks;
      return k;
    }
    u -= bin.probability;
  }
  // Rounding leftovers land in the last bin.
  auto k = facebook_job_size_bins().back().hi;
  if (params_.max_tasks > 0 && k > params_.max_tasks) k = params_.max_tasks;
  return k;
}

double FacebookWorkload::sample_background_mean(util::Rng& rng) const {
  const double lo = std::log(params_.min_mean_ms);
  const double hi = std::log(params_.max_mean_ms);
  return std::exp(rng.uniform(lo, hi));
}

fjsim::JobSpec FacebookWorkload::sample_job(util::Rng& rng) const {
  fjsim::JobSpec job;
  if (rng.bernoulli(params_.target_fraction)) {
    job.target = true;
    job.tasks = params_.target_tasks;
    job.mean_task_time = params_.target_mean_ms;
  } else {
    job.target = false;
    job.tasks = sample_background_tasks(rng);
    job.mean_task_time = sample_background_mean(rng);
  }
  return job;
}

fjsim::JobGenerator FacebookWorkload::generator() const {
  return [self = *this](util::Rng& rng) { return self.sample_job(rng); };
}

double FacebookWorkload::estimate_mean_work(double service_floor,
                                            std::uint64_t samples,
                                            std::uint64_t seed) const {
  util::Rng rng(seed);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const fjsim::JobSpec job = sample_job(rng);
    // One representative task draw per job, scaled by the task count; this
    // estimates E[sum of task times] = E[k * S | m] without simulating
    // every task of huge jobs.
    double s;
    do {
      s = rng.normal(job.mean_task_time, 2.0 * job.mean_task_time);
    } while (s < service_floor);
    acc += static_cast<double>(job.tasks) * s;
  }
  return acc / static_cast<double>(samples);
}

double FacebookWorkload::mean_background_tasks() const {
  double m = 0.0;
  for (const auto& bin : facebook_job_size_bins()) {
    m += bin.probability * 0.5 * static_cast<double>(bin.lo + bin.hi);
  }
  return m;
}

fjsim::JobGenerator make_replay_generator(std::vector<JobRecord> records,
                                          std::uint32_t max_tasks) {
  if (records.empty()) {
    throw std::invalid_argument("make_replay_generator: empty trace");
  }
  // The index is shared mutable state inside the closure; the consolidated
  // simulator drives the generator from a single thread.
  auto cursor = std::make_shared<std::size_t>(0);
  return [records = std::move(records), max_tasks,
          cursor](util::Rng&) -> fjsim::JobSpec {
    const JobRecord& rec = records[*cursor];
    *cursor = (*cursor + 1) % records.size();
    fjsim::JobSpec job;
    job.target = false;
    job.tasks = rec.num_tasks;
    if (max_tasks > 0 && job.tasks > max_tasks) job.tasks = max_tasks;
    job.mean_task_time = rec.mean_task_time;
    return job;
  };
}

double trace_mean_work(const std::vector<JobRecord>& records,
                       double service_floor, std::uint32_t max_tasks) {
  if (records.empty()) {
    throw std::invalid_argument("trace_mean_work: empty trace");
  }
  double total = 0.0;
  for (const JobRecord& rec : records) {
    std::uint32_t tasks = rec.num_tasks;
    if (max_tasks > 0 && tasks > max_tasks) tasks = max_tasks;
    if (rec.task_times.size() == rec.num_tasks && rec.num_tasks > 0) {
      // Exact: scale the recorded total work by any clamping ratio.
      double sum = 0.0;
      for (double s : rec.task_times) sum += s;
      total += sum * static_cast<double>(tasks) /
               static_cast<double>(rec.num_tasks);
    } else {
      // Mean-based: apply the truncation inflation of Normal(m, (2m)^2)
      // clipped below at the floor (the replay resamples task times the
      // same way).
      const dist::TruncatedNormal t(rec.mean_task_time,
                                    2.0 * rec.mean_task_time, service_floor);
      total += static_cast<double>(tasks) * t.mean();
    }
  }
  return total / static_cast<double>(records.size());
}

std::vector<JobRecord> synthesize_trace(const FacebookWorkload& workload,
                                        std::uint64_t count, double lambda,
                                        double service_floor, std::uint64_t seed) {
  if (!(lambda > 0.0)) throw std::invalid_argument("synthesize_trace: lambda <= 0");
  util::Rng rng(seed);
  std::vector<JobRecord> records;
  records.reserve(count);
  double t = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    t += rng.exponential(1.0 / lambda);
    const fjsim::JobSpec job = workload.sample_job(rng);
    JobRecord rec;
    rec.arrival_time = t;
    rec.num_tasks = job.tasks;
    rec.mean_task_time = job.mean_task_time;
    rec.task_times.reserve(job.tasks);
    for (std::uint32_t k = 0; k < job.tasks; ++k) {
      double s;
      do {
        s = rng.normal(job.mean_task_time, 2.0 * job.mean_task_time);
      } while (s < service_floor);
      rec.task_times.push_back(s);
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace forktail::trace
