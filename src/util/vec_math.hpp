// Vectorizable elementary-function kernels for the vector replay engine.
//
// libm's log/exp are scalar calls GCC cannot vectorize without -mveclibabi
// or vendor math libraries (which this repo does not depend on).  These
// block kernels are branch-free polynomial implementations written as plain
// element-wise C++ so the auto-vectorizer turns them into 4/8-lane SIMD at
// whatever -march the including translation unit uses — and, crucially,
// they produce BIT-IDENTICAL results at every ISA level when compiled with
// -ffp-contract=off (no fused multiply-add differences), which is what
// makes the vector engine's output independent of the dispatch level.
//
// The polynomials use EXPLICIT std::fma: -ffp-contract=off only forbids
// implicit contraction, while a spelled-out fma is one exact IEEE-754
// operation with identical results on every ISA level (hardware FMA on
// avx2/avx512 targets, glibc's correctly-rounded soft path on the baseline
// level) -- so cross-level bit identity is preserved at half the polynomial
// op count.
//
// Accuracy (measured against glibc libm over log-uniform draws spanning the
// samplers' input domains; pinned by tests/test_replay_vector.cpp):
//   log_block: max error ~4 ulp (~1e-15 relative; atanh-series rounding)
//   exp_block: max error ~1 ulp
// These differ from libm in the last ulp, so any value derived through them
// is a documented new golden relative to the scalar engines
// (docs/performance.md, "Golden-change policy").
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

// The fjsim vector engine calls these helpers from functions carrying
// per-ISA __attribute__((target(...))) annotations (see
// fjsim/vector_engine_impl.hpp).  They MUST be force-inlined there: an
// out-of-line copy would be compiled for the baseline ISA and the call
// would fence off auto-vectorization of the whole pass.
#ifndef FORKTAIL_VEC_INLINE
#if defined(__GNUC__) || defined(__clang__)
#define FORKTAIL_VEC_INLINE inline __attribute__((always_inline))
#else
#define FORKTAIL_VEC_INLINE inline
#endif
#endif

namespace forktail::util {

/// Natural log of one positive normal double (scalar core of log_block).
/// Decomposes x = 2^e * m with m in [sqrt(1/2), sqrt(2)), then evaluates
/// the atanh series log(m) = 2r(1 + r^2/3 + r^4/5 + ...), r = (m-1)/(m+1),
/// truncated at r^23 (|r| <= 0.1716 so the dropped term is < 1e-19), and
/// reconstitutes with a hi/lo split of log(2).
FORKTAIL_VEC_INLINE double vec_log(double x) noexcept {
  const std::uint64_t bx = std::bit_cast<std::uint64_t>(x);
  // Adding ~sqrt(2)'s mantissa offset before extracting the exponent moves
  // the decomposition boundary from m in [1,2) to m in [sqrt(1/2), sqrt(2)).
  const std::uint64_t adj = bx + 0x0005'2000'0000'0000ULL;
  const std::int64_t e = static_cast<std::int64_t>(adj >> 52) - 1023;
  const double m =
      std::bit_cast<double>(bx - (static_cast<std::uint64_t>(e) << 52));
  const double r = (m - 1.0) / (m + 1.0);
  const double r2 = r * r;
  double p = 1.0 / 23.0;
  p = std::fma(p, r2, 1.0 / 21.0);
  p = std::fma(p, r2, 1.0 / 19.0);
  p = std::fma(p, r2, 1.0 / 17.0);
  p = std::fma(p, r2, 1.0 / 15.0);
  p = std::fma(p, r2, 1.0 / 13.0);
  p = std::fma(p, r2, 1.0 / 11.0);
  p = std::fma(p, r2, 1.0 / 9.0);
  p = std::fma(p, r2, 1.0 / 7.0);
  p = std::fma(p, r2, 1.0 / 5.0);
  p = std::fma(p, r2, 1.0 / 3.0);
  p = std::fma(p, r2, 1.0);
  const double lm = 2.0 * r * p;
  const double de = static_cast<double>(e);
  // Cody-Waite: ln2 split into a 32-bit head (so de*head is EXACT for any
  // exponent |de| < 2^20 -- a full-mantissa head would round and leak
  // ~ulp(de*ln2) into the sum) plus the fdlibm tail.
  return std::fma(de, 0x1.62e42feep-1,
                  std::fma(de, 0x1.a39ef35793c76p-33, lm));
}

/// e^x for |x| <= ~708 (scalar core of exp_block).  Range reduction
/// x = n*ln2 + f with |f| <= ln2/2 via magic-number rounding, degree-13
/// Taylor for e^f (the degree-11 remainder f^12/12! is ~6e-15 relative at
/// |f| = ln2/2 -- tens of ulp; two more terms push it below 2^-57),
/// exponent splice for the 2^n scale.
FORKTAIL_VEC_INLINE double vec_exp(double x) noexcept {
  // Round x/ln2 to nearest integer: adding 1.5*2^52 forces the mantissa to
  // integer granularity; subtracting recovers the rounded value.
  constexpr double kShift = 0x1.8p52;
  const double nd = std::fma(x, 0x1.71547652b82fep+0, kShift) - kShift;
  // Same Cody-Waite pair as vec_log: nd*head is exact (|nd| < 2^11 here),
  // so the reduced argument f carries only the tail product's rounding.
  const double f = std::fma(nd, -0x1.a39ef35793c76p-33,
                            std::fma(nd, -0x1.62e42feep-1, x));
  double p = 1.0 / 6227020800.0;
  p = std::fma(p, f, 1.0 / 479001600.0);
  p = std::fma(p, f, 1.0 / 39916800.0);
  p = std::fma(p, f, 1.0 / 3628800.0);
  p = std::fma(p, f, 1.0 / 362880.0);
  p = std::fma(p, f, 1.0 / 40320.0);
  p = std::fma(p, f, 1.0 / 5040.0);
  p = std::fma(p, f, 1.0 / 720.0);
  p = std::fma(p, f, 1.0 / 120.0);
  p = std::fma(p, f, 1.0 / 24.0);
  p = std::fma(p, f, 1.0 / 6.0);
  p = std::fma(p, f, 0.5);
  p = std::fma(p, f, 1.0);
  p = std::fma(p, f, 1.0);
  // Splice 2^n into the result's exponent.  All sampler inputs keep the
  // result well inside the normal range, so no overflow/subnormal handling.
  const auto n = static_cast<std::int64_t>(nd);
  const std::uint64_t bp = std::bit_cast<std::uint64_t>(p);
  return std::bit_cast<double>(bp + (static_cast<std::uint64_t>(n) << 52));
}

/// out[i] = log(x[i]) for positive normal x.
FORKTAIL_VEC_INLINE void log_block(const double* __restrict x, double* __restrict out,
                      std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = vec_log(x[i]);
}

/// x[i] = log(x[i]) in place.
FORKTAIL_VEC_INLINE void log_block_inplace(double* __restrict x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = vec_log(x[i]);
}

/// x[i] = exp(x[i]) in place.
FORKTAIL_VEC_INLINE void exp_block_inplace(double* __restrict x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = vec_exp(x[i]);
}

}  // namespace forktail::util
