// Minimal fixed-size thread pool with a parallel_for helper.
//
// The simulators partition work across fork nodes or across experiment
// configurations; both are embarrassingly parallel.  On a single-core host
// the pool degenerates gracefully (0 workers => run inline).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace forktail::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency(); a pool of size 1 on
  /// a single-core machine still uses one worker thread so that `submit`
  /// never deadlocks when a task blocks on another task's completion.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run `fn(i)` for i in [begin, end) using the given pool, blocking until all
/// iterations complete.  Iterations are chunked to limit queue overhead.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: a process-wide pool sized to the hardware.
ThreadPool& global_pool();

}  // namespace forktail::util
