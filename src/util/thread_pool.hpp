// Minimal fixed-size thread pool with a parallel_for helper.
//
// The simulators partition work across fork nodes or across experiment
// configurations; both are embarrassingly parallel.  On a single-core host
// the pool degenerates gracefully (0 workers => run inline).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace forktail::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency(); a pool of size 1 on
  /// a single-core machine still uses one worker thread so that `submit`
  /// never deadlocks when a task blocks on another task's completion.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task.  A task that throws does not terminate the process:
  /// the first exception is captured and rethrown from the next
  /// `wait_idle()` call; subsequent exceptions (until that rethrow) are
  /// swallowed.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.  If any task threw
  /// since the last wait, rethrows the first captured exception (after the
  /// pool has drained, so no submitted work is left running).
  void wait_idle();

 private:
  /// Queue entry: the task plus its enqueue timestamp, so the worker can
  /// report submit-to-start wait.  The timestamp is only taken when
  /// observability is compiled in (zero otherwise).
  struct Job {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Run `fn(i)` for i in [begin, end) using the given pool, blocking until all
/// iterations complete.  Iterations are chunked to limit queue overhead.
/// If any iteration throws, the first exception is rethrown here once every
/// chunk has finished (remaining iterations of the throwing chunk are
/// skipped; other chunks still run to completion).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: a process-wide pool sized to the hardware.
ThreadPool& global_pool();

}  // namespace forktail::util
