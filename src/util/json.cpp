#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace forktail::util {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    const Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError(pos_, why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': {
        // Bounded recursion: the parser is recursive-descent, so depth is
        // stack usage.  The cap turns a hostile ~100k-bracket document into
        // a typed error instead of a stack overflow.
        if (depth_ >= kMaxJsonDepth) fail("nesting too deep");
        ++depth_;
        Json v = object();
        --depth_;
        return v;
      }
      case '[': {
        if (depth_ >= kMaxJsonDepth) fail("nesting too deep");
        ++depth_;
        Json v = array();
        --depth_;
        return v;
      }
      case '"':
        return Json(raw_string());
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  Json object() {
    Json v = Json::object();
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      const std::string key = raw_string();
      if (v.contains(key)) fail("duplicate key: " + key);
      expect(':');
      v.set(key, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v = Json::array();
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  /// Read the 4 hex digits of a \u escape.  On entry pos_ is at the 'u';
  /// on return pos_ is at the last digit (the caller's ++pos_ steps past).
  unsigned hex4() {
    if (pos_ + 4 >= text_.size()) fail("bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + 1 + static_cast<std::size_t>(i)];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    pos_ += 4;
    return code;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) fail("bad escape");
        switch (text_[pos_]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = hex4();
            if (code >= 0xDC00 && code <= 0xDFFF) {
              fail("lone low surrogate");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: a \uDC00-\uDFFF low half must follow, and
              // the pair decodes to one supplementary-plane code point.
              if (pos_ + 2 >= text_.size() || text_[pos_ + 1] != '\\' ||
                  text_[pos_ + 2] != 'u') {
                fail("lone high surrogate");
              }
              pos_ += 2;
              const unsigned low = hex4();
              if (low < 0xDC00 || low > 0xDFFF) fail("lone high surrogate");
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            // Encode the code point as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else if (code < 0x10000) {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xF0 | (code >> 18)));
              out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      out.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Json boolean() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    fail("bad literal");
  }

  Json null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return Json();
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(token, &used);
    } catch (const std::exception&) {
      // invalid_argument ("--1") and out_of_range ("1e999") both land here.
      fail("malformed number");
    }
    // stod parses the longest valid prefix; "1e+e" must not pass as 1.
    if (used != token.size() || !std::isfinite(v)) fail("malformed number");
    return Json(v);
  }
};

void write_number(std::string& out, double v) {
  // %.17g round-trips every finite double; trim to the shortest form that
  // still parses back exactly so common values stay readable (1 not
  // 1.0000000000000000).
  char buf[40];
  for (int prec : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::stod(buf) == v) break;
  }
  out += buf;
}

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

double Json::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return text_;
}

bool Json::contains(const std::string& key) const {
  return kind_ == Kind::kObject && fields_.find(key) != fields_.end();
}

const Json& Json::at(const std::string& key) const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  const auto it = fields_.find(key);
  if (it == fields_.end()) throw std::runtime_error("json: missing key: " + key);
  return it->second;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  fields_[key] = std::move(value);
  return *this;
}

std::set<std::string> Json::keys() const {
  std::set<std::string> out;
  for (const auto& [k, v] : fields_) out.insert(k);
  return out;
}

Json& Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  items_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const noexcept {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return fields_.size();
  return 0;
}

bool Json::operator==(const Json& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return text_ == other.text_;
    case Kind::kArray:
      return items_ == other.items_;
    case Kind::kObject:
      return fields_ == other.fields_;
  }
  return false;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      write_number(out, number_);
      return;
    case Kind::kString:
      out.push_back('"');
      out += json_escape(text_);
      out.push_back('"');
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        item.write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (fields_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : fields_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        out.push_back('"');
        out += json_escape(key);
        out += indent > 0 ? "\": " : "\":";
        value.write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

std::string read_text_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace forktail::util
