// Minimal JSON value type with a recursive-descent parser and a
// deterministic writer.
//
// Grown out of the in-test reader that test_report_schema.cpp used to pin
// the RunReport / BENCH_replay schemas; promoted here so the scenario layer
// (ScenarioSpec files), the observability reports, and the tests all share
// one implementation instead of ad-hoc readers.  Deliberately small: no
// third-party dependency, object keys kept in sorted (std::map) order so
// serialization is deterministic, numbers emitted with round-trip (%.17g)
// precision so parse(dump(x)) == x for every finite double.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace forktail::util {

/// Maximum nesting depth the parser accepts.  Bounds the recursion of the
/// recursive-descent parser so adversarial input (e.g. 100k open brackets)
/// raises a typed error instead of overflowing the stack.
inline constexpr int kMaxJsonDepth = 200;

/// Thrown on malformed JSON input.  `offset()` is the byte position the
/// parser had reached; the what() string already includes it.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& why)
      : std::runtime_error("json parse error at byte " +
                           std::to_string(offset) + ": " + why),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  // ------------------------------------------------------------ builders
  Json() = default;  ///< null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), number_(v) {}
  Json(int v) : kind_(Kind::kNumber), number_(v) {}
  Json(std::int64_t v) : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : kind_(Kind::kNumber), number_(static_cast<double>(v)) {}
  Json(std::string s) : kind_(Kind::kString), text_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), text_(s) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Parse a complete JSON document.  Throws JsonParseError (which carries
  /// the byte offset) on malformed input: syntax errors, nesting deeper
  /// than kMaxJsonDepth, duplicate object keys, numbers that do not fit a
  /// double, invalid escapes, and lone UTF-16 surrogates are all rejected
  /// with a typed error -- never undefined behaviour.
  static Json parse(const std::string& text);

  // ----------------------------------------------------------- accessors
  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  /// Typed extraction; throws std::runtime_error on kind mismatch.
  double as_number() const;
  bool as_bool() const;
  const std::string& as_string() const;

  // ------------------------------------------------------ object surface
  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;
  /// Member access; throws std::runtime_error when absent or not an object.
  const Json& at(const std::string& key) const;
  /// Insert-or-assign on an object (null values upgrade to objects).
  Json& set(const std::string& key, Json value);
  std::set<std::string> keys() const;
  const std::map<std::string, Json>& fields() const noexcept { return fields_; }

  // ------------------------------------------------------- array surface
  /// Append to an array (null values upgrade to arrays).
  Json& push_back(Json value);
  const std::vector<Json>& items() const noexcept { return items_; }
  std::size_t size() const noexcept;

  // -------------------------------------------------------- serialization
  /// Deterministic serialization: object keys in sorted order, numbers at
  /// round-trip precision.  `indent` > 0 pretty-prints; 0 emits compact.
  std::string dump(int indent = 2) const;

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  double number_ = 0.0;
  bool bool_ = false;
  std::string text_;
  std::vector<Json> items_;
  std::map<std::string, Json> fields_;
};

/// Escape a string for embedding in a JSON document (without quotes).
std::string json_escape(const std::string& text);

/// Read an entire file into a string; throws std::runtime_error when the
/// file cannot be opened.
std::string read_text_file(const std::string& path);

}  // namespace forktail::util
