#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace forktail::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

Table::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

Table::RowBuilder& Table::RowBuilder::str(std::string s) {
  cells_.push_back(std::move(s));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::num(double v, int precision) {
  cells_.push_back(format_fixed(v, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::integer(long long v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
    }
    os << "|\n";
  };
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace forktail::util
