// Text-table and CSV formatting for benchmark output.
//
// Every bench binary prints the rows/series the paper's corresponding table
// or figure reports; this module renders them as aligned text tables (human
// consumption) or CSV (plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace forktail::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed numeric/string rows.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;
    RowBuilder& str(std::string s);
    RowBuilder& num(double v, int precision = 2);
    RowBuilder& integer(long long v);

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_columns() const noexcept { return headers_.size(); }

  /// Render as an aligned text table.
  std::string to_text() const;
  /// Render as CSV (RFC-4180 quoting for cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared by bench binaries).
std::string format_fixed(double v, int precision);

}  // namespace forktail::util
