#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace forktail::util {

namespace {
// Pool telemetry (docs/observability.md): task counts, submit-to-start
// queue wait, and aggregate busy time.  Utilization over a run is
// busy_seconds / (wall * pool size).  All of this compiles out with
// FORKTAIL_OBS=OFF -- including the clock reads.
struct PoolMetrics {
  obs::Counter& tasks = obs::Registry::global().counter("threadpool.tasks");
  obs::Counter& exceptions =
      obs::Registry::global().counter("threadpool.task_exceptions");
  obs::Gauge& busy_seconds =
      obs::Registry::global().gauge("threadpool.busy_seconds");
  obs::Histogram& queue_wait =
      obs::Registry::global().histogram("threadpool.queue_wait_seconds");
  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  Job job{std::move(task), {}};
  if constexpr (obs::enabled()) {
    job.enqueued = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    std::chrono::steady_clock::time_point start{};
    if constexpr (obs::enabled()) {
      start = std::chrono::steady_clock::now();
      PoolMetrics::get().queue_wait.record(
          std::chrono::duration<double>(start - job.enqueued).count());
    }
    std::exception_ptr error;
    try {
      job.fn();
    } catch (...) {
      error = std::current_exception();
    }
    if constexpr (obs::enabled()) {
      const auto end = std::chrono::steady_clock::now();
      PoolMetrics& m = PoolMetrics::get();
      m.busy_seconds.add(std::chrono::duration<double>(end - start).count());
      m.tasks.add(1);
      if (error) m.exceptions.add(1);
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = std::max<std::size_t>(1, pool.size());
  // Chunk so each worker gets a handful of chunks for load balance.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace forktail::util
